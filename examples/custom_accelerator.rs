//! Mapping a custom CNN onto a custom cache: build a small edge-class
//! processor (8 LLC slices, 20 MB) and inspect how the Section IV data
//! layout schedules each layer — packing, splitting, lanes per filter,
//! parallel instances, serial rounds and utilization.
//!
//! Run with: `cargo run --release --example custom_accelerator`

use neural_cache_repro::cache::{NeuralCache, SystemConfig, UnitPlan};
use neural_cache_repro::dnn::workload::random_conv;
use neural_cache_repro::dnn::{ActQuant, Layer, Model, Padding, Pool2d, PoolKind, Shape};
use neural_cache_repro::geometry::CacheGeometry;

fn main() {
    // A VGG-flavoured edge model on 64x64 inputs.
    let model = Model {
        name: "edge-vgg".into(),
        input_shape: Shape::new(64, 64, 3),
        input_quant: ActQuant::from_range(-1.0, 1.0),
        layers: vec![
            Layer::Conv(random_conv(
                "conv1",
                (3, 3),
                3,
                32,
                1,
                Padding::Same,
                true,
                1,
            )),
            Layer::Pool(pool("pool1")),
            Layer::Conv(random_conv(
                "conv2",
                (3, 3),
                32,
                64,
                1,
                Padding::Same,
                true,
                2,
            )),
            Layer::Pool(pool("pool2")),
            Layer::Conv(random_conv(
                "conv3",
                (3, 3),
                64,
                128,
                1,
                Padding::Same,
                true,
                3,
            )),
            Layer::Pool(pool("pool3")),
            Layer::Conv(random_conv(
                "conv4",
                (1, 1),
                128,
                256,
                1,
                Padding::Valid,
                true,
                4,
            )),
            Layer::Pool(Pool2d {
                name: "gap".into(),
                kind: PoolKind::Avg,
                k: 8,
                stride: 1,
                padding: Padding::Valid,
            }),
            Layer::Conv(random_conv(
                "classifier",
                (1, 1),
                256,
                100,
                1,
                Padding::Valid,
                false,
                5,
            )),
        ],
    };

    // An 8-slice (20 MB) cache — e.g. a smaller server part.
    let mut config = SystemConfig::xeon_e5_2697_v3();
    config.geometry = CacheGeometry::with_slices(8);
    let system = NeuralCache::new(config);

    println!("model: {model}");
    println!("cache: {}", system.config().geometry);
    println!();
    println!(
        "{:<12} {:>5} {:>5} {:>6} {:>8} {:>10} {:>7} {:>6}",
        "unit", "pack", "split", "lanes", "flt/arr", "parallel", "rounds", "util%"
    );
    for plan in system.plan(&model) {
        for unit in &plan.units {
            match unit {
                UnitPlan::Conv(c) => println!(
                    "{:<12} {:>5} {:>5} {:>6} {:>8} {:>10} {:>7} {:>6.1}",
                    c.name,
                    c.packing,
                    c.split,
                    c.lanes_per_filter,
                    c.filters_per_array,
                    c.parallel_instances,
                    c.rounds,
                    100.0 * c.utilization()
                ),
                UnitPlan::Pool(p) => println!(
                    "{:<12} {:>5} {:>5} {:>6} {:>8} {:>10} {:>7} {:>6}",
                    p.name, "-", "-", "-", "-", p.parallel_outputs, p.rounds, "-"
                ),
            }
        }
    }

    let report = system.run_inference(&model);
    println!(
        "\ninference latency on the 8-slice cache: {}",
        report.total()
    );
    let energy = system.energy(&report);
    println!(
        "energy: {:.4} J at {:.1} W",
        energy.total_j(),
        energy.avg_power_w()
    );

    // Verify the mapping functionally: bit-exact against the golden model.
    let input =
        neural_cache_repro::dnn::workload::random_input(model.input_shape, model.input_quant, 99);
    let golden = neural_cache_repro::dnn::reference::run_model(&model, &input);
    let cache = system
        .run_functional(&model, &input)
        .expect("functional run");
    assert_eq!(golden.output.data(), cache.output.data());
    println!("functional check: outputs bit-identical with the golden executor");
}

fn pool(name: &str) -> Pool2d {
    Pool2d {
        name: name.into(),
        kind: PoolKind::Max,
        k: 2,
        stride: 2,
        padding: Padding::Valid,
    }
}
