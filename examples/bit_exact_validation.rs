//! Functional cross-validation (the paper's Section V trace matching): run
//! a CNN both on the plain-Rust golden executor and bit-accurately on
//! simulated compute SRAM arrays, and verify the outputs and every
//! requantization decision agree exactly.
//!
//! Run with: `cargo run --release --example bit_exact_validation`

use neural_cache_repro::cache::functional;
use neural_cache_repro::cache::ExecutionEngine;
use neural_cache_repro::dnn::reference;
use neural_cache_repro::dnn::workload::{random_input, tiny_cnn};

fn main() {
    let model = tiny_cnn(2024);
    let input = random_input(model.input_shape, model.input_quant, 7);
    println!("model: {model}");

    println!("\nrunning golden integer executor...");
    let golden = reference::run_model(&model, &input);

    println!("running bit-serial in-cache executor...");
    let cache = functional::run_model(&model, &input).expect("functional execution");

    println!("running bit-serial in-cache executor (threaded x4 engine)...");
    let threaded = functional::run_model_with(&model, &input, ExecutionEngine::from_threads(4))
        .expect("threaded functional execution");
    assert_eq!(
        cache.output.data(),
        threaded.output.data(),
        "threaded engine must be bit-identical to sequential"
    );
    assert_eq!(
        cache.cycles, threaded.cycles,
        "threaded engine must report identical cycles"
    );

    assert_eq!(
        golden.output.data(),
        cache.output.data(),
        "outputs must agree bit-for-bit"
    );
    let golden_recs: Vec<_> = golden.layers.iter().flat_map(|l| &l.sublayers).collect();
    for (ours, gold) in cache.sublayers.iter().zip(&golden_recs) {
        assert_eq!(&ours, gold, "requantization records must agree");
    }

    println!(
        "\nbit-exact: {} output bytes identical",
        golden.output.data().len()
    );
    println!(
        "in-cache work: {} compute cycles + {} access cycles across all array operations",
        cache.cycles.compute_cycles, cache.cycles.access_cycles
    );
    println!("per-sublayer requantization decisions:");
    for rec in &cache.sublayers {
        println!(
            "  {:<22} acc range [{}, {}] -> {}",
            rec.name, rec.acc_min, rec.acc_max, rec.requant
        );
    }
    println!("\npredicted class (golden): {}", golden.argmax());
}
