//! Raw in-SRAM bit-serial arithmetic playground: the Figure 2/4/5/6
//! primitives plus search, max/min and division, on one 256-lane compute
//! array.
//!
//! Run with: `cargo run --release --example bitserial_playground`

use neural_cache_repro::sram::{ComputeArray, Operand, COLS};

fn main() {
    let mut arr = ComputeArray::with_zero_row(255).expect("reserve zero row");

    // --- Vector addition (Figure 4): lane i computes i + 2i. ---
    let a = Operand::new(0, 8).unwrap();
    let b = Operand::new(8, 8).unwrap();
    let sum = Operand::new(16, 9).unwrap();
    for lane in 0..COLS {
        arr.poke_lane(lane, a, (lane as u64) % 128);
        arr.poke_lane(lane, b, (2 * lane as u64) % 128);
    }
    let d = arr.add(a, b, sum).unwrap();
    println!(
        "add: 256 lanes in {} cycles; lane 41: {} + {} = {}",
        d.compute_cycles,
        41,
        82,
        arr.peek_lane(41, sum)
    );

    // --- Vector multiplication (Figure 6). ---
    let prod = Operand::new(32, 16).unwrap();
    let d = arr.mul(a, b, prod).unwrap();
    println!(
        "mul: 256 lanes in {} cycles; lane 100: {} * {} = {}",
        d.compute_cycles,
        100,
        200 % 128,
        arr.peek_lane(100, prod)
    );

    // --- Tree reduction (Figure 5): sum of 0..256 on 32-bit segments. ---
    let v = Operand::new(48, 32).unwrap();
    let s = Operand::new(80, 32).unwrap();
    for lane in 0..COLS {
        arr.poke_lane(lane, v, lane as u64);
    }
    let d = arr.reduce_sum(v, s, COLS).unwrap();
    println!(
        "reduce: sum(0..256) = {} in {} cycles (8 tree steps)",
        arr.peek_lane(0, v),
        d.compute_cycles
    );

    // --- Predicated search (Compute Cache legacy op). ---
    let d = arr.search_eq_scalar(a, 77).unwrap();
    let hits = (0..COLS).filter(|&l| arr.tag().get(l)).count();
    println!(
        "search a == 77: {hits} matching lanes in {} cycles",
        d.compute_cycles
    );

    // --- Division (used by average pooling). ---
    let quot = Operand::new(112, 8).unwrap();
    let rem = Operand::new(120, 9).unwrap();
    let trial = Operand::new(129, 9).unwrap();
    let d = arr.div_scalar(a, 9, quot, rem, trial).unwrap();
    println!(
        "div by 9: lane 100: {} / 9 = {} rem {} ({} cycles)",
        100,
        arr.peek_lane(100, quot),
        arr.peek_lane(100, rem),
        d.compute_cycles
    );

    // --- ReLU via MSB-masked zero write (Section IV-D). ---
    let x = Operand::new(140, 16).unwrap();
    arr.poke_lane_signed(0, x, -1234);
    arr.poke_lane_signed(1, x, 1234);
    arr.relu(x).unwrap();
    println!(
        "relu: [-1234, 1234] -> [{}, {}]",
        arr.peek_lane_signed(0, x),
        arr.peek_lane_signed(1, x)
    );

    println!("\ntotal cycles on this array: {}", arr.stats());
}
