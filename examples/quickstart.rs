//! Quickstart: time one Inception v3 inference on the paper's Xeon E5
//! system and print the latency, phase breakdown and energy.
//!
//! Run with: `cargo run --release --example quickstart`

use neural_cache_repro::cache::{NeuralCache, Phase, SystemConfig};
use neural_cache_repro::dnn::inception::inception_v3;

fn main() {
    // The paper's system: 35 MB LLC (14 slices), 2.5 GHz compute clock,
    // paper-published cycle costs.
    let system = NeuralCache::new(SystemConfig::xeon_e5_2697_v3());
    let model = inception_v3();

    println!("model: {model}");
    println!("cache: {}", system.config().geometry);

    let report = system.run_inference(&model);
    println!("\ninference latency: {}", report.total());

    let breakdown = report.breakdown();
    println!("phase breakdown:");
    for phase in Phase::ALL {
        println!(
            "  {:>12}: {:>12}  ({:.1}%)",
            phase.label(),
            breakdown.get(phase).to_string(),
            100.0 * breakdown.fraction(phase)
        );
    }

    let energy = system.energy(&report);
    println!(
        "\nenergy: {:.3} J, average power {:.1} W, EDP {:.3e} J*s",
        energy.total_j(),
        energy.avg_power_w(),
        energy.edp()
    );

    let batch = system.run_batch(&model, 16);
    println!(
        "batch 16: {} total, {:.0} inferences/sec (dual socket)",
        batch.latency, batch.throughput_ips
    );
}
