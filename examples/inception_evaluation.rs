//! The paper's evaluation in miniature: per-layer latency against the
//! calibrated CPU/GPU baselines (Figure 13), throughput vs batch size
//! (Figure 16), and cache-capacity scaling (Table IV).
//!
//! Run with: `cargo run --release --example inception_evaluation`

use neural_cache_repro::baselines::{cpu_xeon_e5, gpu_titan_xp};
use neural_cache_repro::cache::{throughput_sweep, time_inference, SystemConfig};
use neural_cache_repro::dnn::inception::inception_v3;

fn main() {
    let model = inception_v3();
    let config = SystemConfig::xeon_e5_2697_v3();
    let nc = time_inference(&config, &model);
    let cpu = cpu_xeon_e5();
    let gpu = gpu_titan_xp();

    println!("== Per-layer latency (ms) ==");
    println!(
        "{:<18} {:>9} {:>9} {:>13}",
        "layer", "CPU", "GPU", "Neural Cache"
    );
    let cpu_layers = cpu.layer_latencies(&model);
    let gpu_layers = gpu.layer_latencies(&model);
    for ((layer, (_, c)), (_, g)) in nc.layers.iter().zip(&cpu_layers).zip(&gpu_layers) {
        println!(
            "{:<18} {:>9.3} {:>9.3} {:>13.4}",
            layer.name,
            c.as_millis_f64(),
            g.as_millis_f64(),
            layer.total().as_millis_f64()
        );
    }
    println!(
        "\ntotal: CPU {:.1} ms | GPU {:.1} ms | Neural Cache {:.2} ms  ({:.1}x / {:.1}x)",
        cpu.total_latency().as_millis_f64(),
        gpu.total_latency().as_millis_f64(),
        nc.total().as_millis_f64(),
        cpu.total_latency() / nc.total(),
        gpu.total_latency() / nc.total(),
    );

    println!("\n== Throughput vs batch size (inferences/sec) ==");
    let batches = [1usize, 4, 16, 64, 256];
    let sweep = throughput_sweep(&config, &model, &batches);
    println!(
        "{:>6} {:>9} {:>9} {:>13}",
        "batch", "CPU", "GPU", "Neural Cache"
    );
    for (i, &b) in batches.iter().enumerate() {
        println!(
            "{:>6} {:>9.1} {:>9.1} {:>13.1}",
            b,
            cpu.throughput(b),
            gpu.throughput(b),
            sweep[i].throughput_ips
        );
    }

    println!("\n== Capacity scaling (batch 1) ==");
    for mb in [35usize, 45, 60] {
        let t = time_inference(&SystemConfig::with_capacity_mb(mb), &model).total();
        println!("{mb} MB: {t}");
    }
}
