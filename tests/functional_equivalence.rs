//! Integration test of the S19 validation harness: the bit-serial in-cache
//! executor must agree with the golden integer executor bit-for-bit on
//! randomized networks (the paper's TensorFlow-trace matching, Section V).

use neural_cache_repro::cache::functional;
use neural_cache_repro::cache::ExecutionEngine;
use neural_cache_repro::dnn::reference;
use neural_cache_repro::dnn::workload::{
    mini_inception, random_conv, random_input, single_conv_model, tiny_cnn,
};
use neural_cache_repro::dnn::{Model, Padding, Shape};

fn assert_bit_exact(model: &Model, input_seed: u64) {
    let input = random_input(model.input_shape, model.input_quant, input_seed);
    let golden = reference::run_model(model, &input);
    let ours = functional::run_model(model, &input).expect("functional execution");
    assert_eq!(
        golden.output.data(),
        ours.output.data(),
        "{}: outputs differ",
        model.name
    );
    let golden_recs: Vec<_> = golden.layers.iter().flat_map(|l| &l.sublayers).collect();
    assert_eq!(ours.sublayers.len(), golden_recs.len());
    for (a, b) in ours.sublayers.iter().zip(golden_recs) {
        assert_eq!(&a, &b, "{}: record mismatch at {}", model.name, a.name);
    }
}

#[test]
fn tiny_cnn_is_bit_exact_across_seeds() {
    for seed in [1u64, 17, 99] {
        assert_bit_exact(&tiny_cnn(seed), seed * 31 + 5);
    }
}

#[test]
fn mini_inception_is_bit_exact_across_seeds() {
    // Covers the orchestration paths Inception v3 needs that tiny_cnn does
    // not: terminal splits (Mixed 7b/7c pattern), raw max-pool branches
    // concatenated via code requantization (Mixed 6a/7a pattern), and
    // block-shared output ranges across four branches.
    for seed in [3u64, 42] {
        assert_bit_exact(&mini_inception(seed), seed * 13 + 1);
    }
}

#[test]
fn kernel_zoo_is_bit_exact() {
    // One of each kernel family Inception v3 uses.
    let cases: Vec<(Model, u64)> = vec![
        (
            single_conv_model(
                random_conv("k3s2", (3, 3), 3, 4, 2, Padding::Valid, true, 41),
                Shape::new(9, 9, 3),
            ),
            141,
        ),
        (
            single_conv_model(
                random_conv("k5", (5, 5), 4, 2, 1, Padding::Same, true, 42),
                Shape::new(7, 7, 4),
            ),
            142,
        ),
        (
            single_conv_model(
                random_conv("k1pack", (1, 1), 48, 3, 1, Padding::Valid, true, 43),
                Shape::new(4, 4, 48),
            ),
            143,
        ),
        (
            single_conv_model(
                random_conv("k1x7", (1, 7), 6, 2, 1, Padding::Same, true, 44),
                Shape::new(8, 8, 6),
            ),
            144,
        ),
        (
            single_conv_model(
                random_conv("logits", (1, 1), 32, 10, 1, Padding::Valid, false, 45),
                Shape::new(1, 1, 32),
            ),
            145,
        ),
    ];
    for (model, seed) in &cases {
        assert_bit_exact(model, *seed);
    }
}

#[test]
fn inception_stem_slice_is_bit_exact() {
    // The first Inception v3 convolution at reduced spatial size: same
    // channel geometry (3 -> 32, 3x3 stride 2 VALID) as Conv2d_1a_3x3.
    let model = single_conv_model(
        random_conv(
            "Conv2d_1a_3x3_slice",
            (3, 3),
            3,
            32,
            2,
            Padding::Valid,
            true,
            7,
        ),
        Shape::new(11, 11, 3),
    );
    assert_bit_exact(&model, 70);
}

#[test]
fn threaded_engine_is_bit_exact_on_mini_inception() {
    // The Inception v3 functional proxy under the sharded Threaded backend:
    // outputs, records and cycle counts must be identical to Sequential
    // (which assert_bit_exact already pinned to the golden executor).
    let model = mini_inception(3);
    let input = random_input(model.input_shape, model.input_quant, 40);
    let seq = functional::run_model(&model, &input).expect("sequential execution");
    let thr = functional::run_model_with(&model, &input, ExecutionEngine::from_threads(4))
        .expect("threaded execution");
    assert_eq!(seq.output.data(), thr.output.data(), "outputs diverged");
    assert_eq!(seq.sublayers, thr.sublayers, "records diverged");
    assert_eq!(seq.cycles, thr.cycles, "cycle accounting diverged");
}

#[test]
fn facade_parallelism_knob_reaches_the_functional_executor() {
    use neural_cache_repro::cache::{NeuralCache, SystemConfig};
    let model = tiny_cnn(9);
    let input = random_input(model.input_shape, model.input_quant, 90);
    let seq = NeuralCache::new(SystemConfig::xeon_e5_2697_v3())
        .run_functional(&model, &input)
        .expect("sequential facade run");
    let thr = NeuralCache::new(SystemConfig::with_parallelism(3))
        .run_functional(&model, &input)
        .expect("threaded facade run");
    assert_eq!(seq.output, thr.output);
    assert_eq!(seq.cycles, thr.cycles);
}

#[test]
fn functional_executor_reports_cycle_work() {
    let model = tiny_cnn(3);
    let input = random_input(model.input_shape, model.input_quant, 30);
    let result = functional::run_model(&model, &input).expect("functional execution");
    // Bit-serial execution must do real work: thousands of compute cycles
    // for even a tiny CNN.
    assert!(result.cycles.compute_cycles > 10_000);

    // Filters wider than one array additionally incur inter-array access
    // cycles for the cross-array reduction fold.
    let wide = single_conv_model(
        random_conv("wide", (3, 3), 300, 1, 1, Padding::Valid, true, 8),
        Shape::new(3, 3, 300),
    );
    let input = random_input(wide.input_shape, wide.input_quant, 80);
    let result = functional::run_model(&wide, &input).expect("functional execution");
    assert!(
        result.cycles.access_cycles > 0,
        "cross-array transfers counted"
    );
}
