//! Smoke tests for the benchmark harness: every table/figure regeneration
//! function produces its artifact (the bin targets wrap exactly these
//! calls).

#[test]
fn all_experiment_artifacts_regenerate() {
    let artifacts = [
        ("table1", nc_bench::table1()),
        ("table2", nc_bench::table2()),
        ("table3", nc_bench::table3()),
        ("table4", nc_bench::table4()),
        ("fig2", nc_bench::fig2()),
        ("fig4_6", nc_bench::fig4_6()),
        ("fig12", nc_bench::fig12()),
        ("fig13", nc_bench::fig13()),
        ("fig14", nc_bench::fig14()),
        ("fig15", nc_bench::fig15()),
        ("fig16", nc_bench::fig16()),
        ("sparsity", nc_bench::sparsity()),
        ("headlines", nc_bench::headlines()),
    ];
    for (name, text) in &artifacts {
        assert!(!text.is_empty(), "{name} rendered nothing");
    }
    // Spot-check content that must appear.
    let by_name = |name: &str| {
        &artifacts
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no artifact {name}"))
            .1
    };
    assert!(by_name("table1").contains("Conv2d_1a_3x3"));
    assert!(by_name("table3").contains("Neural Cache"));
    assert!(
        by_name("fig16").contains("604"),
        "fig16 cites the paper peak"
    );
    assert!(
        by_name("sparsity").contains("oracle"),
        "sparsity reports skips"
    );
    assert!(by_name("headlines").contains("1146880"));
}

#[test]
fn table1_matches_paper_counts() {
    let t = nc_bench::table1();
    for value in ["710432", "1382976", "568400", "254720", "208896"] {
        assert!(t.contains(value), "missing conv count {value}");
    }
}
