//! Cross-crate integration tests: the full Neural Cache system against the
//! paper's published evaluation results (shape-of-result assertions, per
//! DESIGN.md §5).

use neural_cache_repro::baselines::{cpu_xeon_e5, gpu_titan_xp};
use neural_cache_repro::cache::{
    throughput_sweep, time_inference, NeuralCache, Phase, SystemConfig,
};
use neural_cache_repro::dnn::inception::inception_v3;

#[test]
fn figure15_speedups_hold() {
    let nc = time_inference(&SystemConfig::xeon_e5_2697_v3(), &inception_v3()).total();
    let cpu = cpu_xeon_e5().total_latency();
    let gpu = gpu_titan_xp().total_latency();

    let cpu_speedup = cpu / nc;
    let gpu_speedup = gpu / nc;
    // Paper: 18.3x over CPU and 7.7x over GPU; require the same ordering
    // and the same magnitude band.
    assert!(
        (12.0..30.0).contains(&cpu_speedup),
        "CPU speedup {cpu_speedup:.1} out of band"
    );
    assert!(
        (5.0..13.0).contains(&gpu_speedup),
        "GPU speedup {gpu_speedup:.1} out of band"
    );
    assert!(cpu_speedup > gpu_speedup, "CPU is slower than GPU");
}

#[test]
fn figure14_breakdown_shape_holds() {
    let report = time_inference(&SystemConfig::xeon_e5_2697_v3(), &inception_v3());
    let b = report.breakdown();
    // Filter loading dominates; MAC > reduction > quantization ~ output;
    // pooling is negligible (paper: 46/15/20/10/5/0.04/4).
    let filter = b.fraction(Phase::FilterLoad);
    assert!((0.35..0.60).contains(&filter), "filter share {filter:.2}");
    assert!(b.fraction(Phase::InputStream) > 0.05);
    assert!(b.fraction(Phase::Mac) > b.fraction(Phase::Reduce));
    assert!(b.fraction(Phase::Reduce) > b.fraction(Phase::Pool));
    assert!(b.fraction(Phase::Pool) < 0.01);
}

#[test]
fn table4_capacity_scaling_holds() {
    let model = inception_v3();
    let mut previous = f64::INFINITY;
    for (mb, paper_ms) in [(35usize, 4.72f64), (45, 4.12), (60, 3.79)] {
        let ms = time_inference(&SystemConfig::with_capacity_mb(mb), &model)
            .total()
            .as_millis_f64();
        assert!(
            ms < previous,
            "{mb} MB must be faster than the previous point"
        );
        assert!(
            (ms - paper_ms).abs() / paper_ms < 0.25,
            "{mb} MB: {ms:.2} ms vs paper {paper_ms} ms"
        );
        previous = ms;
    }
}

#[test]
fn figure16_throughput_endpoints_hold() {
    let config = SystemConfig::xeon_e5_2697_v3();
    let model = inception_v3();
    let sweep = throughput_sweep(&config, &model, &[1, 256]);
    let cpu = cpu_xeon_e5();
    let gpu = gpu_titan_xp();
    // Neural Cache beats both baselines already at batch 1 (paper:
    // "outperforms the maximum throughput of baseline CPU and GPU even
    // without batching").
    assert!(sweep[0].throughput_ips > cpu.peak_throughput());
    assert!(sweep[0].throughput_ips > gpu.peak_throughput());
    // Peak ratios near the paper's 12.4x / 2.2x.
    let peak = sweep[1].throughput_ips;
    let vs_cpu = peak / cpu.peak_throughput();
    let vs_gpu = peak / gpu.peak_throughput();
    assert!((8.0..16.0).contains(&vs_cpu), "vs CPU {vs_cpu:.1}");
    assert!((1.5..3.0).contains(&vs_gpu), "vs GPU {vs_gpu:.1}");
}

#[test]
fn table3_energy_ordering_holds() {
    let system = NeuralCache::new(SystemConfig::xeon_e5_2697_v3());
    let report = system.run_inference(&inception_v3());
    let nc = system.energy(&report);
    let cpu = cpu_xeon_e5();
    let gpu = gpu_titan_xp();
    // Energy: CPU > GPU >> Neural Cache (paper: 9.137 / 4.087 / 0.246 J).
    assert!(cpu.energy_j() > gpu.energy_j());
    assert!(gpu.energy_j() > 10.0 * nc.total_j());
    // Average power: Neural Cache roughly half of either baseline
    // (paper: ~50% / ~53% lower).
    assert!(nc.avg_power_w() < 0.65 * cpu.avg_power_w);
    assert!(nc.avg_power_w() < 0.65 * gpu.avg_power_w);
    // EDP: Neural Cache wins on both axes.
    assert!(nc.edp() < cpu.edp());
    assert!(nc.edp() < gpu.edp());
}

#[test]
fn serving_driver_scales_with_sockets_and_stays_deterministic() {
    use neural_cache_repro::cache::serve_requests;
    let model = inception_v3();
    let config = SystemConfig::xeon_e5_2697_v3();
    let r = serve_requests(&config, &model, 32);
    assert_eq!(r.sockets, 2);
    assert_eq!(r.per_socket, vec![16, 16]);
    // Steady-state serving beats the batch-1 number (filters amortize) and
    // stays below the batched peak (no reserved-way dump modeling here).
    let single = 1.0 / time_inference(&config, &model).total().as_secs_f64();
    assert!(r.throughput_ips > single);
    // The parallelism knob must not change the simulated report.
    let mut threaded = config.clone();
    threaded.parallelism = neural_cache_repro::cache::ExecutionEngine::from_threads(4);
    assert_eq!(r, serve_requests(&threaded, &model, 32));
}

#[test]
fn discrete_event_serving_simulator_end_to_end() {
    use neural_cache_repro::serve::{simulate, BatchPolicy, ServeConfig, TraceConfig};
    let model = inception_v3();
    let config = ServeConfig {
        policy: BatchPolicy::SloAdaptive { max_batch: 32 },
        ..ServeConfig::default_two_slice()
    };
    // Underloaded Poisson traffic: everything completes within the SLO.
    let calm = simulate(&config, &model, &TraceConfig::poisson(150.0, 100, 2018));
    assert!(calm.summary.conservation_holds());
    assert_eq!(calm.summary.completed, 100);
    assert_eq!(calm.summary.slo_violations, 0);
    assert!(calm.summary.p99_ms < 100.0);
    // Overload drives queueing, bigger batches and SLO violations, but the
    // invariants still hold.
    let hot = simulate(&config, &model, &TraceConfig::poisson(2000.0, 200, 2018));
    assert!(hot.summary.conservation_holds());
    assert!(hot.summary.goodput_bounded());
    assert!(hot.summary.mean_batch > calm.summary.mean_batch);
    assert!(hot.summary.p99_ms > calm.summary.p99_ms);
    // Deterministic: the facade path reproduces itself byte-for-byte.
    let again = simulate(&config, &model, &TraceConfig::poisson(2000.0, 200, 2018));
    assert_eq!(hot.trace.to_log(), again.trace.to_log());
}

#[test]
fn worked_example_conv2d_2b() {
    // Section VI-A's fully worked example, end to end.
    let system = NeuralCache::new(SystemConfig::xeon_e5_2697_v3());
    let plans = system.plan(&inception_v3());
    let plan = plans.iter().find(|p| p.name == "Conv2d_2b_3x3").unwrap();
    let unit = match &plan.units[0] {
        neural_cache_repro::cache::UnitPlan::Conv(c) => c,
        neural_cache_repro::cache::UnitPlan::Pool(_) => panic!("expected conv"),
    };
    assert_eq!(unit.total_convs, 1_382_976);
    assert_eq!(unit.rounds, 43);
    assert!((unit.utilization() - 0.997).abs() < 0.001);
}

#[test]
fn cost_model_ablation_brackets_the_paper() {
    let model = inception_v3();
    let mut paper = SystemConfig::xeon_e5_2697_v3();
    paper.cost = neural_cache_repro::cache::CostModelKind::Paper;
    let mut derived = SystemConfig::xeon_e5_2697_v3();
    derived.cost = neural_cache_repro::cache::CostModelKind::Derived;
    let t_paper = time_inference(&paper, &model).total();
    let t_derived = time_inference(&derived, &model).total();
    // The derived MAC is cheaper, the derived reduction costlier; totals
    // must stay within 2x of each other and both in the single-digit-ms
    // regime.
    let ratio = t_paper / t_derived;
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio:.2}");
    assert!(t_derived.as_millis_f64() > 1.0);
}
