//! Minimal, offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Throughput`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! It is a measuring harness, not a statistics engine: each benchmark is
//! warmed up briefly, timed over a fixed wall-clock window, and reported as
//! a single mean-time line on stdout (plus derived throughput when one was
//! declared). There is no sampling distribution, HTML report, or baseline
//! comparison. The purpose is to keep `cargo bench` runnable and the bench
//! sources compiling unchanged in an environment with no cargo-registry
//! access; see the workspace README.

#![warn(missing_docs)]
// `Bencher::iter` must keep upstream criterion's name even though it
// returns nothing — bench sources compile against the real crate too.
#![allow(clippy::iter_not_returning_iterator)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a value,
/// mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput basis for a benchmark, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of bytes processed per iteration.
    Bytes(u64),
    /// Number of logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier composed of a function name and a parameter,
/// mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function_name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    measure_for: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly for the measurement window, recording the
    /// total elapsed time and iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Brief warmup so one-time lazy work is off the clock.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measure_for {
                self.iters_done = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }
}

fn format_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    full_id: &str,
    throughput: Option<Throughput>,
    measure_for: Duration,
    mut routine: F,
) {
    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        measure_for,
    };
    routine(&mut bencher);
    if bencher.iters_done == 0 {
        // The closure never called `iter`; nothing to report.
        println!("{full_id:<50} (no measurement)");
        return;
    }
    let mean_nanos = bencher.elapsed.as_nanos() as f64 / bencher.iters_done as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(" ({:.1} MiB/s)", n as f64 / mean_nanos * 953.674),
        Throughput::Elements(n) => {
            format!(" ({:.1} Melem/s)", n as f64 / mean_nanos * 1_000.0)
        }
    });
    println!(
        "{:<50} time: {:>12}{}   [{} iters]",
        full_id,
        format_time(mean_nanos),
        rate.unwrap_or_default(),
        bencher.iters_done,
    );
}

/// A set of related benchmarks sharing a name prefix and throughput basis.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the throughput basis used to derive a rate for subsequent
    /// benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark named `id` within the group.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        routine: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            run_one(&full, self.throughput, self.criterion.measure_for, routine);
        }
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut routine: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            run_one(&full, self.throughput, self.criterion.measure_for, |b| {
                routine(b, input);
            });
        }
        self
    }

    /// Finishes the group (a no-op in the stub; reports are printed as each
    /// benchmark completes).
    pub fn finish(self) {}
}

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    measure_for: Duration,
    filter: Option<String>,
    exact: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters by id, as in real criterion,
        // and `-- <id> --exact` requires the id to match exactly (the form
        // CI uses to pin one benchmark). Bare flags (e.g. `--bench`, which
        // cargo appends) are not filters.
        let args: Vec<String> = std::env::args().skip(1).collect();
        let filter = args.iter().find(|arg| !arg.starts_with('-')).cloned();
        let exact = args.iter().any(|arg| arg == "--exact");
        // Short window: the stub reports a mean, not a distribution, so a
        // long sampling phase buys nothing.
        Self {
            measure_for: Duration::from_millis(300),
            filter,
            exact,
        }
    }
}

impl Criterion {
    /// Sets the wall-clock measurement window per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measure_for = duration;
        self
    }

    fn matches(&self, id: &str) -> bool {
        match self.filter.as_deref() {
            None => true,
            Some(f) if self.exact => id == f,
            Some(f) => id.contains(f),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        if self.matches(id) {
            run_one(id, None, self.measure_for, routine);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            throughput: None,
        }
    }
}

/// Collects benchmark functions into a runnable group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Emits a `main` that runs each benchmark group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("param", 8), &8u32, |b, &n| {
            b.iter(|| black_box(n) * 2);
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("cap", 12).to_string(), "cap/12");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn substring_filter_matches_contained_ids() {
        let c = Criterion {
            measure_for: Duration::from_millis(1),
            filter: Some("tiny_cnn".into()),
            exact: false,
        };
        assert!(c.matches("functional/tiny_cnn_end_to_end"));
        assert!(c.matches("tiny_cnn"));
        assert!(!c.matches("functional/conv3x3"));
    }

    #[test]
    fn exact_filter_requires_full_id_match() {
        let c = Criterion {
            measure_for: Duration::from_millis(1),
            filter: Some("functional/tiny_cnn_end_to_end".into()),
            exact: true,
        };
        assert!(c.matches("functional/tiny_cnn_end_to_end"));
        assert!(
            !c.matches("functional/tiny_cnn_end_to_end_threaded"),
            "--exact must not match by substring"
        );
        assert!(!c.matches("tiny_cnn"));
    }

    #[test]
    fn exact_without_filter_matches_everything() {
        let c = Criterion {
            measure_for: Duration::from_millis(1),
            filter: None,
            exact: true,
        };
        assert!(c.matches("anything/at_all"));
    }
}
