//! Minimal, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses: [`rngs::SmallRng`], [`RngCore`], [`SeedableRng`]
//! and the [`Rng`] extension trait (`gen`, `gen_range`, `fill_bytes`).
//!
//! The workspace only needs *seeded, deterministic* pseudo-randomness (the
//! Neural Cache reproduction synthesizes weights; its schedules and cycle
//! counts are data-independent), so the generator does not have to be
//! stream-compatible with upstream `rand` — it only has to be a decent,
//! reproducible PRNG. `SmallRng` here is xoshiro256++ seeded via splitmix64,
//! the same construction upstream `rand` 0.8 uses on 64-bit targets.
//!
//! Vendored because the build environment has no network access to a cargo
//! registry; see the workspace README.

#![warn(missing_docs)]
// The `impl_sample_range_int` macro widens every integer type through
// i128 with `as` casts on purpose (one arm serves signed and unsigned
// alike); `From` is not implemented for all of them.
#![allow(clippy::cast_lossless, clippy::must_use_candidate)]

/// The core of a random number generator: raw integer output and byte fill.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array for the provided generators).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64 —
    /// mirrors `rand::SeedableRng::seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from the generator's raw output via
/// [`Rng::gen`] (the subset of the `Standard` distribution we need).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                ((self.start as i128) + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128) | ((rng.next_u32() as u128) << 64)) % span;
                ((lo as i128) + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable PRNG (xoshiro256++), mirroring
    /// `rand::rngs::SmallRng` on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-800..800);
            assert!((-800..800).contains(&v));
            let u: u64 = rng.gen_range(0..=15);
            assert!(u <= 15);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
