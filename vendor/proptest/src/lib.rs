//! Minimal, offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses: the [`proptest!`] test macro, `prop_assert*` macros,
//! [`strategy::Strategy`] implemented for integer ranges, [`prelude::any`]
//! and [`collection::vec`], plus [`test_runner::ProptestConfig`].
//!
//! Semantics are simplified relative to upstream: strategies are pure
//! generators (no shrinking, no persisted failure seeds) and `prop_assert*`
//! panics immediately instead of recording a failure for minimization. Every
//! test still runs `cases` random inputs from a deterministic per-test seed,
//! so failures are reproducible run-to-run.
//!
//! Vendored because the build environment has no network access to a cargo
//! registry; see the workspace README.

#![warn(missing_docs)]

pub use rand;

/// Test-runner configuration, mirroring `proptest::test_runner::Config`.
pub mod test_runner {
    /// Configuration for how many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random input cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random inputs per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// The RNG handed to strategies by the [`crate::proptest!`] runner.
    pub type TestRng = SmallRng;

    /// A recipe for generating random values of an output type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_strategy_for_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`crate::prelude::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    /// Types with a canonical "anything" strategy, mirroring
    /// `proptest::arbitrary::Arbitrary`.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::{Strategy, TestRng};

    /// Strategy for a `Vec` of `len` values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `Vec`s of exactly `len` elements from `element`.
    ///
    /// Upstream accepts any `Into<SizeRange>`; the workspace only uses fixed
    /// lengths, so that is all the stub supports.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The canonical strategy for "any value of type `T`".
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

#[doc(hidden)]
pub mod __runner {
    use rand::SeedableRng;

    pub use crate::strategy::TestRng;

    /// Deterministic per-test RNG: seeded from the property name so each
    /// property sees a stable input sequence across runs.
    #[must_use]
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(seed)
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (
        @impl ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::__runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property; panics with the case's inputs on
/// failure (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0u64..=5, flag in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
            prop_assert_eq!(u8::from(flag) <= 1, true);
        }

        #[test]
        fn vec_strategy_has_fixed_len(v in crate::collection::vec(0u64..=255, 16)) {
            prop_assert_eq!(v.len(), 16);
            prop_assert!(v.iter().all(|&x| x <= 255));
        }
    }
}
