//! Property-based equivalence tests: every bit-serial operation must agree
//! with ordinary scalar arithmetic on random vectors, widths and layouts.

// Lane loops here index several parallel value vectors *and* poke/peek the
// array by the same lane id; the div property spells out the zero-divisor
// saturation rule next to the plain `/`/`%` it mirrors. Neither reads better
// through iterators or `checked_div`.
#![allow(clippy::needless_range_loop, clippy::manual_checked_ops)]

use nc_sram::{ComputeArray, Operand, Predicate, COLS};
use proptest::prelude::*;

fn arr() -> ComputeArray {
    ComputeArray::with_zero_row(255).unwrap()
}

/// Strategy for a vector of `n`-bit lane values occupying all 256 lanes.
fn lanes(bits: usize) -> impl Strategy<Value = Vec<u64>> {
    let max = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    proptest::collection::vec(0..=max, COLS)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn add_matches_scalar(bits in 1usize..16, a in lanes(15), b in lanes(15)) {
        let mask = (1u64 << bits) - 1;
        let mut arr = arr();
        let va = Operand::new(0, bits).unwrap();
        let vb = Operand::new(16, bits).unwrap();
        let sum = Operand::new(32, bits + 1).unwrap();
        for lane in 0..COLS {
            arr.poke_lane(lane, va, a[lane] & mask);
            arr.poke_lane(lane, vb, b[lane] & mask);
        }
        let d = arr.add(va, vb, sum).unwrap();
        prop_assert_eq!(d.compute_cycles, bits as u64 + 1);
        for lane in 0..COLS {
            prop_assert_eq!(arr.peek_lane(lane, sum), (a[lane] & mask) + (b[lane] & mask));
        }
    }

    #[test]
    fn add_assign_matches_scalar(acc in lanes(24), x in lanes(16)) {
        let mut arr = arr();
        let vacc = Operand::new(0, 24).unwrap();
        let vx = Operand::new(24, 16).unwrap();
        for lane in 0..COLS {
            arr.poke_lane(lane, vacc, acc[lane]);
            arr.poke_lane(lane, vx, x[lane]);
        }
        arr.add_assign(vacc, vx).unwrap();
        for lane in 0..COLS {
            prop_assert_eq!(arr.peek_lane(lane, vacc), (acc[lane] + x[lane]) & 0xFF_FFFF);
        }
    }

    #[test]
    fn sub_matches_scalar(a in lanes(12), b in lanes(12)) {
        let mut arr = arr();
        let va = Operand::new(0, 12).unwrap();
        let vb = Operand::new(12, 12).unwrap();
        let dst = Operand::new(24, 12).unwrap();
        let scratch = Operand::new(40, 12).unwrap();
        for lane in 0..COLS {
            arr.poke_lane(lane, va, a[lane]);
            arr.poke_lane(lane, vb, b[lane]);
        }
        arr.sub(va, vb, dst, scratch).unwrap();
        for lane in 0..COLS {
            prop_assert_eq!(
                arr.peek_lane(lane, dst),
                a[lane].wrapping_sub(b[lane]) & 0xFFF
            );
            prop_assert_eq!(arr.carry().get(lane), a[lane] >= b[lane]);
        }
    }

    #[test]
    fn mul_matches_scalar(a in lanes(8), b in lanes(8)) {
        let mut arr = arr();
        let va = Operand::new(0, 8).unwrap();
        let vb = Operand::new(8, 8).unwrap();
        let prod = Operand::new(16, 16).unwrap();
        for lane in 0..COLS {
            arr.poke_lane(lane, va, a[lane]);
            arr.poke_lane(lane, vb, b[lane]);
        }
        arr.mul(va, vb, prod).unwrap();
        for lane in 0..COLS {
            prop_assert_eq!(arr.peek_lane(lane, prod), a[lane] * b[lane]);
        }
    }

    #[test]
    fn mul_scalar_matches(a in lanes(8), k in 0u64..1u64 << 16) {
        let mut arr = arr();
        let va = Operand::new(0, 8).unwrap();
        let prod = Operand::new(8, 24).unwrap();
        for lane in 0..COLS {
            arr.poke_lane(lane, va, a[lane]);
        }
        arr.mul_scalar(va, k, prod).unwrap();
        for lane in 0..COLS {
            prop_assert_eq!(arr.peek_lane(lane, prod), a[lane] * k);
        }
    }

    #[test]
    fn div_matches_scalar(num in lanes(10), den in lanes(6)) {
        let mut arr = arr();
        let vn = Operand::new(0, 10).unwrap();
        let vd = Operand::new(10, 6).unwrap();
        let vq = Operand::new(16, 10).unwrap();
        let vr = Operand::new(26, 7).unwrap();
        let vt = Operand::new(33, 7).unwrap();
        let vc = Operand::new(40, 7).unwrap();
        for lane in 0..COLS {
            arr.poke_lane(lane, vn, num[lane]);
            arr.poke_lane(lane, vd, den[lane]);
        }
        arr.div(vn, vd, vq, vr, vt, vc).unwrap();
        for lane in 0..COLS {
            if den[lane] == 0 {
                prop_assert_eq!(arr.peek_lane(lane, vq), 1023, "zero divisor saturates");
            } else {
                prop_assert_eq!(arr.peek_lane(lane, vq), num[lane] / den[lane]);
                prop_assert_eq!(arr.peek_lane(lane, vr), num[lane] % den[lane]);
            }
        }
    }

    #[test]
    fn max_min_match_scalar(acc in lanes(8), x in lanes(8)) {
        let mut arr = arr();
        let vacc = Operand::new(0, 8).unwrap();
        let vx = Operand::new(8, 8).unwrap();
        let vs = Operand::new(16, 8).unwrap();
        for lane in 0..COLS {
            arr.poke_lane(lane, vacc, acc[lane]);
            arr.poke_lane(lane, vx, x[lane]);
        }
        arr.max_assign(vacc, vx, vs, 250).unwrap();
        for lane in 0..COLS {
            prop_assert_eq!(arr.peek_lane(lane, vacc), acc[lane].max(x[lane]));
        }
        for lane in 0..COLS {
            arr.poke_lane(lane, vacc, acc[lane]);
        }
        arr.min_assign(vacc, vx, vs, 250).unwrap();
        for lane in 0..COLS {
            prop_assert_eq!(arr.peek_lane(lane, vacc), acc[lane].min(x[lane]));
        }
    }

    #[test]
    fn relu_matches_scalar(x in lanes(16)) {
        let mut arr = arr();
        let vx = Operand::new(0, 16).unwrap();
        for lane in 0..COLS {
            arr.poke_lane(lane, vx, x[lane]);
        }
        arr.relu(vx).unwrap();
        for lane in 0..COLS {
            let signed = (x[lane] as i64) - if x[lane] >> 15 & 1 == 1 { 1 << 16 } else { 0 };
            let want = if signed < 0 { 0 } else { signed };
            prop_assert_eq!(arr.peek_lane_signed(lane, vx), want);
        }
    }

    #[test]
    fn reduce_sum_matches_scalar(values in lanes(16), lanes_pow in 0usize..9) {
        let n = 1usize << lanes_pow;
        let mut arr = arr();
        let value = Operand::new(0, 32).unwrap();
        let scratch = Operand::new(32, 32).unwrap();
        for lane in 0..COLS {
            arr.poke_lane(lane, value, values[lane]);
        }
        arr.reduce_sum(value, scratch, n).unwrap();
        let expected: u64 = values[..n].iter().sum();
        prop_assert_eq!(arr.peek_lane(0, value), expected);
    }

    #[test]
    fn add_scalar_signed_matches(x in lanes(31), k in -(1i64 << 30)..(1i64 << 30)) {
        let mut arr = arr();
        let vx = Operand::new(0, 32).unwrap();
        for lane in 0..4 {
            arr.poke_lane(lane, vx, x[lane]);
        }
        arr.add_scalar_signed(vx, k).unwrap();
        for lane in 0..4 {
            let expected = (x[lane] as i64 + k) & 0xFFFF_FFFF;
            prop_assert_eq!(arr.peek_lane(lane, vx) as i64, expected);
        }
    }

    #[test]
    fn predicated_copy_only_touches_tagged_lanes(src in lanes(8), dst in lanes(8), tags in proptest::collection::vec(any::<bool>(), COLS)) {
        let mut arr = arr();
        let vsrc = Operand::new(0, 8).unwrap();
        let vdst = Operand::new(8, 8).unwrap();
        let vtag = Operand::new(16, 1).unwrap();
        for lane in 0..COLS {
            arr.poke_lane(lane, vsrc, src[lane]);
            arr.poke_lane(lane, vdst, dst[lane]);
            arr.poke_lane(lane, vtag, u64::from(tags[lane]));
        }
        arr.op_load_tag(16).unwrap();
        arr.copy(vsrc, vdst, Predicate::Tag).unwrap();
        for lane in 0..COLS {
            let want = if tags[lane] { src[lane] } else { dst[lane] };
            prop_assert_eq!(arr.peek_lane(lane, vdst), want);
        }
    }

    #[test]
    fn search_eq_scalar_matches(values in lanes(8), needle in 0u64..256) {
        let mut arr = arr();
        let v = Operand::new(0, 8).unwrap();
        for lane in 0..COLS {
            arr.poke_lane(lane, v, values[lane]);
        }
        arr.search_eq_scalar(v, needle).unwrap();
        for lane in 0..COLS {
            prop_assert_eq!(arr.tag().get(lane), values[lane] == needle);
        }
    }
}
