//! Bit-line computing SRAM arrays for the Neural Cache (ISCA 2018) reproduction.
//!
//! An 8KB cache SRAM array (256 word lines x 256 bit lines) is re-purposed as
//! a 256-lane bit-serial vector unit. The hardware primitive, taken from the
//! Jeloka et al. 28nm test chip and the Compute Cache architecture, is the
//! simultaneous activation of **two** word lines: sensing the bit line yields
//! the `AND` of the two stored bits, sensing the bit-line complement yields
//! their `NOR`. A small column peripheral (two single-ended sense amplifiers,
//! an XOR gate, a carry latch `C`, a tag latch `T`, and a 4:1 write-back mux
//! whose driver is gated by the tag) turns that primitive into full bit-serial
//! arithmetic over *transposed* operands: every bit of a data element lives on
//! the same bit line, one element per column, and an n-bit operation is a
//! sequence of single-cycle row operations applied to all 256 columns at once.
//!
//! The crate provides:
//!
//! - [`SramArray`]: raw 256x256 bit storage with the two-row activation
//!   primitive and the data-corruption rule (compute ops may activate at most
//!   two rows; plain reads/writes activate one).
//! - [`ComputeArray`]: the array plus column peripherals and cycle/energy
//!   accounting. Micro-ops cost exactly one cycle; high-level bit-serial
//!   operations (`add`, `sub`, `mul`, `div`, `max`, `relu`, tree reduction,
//!   predicated copies, scalar broadcasts, equality search) are built from
//!   micro-ops, so their cycle counts are *derived*, not asserted.
//! - [`Operand`]: a transposed operand descriptor (base row + bit width).
//! - [`TransposeUnit`]: the 8T-SRAM transpose memory unit (TMU) that converts
//!   between bit-parallel and transposed layouts.
//! - [`stats`]: cycle statistics and the paper's per-cycle timing/energy
//!   constants (1022 ps compute cycle, 15.4 pJ/compute cycle at 22 nm, ...).
//! - [`area`]: the Figure-12 area model (7.5% array overhead, TMU and control
//!   FSM areas).
//!
//! # Example
//!
//! ```
//! use nc_sram::{ComputeArray, Operand};
//!
//! let mut array = ComputeArray::new();
//! let a = Operand::new(0, 8)?;
//! let b = Operand::new(8, 8)?;
//! let sum = Operand::new(16, 9)?;
//!
//! // Lane 3 computes 100 + 55; every other lane computes its own values.
//! array.poke_lane(3, a, 100);
//! array.poke_lane(3, b, 55);
//! array.add(a, b, sum)?;
//! assert_eq!(array.peek_lane(3, sum), 155);
//! // Addition of n-bit operands takes n + 1 cycles (paper Section III-B).
//! assert_eq!(array.stats().compute_cycles, 9);
//! # Ok::<(), nc_sram::SramError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::pedantic)]
// Pedantic allowlist: cycle/energy accounting converts u64 counters to f64
// for ratios (precision loss is fine at simulator scale), peek/poke helpers
// reinterpret two's-complement values, doc panics are internal invariant
// asserts, and several validators take &self only for API symmetry.
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::missing_panics_doc,
    clippy::unused_self,
    clippy::float_cmp,
    clippy::many_single_char_names
)]

pub mod area;
mod bitrow;
mod compute;
mod error;
mod operand;
pub mod ops;
mod pool;
mod sram;
pub mod stats;
mod transpose;

pub use bitrow::BitRow;
pub use compute::{ComputeArray, Predicate};
pub use error::SramError;
pub use operand::Operand;
pub use pool::{ArrayPool, PoolStats, PooledArray};
pub use sram::SramArray;
pub use stats::{ArrayEnergy, ArrayTimings, CycleStats, ValueStats};
pub use transpose::{TransposeUnit, TMU_TILE_DIM};

// Compile-time Send/Sync audit: sharded execution engines move arrays into
// worker threads and share one pool between them, so these bounds are part
// of the crate's public contract — a field change that loses them (e.g. an
// Rc or raw pointer) must fail the build here rather than in a downstream
// crate.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<ComputeArray>();
    assert_send::<SramArray>();
    assert_send_sync::<BitRow>();
    assert_send_sync::<CycleStats>();
    assert_send_sync::<Operand>();
    assert_send_sync::<ArrayPool>();
    assert_send::<PooledArray<'static>>();
};

/// Number of word lines (rows) in one 8KB compute SRAM array.
pub const ROWS: usize = 256;

/// Number of bit lines (columns, i.e. SIMD lanes) in one 8KB compute array.
pub const COLS: usize = 256;

/// Number of 64-bit words backing one [`BitRow`].
pub(crate) const ROW_WORDS: usize = COLS / 64;

/// Convenient alias for results returned by fallible array operations.
pub type Result<T> = std::result::Result<T, SramError>;
