//! Transpose Memory Unit (TMU): the 8T-SRAM gateway between bit-parallel and
//! transposed layouts (Section III-F, Figure 8).
//!
//! A TMU is a small SRAM array whose 8T bit cells can be read and written in
//! both the horizontal and the vertical direction. Data arriving from the
//! interconnect in the conventional element-per-row layout is written
//! horizontally and read out vertically as bit slices ready for the compute
//! arrays — or vice versa when results leave the cache. A few TMUs placed in
//! the cache-control box saturate the available interconnect bandwidth.

use std::fmt;

use crate::{BitRow, CycleStats, Result, SramError, COLS};

/// Width (elements) and height (bits) of one hardware TMU tile.
///
/// The Figure 8 design is drawn as an 8T array sized for byte elements; we
/// model a 64x64-bit tile (64 elements of up to 64 bits), matching the
/// 64-bit quadrant buses that feed it.
pub const TMU_TILE_DIM: usize = 64;

/// A transpose memory unit converting between bit-parallel and transposed
/// data layouts.
///
/// # Examples
///
/// ```
/// use nc_sram::TransposeUnit;
///
/// let mut tmu = TransposeUnit::new(8);
/// let elements = [1u64, 2, 3, 250];
/// tmu.load_regular(&elements)?;
/// // Bit-slice 1 holds the second bit of every element: 0,1,1,1.
/// let slice = tmu.read_bit_slice(1)?;
/// assert_eq!((0..4).map(|i| u8::from(slice.get(i))).collect::<Vec<_>>(), vec![0, 1, 1, 1]);
/// # Ok::<(), nc_sram::SramError>(())
/// ```
#[derive(Clone)]
pub struct TransposeUnit {
    bits_per_element: usize,
    /// cells[element][bit]
    cells: Vec<u64>,
    elements: usize,
    stats: CycleStats,
}

impl TransposeUnit {
    /// Creates a TMU handling elements of `bits_per_element` bits (1..=64).
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_element` is 0 or exceeds 64.
    #[must_use]
    pub fn new(bits_per_element: usize) -> Self {
        assert!(
            (1..=64).contains(&bits_per_element),
            "TMU element width must be 1..=64 bits"
        );
        TransposeUnit {
            bits_per_element,
            cells: vec![0; COLS],
            elements: 0,
            stats: CycleStats::new(),
        }
    }

    /// Element width this TMU was configured for.
    #[must_use]
    pub fn bits_per_element(&self) -> usize {
        self.bits_per_element
    }

    /// Number of elements currently loaded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.elements
    }

    /// Returns `true` when no elements are loaded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elements == 0
    }

    /// Access-cycle statistics of this unit.
    #[must_use]
    pub fn stats(&self) -> CycleStats {
        self.stats
    }

    /// Loads up to 256 elements in the regular (bit-parallel) direction,
    /// one access cycle per element row.
    ///
    /// # Errors
    ///
    /// Fails if more than 256 elements are supplied or an element overflows
    /// the configured width.
    pub fn load_regular(&mut self, elements: &[u64]) -> Result<()> {
        if elements.len() > COLS {
            return Err(SramError::ColOutOfRange {
                col: elements.len(),
            });
        }
        let max = if self.bits_per_element == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits_per_element) - 1
        };
        for (i, &e) in elements.iter().enumerate() {
            if e > max {
                return Err(SramError::DestinationTooNarrow {
                    needed: (64 - e.leading_zeros()) as usize,
                    available: self.bits_per_element,
                });
            }
            self.cells[i] = e;
            self.stats.access_cycles += 1;
        }
        for c in self.cells.iter_mut().skip(elements.len()) {
            *c = 0;
        }
        self.elements = elements.len();
        Ok(())
    }

    /// Reads bit-slice `bit` in the transposed direction: bit `bit` of every
    /// loaded element, packed into a [`BitRow`] (element `i` on column `i`).
    /// One access cycle.
    ///
    /// # Errors
    ///
    /// Fails if `bit` exceeds the configured element width.
    pub fn read_bit_slice(&mut self, bit: usize) -> Result<BitRow> {
        if bit >= self.bits_per_element {
            return Err(SramError::RowOutOfRange { row: bit });
        }
        self.stats.access_cycles += 1;
        Ok(BitRow::from_fn(|col| (self.cells[col] >> bit) & 1 == 1))
    }

    /// Writes bit-slice `bit` in the transposed direction (one access
    /// cycle), the inverse path used when results leave the compute arrays.
    ///
    /// # Errors
    ///
    /// Fails if `bit` exceeds the configured element width.
    pub fn write_bit_slice(&mut self, bit: usize, slice: &BitRow) -> Result<()> {
        if bit >= self.bits_per_element {
            return Err(SramError::RowOutOfRange { row: bit });
        }
        for col in 0..COLS {
            let mask = 1u64 << bit;
            if slice.get(col) {
                self.cells[col] |= mask;
            } else {
                self.cells[col] &= !mask;
            }
        }
        self.elements = self.elements.max(COLS);
        self.stats.access_cycles += 1;
        Ok(())
    }

    /// Reads element `i` back in the regular direction (one access cycle).
    ///
    /// # Errors
    ///
    /// Fails if `i` exceeds 256 columns.
    pub fn read_regular(&mut self, i: usize) -> Result<u64> {
        if i >= COLS {
            return Err(SramError::ColOutOfRange { col: i });
        }
        self.stats.access_cycles += 1;
        Ok(self.cells[i])
    }

    /// Convenience: transposes a byte slice into `8` bit-slice rows in one
    /// call (used when streaming quantized inputs through the C-BOX).
    ///
    /// # Errors
    ///
    /// Fails if more than 256 bytes are supplied or the unit is not
    /// byte-configured.
    pub fn transpose_bytes(&mut self, bytes: &[u8]) -> Result<Vec<BitRow>> {
        if self.bits_per_element != 8 {
            return Err(SramError::DestinationTooNarrow {
                needed: 8,
                available: self.bits_per_element,
            });
        }
        let words: Vec<u64> = bytes.iter().map(|&b| u64::from(b)).collect();
        self.load_regular(&words)?;
        (0..8).map(|b| self.read_bit_slice(b)).collect()
    }
}

impl fmt::Debug for TransposeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TransposeUnit {{ bits_per_element: {}, elements: {} }}",
            self.bits_per_element, self.elements
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_regular_to_transposed_and_back() {
        let mut tmu = TransposeUnit::new(8);
        let data: Vec<u64> = (0..256).map(|i| (i * 7 % 256) as u64).collect();
        tmu.load_regular(&data).unwrap();
        // Reconstruct elements from bit slices.
        let slices: Vec<BitRow> = (0..8).map(|b| tmu.read_bit_slice(b).unwrap()).collect();
        for (i, &want) in data.iter().enumerate() {
            let mut got = 0u64;
            for (b, slice) in slices.iter().enumerate() {
                if slice.get(i) {
                    got |= 1 << b;
                }
            }
            assert_eq!(got, want, "element {i}");
        }
        // And back through the regular port.
        for (i, &want) in data.iter().enumerate() {
            assert_eq!(tmu.read_regular(i).unwrap(), want);
        }
    }

    #[test]
    fn write_bit_slices_then_read_regular() {
        let mut tmu = TransposeUnit::new(4);
        for bit in 0..4 {
            // Value 0b1010 on every even column, 0b0101 on odd.
            let slice = BitRow::from_fn(|c| ((0b1010 >> bit) & 1 == 1) == (c % 2 == 0));
            tmu.write_bit_slice(bit, &slice).unwrap();
        }
        assert_eq!(tmu.read_regular(0).unwrap(), 0b1010);
        assert_eq!(tmu.read_regular(1).unwrap(), 0b0101);
    }

    #[test]
    fn rejects_oversized_elements() {
        let mut tmu = TransposeUnit::new(4);
        assert!(tmu.load_regular(&[16]).is_err());
        assert!(tmu.load_regular(&[15]).is_ok());
        assert!(tmu.read_bit_slice(4).is_err());
    }

    #[test]
    fn transpose_bytes_convenience() {
        let mut tmu = TransposeUnit::new(8);
        let rows = tmu.transpose_bytes(&[0xFF, 0x00, 0xA5]).unwrap();
        assert_eq!(rows.len(), 8);
        assert!(rows[0].get(0));
        assert!(!rows[0].get(1));
        assert!(rows[0].get(2)); // 0xA5 bit 0 = 1
        assert!(!rows[1].get(2)); // 0xA5 bit 1 = 0
    }

    #[test]
    fn counts_access_cycles() {
        let mut tmu = TransposeUnit::new(8);
        tmu.load_regular(&[1, 2, 3]).unwrap();
        let _ = tmu.read_bit_slice(0).unwrap();
        assert_eq!(tmu.stats().access_cycles, 4);
    }
}
