//! Error type shared by all fallible SRAM array operations.

use std::error::Error;
use std::fmt;

/// Errors raised when validating bit-serial operations against the physical
/// constraints of a 256x256 compute SRAM array.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SramError {
    /// A row index exceeded the 256 word lines of the array.
    RowOutOfRange {
        /// Offending row index.
        row: usize,
    },
    /// A column (bit line / lane) index exceeded the 256 bit lines.
    ColOutOfRange {
        /// Offending column index.
        col: usize,
    },
    /// An operand would extend past the last word line.
    OperandOutOfRange {
        /// First row of the operand.
        base: usize,
        /// Bit width of the operand.
        bits: usize,
    },
    /// An operand was declared with zero bits.
    EmptyOperand,
    /// Two operands overlap in a way the micro-op sequence cannot tolerate
    /// (partial overlap; exact aliasing is allowed where documented).
    OverlappingOperands {
        /// Human-readable description of the conflicting operands.
        what: &'static str,
    },
    /// Destination operand is too narrow to hold the result.
    DestinationTooNarrow {
        /// Bits required by the result.
        needed: usize,
        /// Bits available in the destination.
        available: usize,
    },
    /// A compute micro-op attempted to activate the same word line twice.
    ///
    /// The test-chip guarantees no data corruption for simultaneous
    /// activation of *distinct* word lines; activating one row against itself
    /// is meaningless in the analog sensing scheme.
    SelfActivation {
        /// The row that was activated against itself.
        row: usize,
    },
    /// The operation requires the array's dedicated all-zero row, but none
    /// was configured via [`ComputeArray::set_zero_row`].
    ///
    /// [`ComputeArray::set_zero_row`]: crate::ComputeArray::set_zero_row
    MissingZeroRow,
    /// An operation would overwrite the configured all-zero row.
    ZeroRowClobbered {
        /// Row index of the configured zero row.
        row: usize,
    },
    /// The reduction tree requires a power-of-two lane count.
    NonPowerOfTwoLanes {
        /// Number of lanes requested.
        lanes: usize,
    },
    /// Division by a zero divisor was requested on at least one active lane.
    DivisionByZero {
        /// First lane with a zero divisor.
        lane: usize,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramError::RowOutOfRange { row } => {
                write!(f, "row {row} exceeds the 256 word lines of the array")
            }
            SramError::ColOutOfRange { col } => {
                write!(f, "column {col} exceeds the 256 bit lines of the array")
            }
            SramError::OperandOutOfRange { base, bits } => write!(
                f,
                "operand spanning rows {base}..{} does not fit in 256 word lines",
                base + bits
            ),
            SramError::EmptyOperand => write!(f, "operand must be at least one bit wide"),
            SramError::OverlappingOperands { what } => {
                write!(f, "operands overlap: {what}")
            }
            SramError::DestinationTooNarrow { needed, available } => write!(
                f,
                "destination holds {available} bits but the result needs {needed}"
            ),
            SramError::SelfActivation { row } => {
                write!(f, "compute cycle activated word line {row} against itself")
            }
            SramError::MissingZeroRow => {
                write!(
                    f,
                    "operation requires a dedicated all-zero row; none configured"
                )
            }
            SramError::ZeroRowClobbered { row } => {
                write!(f, "operation would overwrite the dedicated zero row {row}")
            }
            SramError::NonPowerOfTwoLanes { lanes } => {
                write!(
                    f,
                    "tree reduction requires a power-of-two lane count, got {lanes}"
                )
            }
            SramError::DivisionByZero { lane } => {
                write!(f, "division by zero on lane {lane}")
            }
        }
    }
}

impl Error for SramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            SramError::RowOutOfRange { row: 300 },
            SramError::EmptyOperand,
            SramError::MissingZeroRow,
            SramError::DivisionByZero { lane: 3 },
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SramError>();
    }
}
