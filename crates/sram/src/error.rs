//! Error type shared by all fallible SRAM array operations.

use std::error::Error;
use std::fmt;

/// Errors raised when validating bit-serial operations against the physical
/// constraints of a 256x256 compute SRAM array.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SramError {
    /// A row index exceeded the 256 word lines of the array.
    RowOutOfRange {
        /// Offending row index.
        row: usize,
    },
    /// A column (bit line / lane) index exceeded the 256 bit lines.
    ColOutOfRange {
        /// Offending column index.
        col: usize,
    },
    /// An operand would extend past the last word line.
    OperandOutOfRange {
        /// First row of the operand.
        base: usize,
        /// Bit width of the operand.
        bits: usize,
    },
    /// An operand was declared with zero bits.
    EmptyOperand,
    /// Two operands overlap in a way the micro-op sequence cannot tolerate
    /// (partial overlap; exact aliasing is allowed where documented).
    OverlappingOperands {
        /// Human-readable description of the conflicting operands.
        what: &'static str,
    },
    /// Destination operand is too narrow to hold the result.
    DestinationTooNarrow {
        /// Bits required by the result.
        needed: usize,
        /// Bits available in the destination.
        available: usize,
    },
    /// A compute micro-op attempted to activate the same word line twice.
    ///
    /// The test-chip guarantees no data corruption for simultaneous
    /// activation of *distinct* word lines; activating one row against itself
    /// is meaningless in the analog sensing scheme.
    SelfActivation {
        /// The row that was activated against itself.
        row: usize,
    },
    /// The operation requires the array's dedicated all-zero row, but none
    /// was configured via [`ComputeArray::set_zero_row`].
    ///
    /// [`ComputeArray::set_zero_row`]: crate::ComputeArray::set_zero_row
    MissingZeroRow,
    /// An operation would overwrite the configured all-zero row.
    ZeroRowClobbered {
        /// Row index of the configured zero row.
        row: usize,
    },
    /// The reduction tree requires a power-of-two lane count.
    NonPowerOfTwoLanes {
        /// Number of lanes requested.
        lanes: usize,
    },
    /// Division by a zero divisor was requested on at least one active lane.
    DivisionByZero {
        /// First lane with a zero divisor.
        lane: usize,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramError::RowOutOfRange { row } => {
                write!(f, "row {row} exceeds the 256 word lines of the array")
            }
            SramError::ColOutOfRange { col } => {
                write!(f, "column {col} exceeds the 256 bit lines of the array")
            }
            SramError::OperandOutOfRange { base, bits } => write!(
                f,
                "operand spanning rows {base}..{} does not fit in 256 word lines",
                base + bits
            ),
            SramError::EmptyOperand => write!(f, "operand must be at least one bit wide"),
            SramError::OverlappingOperands { what } => {
                write!(f, "operands overlap: {what}")
            }
            SramError::DestinationTooNarrow { needed, available } => write!(
                f,
                "destination holds {available} bits but the result needs {needed}"
            ),
            SramError::SelfActivation { row } => {
                write!(f, "compute cycle activated word line {row} against itself")
            }
            SramError::MissingZeroRow => {
                write!(
                    f,
                    "operation requires a dedicated all-zero row; none configured"
                )
            }
            SramError::ZeroRowClobbered { row } => {
                write!(f, "operation would overwrite the dedicated zero row {row}")
            }
            SramError::NonPowerOfTwoLanes { lanes } => {
                write!(
                    f,
                    "tree reduction requires a power-of-two lane count, got {lanes}"
                )
            }
            SramError::DivisionByZero { lane } => {
                write!(f, "division by zero on lane {lane}")
            }
        }
    }
}

impl Error for SramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            SramError::RowOutOfRange { row: 300 },
            SramError::EmptyOperand,
            SramError::MissingZeroRow,
            SramError::DivisionByZero { lane: 3 },
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SramError>();
    }

    #[test]
    fn every_variant_displays_its_payload() {
        let cases: [(SramError, &[&str]); 11] = [
            (SramError::RowOutOfRange { row: 300 }, &["row 300", "256"]),
            (
                SramError::ColOutOfRange { col: 999 },
                &["column 999", "256"],
            ),
            (
                SramError::OperandOutOfRange { base: 250, bits: 8 },
                &["rows 250..258", "256"],
            ),
            (SramError::EmptyOperand, &["at least one bit"]),
            (
                SramError::OverlappingOperands {
                    what: "mul product overlaps a factor",
                },
                &["operands overlap", "mul product overlaps a factor"],
            ),
            (
                SramError::DestinationTooNarrow {
                    needed: 17,
                    available: 16,
                },
                &["16 bits", "needs 17"],
            ),
            (SramError::SelfActivation { row: 42 }, &["word line 42"]),
            (SramError::MissingZeroRow, &["all-zero row"]),
            (SramError::ZeroRowClobbered { row: 255 }, &["zero row 255"]),
            (
                SramError::NonPowerOfTwoLanes { lanes: 12 },
                &["power-of-two", "got 12"],
            ),
            (SramError::DivisionByZero { lane: 7 }, &["lane 7"]),
        ];
        for (err, needles) in cases {
            let msg = err.to_string();
            for needle in needles {
                assert!(
                    msg.contains(needle),
                    "{err:?} display {msg:?} lacks {needle:?}"
                );
            }
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn errors_round_trip_through_the_error_paths_that_raise_them() {
        use crate::{ComputeArray, Operand, Predicate};
        // ColOutOfRange: lane moves past the last bit line.
        let mut a = ComputeArray::with_zero_row(255).unwrap();
        let v = Operand::new(0, 8).unwrap();
        let d = Operand::new(8, 8).unwrap();
        assert_eq!(
            a.move_lanes(v, d, 200, 100),
            Err(SramError::ColOutOfRange { col: 300 })
        );
        // SelfActivation: a micro-op sensing one row against itself.
        assert_eq!(
            a.op_and(3, 3, 10, Predicate::Always),
            Err(SramError::SelfActivation { row: 3 })
        );
        // ZeroRowClobbered: writing into the dedicated zero row.
        let z = Operand::new(250, 6).unwrap();
        assert_eq!(a.zero(z), Err(SramError::ZeroRowClobbered { row: 255 }));
        // NonPowerOfTwoLanes: tree reduction over 12 lanes.
        let s = Operand::new(16, 8).unwrap();
        assert_eq!(
            a.reduce_sum(v, s, 12),
            Err(SramError::NonPowerOfTwoLanes { lanes: 12 })
        );
        // MissingZeroRow: complement without a configured zero row.
        let mut bare = ComputeArray::new();
        assert_eq!(bare.not_region(v, d), Err(SramError::MissingZeroRow));
        // DestinationTooNarrow: 8+8-bit sum into 7 bits.
        let narrow = Operand::new(30, 7).unwrap();
        assert_eq!(
            a.add(v, d, narrow),
            Err(SramError::DestinationTooNarrow {
                needed: 8,
                available: 7,
            })
        );
        // OverlappingOperands: product aliasing a factor.
        let prod = Operand::new(4, 16).unwrap();
        assert!(matches!(
            a.mul(v, d, prod),
            Err(SramError::OverlappingOperands { .. })
        ));
        // DivisionByZero: broadcast division by the constant zero.
        let num = Operand::new(0, 8).unwrap();
        let quot = Operand::new(16, 8).unwrap();
        let rem = Operand::new(24, 9).unwrap();
        let trial = Operand::new(33, 9).unwrap();
        assert_eq!(
            a.div_scalar(num, 0, quot, rem, trial),
            Err(SramError::DivisionByZero { lane: 0 })
        );
    }
}
