//! Transposed operand descriptors.

use std::fmt;

use crate::{Result, SramError, ROWS};

/// A transposed operand: `bits` consecutive word lines starting at `base`.
///
/// In the transpose data layout every bit of a data element is stored on the
/// same bit line (Section III-B of the paper), so an operand is fully
/// described by its first row and its bit width; the *column* selects which
/// lane's element is meant. Row `base` holds the least-significant bit.
///
/// `Operand` is a cheap, copyable descriptor — it does not borrow the array.
///
/// # Examples
///
/// ```
/// use nc_sram::Operand;
///
/// let acc = Operand::new(32, 24)?;
/// assert_eq!(acc.row(0), 32);     // LSB row
/// assert_eq!(acc.msb_row(), 55);  // MSB row
/// // Reinterpret the top 16 bits, i.e. a right shift by 8 for free:
/// let hi = acc.slice(8, 16)?;
/// assert_eq!(hi.row(0), 40);
/// # Ok::<(), nc_sram::SramError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operand {
    base: usize,
    bits: usize,
}

impl Operand {
    /// Creates an operand descriptor after validating it against the array
    /// geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::EmptyOperand`] for zero-width operands and
    /// [`SramError::OperandOutOfRange`] when the operand would extend past
    /// the 256 word lines.
    pub fn new(base: usize, bits: usize) -> Result<Self> {
        if bits == 0 {
            return Err(SramError::EmptyOperand);
        }
        if base >= ROWS || base + bits > ROWS {
            return Err(SramError::OperandOutOfRange { base, bits });
        }
        Ok(Operand { base, bits })
    }

    /// First (least-significant) row of the operand.
    #[must_use]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Bit width of the operand.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Row holding bit `i` (bit 0 is the LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bits()`.
    #[must_use]
    pub fn row(&self, i: usize) -> usize {
        assert!(i < self.bits, "bit {i} out of range for {self}");
        self.base + i
    }

    /// Row holding the most-significant bit.
    #[must_use]
    pub fn msb_row(&self) -> usize {
        self.base + self.bits - 1
    }

    /// Reinterprets a sub-range of the operand's bits as a new operand.
    ///
    /// `slice(k, w)` views bits `k..k+w`; because rows are physical, this is
    /// a zero-cost logical right shift by `k` (used for the `>> shift` of the
    /// requantization pipeline).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::OperandOutOfRange`] if the requested bit range
    /// does not lie within this operand, or [`SramError::EmptyOperand`] for a
    /// zero-width slice.
    pub fn slice(&self, from_bit: usize, bits: usize) -> Result<Self> {
        if bits == 0 {
            return Err(SramError::EmptyOperand);
        }
        if from_bit + bits > self.bits {
            return Err(SramError::OperandOutOfRange {
                base: self.base + from_bit,
                bits,
            });
        }
        Ok(Operand {
            base: self.base + from_bit,
            bits,
        })
    }

    /// Returns `true` if the two operands share any word line.
    #[must_use]
    pub fn overlaps(&self, other: &Operand) -> bool {
        self.base < other.base + other.bits && other.base < self.base + self.bits
    }

    /// The half-open range of word lines this operand occupies
    /// (`base..base + bits`), for row-set arithmetic in static checkers.
    #[must_use]
    pub fn rows(&self) -> core::ops::Range<usize> {
        self.base..self.base + self.bits
    }

    /// Returns `true` if `row` lies inside this operand.
    #[must_use]
    pub fn contains_row(&self, row: usize) -> bool {
        (self.base..self.base + self.bits).contains(&row)
    }

    /// Largest value representable in this operand (unsigned), saturating at
    /// `u64::MAX` for operands wider than 64 bits.
    #[must_use]
    pub fn max_value(&self) -> u64 {
        if self.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rows {}..{} ({} bits)",
            self.base,
            self.base + self.bits,
            self.bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_geometry() {
        assert_eq!(Operand::new(0, 0), Err(SramError::EmptyOperand));
        assert!(matches!(
            Operand::new(250, 8),
            Err(SramError::OperandOutOfRange { .. })
        ));
        assert!(matches!(
            Operand::new(256, 1),
            Err(SramError::OperandOutOfRange { .. })
        ));
        assert!(Operand::new(248, 8).is_ok());
    }

    #[test]
    fn row_addressing() {
        let op = Operand::new(10, 8).unwrap();
        assert_eq!(op.row(0), 10);
        assert_eq!(op.row(7), 17);
        assert_eq!(op.msb_row(), 17);
        assert_eq!(op.max_value(), 255);
    }

    #[test]
    fn slicing_is_a_free_shift() {
        let op = Operand::new(100, 32).unwrap();
        let hi = op.slice(16, 16).unwrap();
        assert_eq!(hi.base(), 116);
        assert_eq!(hi.bits(), 16);
        assert!(op.slice(20, 16).is_err());
        assert!(op.slice(0, 0).is_err());
    }

    #[test]
    fn overlap_detection() {
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let c = Operand::new(4, 8).unwrap();
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(a.contains_row(7));
        assert!(!a.contains_row(8));
    }

    #[test]
    fn rows_range_matches_overlap_semantics() {
        let a = Operand::new(10, 8).unwrap();
        assert_eq!(a.rows(), 10..18);
        assert_eq!(a.rows().len(), a.bits());
        let b = Operand::new(17, 4).unwrap();
        // Range intersection agrees with overlaps().
        let intersects = a.rows().start < b.rows().end && b.rows().start < a.rows().end;
        assert_eq!(intersects, a.overlaps(&b));
        assert!(a.rows().all(|r| a.contains_row(r)));
    }

    #[test]
    fn wide_operand_max_value_saturates() {
        let op = Operand::new(0, 64).unwrap();
        assert_eq!(op.max_value(), u64::MAX);
    }
}
