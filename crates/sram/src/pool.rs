//! A thread-safe recycling pool of [`ComputeArray`]s.
//!
//! The functional executor stands up one fresh 8KB array per
//! MAC/reduce/assemble/requantize run — millions of 256x256-bit allocations
//! over an Inception-class execution. In hardware the arrays are of course
//! the same physical SRAM on every pass; the pool mirrors that by handing
//! out *cleared* arrays and reclaiming them when the checkout handle drops,
//! so the hot path stops paying the allocator. It is `Sync`, so the worker
//! threads of a sharded execution engine can draw from one shared pool.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{ComputeArray, Result};

/// A monotonic snapshot of one [`ArrayPool`]'s checkout/recycle events.
///
/// The counters record the pool's whole lifetime, so a caller can diff two
/// snapshots around a region of interest. `acquires` and `releases` are
/// deterministic for a given workload (each shard job checks out a fixed
/// number of arrays and its handles drop when the job ends); the
/// fresh/recycled split and the high-water mark depend on thread timing
/// and are reported for observability only. The static shard-graph
/// verifier (`nc-verify`) reconciles its predicted checkout count against
/// `acquires` — a mismatch means the executor's real work decomposition
/// drifted from the verified plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total [`ArrayPool::acquire`] calls.
    pub acquires: u64,
    /// Total handle drops that returned an array to the pool's release
    /// path (whether retained or dropped over the idle cap).
    pub releases: u64,
    /// Acquires served by constructing a fresh array.
    pub fresh: u64,
    /// Acquires served by recycling an idle array.
    pub recycled: u64,
    /// Releases discarded because the pool was at its idle cap.
    pub dropped: u64,
    /// Maximum number of simultaneously checked-out arrays observed.
    pub high_water: u64,
}

impl PoolStats {
    /// Number of arrays currently checked out (live handles).
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.acquires - self.releases
    }
}

/// Relaxed atomic event counters behind [`PoolStats`]. Relaxed ordering
/// suffices: the counters are monotone tallies read after the workers'
/// scoped join, which already synchronizes.
#[derive(Debug, Default)]
struct PoolCounters {
    acquires: AtomicU64,
    releases: AtomicU64,
    fresh: AtomicU64,
    recycled: AtomicU64,
    dropped: AtomicU64,
    high_water: AtomicU64,
}

/// A recycling pool of [`ComputeArray`]s sharing one zero-row configuration.
///
/// # Examples
///
/// ```
/// use nc_sram::{ArrayPool, Operand};
///
/// let pool = ArrayPool::with_zero_row(255)?;
/// let op = Operand::new(0, 8)?;
/// {
///     let mut arr = pool.acquire();
///     arr.poke_lane(0, op, 42);
///     assert_eq!(arr.peek_lane(0, op), 42);
/// } // handle drops: the array is cleared and returned to the pool
/// let arr = pool.acquire(); // recycled, not reallocated
/// assert_eq!(arr.peek_lane(0, op), 0);
/// # Ok::<(), nc_sram::SramError>(())
/// ```
#[derive(Debug)]
pub struct ArrayPool {
    zero_row: Option<usize>,
    free: Mutex<Vec<ComputeArray>>,
    max_idle: usize,
    counters: PoolCounters,
}

impl ArrayPool {
    /// Default cap on retained idle arrays ([`ArrayPool::max_idle`]).
    ///
    /// A bursty threaded run briefly checks out one array per in-flight
    /// shard job; without a cap every high-water-mark array would sit idle
    /// (8KB+ each) for the rest of the process. 64 comfortably covers the
    /// steady-state working set of the sharded executor (a few arrays per
    /// worker thread) while bounding retained memory to ~0.5 MB.
    pub const DEFAULT_MAX_IDLE: usize = 64;

    /// Creates an empty pool of arrays without a dedicated zero row.
    #[must_use]
    pub fn new() -> Self {
        ArrayPool {
            zero_row: None,
            free: Mutex::new(Vec::new()),
            max_idle: Self::DEFAULT_MAX_IDLE,
            counters: PoolCounters::default(),
        }
    }

    /// Creates a pool whose arrays all reserve `row` as the dedicated
    /// all-zero row (validated eagerly on a probe array).
    ///
    /// # Errors
    ///
    /// Returns [`crate::SramError::RowOutOfRange`] if `row` is out of range.
    pub fn with_zero_row(row: usize) -> Result<Self> {
        let probe = ComputeArray::with_zero_row(row)?;
        Ok(ArrayPool {
            zero_row: Some(row),
            free: Mutex::new(vec![probe]),
            max_idle: Self::DEFAULT_MAX_IDLE,
            counters: PoolCounters::default(),
        })
    }

    /// Sets the maximum number of idle arrays the pool retains; arrays
    /// released beyond the cap are dropped instead of pooled. A cap of 0
    /// disables recycling entirely.
    #[must_use]
    pub fn with_max_idle(mut self, max_idle: usize) -> Self {
        self.max_idle = max_idle;
        self
    }

    /// The current idle-retention cap.
    #[must_use]
    pub fn max_idle(&self) -> usize {
        self.max_idle
    }

    /// Checks an array out of the pool, recycling a cleared one when
    /// available and constructing a fresh one otherwise. The returned
    /// handle dereferences to [`ComputeArray`] and returns the array to the
    /// pool when dropped.
    #[must_use]
    pub fn acquire(&self) -> PooledArray<'_> {
        let recycled = self.free.lock().expect("array pool poisoned").pop();
        let c = &self.counters;
        c.acquires.fetch_add(1, Ordering::Relaxed);
        if recycled.is_some() {
            c.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            c.fresh.fetch_add(1, Ordering::Relaxed);
        }
        // Best-effort high-water mark (the two loads are not atomic
        // together; under contention the mark may lag by a few handles,
        // which is fine for an observability counter).
        let outstanding = c
            .acquires
            .load(Ordering::Relaxed)
            .saturating_sub(c.releases.load(Ordering::Relaxed));
        c.high_water.fetch_max(outstanding, Ordering::Relaxed);
        let arr = recycled.unwrap_or_else(|| self.fresh());
        PooledArray {
            arr: Some(arr),
            pool: self,
        }
    }

    /// A snapshot of the pool's lifetime checkout/recycle event counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let c = &self.counters;
        PoolStats {
            acquires: c.acquires.load(Ordering::Relaxed),
            releases: c.releases.load(Ordering::Relaxed),
            fresh: c.fresh.load(Ordering::Relaxed),
            recycled: c.recycled.load(Ordering::Relaxed),
            dropped: c.dropped.load(Ordering::Relaxed),
            high_water: c.high_water.load(Ordering::Relaxed),
        }
    }

    /// Number of idle arrays currently held by the pool.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the pool panicked while holding the lock.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.free.lock().expect("array pool poisoned").len()
    }

    fn fresh(&self) -> ComputeArray {
        match self.zero_row {
            Some(row) => ComputeArray::with_zero_row(row).expect("row validated at pool creation"),
            None => ComputeArray::new(),
        }
    }

    fn release(&self, mut arr: ComputeArray) {
        // Reset outside the lock: the 8KB clear is the expensive part and
        // must not serialize concurrent releasers (a wasted reset on an
        // over-cap array that gets dropped below is harmless).
        arr.reset();
        self.counters.releases.fetch_add(1, Ordering::Relaxed);
        let mut free = self.free.lock().expect("array pool poisoned");
        if free.len() < self.max_idle {
            free.push(arr);
        } else {
            // Drop: the pool is at its retention cap.
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Default for ArrayPool {
    fn default() -> Self {
        ArrayPool::new()
    }
}

/// A checked-out array; dereferences to [`ComputeArray`] and returns the
/// (cleared) array to its [`ArrayPool`] on drop.
#[derive(Debug)]
pub struct PooledArray<'p> {
    arr: Option<ComputeArray>,
    pool: &'p ArrayPool,
}

impl Deref for PooledArray<'_> {
    type Target = ComputeArray;
    fn deref(&self) -> &ComputeArray {
        self.arr.as_ref().expect("array present until drop")
    }
}

impl DerefMut for PooledArray<'_> {
    fn deref_mut(&mut self) -> &mut ComputeArray {
        self.arr.as_mut().expect("array present until drop")
    }
}

impl Drop for PooledArray<'_> {
    fn drop(&mut self) {
        if let Some(arr) = self.arr.take() {
            self.pool.release(arr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operand;

    #[test]
    fn recycles_instead_of_reallocating() {
        let pool = ArrayPool::with_zero_row(255).unwrap();
        assert_eq!(pool.idle(), 1, "probe array is retained");
        {
            let _a = pool.acquire();
            let _b = pool.acquire();
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 2, "both handles returned their arrays");
        {
            let _a = pool.acquire();
            assert_eq!(pool.idle(), 1, "second array stays pooled");
        }
    }

    #[test]
    fn recycled_arrays_come_back_clean() {
        let pool = ArrayPool::with_zero_row(255).unwrap();
        let op = Operand::new(0, 16).unwrap();
        {
            let mut arr = pool.acquire();
            arr.poke_lane(7, op, 0xBEEF);
            arr.preset_tag(true);
            arr.preset_carry(true);
            let other = Operand::new(16, 16).unwrap();
            let scratch = Operand::new(32, 17).unwrap();
            arr.poke_lane(7, other, 1);
            arr.add(op, other, scratch).unwrap();
            assert!(arr.stats().compute_cycles > 0);
        }
        let arr = pool.acquire();
        assert_eq!(arr.peek_lane(7, op), 0, "cells cleared");
        assert!(!arr.tag().get(7), "tag latches cleared");
        assert!(!arr.carry().get(7), "carry latches cleared");
        assert_eq!(arr.stats().total_cycles(), 0, "stats cleared");
        assert_eq!(arr.zero_row(), Some(255), "zero row preserved");
    }

    #[test]
    fn idle_retention_is_capped() {
        let pool = ArrayPool::with_zero_row(255).unwrap().with_max_idle(2);
        assert_eq!(pool.max_idle(), 2);
        {
            // A burst of 5 concurrent checkouts (high-water mark 5)...
            let _burst: Vec<_> = (0..5).map(|_| pool.acquire()).collect();
            assert_eq!(pool.idle(), 0);
        }
        // ...must not leave 5 arrays idle forever.
        assert_eq!(pool.idle(), 2, "retention capped at max_idle");
        // The pool still recycles within the cap.
        {
            let _a = pool.acquire();
            assert_eq!(pool.idle(), 1);
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn default_cap_bounds_bursty_threaded_runs() {
        let pool = ArrayPool::with_zero_row(255).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = &pool;
                scope.spawn(move || {
                    let _burst: Vec<_> = (0..32).map(|_| pool.acquire()).collect();
                });
            }
        });
        assert!(
            pool.idle() <= ArrayPool::DEFAULT_MAX_IDLE,
            "idle {} exceeds the default cap",
            pool.idle()
        );
    }

    #[test]
    fn stats_track_checkout_and_recycle_events() {
        let pool = ArrayPool::with_zero_row(255).unwrap().with_max_idle(1);
        assert_eq!(pool.stats(), PoolStats::default(), "fresh pool is silent");
        {
            let _a = pool.acquire(); // recycles the probe array
            let _b = pool.acquire(); // constructs fresh
            let s = pool.stats();
            assert_eq!(s.acquires, 2);
            assert_eq!(s.releases, 0);
            assert_eq!(s.outstanding(), 2);
            assert_eq!((s.recycled, s.fresh), (1, 1));
            assert!(s.high_water >= 2);
        }
        let s = pool.stats();
        assert_eq!(s.releases, 2, "both handles released");
        assert_eq!(s.outstanding(), 0);
        assert_eq!(s.dropped, 1, "second release exceeded the idle cap");
    }

    #[test]
    fn stats_are_deterministic_across_thread_counts() {
        // acquires/releases depend only on the job structure, not on
        // scheduling — the property the verifier's pool reconciliation
        // rests on. fresh/recycled/high_water may differ; the totals not.
        let totals: Vec<(u64, u64)> = [1usize, 4]
            .iter()
            .map(|&workers| {
                let pool = ArrayPool::with_zero_row(255).unwrap();
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        let pool = &pool;
                        scope.spawn(move || {
                            for _ in 0..(64 / workers) {
                                let _arr = pool.acquire();
                            }
                        });
                    }
                });
                let s = pool.stats();
                (s.acquires, s.releases)
            })
            .collect();
        assert_eq!(totals[0], (64, 64));
        assert_eq!(totals[0], totals[1]);
    }

    #[test]
    fn pool_without_zero_row_hands_out_plain_arrays() {
        let pool = ArrayPool::new();
        let arr = pool.acquire();
        assert_eq!(arr.zero_row(), None);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = ArrayPool::with_zero_row(255).unwrap();
        let op = Operand::new(0, 8).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let pool = &pool;
                scope.spawn(move || {
                    for i in 0..8 {
                        let mut arr = pool.acquire();
                        arr.poke_lane(0, op, (t + i) % 256);
                        assert_eq!(arr.peek_lane(0, op), (t + i) % 256);
                    }
                });
            }
        });
        assert!(pool.idle() >= 1);
    }
}
