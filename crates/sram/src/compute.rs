//! The compute array: SRAM storage + column peripherals + cycle accounting.
//!
//! This module defines the single-cycle **micro-ops** that the hardware
//! column peripheral of Figure 7 can execute. Everything more complex
//! (multi-bit add, multiply, reduction, ...) is composed from these micro-ops
//! in [`crate::ops`], so the cycle count of every high-level operation is the
//! length of its micro-op sequence — derived, not asserted.

use crate::{BitRow, CycleStats, Operand, Result, SramArray, SramError, COLS};

/// Write-back predication mode for a compute cycle.
///
/// The tag latch `T` drives the enable of the bit-line write driver
/// (Figure 7): when predicated, only columns whose tag bit is set commit the
/// result, and the carry latch update is likewise gated (`C_EN`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Predicate {
    /// Write on every column.
    #[default]
    Always,
    /// Write only on columns whose tag latch holds `1`.
    Tag,
}

/// One 8KB SRAM array augmented with the Neural Cache column peripherals.
///
/// Holds the 256x256 cell array, the per-column **carry** and **tag**
/// latches, an optional dedicated all-zero row (needed by operations that
/// must sense a complement or zero-extend an operand), and the cycle
/// counters.
///
/// # Example
///
/// ```
/// use nc_sram::{ComputeArray, Operand};
///
/// let mut array = ComputeArray::new();
/// let x = Operand::new(0, 8)?;
/// array.poke_lane(0, x, 0b1010_1010);
/// array.op_load_tag(x.msb_row())?; // tag <- MSB of x on every lane
/// assert!(array.tag().get(0));
/// # Ok::<(), nc_sram::SramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ComputeArray {
    array: SramArray,
    carry: BitRow,
    tag: BitRow,
    zero_row: Option<usize>,
    stats: CycleStats,
}

impl ComputeArray {
    /// Creates a cleared compute array with no zero row configured.
    #[must_use]
    pub fn new() -> Self {
        ComputeArray {
            array: SramArray::new(),
            carry: BitRow::zero(),
            tag: BitRow::zero(),
            zero_row: None,
            stats: CycleStats::new(),
        }
    }

    /// Creates a cleared compute array with `row` reserved as the dedicated
    /// all-zero row.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] if `row` is out of range.
    pub fn with_zero_row(row: usize) -> Result<Self> {
        let mut a = ComputeArray::new();
        a.set_zero_row(row)?;
        Ok(a)
    }

    /// Declares `row` as the dedicated all-zero row and clears it.
    ///
    /// Several bit-serial operations (complement, zero extension, tag
    /// inversion) sense an operand against a known-zero word line; the
    /// mapping layer reserves one row per array for this purpose.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] if `row` is out of range.
    pub fn set_zero_row(&mut self, row: usize) -> Result<()> {
        self.array.write_row(row, BitRow::zero())?;
        self.zero_row = Some(row);
        Ok(())
    }

    /// The configured zero row, if any.
    #[must_use]
    pub fn zero_row(&self) -> Option<usize> {
        self.zero_row
    }

    /// Cycle counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CycleStats {
        self.stats
    }

    /// Resets the cycle counters (the stored data is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CycleStats::new();
    }

    /// Restores the array to its just-constructed state: all cells cleared,
    /// carry and tag latches dropped, cycle counters zeroed. The zero-row
    /// configuration is kept (the cleared cells already satisfy it).
    ///
    /// This is how [`crate::ArrayPool`] recycles arrays between shard jobs
    /// instead of reallocating the 256x256 cell storage.
    pub fn reset(&mut self) {
        self.array.clear();
        self.carry = BitRow::zero();
        self.tag = BitRow::zero();
        self.stats = CycleStats::new();
    }

    /// Current contents of the per-column carry latches.
    #[must_use]
    pub fn carry(&self) -> &BitRow {
        &self.carry
    }

    /// Current contents of the per-column tag latches.
    #[must_use]
    pub fn tag(&self) -> &BitRow {
        &self.tag
    }

    /// Immutable access to the raw cell array.
    #[must_use]
    pub fn cells(&self) -> &SramArray {
        &self.array
    }

    // ------------------------------------------------------------------
    // Latch presets (control signals, not counted as array cycles)
    // ------------------------------------------------------------------

    /// Clears every carry latch. Latch presets are driven by the control FSM
    /// and do not occupy an array cycle.
    pub fn preset_carry(&mut self, value: bool) {
        self.carry = if value {
            BitRow::ones()
        } else {
            BitRow::zero()
        };
    }

    /// Sets every tag latch to `value` (control-FSM preset, zero cycles).
    pub fn preset_tag(&mut self, value: bool) {
        self.tag = if value {
            BitRow::ones()
        } else {
            BitRow::zero()
        };
    }

    // ------------------------------------------------------------------
    // Single-cycle compute micro-ops
    // ------------------------------------------------------------------

    /// Compute cycle: copies row `src` to row `dst` (optionally tag-gated).
    ///
    /// Compute Cache performs in-array copies in a single cycle: the source
    /// word line is sensed and the write word line stores the result back in
    /// the second half of the cycle.
    ///
    /// # Errors
    ///
    /// Propagates row-range errors and refuses to clobber the zero row.
    pub fn op_copy(&mut self, src: usize, dst: usize, pred: Predicate) -> Result<()> {
        let value = self.array.read_row(src)?;
        self.write_back(dst, value, pred)?;
        self.tick_compute();
        Ok(())
    }

    /// Compute cycle: writes the column-wise complement of `src` to `dst`.
    ///
    /// Realized by sensing `src` against the dedicated zero row: the bit-line
    /// complement then carries `!src & !0 = !src`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::MissingZeroRow`] when no zero row is configured.
    pub fn op_not(&mut self, src: usize, dst: usize, pred: Predicate) -> Result<()> {
        let zero = self.require_zero_row()?;
        let out = self.array.sense(src, zero)?.nor;
        self.write_back(dst, out, pred)?;
        self.tick_compute();
        Ok(())
    }

    /// Compute cycle: `dst <- a AND b` (bit-line output of a two-row sense).
    ///
    /// # Errors
    ///
    /// Propagates sensing and write-back errors.
    pub fn op_and(&mut self, a: usize, b: usize, dst: usize, pred: Predicate) -> Result<()> {
        let out = self.array.sense(a, b)?.and;
        self.write_back(dst, out, pred)?;
        self.tick_compute();
        Ok(())
    }

    /// Compute cycle: `dst <- a NOR b` (bit-line-complement output).
    ///
    /// # Errors
    ///
    /// Propagates sensing and write-back errors.
    pub fn op_nor(&mut self, a: usize, b: usize, dst: usize, pred: Predicate) -> Result<()> {
        let out = self.array.sense(a, b)?.nor;
        self.write_back(dst, out, pred)?;
        self.tick_compute();
        Ok(())
    }

    /// Compute cycle: `dst <- a OR b` (complement of the NOR output).
    ///
    /// # Errors
    ///
    /// Propagates sensing and write-back errors.
    pub fn op_or(&mut self, a: usize, b: usize, dst: usize, pred: Predicate) -> Result<()> {
        let out = self.array.sense(a, b)?.nor.not();
        self.write_back(dst, out, pred)?;
        self.tick_compute();
        Ok(())
    }

    /// Compute cycle: `dst <- a XOR b` (peripheral NOR of the two sense-amp
    /// outputs).
    ///
    /// # Errors
    ///
    /// Propagates sensing and write-back errors.
    pub fn op_xor(&mut self, a: usize, b: usize, dst: usize, pred: Predicate) -> Result<()> {
        let out = self.array.sense(a, b)?.xor;
        self.write_back(dst, out, pred)?;
        self.tick_compute();
        Ok(())
    }

    /// Compute cycle: full-adder step over rows `a` and `b` with the carry
    /// latch as carry-in; writes `sum = a ^ b ^ c` to `dst` and latches
    /// `carry = a&b | (a^b)&c`.
    ///
    /// With [`Predicate::Tag`] both the write-back **and** the carry-latch
    /// update are gated per column (the `C_EN` signal of Figure 7), which is
    /// what makes predicated multiplication work.
    ///
    /// # Errors
    ///
    /// Propagates sensing and write-back errors.
    pub fn op_full_add(&mut self, a: usize, b: usize, dst: usize, pred: Predicate) -> Result<()> {
        let sensed = self.array.sense(a, b)?;
        let sum = sensed.xor.xor(&self.carry);
        let carry_out = sensed.and.or(&sensed.xor.and(&self.carry));
        self.write_back(dst, sum, pred)?;
        self.carry = match pred {
            Predicate::Always => carry_out,
            Predicate::Tag => carry_out.select(&self.carry, &self.tag),
        };
        self.tick_compute();
        Ok(())
    }

    /// Compute cycle: full-adder step where the second operand is a
    /// *broadcast constant bit* `kbit` driven from the instruction bus via
    /// the peripheral's data-in path (the same path used for external
    /// writes). Used by scalar-broadcast arithmetic such as the
    /// requantization constants of Section IV-D.
    ///
    /// # Errors
    ///
    /// Propagates row-range and write-back errors.
    pub fn op_full_add_const(
        &mut self,
        a: usize,
        kbit: bool,
        dst: usize,
        pred: Predicate,
    ) -> Result<()> {
        let ra = self.array.read_row(a)?;
        let rb = if kbit { BitRow::ones() } else { BitRow::zero() };
        let xor = ra.xor(&rb);
        let and = ra.and(&rb);
        let sum = xor.xor(&self.carry);
        let carry_out = and.or(&xor.and(&self.carry));
        self.write_back(dst, sum, pred)?;
        self.carry = match pred {
            Predicate::Always => carry_out,
            Predicate::Tag => carry_out.select(&self.carry, &self.tag),
        };
        self.tick_compute();
        Ok(())
    }

    /// Compute cycle: loads the tag latches from row `src`.
    ///
    /// # Errors
    ///
    /// Propagates row-range errors.
    pub fn op_load_tag(&mut self, src: usize) -> Result<()> {
        self.tag = self.array.read_row(src)?;
        self.tick_compute();
        Ok(())
    }

    /// Compute cycle: loads the tag latches from row `src` and reports
    /// whether **every** tag bit is zero — the tag-latch wired-NOR the
    /// paper's search accelerator uses to detect an all-miss in one cycle
    /// (Compute Caches, Section III). This is the dynamic zero-detect
    /// behind input-bit round skipping: the control FSM senses the
    /// multiplier bit-slice into the tags and the wired-NOR tells it in the
    /// same cycle whether the round can be elided. The cycle is counted in
    /// both `compute_cycles` and the dedicated
    /// [`CycleStats::detect_cycles`] counter.
    ///
    /// # Errors
    ///
    /// Propagates row-range errors.
    pub fn op_detect_zero(&mut self, src: usize) -> Result<bool> {
        self.tag = self.array.read_row(src)?;
        self.tick_compute();
        self.stats.detect_cycles += 1;
        Ok(self.tag.is_zero())
    }

    /// Compute cycle: loads the tag latches with the complement of row
    /// `src` (sensed against the zero row).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::MissingZeroRow`] when no zero row is configured.
    pub fn op_load_tag_not(&mut self, src: usize) -> Result<()> {
        let zero = self.require_zero_row()?;
        self.tag = self.array.sense(src, zero)?.nor;
        self.tick_compute();
        Ok(())
    }

    /// Compute cycle: ANDs row `src` (or its complement) into the tag
    /// latches — the accumulation step of bit-serial equality search.
    ///
    /// # Errors
    ///
    /// Complement form requires the zero row.
    pub fn op_and_tag(&mut self, src: usize, complement: bool) -> Result<()> {
        let bits = if complement {
            let zero = self.require_zero_row()?;
            self.array.sense(src, zero)?.nor
        } else {
            self.array.read_row(src)?
        };
        self.tag = self.tag.and(&bits);
        self.tick_compute();
        Ok(())
    }

    /// Compute cycle: writes the carry latches to row `dst`.
    ///
    /// # Errors
    ///
    /// Propagates write-back errors.
    pub fn op_write_carry(&mut self, dst: usize, pred: Predicate) -> Result<()> {
        let carry = self.carry;
        self.write_back(dst, carry, pred)?;
        self.tick_compute();
        Ok(())
    }

    /// Compute cycle: writes the tag latches to row `dst`.
    ///
    /// # Errors
    ///
    /// Propagates write-back errors.
    pub fn op_write_tag(&mut self, dst: usize, pred: Predicate) -> Result<()> {
        let tag = self.tag;
        self.write_back(dst, tag, pred)?;
        self.tick_compute();
        Ok(())
    }

    /// Compute cycle: writes an all-zero (or all-one) row to `dst`,
    /// optionally tag-gated. `ReLU` uses the tag-gated zero write.
    ///
    /// # Errors
    ///
    /// Propagates write-back errors.
    pub fn op_write_const(&mut self, dst: usize, bit: bool, pred: Predicate) -> Result<()> {
        let value = if bit { BitRow::ones() } else { BitRow::zero() };
        self.write_back(dst, value, pred)?;
        self.tick_compute();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Access-cycle operations (conventional reads/writes, for streaming)
    // ------------------------------------------------------------------

    /// Access cycle: conventional read of a full row (e.g. streaming data out
    /// to the intra-slice bus).
    ///
    /// # Errors
    ///
    /// Propagates row-range errors.
    pub fn access_read_row(&mut self, row: usize) -> Result<BitRow> {
        let out = self.array.read_row(row)?;
        self.tick_access();
        Ok(out)
    }

    /// Access cycle: conventional write of a full row (e.g. streaming data in
    /// from the intra-slice bus or a transpose unit).
    ///
    /// # Errors
    ///
    /// Propagates row-range errors and refuses to clobber the zero row.
    pub fn access_write_row(&mut self, row: usize, value: BitRow) -> Result<()> {
        if self.zero_row == Some(row) && !value.is_zero() {
            return Err(SramError::ZeroRowClobbered { row });
        }
        self.array.write_row(row, value)?;
        self.tick_access();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Zero-cost test/loader accessors (no cycles charged; documented)
    // ------------------------------------------------------------------

    /// Writes `value` into `lane`'s transposed operand without charging
    /// cycles. Test-harness/loader convenience: timing for data placement is
    /// accounted by the data-movement model, not per bit.
    ///
    /// # Panics
    ///
    /// Panics if the lane is out of range, the operand is narrower than the
    /// significant bits of `value`, or the operand overlaps the zero row.
    pub fn poke_lane(&mut self, lane: usize, op: Operand, value: u64) {
        assert!(lane < COLS, "lane {lane} out of range");
        if op.bits() < 64 {
            assert!(
                value <= op.max_value(),
                "value {value} does not fit in {} bits",
                op.bits()
            );
        }
        if let Some(z) = self.zero_row {
            assert!(
                !op.contains_row(z),
                "operand {op} overlaps the zero row {z}"
            );
        }
        for i in 0..op.bits() {
            let bit = if i < 64 { (value >> i) & 1 == 1 } else { false };
            self.array
                .set(op.row(i), lane, bit)
                .expect("validated operand");
        }
    }

    /// Reads `lane`'s transposed operand without charging cycles
    /// (test-harness convenience; result truncated to 64 bits).
    ///
    /// # Panics
    ///
    /// Panics if the lane is out of range.
    #[must_use]
    pub fn peek_lane(&self, lane: usize, op: Operand) -> u64 {
        assert!(lane < COLS, "lane {lane} out of range");
        let mut value = 0u64;
        for i in 0..op.bits().min(64) {
            if self.array.get(op.row(i), lane).expect("validated operand") {
                value |= 1 << i;
            }
        }
        value
    }

    /// Reads `lane`'s transposed operand as a sign-extended two's-complement
    /// integer (test-harness convenience).
    ///
    /// # Panics
    ///
    /// Panics if the lane is out of range or the operand is wider than 64
    /// bits.
    #[must_use]
    pub fn peek_lane_signed(&self, lane: usize, op: Operand) -> i64 {
        assert!(op.bits() <= 64, "operand wider than 64 bits");
        let raw = self.peek_lane(lane, op);
        let bits = op.bits();
        if bits == 64 {
            raw as i64
        } else if raw >> (bits - 1) & 1 == 1 {
            (raw as i64) - (1i64 << bits)
        } else {
            raw as i64
        }
    }

    /// Writes a two's-complement value into `lane`'s operand (test-harness
    /// convenience).
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `op.bits()` two's-complement bits.
    pub fn poke_lane_signed(&mut self, lane: usize, op: Operand, value: i64) {
        let bits = op.bits();
        assert!(bits <= 64);
        if bits < 64 {
            let lo = -(1i64 << (bits - 1));
            let hi = (1i64 << (bits - 1)) - 1;
            assert!(
                (lo..=hi).contains(&value),
                "value {value} does not fit in {bits} signed bits"
            );
        }
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        self.poke_lane(lane, op, (value as u64) & mask);
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    pub(crate) fn require_zero_row(&self) -> Result<usize> {
        self.zero_row.ok_or(SramError::MissingZeroRow)
    }

    /// Crate-internal raw access for operations that move data across bit
    /// lines (lane moves, inter-array transfers); cycle charging is the
    /// caller's responsibility via [`ComputeArray::charge_compute`].
    pub(crate) fn raw_cells_mut(&mut self) -> &mut SramArray {
        &mut self.array
    }

    pub(crate) fn charge_compute(&mut self, cycles: u64) {
        self.stats.compute_cycles += cycles;
    }

    /// Records one scheduled multiplier-bit round (dense or skipped).
    pub(crate) fn note_mul_round(&mut self) {
        self.stats.mul_rounds += 1;
    }

    /// Records one elided multiplier-bit round and the compute cycles the
    /// dense schedule would have spent on it.
    pub(crate) fn note_skipped_round(&mut self, saved_cycles: u64) {
        self.stats.skipped_rounds += 1;
        self.stats.skipped_cycles += saved_cycles;
    }

    /// Records one dynamically elided input-bit round and the compute
    /// cycles the dense schedule would have spent on it.
    pub(crate) fn note_input_round_skipped(&mut self, saved_cycles: u64) {
        self.stats.input_rounds_skipped += 1;
        self.stats.skipped_cycles += saved_cycles;
    }

    /// Records add-chain cycles elided by static multiplicand truncation
    /// (no round is skipped; the dense schedule would have executed them).
    pub(crate) fn note_truncated_cycles(&mut self, saved_cycles: u64) {
        self.stats.skipped_cycles += saved_cycles;
    }

    pub(crate) fn charge_access(&mut self, cycles: u64) {
        self.stats.access_cycles += cycles;
    }

    pub(crate) fn guard_zero_row(&self, op: &Operand) -> Result<()> {
        if let Some(z) = self.zero_row {
            if op.contains_row(z) {
                return Err(SramError::ZeroRowClobbered { row: z });
            }
        }
        Ok(())
    }

    fn write_back(&mut self, dst: usize, value: BitRow, pred: Predicate) -> Result<()> {
        if self.zero_row == Some(dst) {
            return Err(SramError::ZeroRowClobbered { row: dst });
        }
        let current = self.array.read_row(dst)?;
        let merged = match pred {
            Predicate::Always => value,
            Predicate::Tag => value.select(&current, &self.tag),
        };
        self.array.write_row(dst, merged)
    }

    fn tick_compute(&mut self) {
        self.stats.compute_cycles += 1;
    }

    fn tick_access(&mut self) {
        self.stats.access_cycles += 1;
    }
}

impl Default for ComputeArray {
    fn default() -> Self {
        ComputeArray::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> ComputeArray {
        ComputeArray::with_zero_row(255).unwrap()
    }

    #[test]
    fn poke_peek_roundtrip() {
        let mut a = arr();
        let op = Operand::new(0, 12).unwrap();
        a.poke_lane(5, op, 0xABC);
        assert_eq!(a.peek_lane(5, op), 0xABC);
        assert_eq!(a.peek_lane(6, op), 0);
        assert_eq!(a.stats().total_cycles(), 0, "poke/peek are free");
    }

    #[test]
    fn signed_roundtrip() {
        let mut a = arr();
        let op = Operand::new(0, 16).unwrap();
        for v in [-32768i64, -1, 0, 1, 32767] {
            a.poke_lane_signed(9, op, v);
            assert_eq!(a.peek_lane_signed(9, op), v);
        }
    }

    #[test]
    fn copy_costs_one_cycle() {
        let mut a = arr();
        a.poke_lane(0, Operand::new(3, 1).unwrap(), 1);
        a.op_copy(3, 10, Predicate::Always).unwrap();
        assert!(a.cells().get(10, 0).unwrap());
        assert_eq!(a.stats().compute_cycles, 1);
    }

    #[test]
    fn predicated_write_respects_tag() {
        let mut a = arr();
        // Row 0 all ones on lanes 0..4.
        for lane in 0..4 {
            a.poke_lane(lane, Operand::new(0, 1).unwrap(), 1);
        }
        // Tag set only on lanes 0 and 2 (stored in row 1).
        a.poke_lane(0, Operand::new(1, 1).unwrap(), 1);
        a.poke_lane(2, Operand::new(1, 1).unwrap(), 1);
        a.op_load_tag(1).unwrap();
        a.op_copy(0, 5, Predicate::Tag).unwrap();
        assert!(a.cells().get(5, 0).unwrap());
        assert!(!a.cells().get(5, 1).unwrap());
        assert!(a.cells().get(5, 2).unwrap());
        assert!(!a.cells().get(5, 3).unwrap());
    }

    #[test]
    fn full_add_updates_carry() {
        let mut a = arr();
        a.poke_lane(0, Operand::new(0, 1).unwrap(), 1);
        a.poke_lane(0, Operand::new(1, 1).unwrap(), 1);
        a.preset_carry(false);
        a.op_full_add(0, 1, 2, Predicate::Always).unwrap();
        // 1 + 1 + 0 = sum 0 carry 1
        assert!(!a.cells().get(2, 0).unwrap());
        assert!(a.carry().get(0));
    }

    #[test]
    fn carry_gating_under_tag() {
        let mut a = arr();
        // lanes 0 and 1 both have a=1, b=1; tag set only on lane 0.
        for lane in 0..2 {
            a.poke_lane(lane, Operand::new(0, 1).unwrap(), 1);
            a.poke_lane(lane, Operand::new(1, 1).unwrap(), 1);
        }
        a.poke_lane(0, Operand::new(2, 1).unwrap(), 1);
        a.op_load_tag(2).unwrap();
        a.preset_carry(false);
        a.op_full_add(0, 1, 3, Predicate::Tag).unwrap();
        assert!(a.carry().get(0), "tagged lane updates carry");
        assert!(!a.carry().get(1), "untagged lane keeps carry");
    }

    #[test]
    fn not_requires_zero_row() {
        let mut a = ComputeArray::new();
        assert_eq!(
            a.op_not(0, 1, Predicate::Always),
            Err(SramError::MissingZeroRow)
        );
    }

    #[test]
    fn zero_row_is_protected() {
        let mut a = arr();
        assert_eq!(
            a.op_write_const(255, true, Predicate::Always),
            Err(SramError::ZeroRowClobbered { row: 255 })
        );
        // Writing zeros through the access path is allowed (it stays zero).
        a.access_write_row(255, BitRow::zero()).unwrap();
    }

    #[test]
    fn access_cycles_are_counted_separately() {
        let mut a = arr();
        let _ = a.access_read_row(0).unwrap();
        a.access_write_row(1, BitRow::ones()).unwrap();
        assert_eq!(a.stats().access_cycles, 2);
        assert_eq!(a.stats().compute_cycles, 0);
    }
}
