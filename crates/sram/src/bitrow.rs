//! A single 256-bit word line worth of data.

use std::fmt;

use crate::{COLS, ROW_WORDS};

/// One word line (row) of a 256-column SRAM array: a fixed 256-bit vector.
///
/// Bit `i` of a `BitRow` is the cell on bit line (column) `i`. Bitwise
/// operations apply to all 256 columns at once, mirroring the SIMD nature of
/// bit-line computing.
///
/// # Examples
///
/// ```
/// use nc_sram::BitRow;
///
/// let mut row = BitRow::zero();
/// row.set(7, true);
/// assert!(row.get(7));
/// assert_eq!(row.count_ones(), 1);
/// assert_eq!(row.and(&BitRow::ones()), row);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BitRow {
    words: [u64; ROW_WORDS],
}

impl BitRow {
    /// Returns a row with every bit cleared.
    #[must_use]
    pub const fn zero() -> Self {
        BitRow {
            words: [0; ROW_WORDS],
        }
    }

    /// Returns a row with every bit set.
    #[must_use]
    pub const fn ones() -> Self {
        BitRow {
            words: [u64::MAX; ROW_WORDS],
        }
    }

    /// Builds a row by evaluating `f` for every column index.
    ///
    /// ```
    /// use nc_sram::BitRow;
    /// let evens = BitRow::from_fn(|col| col % 2 == 0);
    /// assert_eq!(evens.count_ones(), 128);
    /// ```
    #[must_use]
    pub fn from_fn(mut f: impl FnMut(usize) -> bool) -> Self {
        let mut row = BitRow::zero();
        for col in 0..COLS {
            if f(col) {
                row.set(col, true);
            }
        }
        row
    }

    /// Reads the bit stored on column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= 256`.
    #[must_use]
    #[inline]
    pub fn get(&self, col: usize) -> bool {
        assert!(col < COLS, "column {col} out of range");
        (self.words[col / 64] >> (col % 64)) & 1 == 1
    }

    /// Writes `bit` to column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= 256`.
    #[inline]
    pub fn set(&mut self, col: usize, bit: bool) {
        assert!(col < COLS, "column {col} out of range");
        let mask = 1u64 << (col % 64);
        if bit {
            self.words[col / 64] |= mask;
        } else {
            self.words[col / 64] &= !mask;
        }
    }

    /// Column-wise AND, the value sensed on the bit line during a two-row
    /// activation.
    #[must_use]
    #[inline]
    pub fn and(&self, other: &BitRow) -> BitRow {
        self.zip(other, |a, b| a & b)
    }

    /// Column-wise OR.
    #[must_use]
    #[inline]
    pub fn or(&self, other: &BitRow) -> BitRow {
        self.zip(other, |a, b| a | b)
    }

    /// Column-wise XOR, produced by the peripheral NOR gate combining the two
    /// sense-amp outputs (`A^B = !(A&B) & !(!A&!B)`).
    #[must_use]
    #[inline]
    pub fn xor(&self, other: &BitRow) -> BitRow {
        self.zip(other, |a, b| a ^ b)
    }

    /// Column-wise NOR, the value sensed on the bit-line complement during a
    /// two-row activation.
    #[must_use]
    #[inline]
    pub fn nor(&self, other: &BitRow) -> BitRow {
        self.zip(other, |a, b| !(a | b))
    }

    /// Column-wise complement.
    #[must_use]
    #[inline]
    pub fn not(&self) -> BitRow {
        let mut out = *self;
        for w in &mut out.words {
            *w = !*w;
        }
        out
    }

    /// Selects `self` where `mask` is set and `other` where it is clear.
    ///
    /// This is the tag-gated write-back behaviour: the new value lands only on
    /// columns whose bit-line driver is enabled.
    #[must_use]
    #[inline]
    pub fn select(&self, other: &BitRow, mask: &BitRow) -> BitRow {
        let mut out = BitRow::zero();
        for i in 0..ROW_WORDS {
            out.words[i] = (self.words[i] & mask.words[i]) | (other.words[i] & !mask.words[i]);
        }
        out
    }

    /// Number of set bits across all 256 columns.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Returns `true` if every bit is clear.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the 256 column bits, least column first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..COLS).map(move |c| self.get(c))
    }

    #[inline]
    fn zip(&self, other: &BitRow, f: impl Fn(u64, u64) -> u64) -> BitRow {
        let mut out = BitRow::zero();
        for i in 0..ROW_WORDS {
            out.words[i] = f(self.words[i], other.words[i]);
        }
        out
    }
}

impl fmt::Debug for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print as hex words, most-significant column group first, so the
        // representation is compact but never empty.
        write!(
            f,
            "BitRow({:016x}_{:016x}_{:016x}_{:016x})",
            self.words[3], self.words[2], self.words[1], self.words[0]
        )
    }
}

impl fmt::Binary for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for col in (0..COLS).rev() {
            write!(f, "{}", u8::from(self.get(col)))?;
        }
        Ok(())
    }
}

impl std::ops::BitAnd for BitRow {
    type Output = BitRow;
    fn bitand(self, rhs: BitRow) -> BitRow {
        self.and(&rhs)
    }
}

impl std::ops::BitOr for BitRow {
    type Output = BitRow;
    fn bitor(self, rhs: BitRow) -> BitRow {
        self.or(&rhs)
    }
}

impl std::ops::BitXor for BitRow {
    type Output = BitRow;
    fn bitxor(self, rhs: BitRow) -> BitRow {
        self.xor(&rhs)
    }
}

impl std::ops::Not for BitRow {
    type Output = BitRow;
    fn not(self) -> BitRow {
        BitRow::not(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_ones() {
        assert_eq!(BitRow::zero().count_ones(), 0);
        assert_eq!(BitRow::ones().count_ones(), COLS as u32);
        assert!(BitRow::zero().is_zero());
        assert!(!BitRow::ones().is_zero());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut row = BitRow::zero();
        for col in [0, 1, 63, 64, 127, 128, 255] {
            row.set(col, true);
            assert!(row.get(col), "col {col}");
            row.set(col, false);
            assert!(!row.get(col), "col {col}");
        }
    }

    #[test]
    fn logic_matches_column_semantics() {
        let a = BitRow::from_fn(|c| c % 2 == 0);
        let b = BitRow::from_fn(|c| c % 3 == 0);
        for c in 0..COLS {
            let (x, y) = (a.get(c), b.get(c));
            assert_eq!(a.and(&b).get(c), x && y);
            assert_eq!(a.or(&b).get(c), x || y);
            assert_eq!(a.xor(&b).get(c), x ^ y);
            assert_eq!(a.nor(&b).get(c), !(x || y));
            assert_eq!(a.not().get(c), !x);
        }
    }

    #[test]
    fn select_applies_mask_per_column() {
        let a = BitRow::ones();
        let b = BitRow::zero();
        let mask = BitRow::from_fn(|c| c < 10);
        let sel = a.select(&b, &mask);
        assert_eq!(sel.count_ones(), 10);
        for c in 0..10 {
            assert!(sel.get(c));
        }
    }

    #[test]
    fn operators_delegate() {
        let a = BitRow::from_fn(|c| c % 5 == 0);
        let b = BitRow::from_fn(|c| c % 7 == 0);
        assert_eq!(a & b, a.and(&b));
        assert_eq!(a | b, a.or(&b));
        assert_eq!(a ^ b, a.xor(&b));
        assert_eq!(!a, a.not());
    }

    #[test]
    fn debug_is_never_empty() {
        let repr = format!("{:?}", BitRow::zero());
        assert!(repr.contains("BitRow"));
        let bin = format!("{:b}", BitRow::ones());
        assert_eq!(bin.len(), COLS);
    }
}
