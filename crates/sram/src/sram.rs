//! Raw 256x256 SRAM bit storage with the two-row activation primitive.

use std::fmt;

use crate::{BitRow, Result, SramError, COLS, ROWS};

/// The analog outputs of a two-row compute activation.
///
/// During the sense phase of a compute cycle, two read word lines are raised
/// at a lowered voltage and the shared bit lines are sensed: the bit line
/// carries `A AND B`, the bit-line complement carries `(NOT A) AND (NOT B)`
/// (= `A NOR B`), and the peripheral NOR gate combines them into `A XOR B`
/// (paper Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SenseOut {
    /// Bit-line output: column-wise `A & B`.
    pub and: BitRow,
    /// Bit-line-complement output: column-wise `!(A | B)`.
    pub nor: BitRow,
    /// Peripheral-derived `A ^ B` (`!and & !nor`).
    pub xor: BitRow,
}

/// Raw storage of one 8KB compute SRAM array: 256 word lines x 256 bit lines.
///
/// `SramArray` models only the cells and the activation rules; peripherals
/// and cycle accounting live in [`ComputeArray`](crate::ComputeArray).
///
/// The fabricated test chip demonstrated corruption-free simultaneous
/// activation of up to 64 word lines, but Neural Cache (like Compute Cache)
/// only ever activates **two** during compute, and this model enforces that
/// discipline: [`SramArray::sense`] takes exactly two distinct rows.
#[derive(Clone, PartialEq, Eq)]
pub struct SramArray {
    rows: Vec<BitRow>,
}

impl SramArray {
    /// Creates an array with all cells cleared.
    #[must_use]
    pub fn new() -> Self {
        SramArray {
            rows: vec![BitRow::zero(); ROWS],
        }
    }

    /// Normal single-word-line read (a conventional SRAM access).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] for rows past the array.
    pub fn read_row(&self, row: usize) -> Result<BitRow> {
        self.check_row(row)?;
        Ok(self.rows[row])
    }

    /// Normal single-word-line write.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::RowOutOfRange`] for rows past the array.
    pub fn write_row(&mut self, row: usize, value: BitRow) -> Result<()> {
        self.check_row(row)?;
        self.rows[row] = value;
        Ok(())
    }

    /// Clears every cell (all word lines to zero) without reallocating the
    /// backing storage. Used when recycling arrays through a pool.
    pub fn clear(&mut self) {
        self.rows.fill(BitRow::zero());
    }

    /// Two-row compute activation: senses rows `a` and `b` simultaneously.
    ///
    /// The stored data is unaffected (the lowered read-word-line voltage
    /// biases against accidental writes; Section II-B).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::SelfActivation`] when `a == b` and
    /// [`SramError::RowOutOfRange`] for rows past the array.
    pub fn sense(&self, a: usize, b: usize) -> Result<SenseOut> {
        self.check_row(a)?;
        self.check_row(b)?;
        if a == b {
            return Err(SramError::SelfActivation { row: a });
        }
        let (ra, rb) = (self.rows[a], self.rows[b]);
        let and = ra.and(&rb);
        let nor = ra.nor(&rb);
        let xor = and.nor(&nor); // !(and | nor) == a ^ b
        Ok(SenseOut { and, nor, xor })
    }

    /// Reads the single bit at (`row`, `col`). Test/loader convenience.
    ///
    /// # Errors
    ///
    /// Returns an error if the row or column is out of range.
    pub fn get(&self, row: usize, col: usize) -> Result<bool> {
        self.check_row(row)?;
        if col >= COLS {
            return Err(SramError::ColOutOfRange { col });
        }
        Ok(self.rows[row].get(col))
    }

    /// Writes the single bit at (`row`, `col`). Test/loader convenience.
    ///
    /// # Errors
    ///
    /// Returns an error if the row or column is out of range.
    pub fn set(&mut self, row: usize, col: usize, bit: bool) -> Result<()> {
        self.check_row(row)?;
        if col >= COLS {
            return Err(SramError::ColOutOfRange { col });
        }
        self.rows[row].set(col, bit);
        Ok(())
    }

    fn check_row(&self, row: usize) -> Result<()> {
        if row >= ROWS {
            return Err(SramError::RowOutOfRange { row });
        }
        Ok(())
    }
}

impl Default for SramArray {
    fn default() -> Self {
        SramArray::new()
    }
}

impl fmt::Debug for SramArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let populated = self.rows.iter().filter(|r| !r.is_zero()).count();
        write!(
            f,
            "SramArray {{ rows: {ROWS}, cols: {COLS}, non_zero_rows: {populated} }}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut arr = SramArray::new();
        let row = BitRow::from_fn(|c| c % 3 == 0);
        arr.write_row(42, row).unwrap();
        assert_eq!(arr.read_row(42).unwrap(), row);
        assert!(arr.read_row(256).is_err());
        assert!(arr.write_row(256, row).is_err());
    }

    #[test]
    fn sense_produces_and_nor_xor() {
        let mut arr = SramArray::new();
        // Reproduce Figure 2b: cells {0,1} x {0,1} on four columns.
        let a = BitRow::from_fn(|c| c == 1 || c == 3);
        let b = BitRow::from_fn(|c| c == 2 || c == 3);
        arr.write_row(10, a).unwrap();
        arr.write_row(20, b).unwrap();
        let out = arr.sense(10, 20).unwrap();
        // col0: 0,0 -> and 0, nor 1, xor 0
        // col1: 1,0 -> and 0, nor 0, xor 1
        // col2: 0,1 -> and 0, nor 0, xor 1
        // col3: 1,1 -> and 1, nor 0, xor 0
        assert!(!out.and.get(0) && out.nor.get(0) && !out.xor.get(0));
        assert!(!out.and.get(1) && !out.nor.get(1) && out.xor.get(1));
        assert!(!out.and.get(2) && !out.nor.get(2) && out.xor.get(2));
        assert!(out.and.get(3) && !out.nor.get(3) && !out.xor.get(3));
    }

    #[test]
    fn sense_rejects_self_activation() {
        let arr = SramArray::new();
        assert_eq!(arr.sense(5, 5), Err(SramError::SelfActivation { row: 5 }));
    }

    #[test]
    fn sense_does_not_disturb_data() {
        let mut arr = SramArray::new();
        let a = BitRow::from_fn(|c| c % 2 == 0);
        let b = BitRow::from_fn(|c| c % 2 == 1);
        arr.write_row(0, a).unwrap();
        arr.write_row(1, b).unwrap();
        for _ in 0..100 {
            let _ = arr.sense(0, 1).unwrap();
        }
        assert_eq!(arr.read_row(0).unwrap(), a);
        assert_eq!(arr.read_row(1).unwrap(), b);
    }

    #[test]
    fn bit_granular_access() {
        let mut arr = SramArray::new();
        arr.set(7, 200, true).unwrap();
        assert!(arr.get(7, 200).unwrap());
        assert!(arr.get(7, 300).is_err());
        assert!(arr.set(300, 0, true).is_err());
    }
}
