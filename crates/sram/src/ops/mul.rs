//! Bit-serial multiplication via predicated shifted adds (Section III-C,
//! Figure 6).

use crate::{ComputeArray, CycleStats, Operand, Predicate, Result, SramError};

impl ComputeArray {
    /// Vector multiplication `prod <- a * b` on every lane.
    ///
    /// For each multiplier bit `j` (LSB first), the multiplier bit is loaded
    /// into the tag latch and the multiplicand is conditionally added into
    /// the partial product at offset `j`; the round's carry-out is stored
    /// into `prod[j + n]` (tag-gated) before the next round. This is the
    /// Figure 6 algorithm with the carry correctly committed at each round
    /// boundary.
    ///
    /// Cycle count (derived): `prod.bits()` zeroing + `m * (n + 2)` where
    /// `n = a.bits()`, `m = b.bits()`. For n = m it is `n^2 + 4n` including
    /// initialization — the paper quotes `n^2 + 5n - 2`, which matches at
    /// n = 2 (the published walkthrough) and differs by `n - 2` cycles for
    /// wider operands; see DESIGN.md §6.
    ///
    /// The tag and carry latches are clobbered.
    ///
    /// # Errors
    ///
    /// `prod` must hold at least `n + m` bits and be disjoint from both
    /// inputs; inputs must not overlap each other.
    pub fn mul(&mut self, a: Operand, b: Operand, prod: Operand) -> Result<CycleStats> {
        self.validate_mul(a, b, prod)?;
        let (n, m) = (a.bits(), b.bits());
        let before = self.stats();
        self.zero(prod)?;
        for j in 0..m {
            self.note_mul_round();
            self.mul_round(a, b, prod, j, n)?;
        }
        Ok(self.stats() - before)
    }

    /// Vector multiplication with **all-lanes-zero round elision**: a
    /// multiplier-bit round whose bit-slice row holds `0` on every lane is
    /// skipped outright instead of executing `n` predicated adds that
    /// cannot write anything (the tag latch would be all-zero, so both the
    /// write-back and the carry update are disabled on every column — the
    /// round is a functional no-op by construction).
    ///
    /// The products are **bit-identical** to [`ComputeArray::mul`]; only
    /// the cycle count changes. Elided rounds cost zero array cycles: the
    /// intended use is weight-stationary MACs where the multiplier rows are
    /// filter bit-slices, and the control FSM learns which rows are
    /// all-zero for free when the transpose unit writes them at filter-load
    /// time (paper Section VII names this sparsity opportunity as future
    /// work; `BitWave` develops the same column-wise bit-level skip).
    /// Skipped rounds are reported via [`CycleStats::skipped_rounds`] and
    /// the saved compute cycles via [`CycleStats::skipped_cycles`].
    ///
    /// # Errors
    ///
    /// Same operand constraints as [`ComputeArray::mul`].
    pub fn mul_skip_zero_rows(
        &mut self,
        a: Operand,
        b: Operand,
        prod: Operand,
    ) -> Result<CycleStats> {
        self.validate_mul(a, b, prod)?;
        let (n, m) = (a.bits(), b.bits());
        let before = self.stats();
        self.zero(prod)?;
        for j in 0..m {
            self.note_mul_round();
            if self.cells().read_row(b.row(j))?.is_zero() {
                // Dense cost of the elided round: tag load + n predicated
                // adds + carry write.
                self.note_skipped_round(n as u64 + 2);
                continue;
            }
            self.mul_round(a, b, prod, j, n)?;
        }
        Ok(self.stats() - before)
    }

    /// Vector multiplication with **dynamic input-bit round elision**: the
    /// multiplier `b` holds streamed input activations, so the control FSM
    /// cannot precompute which bit-slice rows are all-zero (unlike the
    /// stationary weights of [`ComputeArray::mul_skip_zero_rows`]). Instead
    /// every scheduled round pays a **1-cycle tag-latch wired-NOR
    /// zero-detect** ([`ComputeArray::op_detect_zero`]): the multiplier
    /// bit-slice is sensed into the tags and the wired-NOR reports whether
    /// any lane holds a `1`. A round whose slice is zero on every lane is
    /// then elided (the tag-gated adds and carry write could not change any
    /// cell); a live round executes the normal Figure 6 schedule.
    ///
    /// The products are **bit-identical** to [`ComputeArray::mul`]. Cycle
    /// accounting: every round adds one cycle to
    /// [`CycleStats::detect_cycles`] (also counted in `compute_cycles` —
    /// the model conservatively does not fuse the detect with the live
    /// round's tag load), elided rounds are counted in
    /// [`CycleStats::input_rounds_skipped`] and save `n + 2` cycles in
    /// [`CycleStats::skipped_cycles`]. Skipping therefore nets a gain only
    /// when more than ~1/(n+2) of the rounds are elidable — ReLU-sparse
    /// activations clear that bar easily; dense ones do not.
    ///
    /// # Errors
    ///
    /// Same operand constraints as [`ComputeArray::mul`].
    pub fn mul_skip_zero_input_bits(
        &mut self,
        a: Operand,
        b: Operand,
        prod: Operand,
    ) -> Result<CycleStats> {
        self.validate_mul(a, b, prod)?;
        let (n, m) = (a.bits(), b.bits());
        let before = self.stats();
        self.zero(prod)?;
        for j in 0..m {
            self.note_mul_round();
            if self.op_detect_zero(b.row(j))? {
                self.note_input_round_skipped(n as u64 + 2);
                continue;
            }
            self.mul_round(a, b, prod, j, n)?;
        }
        Ok(self.stats() - before)
    }

    /// Vector multiplication composing **both** sparsity mechanisms: the
    /// dynamic input-bit zero-detect of
    /// [`ComputeArray::mul_skip_zero_input_bits`] on the multiplier `b`
    /// (streamed activations), plus **static multiplicand truncation** on
    /// `a` (stationary weights): the FSM knows from filter-load time the
    /// highest weight bit-slice row that is live on *any* lane, and
    /// schedules only `live` predicated adds per executed round instead of
    /// `n`, committing the carry directly at `prod[j + live]`.
    ///
    /// Truncation is bit-exact: rows of `a` at and above `live` are zero on
    /// every lane, so the dense schedule's upper adds only ripple the
    /// carry-out into `prod[j + live]` (which is provably zero before round
    /// `j` — all earlier writes land strictly below it) and write zeros
    /// above; committing the carry latch there directly produces the same
    /// cells. Note this captures *contiguous top* weight-bit sparsity
    /// (low-magnitude quantization); isolated all-zero middle rows still
    /// execute, because mid-chain adds must propagate carries — eliding
    /// those requires the weights to be the multiplier, which is exactly
    /// [`ComputeArray::mul_skip_zero_rows`]'s regime.
    ///
    /// Cycle accounting: as `mul_skip_zero_input_bits`, plus
    /// `n - live` cycles per executed round are recorded in
    /// [`CycleStats::skipped_cycles`] (no round counter — the round runs,
    /// shortened).
    ///
    /// # Errors
    ///
    /// Same operand constraints as [`ComputeArray::mul`].
    pub fn mul_skip_both(&mut self, a: Operand, b: Operand, prod: Operand) -> Result<CycleStats> {
        self.validate_mul(a, b, prod)?;
        let (n, m) = (a.bits(), b.bits());
        // Highest live multiplicand bit across every lane — known to the
        // FSM for free when the transpose unit writes the filter rows.
        let mut live = 0;
        for i in (0..n).rev() {
            if !self.cells().read_row(a.row(i))?.is_zero() {
                live = i + 1;
                break;
            }
        }
        let before = self.stats();
        self.zero(prod)?;
        for j in 0..m {
            self.note_mul_round();
            if self.op_detect_zero(b.row(j))? {
                self.note_input_round_skipped(n as u64 + 2);
                continue;
            }
            self.note_truncated_cycles((n - live) as u64);
            self.op_load_tag(b.row(j))?;
            self.preset_carry(false);
            for i in 0..live {
                self.op_full_add(a.row(i), prod.row(j + i), prod.row(j + i), Predicate::Tag)?;
            }
            self.op_write_carry(prod.row(j + live), Predicate::Tag)?;
        }
        Ok(self.stats() - before)
    }

    /// One multiplier-bit round of the Figure 6 algorithm: load the tag
    /// from multiplier bit `j`, conditionally add the multiplicand into the
    /// partial product at offset `j`, commit the round's carry-out.
    fn mul_round(
        &mut self,
        a: Operand,
        b: Operand,
        prod: Operand,
        j: usize,
        n: usize,
    ) -> Result<()> {
        self.op_load_tag(b.row(j))?;
        self.preset_carry(false);
        for i in 0..n {
            self.op_full_add(a.row(i), prod.row(j + i), prod.row(j + i), Predicate::Tag)?;
        }
        self.op_write_carry(prod.row(j + n), Predicate::Tag)?;
        Ok(())
    }

    /// Shared operand validation of the vector-multiply family.
    fn validate_mul(&self, a: Operand, b: Operand, prod: Operand) -> Result<()> {
        let (n, m) = (a.bits(), b.bits());
        if prod.bits() < n + m {
            return Err(SramError::DestinationTooNarrow {
                needed: n + m,
                available: prod.bits(),
            });
        }
        if a.overlaps(&b) {
            return Err(SramError::OverlappingOperands {
                what: "multiplication inputs overlap",
            });
        }
        if prod.overlaps(&a) || prod.overlaps(&b) {
            return Err(SramError::OverlappingOperands {
                what: "product region overlaps an input",
            });
        }
        // Post-validation invariants every emitted micro-op relies on.
        debug_assert!(
            !a.overlaps(&b) && !prod.overlaps(&a) && !prod.overlaps(&b),
            "mul operands alias: {a}, {b}, {prod}"
        );
        debug_assert!(
            a.rows().end <= crate::ROWS
                && b.rows().end <= crate::ROWS
                && prod.rows().end <= crate::ROWS,
            "mul operands out of bounds: {a}, {b}, {prod}"
        );
        Ok(())
    }

    /// In-place broadcast-scalar multiplication `prod <- a * k`.
    ///
    /// The constant lives in the control FSM, so no tag loads are needed:
    /// for every set bit `j` of `k` the multiplicand is added into
    /// `prod[j..]` with full carry propagation to the top of the product
    /// region. Used by the requantization pipeline (Section IV-D), where the
    /// CPU returns scalar multipliers applied in-cache.
    ///
    /// # Errors
    ///
    /// `prod` must hold `a.bits() + bit_length(k)` bits and be disjoint from
    /// `a`.
    pub fn mul_scalar(&mut self, a: Operand, k: u64, prod: Operand) -> Result<CycleStats> {
        let n = a.bits();
        let klen = (64 - k.leading_zeros()) as usize;
        if k != 0 && prod.bits() < n + klen {
            return Err(SramError::DestinationTooNarrow {
                needed: n + klen,
                available: prod.bits(),
            });
        }
        if prod.overlaps(&a) {
            return Err(SramError::OverlappingOperands {
                what: "product region overlaps the multiplicand",
            });
        }
        let before = self.stats();
        self.zero(prod)?;
        for j in 0..klen {
            if (k >> j) & 1 == 1 {
                let window = prod.slice(j, prod.bits() - j).expect("validated width");
                self.add_assign(window, a)?;
            }
        }
        Ok(self.stats() - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> ComputeArray {
        ComputeArray::with_zero_row(255).unwrap()
    }

    #[test]
    fn figure6_walkthrough_2bit() {
        // The paper's Figure 6 multiplies 2-bit vectors; with the published
        // operands A = [3,1,3,2] (multiplicand) and B = [3,2,1,2] we expect
        // the 4-bit products [9,2,3,4].
        let mut arr = arr();
        let a = Operand::new(0, 2).unwrap();
        let b = Operand::new(2, 2).unwrap();
        let p = Operand::new(4, 4).unwrap();
        let cases = [(3u64, 3u64), (1, 2), (3, 1), (2, 2)];
        for (lane, (x, y)) in cases.iter().enumerate() {
            arr.poke_lane(lane, a, *x);
            arr.poke_lane(lane, b, *y);
        }
        let d = arr.mul(a, b, p).unwrap();
        // Derived cost: 4 (zero) + 2 rounds * (1 + 2 + 1) = 12 cycles,
        // which equals the paper's n^2 + 5n - 2 at n = 2.
        assert_eq!(d.compute_cycles, 12);
        for (lane, (x, y)) in cases.iter().enumerate() {
            assert_eq!(arr.peek_lane(lane, p), x * y, "lane {lane}");
        }
    }

    #[test]
    fn eight_bit_exhaustive_corners() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 16).unwrap();
        let interesting = [0u64, 1, 2, 3, 127, 128, 200, 255];
        for &x in &interesting {
            for (lane, &y) in interesting.iter().enumerate() {
                arr.poke_lane(lane, a, x);
                arr.poke_lane(lane, b, y);
            }
            arr.mul(a, b, p).unwrap();
            for (lane, &y) in interesting.iter().enumerate() {
                assert_eq!(arr.peek_lane(lane, p), x * y, "{x} * {y}");
            }
        }
    }

    #[test]
    fn derived_cost_formula() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 16).unwrap();
        let d = arr.mul(a, b, p).unwrap();
        // prod.bits() + m*(n+2) = 16 + 8*10 = 96 = n^2 + 4n for n = 8.
        assert_eq!(d.compute_cycles, 96);
    }

    #[test]
    fn mixed_width_multiply() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 4).unwrap();
        let p = Operand::new(16, 12).unwrap();
        arr.poke_lane(0, a, 250);
        arr.poke_lane(0, b, 15);
        arr.mul(a, b, p).unwrap();
        assert_eq!(arr.peek_lane(0, p), 3750);
    }

    #[test]
    fn mul_scalar_matches() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let p = Operand::new(8, 24).unwrap();
        for (lane, v) in [0u64, 1, 100, 255].into_iter().enumerate() {
            arr.poke_lane(lane, a, v);
        }
        arr.mul_scalar(a, 181, p).unwrap();
        for (lane, v) in [0u64, 1, 100, 255].into_iter().enumerate() {
            assert_eq!(arr.peek_lane(lane, p), v * 181);
        }
        // k = 0 zeroes the product.
        arr.mul_scalar(a, 0, p).unwrap();
        assert_eq!(arr.peek_lane(3, p), 0);
    }

    #[test]
    fn skip_zero_rows_is_bit_identical_to_dense() {
        // Low-nibble multipliers: bit rows 4..8 are all-zero across lanes.
        let mut dense = arr();
        let mut sparse = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 16).unwrap();
        let values = [(200u64, 9u64), (37, 0), (255, 15), (1, 8)];
        for (lane, (x, y)) in values.iter().enumerate() {
            dense.poke_lane(lane, a, *x);
            dense.poke_lane(lane, b, *y);
            sparse.poke_lane(lane, a, *x);
            sparse.poke_lane(lane, b, *y);
        }
        let d = dense.mul(a, b, p).unwrap();
        let s = sparse.mul_skip_zero_rows(a, b, p).unwrap();
        for (lane, (x, y)) in values.iter().enumerate() {
            assert_eq!(sparse.peek_lane(lane, p), x * y, "lane {lane}");
            assert_eq!(sparse.peek_lane(lane, p), dense.peek_lane(lane, p));
        }
        assert_eq!(d.mul_rounds, 8);
        assert_eq!(d.skipped_rounds, 0, "dense never skips");
        assert_eq!(s.mul_rounds, 8);
        assert_eq!(s.skipped_rounds, 4, "top-nibble rounds elided");
        assert_eq!(s.skipped_cycles, 4 * 10, "n + 2 cycles per round");
        assert_eq!(
            s.compute_cycles,
            d.compute_cycles - s.skipped_cycles,
            "saved cycles accounted exactly"
        );
    }

    #[test]
    fn all_zero_multiplier_skips_every_round() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 16).unwrap();
        arr.poke_lane(0, a, 213);
        let s = arr.mul_skip_zero_rows(a, b, p).unwrap();
        assert_eq!(arr.peek_lane(0, p), 0);
        assert_eq!(s.skipped_rounds, 8);
        assert_eq!(s.compute_cycles, 16, "only the product zeroing runs");
        assert!((s.skip_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_rows_are_never_skipped() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 16).unwrap();
        arr.poke_lane(0, a, 7);
        arr.poke_lane(0, b, 255);
        let s = arr.mul_skip_zero_rows(a, b, p).unwrap();
        assert_eq!(arr.peek_lane(0, p), 7 * 255);
        assert_eq!(s.skipped_rounds, 0);
        assert_eq!(s.compute_cycles, 96, "full dense cost");
    }

    #[test]
    fn skip_zero_input_bits_is_bit_identical_and_charges_detect() {
        // Low-nibble *inputs*: bit rounds 4..8 of the multiplier are
        // all-zero across lanes and elide after the per-round detect.
        let mut dense = arr();
        let mut sparse = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 16).unwrap();
        let values = [(200u64, 9u64), (37, 0), (255, 15), (1, 8)];
        for (lane, (x, y)) in values.iter().enumerate() {
            dense.poke_lane(lane, a, *x);
            dense.poke_lane(lane, b, *y);
            sparse.poke_lane(lane, a, *x);
            sparse.poke_lane(lane, b, *y);
        }
        let d = dense.mul(a, b, p).unwrap();
        let s = sparse.mul_skip_zero_input_bits(a, b, p).unwrap();
        for (lane, (x, y)) in values.iter().enumerate() {
            assert_eq!(sparse.peek_lane(lane, p), x * y, "lane {lane}");
        }
        assert_eq!(s.mul_rounds, 8);
        assert_eq!(s.detect_cycles, 8, "every scheduled round pays a detect");
        assert_eq!(s.input_rounds_skipped, 4, "top-nibble rounds elided");
        assert_eq!(s.skipped_rounds, 0, "weight-skip counter untouched");
        assert_eq!(s.skipped_cycles, 4 * 10, "n + 2 cycles per elided round");
        // Reconciliation: executed = dense - saved + detect overhead.
        assert_eq!(
            s.compute_cycles + s.skipped_cycles - s.detect_cycles,
            d.compute_cycles,
            "detect-aware cycle reconciliation"
        );
    }

    #[test]
    fn dense_inputs_make_detection_pure_overhead() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 16).unwrap();
        arr.poke_lane(0, a, 7);
        arr.poke_lane(0, b, 255);
        let s = arr.mul_skip_zero_input_bits(a, b, p).unwrap();
        assert_eq!(arr.peek_lane(0, p), 7 * 255);
        assert_eq!(s.input_rounds_skipped, 0);
        assert_eq!(s.detect_cycles, 8);
        assert_eq!(s.compute_cycles, 96 + 8, "full dense cost plus detects");
    }

    #[test]
    fn skip_both_truncates_the_add_chain_and_skips_input_rounds() {
        // Multiplicand (weights) limited to the low 3 bits on every lane;
        // multiplier (inputs) limited to the low nibble.
        let mut dense = arr();
        let mut both = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 16).unwrap();
        let values = [(5u64, 9u64), (7, 0), (3, 15), (1, 8)];
        for (lane, (x, y)) in values.iter().enumerate() {
            dense.poke_lane(lane, a, *x);
            dense.poke_lane(lane, b, *y);
            both.poke_lane(lane, a, *x);
            both.poke_lane(lane, b, *y);
        }
        let d = dense.mul(a, b, p).unwrap();
        let s = both.mul_skip_both(a, b, p).unwrap();
        for (lane, (x, y)) in values.iter().enumerate() {
            assert_eq!(both.peek_lane(lane, p), x * y, "lane {lane}");
            assert_eq!(both.peek_lane(lane, p), dense.peek_lane(lane, p));
        }
        assert_eq!(s.mul_rounds, 8);
        assert_eq!(s.detect_cycles, 8);
        assert_eq!(s.input_rounds_skipped, 4);
        // Saved: 4 skipped rounds * 10 + 4 executed rounds * (8 - 3) adds.
        assert_eq!(s.skipped_cycles, 4 * 10 + 4 * 5);
        assert_eq!(
            s.compute_cycles + s.skipped_cycles - s.detect_cycles,
            d.compute_cycles,
            "detect-aware cycle reconciliation"
        );
    }

    #[test]
    fn skip_both_with_mid_bit_weight_holes_stays_exact() {
        // Weight codes 0b1000_0001: live = 8 (no truncation possible), a
        // zero *middle* row must still execute — products must stay exact.
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 16).unwrap();
        arr.poke_lane(0, a, 0x81);
        arr.poke_lane(1, a, 0x81);
        arr.poke_lane(0, b, 201);
        arr.poke_lane(1, b, 54); // 201 | 54 = 255: every input round live
        let s = arr.mul_skip_both(a, b, p).unwrap();
        assert_eq!(arr.peek_lane(0, p), 0x81 * 201);
        assert_eq!(arr.peek_lane(1, p), 0x81 * 54);
        assert_eq!(s.skipped_cycles, 0, "no truncation, no input skips");
    }

    #[test]
    fn skip_both_all_zero_weights_run_empty_rounds() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 16).unwrap();
        arr.poke_lane(0, b, 255);
        let s = arr.mul_skip_both(a, b, p).unwrap();
        assert_eq!(arr.peek_lane(0, p), 0);
        // live = 0: every round is tag load + carry write (2 cycles) after
        // its detect; zeroing is 16 cycles.
        assert_eq!(s.compute_cycles, 16 + 8 * 3);
        assert_eq!(s.skipped_cycles, 8 * 8, "8 truncated adds per round");
    }

    #[test]
    fn dynamic_skip_variants_match_dense_exhaustively() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 16).unwrap();
        let interesting = [0u64, 1, 2, 3, 15, 127, 128, 255];
        for &x in &interesting {
            for (lane, &y) in interesting.iter().enumerate() {
                arr.poke_lane(lane, a, x);
                arr.poke_lane(lane, b, y);
            }
            arr.mul_skip_zero_input_bits(a, b, p).unwrap();
            for (lane, &y) in interesting.iter().enumerate() {
                assert_eq!(arr.peek_lane(lane, p), x * y, "input-skip {x} * {y}");
            }
            arr.mul_skip_both(a, b, p).unwrap();
            for (lane, &y) in interesting.iter().enumerate() {
                assert_eq!(arr.peek_lane(lane, p), x * y, "skip-both {x} * {y}");
            }
        }
    }

    #[test]
    fn dynamic_variants_validate_like_dense() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let narrow = Operand::new(16, 15).unwrap();
        assert!(matches!(
            arr.mul_skip_zero_input_bits(a, b, narrow),
            Err(SramError::DestinationTooNarrow { .. })
        ));
        assert!(matches!(
            arr.mul_skip_both(a, b, narrow),
            Err(SramError::DestinationTooNarrow { .. })
        ));
        let overlapping = Operand::new(4, 16).unwrap();
        assert!(matches!(
            arr.mul_skip_both(a, b, overlapping),
            Err(SramError::OverlappingOperands { .. })
        ));
    }

    #[test]
    fn skip_variant_validates_like_dense() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let narrow = Operand::new(16, 15).unwrap();
        assert!(matches!(
            arr.mul_skip_zero_rows(a, b, narrow),
            Err(SramError::DestinationTooNarrow { .. })
        ));
        let overlapping = Operand::new(4, 16).unwrap();
        assert!(matches!(
            arr.mul_skip_zero_rows(a, b, overlapping),
            Err(SramError::OverlappingOperands { .. })
        ));
    }

    #[test]
    fn rejects_narrow_product() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 15).unwrap();
        assert!(matches!(
            arr.mul(a, b, p),
            Err(SramError::DestinationTooNarrow { .. })
        ));
    }
}
