//! Bit-serial multiplication via predicated shifted adds (Section III-C,
//! Figure 6).

use crate::{ComputeArray, CycleStats, Operand, Predicate, Result, SramError};

impl ComputeArray {
    /// Vector multiplication `prod <- a * b` on every lane.
    ///
    /// For each multiplier bit `j` (LSB first), the multiplier bit is loaded
    /// into the tag latch and the multiplicand is conditionally added into
    /// the partial product at offset `j`; the round's carry-out is stored
    /// into `prod[j + n]` (tag-gated) before the next round. This is the
    /// Figure 6 algorithm with the carry correctly committed at each round
    /// boundary.
    ///
    /// Cycle count (derived): `prod.bits()` zeroing + `m * (n + 2)` where
    /// `n = a.bits()`, `m = b.bits()`. For n = m it is `n^2 + 4n` including
    /// initialization — the paper quotes `n^2 + 5n - 2`, which matches at
    /// n = 2 (the published walkthrough) and differs by `n - 2` cycles for
    /// wider operands; see DESIGN.md §6.
    ///
    /// The tag and carry latches are clobbered.
    ///
    /// # Errors
    ///
    /// `prod` must hold at least `n + m` bits and be disjoint from both
    /// inputs; inputs must not overlap each other.
    pub fn mul(&mut self, a: Operand, b: Operand, prod: Operand) -> Result<CycleStats> {
        let (n, m) = (a.bits(), b.bits());
        if prod.bits() < n + m {
            return Err(SramError::DestinationTooNarrow {
                needed: n + m,
                available: prod.bits(),
            });
        }
        if a.overlaps(&b) {
            return Err(SramError::OverlappingOperands {
                what: "multiplication inputs overlap",
            });
        }
        if prod.overlaps(&a) || prod.overlaps(&b) {
            return Err(SramError::OverlappingOperands {
                what: "product region overlaps an input",
            });
        }
        let before = self.stats();
        self.zero(prod)?;
        for j in 0..m {
            self.op_load_tag(b.row(j))?;
            self.preset_carry(false);
            for i in 0..n {
                self.op_full_add(a.row(i), prod.row(j + i), prod.row(j + i), Predicate::Tag)?;
            }
            self.op_write_carry(prod.row(j + n), Predicate::Tag)?;
        }
        Ok(self.stats() - before)
    }

    /// In-place broadcast-scalar multiplication `prod <- a * k`.
    ///
    /// The constant lives in the control FSM, so no tag loads are needed:
    /// for every set bit `j` of `k` the multiplicand is added into
    /// `prod[j..]` with full carry propagation to the top of the product
    /// region. Used by the requantization pipeline (Section IV-D), where the
    /// CPU returns scalar multipliers applied in-cache.
    ///
    /// # Errors
    ///
    /// `prod` must hold `a.bits() + bit_length(k)` bits and be disjoint from
    /// `a`.
    pub fn mul_scalar(&mut self, a: Operand, k: u64, prod: Operand) -> Result<CycleStats> {
        let n = a.bits();
        let klen = (64 - k.leading_zeros()) as usize;
        if k != 0 && prod.bits() < n + klen {
            return Err(SramError::DestinationTooNarrow {
                needed: n + klen,
                available: prod.bits(),
            });
        }
        if prod.overlaps(&a) {
            return Err(SramError::OverlappingOperands {
                what: "product region overlaps the multiplicand",
            });
        }
        let before = self.stats();
        self.zero(prod)?;
        for j in 0..klen {
            if (k >> j) & 1 == 1 {
                let window = prod.slice(j, prod.bits() - j).expect("validated width");
                self.add_assign(window, a)?;
            }
        }
        Ok(self.stats() - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> ComputeArray {
        ComputeArray::with_zero_row(255).unwrap()
    }

    #[test]
    fn figure6_walkthrough_2bit() {
        // The paper's Figure 6 multiplies 2-bit vectors; with the published
        // operands A = [3,1,3,2] (multiplicand) and B = [3,2,1,2] we expect
        // the 4-bit products [9,2,3,4].
        let mut arr = arr();
        let a = Operand::new(0, 2).unwrap();
        let b = Operand::new(2, 2).unwrap();
        let p = Operand::new(4, 4).unwrap();
        let cases = [(3u64, 3u64), (1, 2), (3, 1), (2, 2)];
        for (lane, (x, y)) in cases.iter().enumerate() {
            arr.poke_lane(lane, a, *x);
            arr.poke_lane(lane, b, *y);
        }
        let d = arr.mul(a, b, p).unwrap();
        // Derived cost: 4 (zero) + 2 rounds * (1 + 2 + 1) = 12 cycles,
        // which equals the paper's n^2 + 5n - 2 at n = 2.
        assert_eq!(d.compute_cycles, 12);
        for (lane, (x, y)) in cases.iter().enumerate() {
            assert_eq!(arr.peek_lane(lane, p), x * y, "lane {lane}");
        }
    }

    #[test]
    fn eight_bit_exhaustive_corners() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 16).unwrap();
        let interesting = [0u64, 1, 2, 3, 127, 128, 200, 255];
        for &x in &interesting {
            for (lane, &y) in interesting.iter().enumerate() {
                arr.poke_lane(lane, a, x);
                arr.poke_lane(lane, b, y);
            }
            arr.mul(a, b, p).unwrap();
            for (lane, &y) in interesting.iter().enumerate() {
                assert_eq!(arr.peek_lane(lane, p), x * y, "{x} * {y}");
            }
        }
    }

    #[test]
    fn derived_cost_formula() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 16).unwrap();
        let d = arr.mul(a, b, p).unwrap();
        // prod.bits() + m*(n+2) = 16 + 8*10 = 96 = n^2 + 4n for n = 8.
        assert_eq!(d.compute_cycles, 96);
    }

    #[test]
    fn mixed_width_multiply() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 4).unwrap();
        let p = Operand::new(16, 12).unwrap();
        arr.poke_lane(0, a, 250);
        arr.poke_lane(0, b, 15);
        arr.mul(a, b, p).unwrap();
        assert_eq!(arr.peek_lane(0, p), 3750);
    }

    #[test]
    fn mul_scalar_matches() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let p = Operand::new(8, 24).unwrap();
        for (lane, v) in [0u64, 1, 100, 255].into_iter().enumerate() {
            arr.poke_lane(lane, a, v);
        }
        arr.mul_scalar(a, 181, p).unwrap();
        for (lane, v) in [0u64, 1, 100, 255].into_iter().enumerate() {
            assert_eq!(arr.peek_lane(lane, p), v * 181);
        }
        // k = 0 zeroes the product.
        arr.mul_scalar(a, 0, p).unwrap();
        assert_eq!(arr.peek_lane(3, p), 0);
    }

    #[test]
    fn rejects_narrow_product() {
        let mut arr = arr();
        let a = Operand::new(0, 8).unwrap();
        let b = Operand::new(8, 8).unwrap();
        let p = Operand::new(16, 15).unwrap();
        assert!(matches!(
            arr.mul(a, b, p),
            Err(SramError::DestinationTooNarrow { .. })
        ));
    }
}
