//! Bit-serial addition and subtraction (paper Section III-B, Figure 4).

use crate::{ComputeArray, CycleStats, Operand, Predicate, Result, SramError};

impl ComputeArray {
    /// Vector addition `dst <- a + b` over every lane.
    ///
    /// `a` and `b` must have equal width `n`; `dst` must be `n` or `n+1`
    /// bits. With an `n+1`-bit destination the final carry is stored in the
    /// extra row, exactly as in Figure 4 — the full operation then takes
    /// `n + 1` compute cycles (the paper's published addition cost). With an
    /// `n`-bit destination the result wraps modulo 2^n in `n` cycles.
    ///
    /// # Errors
    ///
    /// Fails on width mismatch or if `dst` partially overlaps an input
    /// (aliasing `dst == a` exactly is allowed: each cycle reads the operand
    /// row before the write-back phase).
    pub fn add(&mut self, a: Operand, b: Operand, dst: Operand) -> Result<CycleStats> {
        let n = a.bits();
        if b.bits() != n {
            return Err(SramError::OverlappingOperands {
                what: "addition operands must have equal widths",
            });
        }
        if dst.bits() < n || dst.bits() > n + 1 {
            return Err(SramError::DestinationTooNarrow {
                needed: n,
                available: dst.bits(),
            });
        }
        if a.overlaps(&b) {
            return Err(SramError::OverlappingOperands {
                what: "addition inputs overlap (two-row activation needs distinct rows)",
            });
        }
        let dst_lo = dst.slice(0, n).expect("validated above");
        if (dst_lo.overlaps(&a) && dst_lo != a) || dst.overlaps(&b) {
            return Err(SramError::OverlappingOperands {
                what: "addition destination partially overlaps an input",
            });
        }
        // Post-validation invariants every emitted micro-op relies on.
        debug_assert!(!a.overlaps(&b), "add inputs alias: {a} vs {b}");
        debug_assert!(
            a.rows().end <= crate::ROWS
                && b.rows().end <= crate::ROWS
                && dst.rows().end <= crate::ROWS,
            "add operands out of bounds: {a}, {b}, {dst}"
        );
        let before = self.stats();
        self.preset_carry(false);
        for i in 0..n {
            self.op_full_add(a.row(i), b.row(i), dst.row(i), Predicate::Always)?;
        }
        if dst.bits() == n + 1 {
            self.op_write_carry(dst.row(n), Predicate::Always)?;
        }
        Ok(self.stats() - before)
    }

    /// In-place accumulate `acc <- acc + addend` with zero extension of the
    /// addend, wrapping modulo 2^`acc.bits()`.
    ///
    /// Takes `acc.bits()` compute cycles: full-adder cycles over the addend
    /// bits, then carry propagation through the remaining accumulator bits
    /// via constant-zero adds.
    ///
    /// # Errors
    ///
    /// Fails if the accumulator is narrower than the addend or the regions
    /// overlap.
    pub fn add_assign(&mut self, acc: Operand, addend: Operand) -> Result<CycleStats> {
        if acc.bits() < addend.bits() {
            return Err(SramError::DestinationTooNarrow {
                needed: addend.bits(),
                available: acc.bits(),
            });
        }
        if acc.overlaps(&addend) {
            return Err(SramError::OverlappingOperands {
                what: "accumulator overlaps addend",
            });
        }
        let before = self.stats();
        self.preset_carry(false);
        for i in 0..addend.bits() {
            self.op_full_add(addend.row(i), acc.row(i), acc.row(i), Predicate::Always)?;
        }
        for i in addend.bits()..acc.bits() {
            self.op_full_add_const(acc.row(i), false, acc.row(i), Predicate::Always)?;
        }
        Ok(self.stats() - before)
    }

    /// In-place broadcast-constant addition `op <- op + k` modulo
    /// 2^`op.bits()` (`bits` compute cycles).
    ///
    /// To add a *negative* constant, pass its two's complement truncated to
    /// the operand width (see [`ComputeArray::add_scalar_signed`]).
    ///
    /// # Errors
    ///
    /// Propagates row errors.
    pub fn add_scalar(&mut self, op: Operand, k: u64) -> Result<CycleStats> {
        let before = self.stats();
        self.preset_carry(false);
        for i in 0..op.bits() {
            let bit = i < 64 && (k >> i) & 1 == 1;
            self.op_full_add_const(op.row(i), bit, op.row(i), Predicate::Always)?;
        }
        Ok(self.stats() - before)
    }

    /// In-place signed broadcast-constant addition `op <- op + k` modulo
    /// 2^`op.bits()`, accepting negative constants.
    ///
    /// # Errors
    ///
    /// Fails if `|k|` does not fit in the operand width.
    pub fn add_scalar_signed(&mut self, op: Operand, k: i64) -> Result<CycleStats> {
        let bits = op.bits();
        if bits < 64 {
            let bound = 1i64 << (bits - 1).min(62);
            if k >= bound || k < -bound {
                return Err(SramError::DestinationTooNarrow {
                    needed: 64 - k.unsigned_abs().leading_zeros() as usize + 1,
                    available: bits,
                });
            }
        }
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        self.add_scalar(op, (k as u64) & mask)
    }

    /// Vector subtraction `dst <- a - b` (modulo 2^n) via two's complement:
    /// the complement of `b` is materialized in `scratch`, then added to `a`
    /// with the carry latch preset to one.
    ///
    /// Takes `2n` compute cycles (`n` complement + `n` full adds). After the
    /// call the **carry latch holds the no-borrow flag**: lane `l`'s carry is
    /// `1` iff `a[l] >= b[l]` (unsigned) — comparisons and max/min build on
    /// this.
    ///
    /// # Errors
    ///
    /// Requires the zero row. All three regions and `scratch` must be
    /// pairwise non-overlapping except that `dst` may alias `a` exactly.
    pub fn sub(
        &mut self,
        a: Operand,
        b: Operand,
        dst: Operand,
        scratch: Operand,
    ) -> Result<CycleStats> {
        let n = a.bits();
        if b.bits() != n || dst.bits() != n {
            return Err(SramError::DestinationTooNarrow {
                needed: n,
                available: dst.bits().min(b.bits()),
            });
        }
        if scratch.bits() < n {
            return Err(SramError::DestinationTooNarrow {
                needed: n,
                available: scratch.bits(),
            });
        }
        let distinct = [
            (a.overlaps(&b), "subtraction inputs overlap"),
            (scratch.overlaps(&a), "scratch overlaps minuend"),
            (scratch.overlaps(&b), "scratch overlaps subtrahend"),
            (scratch.overlaps(&dst), "scratch overlaps destination"),
            (dst.overlaps(&b), "destination overlaps subtrahend"),
            (
                dst.overlaps(&a) && dst != a,
                "destination partially overlaps minuend",
            ),
        ];
        for (bad, what) in distinct {
            if bad {
                return Err(SramError::OverlappingOperands { what });
            }
        }
        let before = self.stats();
        for i in 0..n {
            self.op_not(b.row(i), scratch.row(i), Predicate::Always)?;
        }
        self.preset_carry(true);
        for i in 0..n {
            self.op_full_add(a.row(i), scratch.row(i), dst.row(i), Predicate::Always)?;
        }
        Ok(self.stats() - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> ComputeArray {
        ComputeArray::with_zero_row(255).unwrap()
    }

    #[test]
    fn add_matches_paper_cost_and_figure4() {
        // Figure 4 adds two vectors of 4-bit words; n-bit addition takes
        // n + 1 cycles including the final carry write.
        let mut a = arr();
        let va = Operand::new(0, 4).unwrap();
        let vb = Operand::new(4, 4).unwrap();
        let sum = Operand::new(8, 5).unwrap();
        let pairs = [(3u64, 5u64), (15, 15), (0, 0), (9, 6)];
        for (lane, (x, y)) in pairs.iter().enumerate() {
            a.poke_lane(lane, va, *x);
            a.poke_lane(lane, vb, *y);
        }
        let d = a.add(va, vb, sum).unwrap();
        assert_eq!(d.compute_cycles, 5, "n+1 cycles for n=4");
        for (lane, (x, y)) in pairs.iter().enumerate() {
            assert_eq!(a.peek_lane(lane, sum), x + y);
        }
    }

    #[test]
    fn add_wrapping_without_carry_row() {
        let mut a = arr();
        let va = Operand::new(0, 8).unwrap();
        let vb = Operand::new(8, 8).unwrap();
        let dst = Operand::new(16, 8).unwrap();
        a.poke_lane(0, va, 200);
        a.poke_lane(0, vb, 100);
        let d = a.add(va, vb, dst).unwrap();
        assert_eq!(d.compute_cycles, 8);
        assert_eq!(a.peek_lane(0, dst), (200 + 100) & 0xFF);
    }

    #[test]
    fn add_in_place_aliasing_allowed() {
        let mut a = arr();
        let va = Operand::new(0, 8).unwrap();
        let vb = Operand::new(8, 8).unwrap();
        a.poke_lane(2, va, 33);
        a.poke_lane(2, vb, 44);
        a.add(va, vb, va).unwrap();
        assert_eq!(a.peek_lane(2, va), 77);
    }

    #[test]
    fn add_assign_zero_extends() {
        let mut a = arr();
        let acc = Operand::new(0, 24).unwrap();
        let x = Operand::new(24, 16).unwrap();
        a.poke_lane(0, acc, 0xFF_FF00);
        a.poke_lane(0, x, 0x0100);
        let d = a.add_assign(acc, x).unwrap();
        assert_eq!(d.compute_cycles, 24);
        assert_eq!(a.peek_lane(0, acc), 0);
        a.poke_lane(1, acc, 1000);
        a.poke_lane(1, x, 65535);
        // lane 0 accumulates garbage now, which is fine; check lane 1 only
        a.add_assign(acc, x).unwrap();
        assert_eq!(a.peek_lane(1, acc), 1000 + 65535);
    }

    #[test]
    fn add_scalar_signed_wraps_two_complement() {
        let mut a = arr();
        let op = Operand::new(0, 32).unwrap();
        a.poke_lane(0, op, 100);
        a.add_scalar_signed(op, -42).unwrap();
        assert_eq!(a.peek_lane_signed(0, op), 58);
        a.add_scalar_signed(op, -100).unwrap();
        assert_eq!(a.peek_lane_signed(0, op), -42);
        a.add_scalar_signed(op, 42).unwrap();
        assert_eq!(a.peek_lane_signed(0, op), 0);
    }

    #[test]
    fn sub_sets_no_borrow_carry() {
        let mut a = arr();
        let va = Operand::new(0, 8).unwrap();
        let vb = Operand::new(8, 8).unwrap();
        let dst = Operand::new(16, 8).unwrap();
        let scratch = Operand::new(24, 8).unwrap();
        a.poke_lane(0, va, 90);
        a.poke_lane(0, vb, 60);
        a.poke_lane(1, va, 60);
        a.poke_lane(1, vb, 90);
        a.poke_lane(2, va, 7);
        a.poke_lane(2, vb, 7);
        let d = a.sub(va, vb, dst, scratch).unwrap();
        assert_eq!(d.compute_cycles, 16, "2n cycles for n=8");
        assert_eq!(a.peek_lane(0, dst), 30);
        assert_eq!(a.peek_lane(1, dst), (60u64.wrapping_sub(90)) & 0xFF);
        assert_eq!(a.peek_lane(2, dst), 0);
        assert!(a.carry().get(0), "90 >= 60");
        assert!(!a.carry().get(1), "60 < 90 borrows");
        assert!(a.carry().get(2), "equal means no borrow");
    }

    #[test]
    fn rejects_overlapping_inputs() {
        let mut a = arr();
        let x = Operand::new(0, 8).unwrap();
        let y = Operand::new(4, 8).unwrap();
        let d = Operand::new(16, 8).unwrap();
        assert!(a.add(x, y, d).is_err());
    }
}
