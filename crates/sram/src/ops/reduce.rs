//! Lane moves and in-array tree reduction (Section III-D, Figure 5).
//!
//! Reduction brings values that live on *different bit lines* together: at
//! each step the upper half of the surviving lanes is moved sideways (a
//! word-line move through the column-multiplexed sense amps) underneath the
//! lower half, and a region-wide addition halves the live lane count. After
//! `log2(lanes)` steps lane 0 holds the sum.

use crate::{ComputeArray, CycleStats, Operand, Result, SramError, COLS};

/// Compute cycles charged per row for a lane move.
///
/// Moves between word lines *and* bit lines go through the column mux and
/// sense amplifiers; the paper notes they can be sped up with sense-amp
/// cycling (the paper's reference 18, Cache Automaton). We model one read
/// cycle plus one write cycle per row, for
/// every affected lane in parallel.
pub const LANE_MOVE_CYCLES_PER_ROW: u64 = 2;

impl ComputeArray {
    /// Lane move: for every `lane < lanes`, copies `src`'s operand from lane
    /// `lane + lane_shift` into `dst` on `lane`. Lanes `>= lanes` keep their
    /// `dst` contents. Charges [`LANE_MOVE_CYCLES_PER_ROW`] compute cycles
    /// per row.
    ///
    /// # Errors
    ///
    /// Fails on width mismatch, lane overflow, row-overlapping regions, or
    /// an attempt to write the zero row.
    pub fn move_lanes(
        &mut self,
        src: Operand,
        dst: Operand,
        lane_shift: usize,
        lanes: usize,
    ) -> Result<CycleStats> {
        if src.bits() != dst.bits() {
            return Err(SramError::DestinationTooNarrow {
                needed: src.bits(),
                available: dst.bits(),
            });
        }
        if lanes == 0 || lanes + lane_shift > COLS {
            return Err(SramError::ColOutOfRange {
                col: lanes + lane_shift,
            });
        }
        if src.overlaps(&dst) {
            return Err(SramError::OverlappingOperands {
                what: "lane-move source and destination share rows",
            });
        }
        self.guard_zero_row(&dst)?;
        let before = self.stats();
        for i in 0..src.bits() {
            let (src_row, dst_row) = (src.row(i), dst.row(i));
            let cells = self.raw_cells_mut();
            let source = cells.read_row(src_row)?;
            let mut target = cells.read_row(dst_row)?;
            for lane in 0..lanes {
                target.set(lane, source.get(lane + lane_shift));
            }
            cells.write_row(dst_row, target)?;
            self.charge_compute(LANE_MOVE_CYCLES_PER_ROW);
        }
        Ok(self.stats() - before)
    }

    /// Tree-sum reduction of `lanes` values held in `value` (one per lane)
    /// into lane 0's `value` region, using `scratch` as the second reduction
    /// operand of Figure 10(b).
    ///
    /// `lanes` must be a power of two (the mapping pads channels with zeros
    /// to the next power of two, Section IV-A). Values wrap modulo
    /// 2^`value.bits()`; size the region for the worst-case sum (the paper
    /// reserves 4-byte segments).
    ///
    /// Cycle count: `log2(lanes) * (2*w + w)` where `w = value.bits()` —
    /// each step is one lane move plus one region addition.
    ///
    /// # Errors
    ///
    /// Fails unless `lanes` is a power of two within the array, regions are
    /// disjoint and of equal width.
    pub fn reduce_sum(
        &mut self,
        value: Operand,
        scratch: Operand,
        lanes: usize,
    ) -> Result<CycleStats> {
        self.reduce_with(value, scratch, lanes, |arr, acc, x| {
            arr.add_assign(acc, x).map(|_| ())
        })
    }

    /// Tree-max reduction: leaves the maximum of `lanes` unsigned values in
    /// lane 0's `value` region. Requires an extra scratch region and dump
    /// row for the comparison (see [`ComputeArray::max_assign`]).
    ///
    /// # Errors
    ///
    /// Same constraints as [`ComputeArray::reduce_sum`] plus the comparison
    /// constraints.
    pub fn reduce_max(
        &mut self,
        value: Operand,
        scratch: Operand,
        cmp_scratch: Operand,
        dump_row: usize,
        lanes: usize,
    ) -> Result<CycleStats> {
        self.reduce_with(value, scratch, lanes, |arr, acc, x| {
            arr.max_assign(acc, x, cmp_scratch, dump_row).map(|_| ())
        })
    }

    /// Tree-min reduction: leaves the minimum of `lanes` unsigned values in
    /// lane 0's `value` region.
    ///
    /// # Errors
    ///
    /// Same constraints as [`ComputeArray::reduce_max`].
    pub fn reduce_min(
        &mut self,
        value: Operand,
        scratch: Operand,
        cmp_scratch: Operand,
        dump_row: usize,
        lanes: usize,
    ) -> Result<CycleStats> {
        self.reduce_with(value, scratch, lanes, |arr, acc, x| {
            arr.min_assign(acc, x, cmp_scratch, dump_row).map(|_| ())
        })
    }

    /// Grouped lane move: within each of `groups` lane groups of stride
    /// `group_stride`, copies `src` from lane `base + l + lane_shift` to
    /// `dst` on lane `base + l` for `l < lanes_per_group`. All groups move
    /// in parallel (same relative column-mux pattern), so the cost equals a
    /// single [`ComputeArray::move_lanes`].
    ///
    /// # Errors
    ///
    /// Same constraints as `move_lanes`, per group.
    pub fn move_lanes_grouped(
        &mut self,
        src: Operand,
        dst: Operand,
        lane_shift: usize,
        lanes_per_group: usize,
        group_stride: usize,
        groups: usize,
    ) -> Result<CycleStats> {
        if src.bits() != dst.bits() {
            return Err(SramError::DestinationTooNarrow {
                needed: src.bits(),
                available: dst.bits(),
            });
        }
        if groups == 0
            || lanes_per_group == 0
            || lanes_per_group + lane_shift > group_stride
            || groups * group_stride > COLS
        {
            return Err(SramError::ColOutOfRange {
                col: groups * group_stride,
            });
        }
        if src.overlaps(&dst) {
            return Err(SramError::OverlappingOperands {
                what: "lane-move source and destination share rows",
            });
        }
        self.guard_zero_row(&dst)?;
        let before = self.stats();
        for i in 0..src.bits() {
            let (src_row, dst_row) = (src.row(i), dst.row(i));
            let cells = self.raw_cells_mut();
            let source = cells.read_row(src_row)?;
            let mut target = cells.read_row(dst_row)?;
            for g in 0..groups {
                let base = g * group_stride;
                for lane in 0..lanes_per_group {
                    target.set(base + lane, source.get(base + lane + lane_shift));
                }
            }
            cells.write_row(dst_row, target)?;
            self.charge_compute(LANE_MOVE_CYCLES_PER_ROW);
        }
        Ok(self.stats() - before)
    }

    /// Grouped tree-sum reduction: `groups` independent lane groups of
    /// `group_lanes` lanes each (stride `group_lanes`) reduce
    /// simultaneously; group `g`'s sum lands on lane `g * group_lanes`.
    /// This is how one 8KB array reduces the channels of several packed
    /// filters at once (Figure 9: M5 and M6 share an array).
    ///
    /// # Errors
    ///
    /// Same constraints as [`ComputeArray::reduce_sum`].
    pub fn reduce_sum_grouped(
        &mut self,
        value: Operand,
        scratch: Operand,
        group_lanes: usize,
        groups: usize,
    ) -> Result<CycleStats> {
        if !group_lanes.is_power_of_two() || group_lanes * groups > COLS {
            return Err(SramError::NonPowerOfTwoLanes { lanes: group_lanes });
        }
        if value.bits() != scratch.bits() {
            return Err(SramError::DestinationTooNarrow {
                needed: value.bits(),
                available: scratch.bits(),
            });
        }
        if value.overlaps(&scratch) {
            return Err(SramError::OverlappingOperands {
                what: "reduction value and scratch regions overlap",
            });
        }
        let before = self.stats();
        let mut stride = group_lanes / 2;
        while stride >= 1 {
            self.move_lanes_grouped(value, scratch, stride, stride, group_lanes, groups)?;
            self.add_assign(value, scratch)?;
            stride /= 2;
        }
        Ok(self.stats() - before)
    }

    fn reduce_with(
        &mut self,
        value: Operand,
        scratch: Operand,
        lanes: usize,
        mut combine: impl FnMut(&mut ComputeArray, Operand, Operand) -> Result<()>,
    ) -> Result<CycleStats> {
        if !lanes.is_power_of_two() || lanes > COLS {
            return Err(SramError::NonPowerOfTwoLanes { lanes });
        }
        if value.bits() != scratch.bits() {
            return Err(SramError::DestinationTooNarrow {
                needed: value.bits(),
                available: scratch.bits(),
            });
        }
        if value.overlaps(&scratch) {
            return Err(SramError::OverlappingOperands {
                what: "reduction value and scratch regions overlap",
            });
        }
        // Post-validation invariants every reduction step relies on.
        debug_assert!(
            !value.overlaps(&scratch),
            "reduction operands alias: {value} vs {scratch}"
        );
        debug_assert!(
            value.rows().end <= crate::ROWS && scratch.rows().end <= crate::ROWS,
            "reduction operands out of bounds: {value}, {scratch}"
        );
        let before = self.stats();
        let mut stride = lanes / 2;
        while stride >= 1 {
            // Move the upper half's values under the lower half...
            self.move_lanes(value, scratch, stride, stride)?;
            // ...and combine. The combine step runs on every lane (SIMD);
            // lanes >= stride compute garbage that is never read again.
            combine(self, value, scratch)?;
            stride /= 2;
        }
        Ok(self.stats() - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> ComputeArray {
        ComputeArray::with_zero_row(255).unwrap()
    }

    #[test]
    fn figure5_reduction_of_four_words() {
        // Figure 5 reduces C1..C4 to one sum with log2(4) = 2 steps.
        let mut a = arr();
        let value = Operand::new(0, 32).unwrap();
        let scratch = Operand::new(32, 32).unwrap();
        for (lane, v) in [11u64, 22, 33, 44].into_iter().enumerate() {
            a.poke_lane(lane, value, v);
        }
        let d = a.reduce_sum(value, scratch, 4).unwrap();
        assert_eq!(a.peek_lane(0, value), 110);
        // 2 steps * (2*32 move + 32 add) = 192 cycles.
        assert_eq!(d.compute_cycles, 192);
    }

    #[test]
    fn reduce_256_lanes() {
        let mut a = arr();
        let value = Operand::new(0, 32).unwrap();
        let scratch = Operand::new(32, 32).unwrap();
        let mut expected = 0u64;
        for lane in 0..COLS {
            let v = (lane * 37 + 5) as u64;
            a.poke_lane(lane, value, v);
            expected += v;
        }
        a.reduce_sum(value, scratch, COLS).unwrap();
        assert_eq!(a.peek_lane(0, value), expected);
    }

    #[test]
    fn reduce_rejects_non_power_of_two() {
        let mut a = arr();
        let value = Operand::new(0, 32).unwrap();
        let scratch = Operand::new(32, 32).unwrap();
        assert_eq!(
            a.reduce_sum(value, scratch, 3),
            Err(SramError::NonPowerOfTwoLanes { lanes: 3 })
        );
    }

    #[test]
    fn reduce_max_and_min() {
        let mut a = arr();
        let value = Operand::new(0, 16).unwrap();
        let scratch = Operand::new(16, 16).unwrap();
        let cmp = Operand::new(32, 16).unwrap();
        let vals = [7u64, 900, 3, 512, 44, 44, 0, 65535];
        for (lane, v) in vals.into_iter().enumerate() {
            a.poke_lane(lane, value, v);
        }
        a.reduce_max(value, scratch, cmp, 250, 8).unwrap();
        assert_eq!(a.peek_lane(0, value), 65535);
        for (lane, v) in vals.into_iter().enumerate() {
            a.poke_lane(lane, value, v);
        }
        a.reduce_min(value, scratch, cmp, 250, 8).unwrap();
        assert_eq!(a.peek_lane(0, value), 0);
    }

    #[test]
    fn grouped_reduction_reduces_each_group_independently() {
        // 4 groups of 8 lanes — one array reducing the channels of four
        // packed filters at once.
        let mut a = arr();
        let value = Operand::new(0, 32).unwrap();
        let scratch = Operand::new(32, 32).unwrap();
        let mut expected = [0u64; 4];
        for (g, want) in expected.iter_mut().enumerate() {
            for l in 0..8 {
                let v = (g * 100 + l * 7 + 1) as u64;
                a.poke_lane(g * 8 + l, value, v);
                *want += v;
            }
        }
        a.reduce_sum_grouped(value, scratch, 8, 4).unwrap();
        for (g, want) in expected.into_iter().enumerate() {
            assert_eq!(a.peek_lane(g * 8, value), want, "group {g}");
        }
    }

    #[test]
    fn grouped_reduction_with_single_lane_groups_is_noop() {
        let mut a = arr();
        let value = Operand::new(0, 32).unwrap();
        let scratch = Operand::new(32, 32).unwrap();
        a.poke_lane(0, value, 5);
        a.poke_lane(1, value, 7);
        let d = a.reduce_sum_grouped(value, scratch, 1, 2).unwrap();
        assert_eq!(d.compute_cycles, 0);
        assert_eq!(a.peek_lane(0, value), 5);
        assert_eq!(a.peek_lane(1, value), 7);
    }

    #[test]
    fn move_lanes_preserves_untouched_lanes() {
        let mut a = arr();
        let src = Operand::new(0, 8).unwrap();
        let dst = Operand::new(8, 8).unwrap();
        a.poke_lane(4, src, 99);
        a.poke_lane(10, dst, 123);
        a.move_lanes(src, dst, 4, 4).unwrap();
        assert_eq!(a.peek_lane(0, dst), 99, "lane 0 receives lane 4's value");
        assert_eq!(a.peek_lane(10, dst), 123, "lane 10 untouched");
    }
}
