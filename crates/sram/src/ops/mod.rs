//! High-level bit-serial operations composed from single-cycle micro-ops.
//!
//! Every operation in this module is implemented as a sequence of the
//! [`ComputeArray`](crate::ComputeArray) micro-ops (plus, for lane moves, the
//! sense-amp-cycling model of [`LANE_MOVE_CYCLES_PER_ROW`]), so its cycle count is
//! *derived from the micro-op sequence* rather than asserted. Each operation
//! returns the [`CycleStats`](crate::CycleStats) delta it consumed; the
//! `neural-cache` crate's `DerivedCostModel` is calibrated directly against
//! these deltas (and a test asserts they stay in sync).
//!
//! Paper cost reference (Section III): addition `n+1`, multiplication
//! `n^2+5n-2`, division `1.5n^2+5.5n`. The derived sequences here are close
//! but not identical (see `DESIGN.md` §6); both cost models are available to
//! the timing simulator.

mod add;
mod cmp;
mod div;
mod logic;
mod mul;
mod reduce;
mod transfer;

pub use div::div_scratch_bits;
pub use logic::LogicOp;
pub use reduce::LANE_MOVE_CYCLES_PER_ROW;
pub use transfer::copy_lanes_between;
