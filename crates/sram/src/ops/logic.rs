//! Region-wide copies, constants, complements, logic ops and equality search.

use crate::{ComputeArray, CycleStats, Operand, Predicate, Result, SramError};

impl ComputeArray {
    /// Zeroes an operand on every lane (`bits` compute cycles — the bulk
    /// zeroing primitive of Compute Cache).
    ///
    /// # Errors
    ///
    /// Fails if the operand overlaps the dedicated zero row.
    pub fn zero(&mut self, op: Operand) -> Result<CycleStats> {
        let before = self.stats();
        for i in 0..op.bits() {
            self.op_write_const(op.row(i), false, Predicate::Always)?;
        }
        Ok(self.stats() - before)
    }

    /// Writes the broadcast constant `k` into the operand on every lane
    /// (`bits` compute cycles, one constant row-write per bit).
    ///
    /// # Errors
    ///
    /// Fails if `k` does not fit in the operand or the operand overlaps the
    /// zero row.
    pub fn broadcast_scalar(&mut self, op: Operand, k: u64) -> Result<CycleStats> {
        if op.bits() < 64 && k > op.max_value() {
            return Err(SramError::DestinationTooNarrow {
                needed: 64 - k.leading_zeros() as usize,
                available: op.bits(),
            });
        }
        let before = self.stats();
        for i in 0..op.bits() {
            let bit = i < 64 && (k >> i) & 1 == 1;
            self.op_write_const(op.row(i), bit, Predicate::Always)?;
        }
        Ok(self.stats() - before)
    }

    /// Copies operand `src` to `dst` on every lane, optionally tag-gated
    /// (`bits` compute cycles). Widths must match; use
    /// [`ComputeArray::copy_zext`] to widen.
    ///
    /// # Errors
    ///
    /// Fails on width mismatch or partial overlap of the two regions.
    pub fn copy(&mut self, src: Operand, dst: Operand, pred: Predicate) -> Result<CycleStats> {
        if src.bits() != dst.bits() {
            return Err(SramError::DestinationTooNarrow {
                needed: src.bits(),
                available: dst.bits(),
            });
        }
        if src.overlaps(&dst) && src != dst {
            return Err(SramError::OverlappingOperands {
                what: "copy source and destination partially overlap",
            });
        }
        let before = self.stats();
        if src != dst {
            for i in 0..src.bits() {
                self.op_copy(src.row(i), dst.row(i), pred)?;
            }
        }
        Ok(self.stats() - before)
    }

    /// Copies `src` into the wider `dst`, zero-extending the upper bits
    /// (`dst.bits()` compute cycles).
    ///
    /// # Errors
    ///
    /// Fails if `dst` is narrower than `src` or the regions overlap.
    pub fn copy_zext(&mut self, src: Operand, dst: Operand) -> Result<CycleStats> {
        if dst.bits() < src.bits() {
            return Err(SramError::DestinationTooNarrow {
                needed: src.bits(),
                available: dst.bits(),
            });
        }
        if src.overlaps(&dst) {
            return Err(SramError::OverlappingOperands {
                what: "zero-extending copy source and destination overlap",
            });
        }
        let before = self.stats();
        for i in 0..src.bits() {
            self.op_copy(src.row(i), dst.row(i), Predicate::Always)?;
        }
        for i in src.bits()..dst.bits() {
            self.op_write_const(dst.row(i), false, Predicate::Always)?;
        }
        Ok(self.stats() - before)
    }

    /// Column-wise complement of an operand (`bits` compute cycles). In-place
    /// operation (`src == dst`) is allowed.
    ///
    /// # Errors
    ///
    /// Requires the dedicated zero row; fails on width mismatch or partial
    /// overlap.
    pub fn not_region(&mut self, src: Operand, dst: Operand) -> Result<CycleStats> {
        if src.bits() != dst.bits() {
            return Err(SramError::DestinationTooNarrow {
                needed: src.bits(),
                available: dst.bits(),
            });
        }
        if src.overlaps(&dst) && src != dst {
            return Err(SramError::OverlappingOperands {
                what: "complement source and destination partially overlap",
            });
        }
        let before = self.stats();
        for i in 0..src.bits() {
            self.op_not(src.row(i), dst.row(i), Predicate::Always)?;
        }
        Ok(self.stats() - before)
    }

    /// Column-wise binary logic over two equal-width operands into `dst`
    /// (`bits` compute cycles). `op` selects AND/OR/XOR/NOR.
    ///
    /// # Errors
    ///
    /// Fails on width mismatch or when `dst` partially overlaps an input.
    pub fn logic_region(
        &mut self,
        op: LogicOp,
        a: Operand,
        b: Operand,
        dst: Operand,
    ) -> Result<CycleStats> {
        if a.bits() != b.bits() || a.bits() != dst.bits() {
            return Err(SramError::DestinationTooNarrow {
                needed: a.bits().max(b.bits()),
                available: dst.bits(),
            });
        }
        if a.overlaps(&b) {
            return Err(SramError::OverlappingOperands {
                what: "logic inputs overlap (two-row activation needs distinct rows)",
            });
        }
        if (dst.overlaps(&a) && dst != a) || (dst.overlaps(&b) && dst != b) {
            return Err(SramError::OverlappingOperands {
                what: "logic destination partially overlaps an input",
            });
        }
        let before = self.stats();
        for i in 0..a.bits() {
            match op {
                LogicOp::And => self.op_and(a.row(i), b.row(i), dst.row(i), Predicate::Always)?,
                LogicOp::Or => self.op_or(a.row(i), b.row(i), dst.row(i), Predicate::Always)?,
                LogicOp::Xor => self.op_xor(a.row(i), b.row(i), dst.row(i), Predicate::Always)?,
                LogicOp::Nor => self.op_nor(a.row(i), b.row(i), dst.row(i), Predicate::Always)?,
            }
        }
        Ok(self.stats() - before)
    }

    /// Bit-serial equality search against a broadcast constant: after the
    /// call, the tag latch holds `1` exactly on lanes whose operand equals
    /// `k` (`bits` compute cycles). This is the Compute Cache search
    /// primitive.
    ///
    /// # Errors
    ///
    /// Requires the zero row (complement senses); fails if `k` does not fit.
    pub fn search_eq_scalar(&mut self, op: Operand, k: u64) -> Result<CycleStats> {
        if op.bits() < 64 && k > op.max_value() {
            return Err(SramError::DestinationTooNarrow {
                needed: 64 - k.leading_zeros() as usize,
                available: op.bits(),
            });
        }
        let before = self.stats();
        self.preset_tag(true);
        for i in 0..op.bits() {
            let want_one = i < 64 && (k >> i) & 1 == 1;
            self.op_and_tag(op.row(i), !want_one)?;
        }
        Ok(self.stats() - before)
    }
}

/// Binary logic operation selector for [`ComputeArray::logic_region`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicOp {
    /// Column-wise AND (direct bit-line sense).
    And,
    /// Column-wise OR (complement of the NOR sense).
    Or,
    /// Column-wise XOR (peripheral combination of both senses).
    Xor,
    /// Column-wise NOR (direct bit-line-complement sense).
    Nor,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> ComputeArray {
        ComputeArray::with_zero_row(255).unwrap()
    }

    #[test]
    fn zero_and_broadcast() {
        let mut a = arr();
        let op = Operand::new(0, 16).unwrap();
        a.poke_lane(3, op, 0xFFFF);
        let d = a.zero(op).unwrap();
        assert_eq!(d.compute_cycles, 16);
        assert_eq!(a.peek_lane(3, op), 0);
        let d = a.broadcast_scalar(op, 0xBEEF).unwrap();
        assert_eq!(d.compute_cycles, 16);
        for lane in [0, 100, 255] {
            assert_eq!(a.peek_lane(lane, op), 0xBEEF);
        }
        assert!(a.broadcast_scalar(Operand::new(0, 4).unwrap(), 16).is_err());
    }

    #[test]
    fn copy_and_zext() {
        let mut a = arr();
        let src = Operand::new(0, 8).unwrap();
        let dst = Operand::new(8, 8).unwrap();
        let wide = Operand::new(16, 12).unwrap();
        a.poke_lane(7, src, 0xA5);
        a.copy(src, dst, Predicate::Always).unwrap();
        assert_eq!(a.peek_lane(7, dst), 0xA5);
        let d = a.copy_zext(src, wide).unwrap();
        assert_eq!(d.compute_cycles, 12);
        assert_eq!(a.peek_lane(7, wide), 0xA5);
        // Partial overlap is rejected.
        let overlap = Operand::new(4, 8).unwrap();
        assert!(a.copy(src, overlap, Predicate::Always).is_err());
    }

    #[test]
    fn not_region_is_complement() {
        let mut a = arr();
        let src = Operand::new(0, 8).unwrap();
        let dst = Operand::new(8, 8).unwrap();
        a.poke_lane(0, src, 0b1100_1010);
        a.not_region(src, dst).unwrap();
        assert_eq!(a.peek_lane(0, dst), 0b0011_0101);
        // In-place complement round-trips.
        a.not_region(dst, dst).unwrap();
        assert_eq!(a.peek_lane(0, dst), 0b1100_1010);
    }

    #[test]
    fn logic_region_semantics() {
        let mut a = arr();
        let x = Operand::new(0, 8).unwrap();
        let y = Operand::new(8, 8).unwrap();
        let out = Operand::new(16, 8).unwrap();
        a.poke_lane(11, x, 0b1010_1100);
        a.poke_lane(11, y, 0b0110_1010);
        a.logic_region(LogicOp::And, x, y, out).unwrap();
        assert_eq!(a.peek_lane(11, out), 0b0010_1000);
        a.logic_region(LogicOp::Or, x, y, out).unwrap();
        assert_eq!(a.peek_lane(11, out), 0b1110_1110);
        a.logic_region(LogicOp::Xor, x, y, out).unwrap();
        assert_eq!(a.peek_lane(11, out), 0b1100_0110);
        a.logic_region(LogicOp::Nor, x, y, out).unwrap();
        assert_eq!(a.peek_lane(11, out), 0b0001_0001);
    }

    #[test]
    fn search_finds_matching_lanes() {
        let mut a = arr();
        let op = Operand::new(0, 8).unwrap();
        a.poke_lane(1, op, 42);
        a.poke_lane(2, op, 43);
        a.poke_lane(3, op, 42);
        let d = a.search_eq_scalar(op, 42).unwrap();
        assert_eq!(d.compute_cycles, 8);
        assert!(!a.tag().get(0), "lane 0 holds 0 != 42");
        assert!(a.tag().get(1));
        assert!(!a.tag().get(2));
        assert!(a.tag().get(3));
    }

    #[test]
    fn search_for_zero_matches_empty_lanes() {
        let mut a = arr();
        let op = Operand::new(0, 8).unwrap();
        a.poke_lane(9, op, 1);
        a.search_eq_scalar(op, 0).unwrap();
        assert!(a.tag().get(0));
        assert!(!a.tag().get(9));
    }
}
