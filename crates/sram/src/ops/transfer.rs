//! Inter-array data transfers.
//!
//! When the channels of one filter exceed one array's 256 bit lines, the
//! reduction must continue *across* arrays (Section III-D). Two 8KB arrays
//! within a bank share sense amps, so a transfer between them is cheap; the
//! general case rides the intra-slice bus and is charged by the geometry
//! model on top of the per-array access cycles counted here.

use crate::{ComputeArray, CycleStats, Operand, Result, SramError, COLS};

/// Copies `lanes` lanes' worth of `src_op` in `src` into `dst_op` of `dst`,
/// lane `l` to lane `l` (optionally shifted by `dst_lane_offset`).
///
/// Charges one access cycle per row on the source (read-out) and one on the
/// destination (write-in); interconnect time/energy is accounted by the
/// caller's transfer model.
///
/// # Errors
///
/// Fails on width mismatch, lane overflow, or zero-row clobbering.
///
/// # Examples
///
/// ```
/// use nc_sram::{ComputeArray, Operand, ops::copy_lanes_between};
///
/// let mut a = ComputeArray::new();
/// let mut b = ComputeArray::new();
/// let op = Operand::new(0, 8)?;
/// a.poke_lane(3, op, 42);
/// copy_lanes_between(&mut a, op, &mut b, op, 0, 16)?;
/// assert_eq!(b.peek_lane(3, op), 42);
/// # Ok::<(), nc_sram::SramError>(())
/// ```
pub fn copy_lanes_between(
    src: &mut ComputeArray,
    src_op: Operand,
    dst: &mut ComputeArray,
    dst_op: Operand,
    dst_lane_offset: usize,
    lanes: usize,
) -> Result<CycleStats> {
    if src_op.bits() != dst_op.bits() {
        return Err(SramError::DestinationTooNarrow {
            needed: src_op.bits(),
            available: dst_op.bits(),
        });
    }
    if lanes == 0 || lanes > COLS || dst_lane_offset + lanes > COLS {
        return Err(SramError::ColOutOfRange {
            col: dst_lane_offset + lanes,
        });
    }
    dst.guard_zero_row(&dst_op)?;
    let before = src.stats() + dst.stats();
    for i in 0..src_op.bits() {
        let row = src.access_read_row(src_op.row(i))?;
        let dst_row_idx = dst_op.row(i);
        let mut target = dst.raw_cells_mut().read_row(dst_row_idx)?;
        for lane in 0..lanes {
            target.set(dst_lane_offset + lane, row.get(lane));
        }
        dst.raw_cells_mut().write_row(dst_row_idx, target)?;
        dst.charge_access(1);
    }
    Ok((src.stats() + dst.stats()) - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_moves_lanes_and_counts_access_cycles() {
        let mut a = ComputeArray::with_zero_row(255).unwrap();
        let mut b = ComputeArray::with_zero_row(255).unwrap();
        let op = Operand::new(0, 32).unwrap();
        for lane in 0..64 {
            a.poke_lane(lane, op, lane as u64 * 1000);
        }
        let d = copy_lanes_between(&mut a, op, &mut b, op, 64, 64).unwrap();
        for lane in 0..64 {
            assert_eq!(b.peek_lane(64 + lane, op), lane as u64 * 1000);
        }
        assert_eq!(d.access_cycles, 64, "32 reads + 32 writes");
        assert_eq!(d.compute_cycles, 0);
    }

    #[test]
    fn transfer_rejects_zero_row_clobber() {
        let mut a = ComputeArray::new();
        let mut b = ComputeArray::with_zero_row(10).unwrap();
        let op = Operand::new(0, 32).unwrap();
        assert!(copy_lanes_between(&mut a, op, &mut b, op, 0, 8).is_err());
    }
}
