//! Comparisons, max/min, `ReLU`, and saturation — the predication-based
//! supporting functions of Section IV-D.

use crate::{ComputeArray, CycleStats, Operand, Predicate, Result, SramError};

impl ComputeArray {
    /// Trial subtraction that leaves `a - b`'s **no-borrow flag** in the
    /// carry latch without modifying `a`, `b`, or any named region other
    /// than the single `dump_row` (which receives meaningless sums).
    ///
    /// After the call, lane `l`'s carry is `1` iff `a[l] >= b[l]` unsigned.
    /// Takes `2n` compute cycles (`n` complement + `n` adds).
    ///
    /// # Errors
    ///
    /// Requires the zero row; `scratch` must hold `n` bits disjoint from the
    /// inputs, and `dump_row` must lie outside every named region.
    pub fn compare_ge(
        &mut self,
        a: Operand,
        b: Operand,
        scratch: Operand,
        dump_row: usize,
    ) -> Result<CycleStats> {
        let n = a.bits();
        if b.bits() != n {
            return Err(SramError::OverlappingOperands {
                what: "comparison operands must have equal widths",
            });
        }
        if scratch.bits() < n {
            return Err(SramError::DestinationTooNarrow {
                needed: n,
                available: scratch.bits(),
            });
        }
        if scratch.overlaps(&a) || scratch.overlaps(&b) || a.overlaps(&b) {
            return Err(SramError::OverlappingOperands {
                what: "comparison regions must be pairwise disjoint",
            });
        }
        if a.contains_row(dump_row) || b.contains_row(dump_row) || scratch.contains_row(dump_row) {
            return Err(SramError::OverlappingOperands {
                what: "dump row lies inside a comparison region",
            });
        }
        let before = self.stats();
        for i in 0..n {
            self.op_not(b.row(i), scratch.row(i), Predicate::Always)?;
        }
        self.preset_carry(true);
        for i in 0..n {
            self.op_full_add(a.row(i), scratch.row(i), dump_row, Predicate::Always)?;
        }
        Ok(self.stats() - before)
    }

    /// Unsigned lane-wise running maximum: `acc <- max(acc, x)`.
    ///
    /// This is the paper's max dataflow: subtract the candidate from the
    /// temporary maximum, use the borrow as a mask, and selectively copy the
    /// candidate over the maximum (Section IV-D). `3n + 2` compute cycles.
    ///
    /// # Errors
    ///
    /// Same constraints as [`ComputeArray::compare_ge`].
    pub fn max_assign(
        &mut self,
        acc: Operand,
        x: Operand,
        scratch: Operand,
        dump_row: usize,
    ) -> Result<CycleStats> {
        let before = self.stats();
        self.compare_ge(acc, x, scratch, dump_row)?;
        // carry = (acc >= x); replace where acc < x.
        self.op_write_carry(dump_row, Predicate::Always)?;
        self.op_load_tag_not(dump_row)?;
        self.copy(x, acc, Predicate::Tag)?;
        Ok(self.stats() - before)
    }

    /// Unsigned lane-wise running minimum: `acc <- min(acc, x)`
    /// (`3n + 2` compute cycles).
    ///
    /// # Errors
    ///
    /// Same constraints as [`ComputeArray::compare_ge`].
    pub fn min_assign(
        &mut self,
        acc: Operand,
        x: Operand,
        scratch: Operand,
        dump_row: usize,
    ) -> Result<CycleStats> {
        let before = self.stats();
        self.compare_ge(acc, x, scratch, dump_row)?;
        // carry = (acc >= x); replace where acc >= x (ties copy harmlessly).
        self.op_write_carry(dump_row, Predicate::Always)?;
        self.op_load_tag(dump_row)?;
        self.copy(x, acc, Predicate::Tag)?;
        Ok(self.stats() - before)
    }

    /// `ReLU` on a two's-complement operand: lanes with a set sign bit are
    /// overwritten with zero, using the MSB as the write-enable mask exactly
    /// as described in Section IV-D. `n + 1` compute cycles.
    ///
    /// # Errors
    ///
    /// Propagates row errors.
    pub fn relu(&mut self, x: Operand) -> Result<CycleStats> {
        let before = self.stats();
        self.op_load_tag(x.msb_row())?;
        for i in 0..x.bits() {
            self.op_write_const(x.row(i), false, Predicate::Tag)?;
        }
        Ok(self.stats() - before)
    }

    /// Saturating clamp against a broadcast constant: lanes whose unsigned
    /// value exceeds `k` are overwritten with `k` (`2n + 2` compute cycles).
    /// Used as the final saturation of the requantization pipeline.
    ///
    /// # Errors
    ///
    /// Fails if `k` does not fit in the operand or `dump_row` lies inside it.
    pub fn clamp_max_scalar(&mut self, op: Operand, k: u64, dump_row: usize) -> Result<CycleStats> {
        if op.bits() < 64 && k >= op.max_value() {
            // k == max is a no-op clamp; treat "k beyond range" as an error
            // only when it cannot fit at all.
            if k > op.max_value() {
                return Err(SramError::DestinationTooNarrow {
                    needed: 64 - k.leading_zeros() as usize,
                    available: op.bits(),
                });
            }
        }
        if op.contains_row(dump_row) {
            return Err(SramError::OverlappingOperands {
                what: "dump row lies inside the clamped region",
            });
        }
        let before = self.stats();
        // carry = (op >= k + 1) = (op > k), via op + ~(k+1) + 1.
        let Some(threshold) = k.checked_add(1) else {
            return Ok(CycleStats::new()); // nothing exceeds u64::MAX
        };
        let notk = !threshold;
        self.preset_carry(true);
        for i in 0..op.bits() {
            let bit = i < 64 && (notk >> i) & 1 == 1;
            self.op_full_add_const(op.row(i), bit, dump_row, Predicate::Always)?;
        }
        self.op_write_carry(dump_row, Predicate::Always)?;
        self.op_load_tag(dump_row)?;
        for i in 0..op.bits() {
            let bit = i < 64 && (k >> i) & 1 == 1;
            self.op_write_const(op.row(i), bit, Predicate::Tag)?;
        }
        Ok(self.stats() - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> ComputeArray {
        ComputeArray::with_zero_row(255).unwrap()
    }

    const DUMP: usize = 250;

    #[test]
    fn compare_sets_carry_per_lane() {
        let mut a = arr();
        let x = Operand::new(0, 8).unwrap();
        let y = Operand::new(8, 8).unwrap();
        let s = Operand::new(16, 8).unwrap();
        let cases = [(10u64, 20u64), (20, 10), (7, 7), (0, 255)];
        for (lane, (p, q)) in cases.iter().enumerate() {
            a.poke_lane(lane, x, *p);
            a.poke_lane(lane, y, *q);
        }
        a.compare_ge(x, y, s, DUMP).unwrap();
        for (lane, (p, q)) in cases.iter().enumerate() {
            assert_eq!(a.carry().get(lane), p >= q, "{p} >= {q}");
        }
        // Operands unchanged.
        for (lane, (p, q)) in cases.iter().enumerate() {
            assert_eq!(a.peek_lane(lane, x), *p);
            assert_eq!(a.peek_lane(lane, y), *q);
        }
    }

    #[test]
    fn max_min_running() {
        let mut a = arr();
        let acc = Operand::new(0, 8).unwrap();
        let x = Operand::new(8, 8).unwrap();
        let s = Operand::new(16, 8).unwrap();
        let cases = [(10u64, 20u64), (200, 100), (7, 7)];
        for (lane, (p, q)) in cases.iter().enumerate() {
            a.poke_lane(lane, acc, *p);
            a.poke_lane(lane, x, *q);
        }
        let d = a.max_assign(acc, x, s, DUMP).unwrap();
        assert_eq!(d.compute_cycles, 3 * 8 + 2);
        for (lane, (p, q)) in cases.iter().enumerate() {
            assert_eq!(a.peek_lane(lane, acc), *p.max(q));
        }
        for (lane, (p, q)) in cases.iter().enumerate() {
            a.poke_lane(lane, acc, *p);
            a.poke_lane(lane, x, *q);
        }
        a.min_assign(acc, x, s, DUMP).unwrap();
        for (lane, (p, q)) in cases.iter().enumerate() {
            assert_eq!(a.peek_lane(lane, acc), *p.min(q));
        }
    }

    #[test]
    fn relu_zeroes_negative_lanes() {
        let mut a = arr();
        let x = Operand::new(0, 16).unwrap();
        a.poke_lane_signed(0, x, -5);
        a.poke_lane_signed(1, x, 5);
        a.poke_lane_signed(2, x, 0);
        a.poke_lane_signed(3, x, -32768);
        let d = a.relu(x).unwrap();
        assert_eq!(d.compute_cycles, 17);
        assert_eq!(a.peek_lane_signed(0, x), 0);
        assert_eq!(a.peek_lane_signed(1, x), 5);
        assert_eq!(a.peek_lane_signed(2, x), 0);
        assert_eq!(a.peek_lane_signed(3, x), 0);
    }

    #[test]
    fn clamp_saturates() {
        let mut a = arr();
        let x = Operand::new(0, 16).unwrap();
        for (lane, v) in [0u64, 255, 256, 40000].into_iter().enumerate() {
            a.poke_lane(lane, x, v);
        }
        a.clamp_max_scalar(x, 255, DUMP).unwrap();
        for (lane, v) in [0u64, 255, 255, 255].into_iter().enumerate() {
            assert_eq!(a.peek_lane(lane, x), v);
        }
    }
}
