//! Area model for the compute-augmented SRAM array (Figure 12) and the
//! Neural Cache control overheads (Section IV-F).
//!
//! The paper's 28 nm layout adds 7 µm of column-peripheral height to a
//! 248 µm x ~115 µm 8KB array — a 7.5% array-area overhead that translates
//! to less than 2% of the processor die (over 70% of which is cache-like
//! storage). TMUs add 0.019 mm² each and every bank carries a 204 µm²
//! control FSM.

/// Area accounting for one compute-capable 8KB SRAM array and the chip-level
/// overheads of Neural Cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Width of the 8KB array including word-line drivers, µm (Figure 12).
    pub array_width_um: f64,
    /// Height of the base array (cells + decoder share), µm.
    pub array_height_um: f64,
    /// Extra column-peripheral height added for computation, µm.
    pub compute_extra_height_um: f64,
    /// Area of one transpose memory unit, mm².
    pub tmu_area_mm2: f64,
    /// Area of one per-bank control FSM, µm².
    pub fsm_area_um2: f64,
}

impl AreaModel {
    /// The paper's 28 nm layout numbers.
    #[must_use]
    pub const fn paper_28nm() -> Self {
        AreaModel {
            array_width_um: 263.0,
            // Chosen so the compute overhead is the published 7.5%:
            // 7 µm extra on a 93.3 µm base -> 7.5%.
            array_height_um: 93.3,
            compute_extra_height_um: 7.0,
            tmu_area_mm2: 0.019,
            fsm_area_um2: 204.0,
        }
    }

    /// Fractional area overhead of compute support per array
    /// (paper: 7.5%).
    #[must_use]
    pub fn array_overhead_fraction(&self) -> f64 {
        self.compute_extra_height_um / self.array_height_um
    }

    /// Base area of one 8KB array, mm².
    #[must_use]
    pub fn array_base_area_mm2(&self) -> f64 {
        self.array_width_um * self.array_height_um * 1e-6
    }

    /// Added compute area of one 8KB array, mm².
    #[must_use]
    pub fn array_compute_area_mm2(&self) -> f64 {
        self.array_width_um * self.compute_extra_height_um * 1e-6
    }

    /// Total added compute area over `arrays` arrays, mm².
    #[must_use]
    pub fn total_compute_area_mm2(&self, arrays: usize) -> f64 {
        self.array_compute_area_mm2() * arrays as f64
    }

    /// Total control-FSM area over `banks` banks, mm²
    /// (paper: 1120 banks x 204 µm² = 0.23 mm² for the 14-slice Xeon).
    #[must_use]
    pub fn total_fsm_area_mm2(&self, banks: usize) -> f64 {
        self.fsm_area_um2 * banks as f64 * 1e-6
    }

    /// Die-level overhead fraction given the die area and the cache fraction
    /// of the die (paper: >70% storage => <2% die overhead).
    #[must_use]
    pub fn die_overhead_fraction(&self, cache_area_fraction: f64) -> f64 {
        self.array_overhead_fraction() * cache_area_fraction.clamp(0.0, 1.0) * 0.35
        // Only data arrays (roughly a third of slice area alongside tag,
        // LRU, control and wiring) grow; the remaining cache area is
        // unchanged.
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::paper_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_overhead_is_7_5_percent() {
        let m = AreaModel::paper_28nm();
        assert!((m.array_overhead_fraction() - 0.075).abs() < 0.001);
    }

    #[test]
    fn xeon_fsm_area_matches_paper() {
        let m = AreaModel::paper_28nm();
        // 14 slices x 80 banks = 1120 control FSMs -> ~0.23 mm^2.
        let total = m.total_fsm_area_mm2(1120);
        assert!((total - 0.2285).abs() < 0.01, "got {total}");
    }

    #[test]
    fn die_overhead_below_two_percent() {
        let m = AreaModel::paper_28nm();
        assert!(m.die_overhead_fraction(0.7) < 0.02);
    }
}
