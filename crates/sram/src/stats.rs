//! Cycle accounting and the paper's per-cycle timing/energy constants.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Cycle counters for one compute array (or an aggregate of arrays).
///
/// Neural Cache distinguishes two cycle types with different delay and
/// energy (paper Section V):
///
/// - **compute cycles**: two-row activation + write-back (1022 ps, 15.4 pJ at
///   22 nm for 256 bit lines);
/// - **access cycles**: conventional single-row SRAM reads/writes used for
///   data streaming (654 ps, 8.6 pJ at 22 nm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct CycleStats {
    /// Number of two-row compute cycles executed.
    pub compute_cycles: u64,
    /// Number of conventional access cycles executed.
    pub access_cycles: u64,
    /// Multiplier-bit rounds scheduled by vector multiplications (one per
    /// multiplier bit per [`crate::ComputeArray::mul`]-family call).
    pub mul_rounds: u64,
    /// Multiplier-bit rounds elided because the **weight** bit-slice row
    /// was zero on every lane ([`crate::ComputeArray::mul_skip_zero_rows`]);
    /// always `<= mul_rounds`, and 0 under dense execution.
    pub skipped_rounds: u64,
    /// Compute cycles the dense round schedule would have spent on work
    /// that was elided — whole skipped rounds (weight- or input-side) plus
    /// the add-chain cycles truncated by
    /// [`crate::ComputeArray::mul_skip_both`]. **Not** included in
    /// `compute_cycles`, which only counts cycles actually executed.
    pub skipped_cycles: u64,
    /// Tag-latch wired-NOR zero-detect cycles spent probing dynamic
    /// (input) multiplier bit-slices — one per scheduled round of the
    /// [`crate::ComputeArray::mul_skip_zero_input_bits`] family. These are
    /// real executed cycles (also counted in `compute_cycles`): the dense
    /// schedule never pays them, so they offset the input-skip savings.
    pub detect_cycles: u64,
    /// Multiplier-bit rounds elided because the **input** bit-slice row
    /// was detected zero on every lane at run time; always `<= mul_rounds`,
    /// and 0 under dense or weight-only-skip execution.
    pub input_rounds_skipped: u64,
}

impl CycleStats {
    /// A zeroed counter set.
    #[must_use]
    pub const fn new() -> Self {
        CycleStats {
            compute_cycles: 0,
            access_cycles: 0,
            mul_rounds: 0,
            skipped_rounds: 0,
            skipped_cycles: 0,
            detect_cycles: 0,
            input_rounds_skipped: 0,
        }
    }

    /// Fraction of scheduled multiplier-bit rounds elided for weight
    /// sparsity (0 when no vector multiply ran).
    #[must_use]
    pub fn skip_fraction(&self) -> f64 {
        if self.mul_rounds == 0 {
            0.0
        } else {
            self.skipped_rounds as f64 / self.mul_rounds as f64
        }
    }

    /// Fraction of scheduled multiplier-bit rounds elided by the dynamic
    /// input-bit zero detect (0 when no vector multiply ran).
    #[must_use]
    pub fn input_skip_fraction(&self) -> f64 {
        if self.mul_rounds == 0 {
            0.0
        } else {
            self.input_rounds_skipped as f64 / self.mul_rounds as f64
        }
    }

    /// Total cycles of either kind.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.access_cycles
    }

    /// Wall-clock seconds under the given timing model, with every cycle
    /// issued at the compute-mode frequency (the conservative clock Neural
    /// Cache runs while any array is computing).
    #[must_use]
    pub fn seconds(&self, timings: &ArrayTimings) -> f64 {
        self.total_cycles() as f64 / timings.compute_freq_hz
    }

    /// Energy in joules consumed by this many cycles of one array under the
    /// given energy model.
    #[must_use]
    pub fn energy_joules(&self, energy: &ArrayEnergy) -> f64 {
        (self.compute_cycles as f64 * energy.compute_cycle_pj
            + self.access_cycles as f64 * energy.access_cycle_pj)
            * 1e-12
    }
}

impl Add for CycleStats {
    type Output = CycleStats;
    fn add(self, rhs: CycleStats) -> CycleStats {
        CycleStats {
            compute_cycles: self.compute_cycles + rhs.compute_cycles,
            access_cycles: self.access_cycles + rhs.access_cycles,
            mul_rounds: self.mul_rounds + rhs.mul_rounds,
            skipped_rounds: self.skipped_rounds + rhs.skipped_rounds,
            skipped_cycles: self.skipped_cycles + rhs.skipped_cycles,
            detect_cycles: self.detect_cycles + rhs.detect_cycles,
            input_rounds_skipped: self.input_rounds_skipped + rhs.input_rounds_skipped,
        }
    }
}

impl AddAssign for CycleStats {
    fn add_assign(&mut self, rhs: CycleStats) {
        *self = *self + rhs;
    }
}

impl Sub for CycleStats {
    type Output = CycleStats;
    /// Difference between two counter snapshots (used to report the cycles a
    /// single high-level operation consumed).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is not an earlier snapshot of `self`.
    fn sub(self, rhs: CycleStats) -> CycleStats {
        debug_assert!(self.compute_cycles >= rhs.compute_cycles);
        debug_assert!(self.access_cycles >= rhs.access_cycles);
        debug_assert!(self.mul_rounds >= rhs.mul_rounds);
        debug_assert!(self.skipped_rounds >= rhs.skipped_rounds);
        debug_assert!(self.skipped_cycles >= rhs.skipped_cycles);
        debug_assert!(self.detect_cycles >= rhs.detect_cycles);
        debug_assert!(self.input_rounds_skipped >= rhs.input_rounds_skipped);
        CycleStats {
            compute_cycles: self.compute_cycles - rhs.compute_cycles,
            access_cycles: self.access_cycles - rhs.access_cycles,
            mul_rounds: self.mul_rounds - rhs.mul_rounds,
            skipped_rounds: self.skipped_rounds - rhs.skipped_rounds,
            skipped_cycles: self.skipped_cycles - rhs.skipped_cycles,
            detect_cycles: self.detect_cycles - rhs.detect_cycles,
            input_rounds_skipped: self.input_rounds_skipped - rhs.input_rounds_skipped,
        }
    }
}

impl fmt::Display for CycleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} compute + {} access cycles",
            self.compute_cycles, self.access_cycles
        )?;
        if self.skipped_rounds > 0 || self.input_rounds_skipped > 0 {
            write!(
                f,
                " ({} of {} mul rounds skipped, {} cycles saved",
                self.skipped_rounds + self.input_rounds_skipped,
                self.mul_rounds,
                self.skipped_cycles
            )?;
            if self.detect_cycles > 0 {
                write!(f, ", {} detect cycles charged", self.detect_cycles)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Running minimum/maximum of signed accumulator values observed during
/// execution.
///
/// The value-range certifier in `nc-verify` proves static per-layer
/// accumulator intervals; both execution engines track the values actually
/// materialised so the static claim can be reconciled against reality.
/// `observe`/`merge` are order-independent, which keeps the tracker exact
/// under the threaded engine's nondeterministic shard completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValueStats {
    /// Smallest value observed, or `i64::MAX` if nothing was observed yet.
    pub min: i64,
    /// Largest value observed, or `i64::MIN` if nothing was observed yet.
    pub max: i64,
}

impl ValueStats {
    /// An empty tracker (identity element of [`ValueStats::merge`]).
    #[must_use]
    pub const fn new() -> Self {
        ValueStats {
            min: i64::MAX,
            max: i64::MIN,
        }
    }

    /// `true` until the first [`ValueStats::observe`] call.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.min > self.max
    }

    /// Fold one observed value into the running extrema.
    pub const fn observe(&mut self, value: i64) {
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Combine two trackers (commutative and associative).
    #[must_use]
    pub const fn merge(self, rhs: ValueStats) -> ValueStats {
        ValueStats {
            min: if rhs.min < self.min {
                rhs.min
            } else {
                self.min
            },
            max: if rhs.max > self.max {
                rhs.max
            } else {
                self.max
            },
        }
    }
}

impl Default for ValueStats {
    fn default() -> Self {
        ValueStats::new()
    }
}

impl fmt::Display for ValueStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[empty]")
        } else {
            write!(f, "[{}, {}]", self.min, self.max)
        }
    }
}

/// Per-cycle delay constants for the compute SRAM array.
///
/// The paper's SPICE simulation of the 28 nm computational 8KB array gives a
/// 1022 ps compute cycle (vs. 654 ps for a normal read from the foundry
/// memory compiler — about 1.6x slower), and Neural Cache conservatively
/// clocks compute at 2.5 GHz while the Xeon arrays are rated for 4 GHz
/// normal accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayTimings {
    /// Clock used while the cache is in compute mode, in hertz.
    pub compute_freq_hz: f64,
    /// Clock of conventional cache accesses, in hertz.
    pub access_freq_hz: f64,
    /// SPICE-simulated compute-cycle latency, picoseconds.
    pub compute_delay_ps: f64,
    /// Foundry-compiler normal read latency, picoseconds.
    pub read_delay_ps: f64,
}

impl ArrayTimings {
    /// The paper's operating point: 2.5 GHz compute, 4 GHz access.
    #[must_use]
    pub const fn paper() -> Self {
        ArrayTimings {
            compute_freq_hz: 2.5e9,
            access_freq_hz: 4.0e9,
            compute_delay_ps: 1022.0,
            read_delay_ps: 654.0,
        }
    }

    /// Ratio of compute-cycle latency to a normal read (paper: ~1.6x).
    #[must_use]
    pub fn compute_slowdown(&self) -> f64 {
        self.compute_delay_ps / self.read_delay_ps
    }
}

impl Default for ArrayTimings {
    fn default() -> Self {
        ArrayTimings::paper()
    }
}

/// Per-cycle energy constants for one 256-bit-line array operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayEnergy {
    /// Energy of one compute cycle over 256 bit lines, picojoules.
    pub compute_cycle_pj: f64,
    /// Energy of one conventional 256-bit access cycle, picojoules.
    pub access_cycle_pj: f64,
}

impl ArrayEnergy {
    /// SPICE-simulated values at the 28 nm test-chip node.
    #[must_use]
    pub const fn node_28nm() -> Self {
        ArrayEnergy {
            compute_cycle_pj: 25.7,
            access_cycle_pj: 13.9,
        }
    }

    /// Values scaled to the Xeon E5-2697 v3's 22 nm node (used for all
    /// Neural Cache results in the paper).
    #[must_use]
    pub const fn node_22nm() -> Self {
        ArrayEnergy {
            compute_cycle_pj: 15.4,
            access_cycle_pj: 8.6,
        }
    }
}

impl Default for ArrayEnergy {
    fn default() -> Self {
        ArrayEnergy::node_22nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = CycleStats::new();
        s += CycleStats {
            compute_cycles: 10,
            access_cycles: 2,
            ..CycleStats::new()
        };
        let t = s + CycleStats {
            compute_cycles: 5,
            access_cycles: 0,
            ..CycleStats::new()
        };
        assert_eq!(t.compute_cycles, 15);
        assert_eq!(t.access_cycles, 2);
        assert_eq!(t.total_cycles(), 17);
    }

    #[test]
    fn skip_counters_accumulate_and_report() {
        let mut s = CycleStats::new();
        assert_eq!(s.skip_fraction(), 0.0, "no multiplies yet");
        s += CycleStats {
            mul_rounds: 8,
            skipped_rounds: 6,
            skipped_cycles: 60,
            ..CycleStats::new()
        };
        s += CycleStats {
            mul_rounds: 8,
            compute_cycles: 96,
            ..CycleStats::new()
        };
        assert_eq!(s.mul_rounds, 16);
        assert_eq!(s.skipped_rounds, 6);
        assert!((s.skip_fraction() - 6.0 / 16.0).abs() < 1e-12);
        assert_eq!(s.total_cycles(), 96, "saved cycles are not executed cycles");
        let text = s.to_string();
        assert!(text.contains("6 of 16 mul rounds skipped"));
        assert!(text.contains("60 cycles saved"));
        assert!(!CycleStats::new().to_string().contains("skipped"));
    }

    #[test]
    fn dynamic_input_counters_accumulate_and_report() {
        let mut s = CycleStats::new();
        assert_eq!(s.input_skip_fraction(), 0.0, "no multiplies yet");
        s += CycleStats {
            compute_cycles: 48,
            mul_rounds: 8,
            input_rounds_skipped: 5,
            skipped_cycles: 50,
            detect_cycles: 8,
            ..CycleStats::new()
        };
        s += CycleStats {
            compute_cycles: 96,
            mul_rounds: 8,
            ..CycleStats::new()
        };
        assert_eq!(s.detect_cycles, 8);
        assert_eq!(s.input_rounds_skipped, 5);
        assert!((s.input_skip_fraction() - 5.0 / 16.0).abs() < 1e-12);
        assert_eq!(s.skip_fraction(), 0.0, "weight skips stay separate");
        let text = s.to_string();
        assert!(text.contains("5 of 16 mul rounds skipped"));
        assert!(text.contains("8 detect cycles charged"));
        let diff = s - CycleStats {
            compute_cycles: 48,
            mul_rounds: 8,
            input_rounds_skipped: 5,
            skipped_cycles: 50,
            detect_cycles: 8,
            ..CycleStats::new()
        };
        assert_eq!(diff.detect_cycles, 0);
        assert_eq!(diff.input_rounds_skipped, 0);
    }

    #[test]
    fn value_stats_merge_is_order_independent() {
        let mut a = ValueStats::new();
        assert!(a.is_empty());
        assert_eq!(a.to_string(), "[empty]");
        a.observe(-3);
        a.observe(17);
        let mut b = ValueStats::new();
        b.observe(5);
        b.observe(-40);
        assert_eq!(a.merge(b), b.merge(a));
        let m = a.merge(b);
        assert_eq!((m.min, m.max), (-40, 17));
        assert_eq!(m.merge(ValueStats::new()), m, "empty is the identity");
        assert_eq!(m.to_string(), "[-40, 17]");
    }

    #[test]
    fn paper_constants() {
        let t = ArrayTimings::paper();
        assert!((t.compute_slowdown() - 1.5627).abs() < 1e-3);
        let e22 = ArrayEnergy::node_22nm();
        assert_eq!(e22.compute_cycle_pj, 15.4);
        assert_eq!(e22.access_cycle_pj, 8.6);
        let e28 = ArrayEnergy::node_28nm();
        assert!(e28.compute_cycle_pj > e22.compute_cycle_pj);
    }

    #[test]
    fn energy_and_time_conversions() {
        let s = CycleStats {
            compute_cycles: 1_000_000,
            access_cycles: 0,
            ..CycleStats::new()
        };
        let e = s.energy_joules(&ArrayEnergy::node_22nm());
        assert!((e - 15.4e-6).abs() < 1e-12);
        let secs = s.seconds(&ArrayTimings::paper());
        assert!((secs - 4.0e-4).abs() < 1e-9);
    }
}
