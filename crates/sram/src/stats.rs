//! Cycle accounting and the paper's per-cycle timing/energy constants.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Cycle counters for one compute array (or an aggregate of arrays).
///
/// Neural Cache distinguishes two cycle types with different delay and
/// energy (paper Section V):
///
/// - **compute cycles**: two-row activation + write-back (1022 ps, 15.4 pJ at
///   22 nm for 256 bit lines);
/// - **access cycles**: conventional single-row SRAM reads/writes used for
///   data streaming (654 ps, 8.6 pJ at 22 nm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct CycleStats {
    /// Number of two-row compute cycles executed.
    pub compute_cycles: u64,
    /// Number of conventional access cycles executed.
    pub access_cycles: u64,
}

impl CycleStats {
    /// A zeroed counter set.
    #[must_use]
    pub const fn new() -> Self {
        CycleStats {
            compute_cycles: 0,
            access_cycles: 0,
        }
    }

    /// Total cycles of either kind.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.access_cycles
    }

    /// Wall-clock seconds under the given timing model, with every cycle
    /// issued at the compute-mode frequency (the conservative clock Neural
    /// Cache runs while any array is computing).
    #[must_use]
    pub fn seconds(&self, timings: &ArrayTimings) -> f64 {
        self.total_cycles() as f64 / timings.compute_freq_hz
    }

    /// Energy in joules consumed by this many cycles of one array under the
    /// given energy model.
    #[must_use]
    pub fn energy_joules(&self, energy: &ArrayEnergy) -> f64 {
        (self.compute_cycles as f64 * energy.compute_cycle_pj
            + self.access_cycles as f64 * energy.access_cycle_pj)
            * 1e-12
    }
}

impl Add for CycleStats {
    type Output = CycleStats;
    fn add(self, rhs: CycleStats) -> CycleStats {
        CycleStats {
            compute_cycles: self.compute_cycles + rhs.compute_cycles,
            access_cycles: self.access_cycles + rhs.access_cycles,
        }
    }
}

impl AddAssign for CycleStats {
    fn add_assign(&mut self, rhs: CycleStats) {
        self.compute_cycles += rhs.compute_cycles;
        self.access_cycles += rhs.access_cycles;
    }
}

impl Sub for CycleStats {
    type Output = CycleStats;
    /// Difference between two counter snapshots (used to report the cycles a
    /// single high-level operation consumed).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is not an earlier snapshot of `self`.
    fn sub(self, rhs: CycleStats) -> CycleStats {
        debug_assert!(self.compute_cycles >= rhs.compute_cycles);
        debug_assert!(self.access_cycles >= rhs.access_cycles);
        CycleStats {
            compute_cycles: self.compute_cycles - rhs.compute_cycles,
            access_cycles: self.access_cycles - rhs.access_cycles,
        }
    }
}

impl fmt::Display for CycleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} compute + {} access cycles",
            self.compute_cycles, self.access_cycles
        )
    }
}

/// Per-cycle delay constants for the compute SRAM array.
///
/// The paper's SPICE simulation of the 28 nm computational 8KB array gives a
/// 1022 ps compute cycle (vs. 654 ps for a normal read from the foundry
/// memory compiler — about 1.6x slower), and Neural Cache conservatively
/// clocks compute at 2.5 GHz while the Xeon arrays are rated for 4 GHz
/// normal accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayTimings {
    /// Clock used while the cache is in compute mode, in hertz.
    pub compute_freq_hz: f64,
    /// Clock of conventional cache accesses, in hertz.
    pub access_freq_hz: f64,
    /// SPICE-simulated compute-cycle latency, picoseconds.
    pub compute_delay_ps: f64,
    /// Foundry-compiler normal read latency, picoseconds.
    pub read_delay_ps: f64,
}

impl ArrayTimings {
    /// The paper's operating point: 2.5 GHz compute, 4 GHz access.
    #[must_use]
    pub const fn paper() -> Self {
        ArrayTimings {
            compute_freq_hz: 2.5e9,
            access_freq_hz: 4.0e9,
            compute_delay_ps: 1022.0,
            read_delay_ps: 654.0,
        }
    }

    /// Ratio of compute-cycle latency to a normal read (paper: ~1.6x).
    #[must_use]
    pub fn compute_slowdown(&self) -> f64 {
        self.compute_delay_ps / self.read_delay_ps
    }
}

impl Default for ArrayTimings {
    fn default() -> Self {
        ArrayTimings::paper()
    }
}

/// Per-cycle energy constants for one 256-bit-line array operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayEnergy {
    /// Energy of one compute cycle over 256 bit lines, picojoules.
    pub compute_cycle_pj: f64,
    /// Energy of one conventional 256-bit access cycle, picojoules.
    pub access_cycle_pj: f64,
}

impl ArrayEnergy {
    /// SPICE-simulated values at the 28 nm test-chip node.
    #[must_use]
    pub const fn node_28nm() -> Self {
        ArrayEnergy {
            compute_cycle_pj: 25.7,
            access_cycle_pj: 13.9,
        }
    }

    /// Values scaled to the Xeon E5-2697 v3's 22 nm node (used for all
    /// Neural Cache results in the paper).
    #[must_use]
    pub const fn node_22nm() -> Self {
        ArrayEnergy {
            compute_cycle_pj: 15.4,
            access_cycle_pj: 8.6,
        }
    }
}

impl Default for ArrayEnergy {
    fn default() -> Self {
        ArrayEnergy::node_22nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = CycleStats::new();
        s += CycleStats {
            compute_cycles: 10,
            access_cycles: 2,
        };
        let t = s + CycleStats {
            compute_cycles: 5,
            access_cycles: 0,
        };
        assert_eq!(t.compute_cycles, 15);
        assert_eq!(t.access_cycles, 2);
        assert_eq!(t.total_cycles(), 17);
    }

    #[test]
    fn paper_constants() {
        let t = ArrayTimings::paper();
        assert!((t.compute_slowdown() - 1.5627).abs() < 1e-3);
        let e22 = ArrayEnergy::node_22nm();
        assert_eq!(e22.compute_cycle_pj, 15.4);
        assert_eq!(e22.access_cycle_pj, 8.6);
        let e28 = ArrayEnergy::node_28nm();
        assert!(e28.compute_cycle_pj > e22.compute_cycle_pj);
    }

    #[test]
    fn energy_and_time_conversions() {
        let s = CycleStats {
            compute_cycles: 1_000_000,
            access_cycles: 0,
        };
        let e = s.energy_joules(&ArrayEnergy::node_22nm());
        assert!((e - 15.4e-6).abs() < 1e-12);
        let secs = s.seconds(&ArrayTimings::paper());
        assert!((secs - 4.0e-4).abs() < 1e-9);
    }
}
