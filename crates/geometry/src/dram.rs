//! DRAM stream model for filter loading and batched output dumps.
//!
//! The paper measures fill time with a C micro-benchmark that walks the
//! exact sets needing data, profiled with `VTune` to separate DRAM-bound
//! cycles (Section V). That measurement collapses to an *effective fill
//! bandwidth*; this model exposes it as a parameter calibrated so filter
//! loading lands at the paper's reported ~46% share of inference time
//! (DESIGN.md §4).

use crate::SimTime;

/// Effective-bandwidth DRAM stream model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Sustained effective bandwidth of streaming fills, bytes/second.
    ///
    /// Default 11 GB/s: a single-socket DDR4 stream through the cache-fill
    /// path with set-walking overheads, calibrated to the paper's filter
    /// loading share.
    pub bandwidth_bytes_per_sec: f64,
    /// First-access latency added per stream, seconds.
    pub latency_s: f64,
}

impl DramModel {
    /// The calibrated operating point used for all paper-figure runs.
    #[must_use]
    pub const fn paper_calibrated() -> Self {
        DramModel {
            bandwidth_bytes_per_sec: 11.0e9,
            latency_s: 80e-9,
        }
    }

    /// Time to stream `bytes` from (or to) DRAM.
    #[must_use]
    pub fn stream_time(&self, bytes: usize) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_secs(self.latency_s + bytes as f64 / self.bandwidth_bytes_per_sec)
    }

    /// Time to dump `bytes` to DRAM and read them back (the batched-output
    /// overflow path of Section IV-E).
    #[must_use]
    pub fn round_trip_time(&self, bytes: usize) -> SimTime {
        self.stream_time(bytes) + self.stream_time(bytes)
    }
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_time_is_latency_plus_bandwidth() {
        let d = DramModel::paper_calibrated();
        let t = d.stream_time(11_000_000); // 11 MB at 11 GB/s = 1 ms
        assert!((t.as_millis_f64() - 1.00008).abs() < 1e-4);
        assert_eq!(d.stream_time(0), SimTime::ZERO);
    }

    #[test]
    fn round_trip_doubles() {
        let d = DramModel::paper_calibrated();
        let one = d.stream_time(1 << 20);
        let two = d.round_trip_time(1 << 20);
        assert!((two.as_secs_f64() - 2.0 * one.as_secs_f64()).abs() < 1e-15);
    }

    #[test]
    fn inception_filter_load_in_paper_ballpark() {
        // Inception v3's ~23.7 MB of 8-bit filters should take ~2.2 ms,
        // i.e. the ~46% share of the 4.72 ms inference the paper reports.
        let d = DramModel::paper_calibrated();
        let t = d.stream_time(23_700_000);
        assert!((t.as_millis_f64() - 2.15).abs() < 0.1, "got {t}");
    }
}
