//! Set-address decoding: physical address to (slice, way-set, bank, array,
//! row) in the spirit of the paper's reverse-engineered Xeon LLC layout.
//!
//! The paper's data-loading micro-benchmark "sequentially reads out the
//! exact sets within a way that need loading" — which requires knowing how
//! addresses map onto slices and banks. Intel's slice selection is an
//! undocumented XOR-fold hash of the upper address bits; we model it as a
//! parity hash (the published reverse-engineering approach) followed by a
//! conventional set/bank/array split inside the slice.

use crate::CacheGeometry;

/// Cache-line size in bytes.
pub const LINE_BYTES: usize = 64;

/// Location of one cache line inside the compute LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheLocation {
    /// Slice on the ring.
    pub slice: usize,
    /// Set index within a way of the slice.
    pub set: usize,
    /// Bank within the way holding this set.
    pub bank: usize,
    /// 8KB array pair within the bank (arrays share sense amps in pairs).
    pub array_pair: usize,
    /// Word-line row within the arrays.
    pub row: usize,
}

/// Decodes a physical address into its LLC location under `geometry`.
///
/// The mapping keeps the invariants that matter to the Neural Cache layout:
/// consecutive lines spread over banks and array pairs before wrapping rows,
/// and the slice hash diffuses upper address bits so streaming fills load
/// all slices near-uniformly.
///
/// # Examples
///
/// ```
/// use nc_geometry::{decode_address, CacheGeometry};
///
/// let g = CacheGeometry::xeon_e5_2697_v3();
/// let loc = decode_address(0x4000_1240, &g);
/// assert!(loc.slice < g.slices);
/// assert!(loc.row < 256);
/// ```
#[must_use]
pub fn decode_address(addr: u64, geometry: &CacheGeometry) -> CacheLocation {
    let line = addr / LINE_BYTES as u64;

    // Slice hash: XOR-fold of the line address (parity per slice-index bit),
    // reduced modulo the slice count for non-power-of-two rings.
    let mut h = line;
    h ^= h >> 17;
    h ^= h >> 9;
    h ^= h >> 5;
    let slice = (h % geometry.slices as u64) as usize;

    // Sets per way of one slice: capacity of a way / line size.
    let way_bytes = geometry.arrays_per_way() * geometry.array_bytes();
    let sets_per_way = way_bytes / LINE_BYTES;
    let set = (line / geometry.slices as u64 % sets_per_way as u64) as usize;

    // Within the way: interleave sets across banks first, then array pairs,
    // then rows, so that streaming fills touch all banks in parallel.
    let bank = set % geometry.banks_per_way;
    let pairs_per_bank = geometry.arrays_per_bank / 2;
    let array_pair = (set / geometry.banks_per_way) % pairs_per_bank;
    let row = set / (geometry.banks_per_way * pairs_per_bank) % nc_sram::ROWS;

    CacheLocation {
        slice,
        set,
        bank,
        array_pair,
        row,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locations_are_in_range() {
        let g = CacheGeometry::xeon_e5_2697_v3();
        for i in 0..10_000u64 {
            let loc = decode_address(i * 64 + 0x1000_0000, &g);
            assert!(loc.slice < g.slices);
            assert!(loc.bank < g.banks_per_way);
            assert!(loc.array_pair < g.arrays_per_bank / 2);
            assert!(loc.row < nc_sram::ROWS);
            assert!(loc.set < g.arrays_per_way() * g.array_bytes() / LINE_BYTES);
        }
    }

    #[test]
    fn same_line_same_location() {
        let g = CacheGeometry::xeon_e5_2697_v3();
        let a = decode_address(0xABCD_E040, &g);
        let b = decode_address(0xABCD_E07F, &g);
        assert_eq!(a, b, "both addresses fall in one 64B line");
    }

    #[test]
    fn consecutive_lines_spread_across_banks() {
        let g = CacheGeometry::xeon_e5_2697_v3();
        // A large streaming fill should hit every bank of a way.
        let mut bank_hits = [0usize; 4];
        for i in 0..4096u64 {
            let loc = decode_address(i * 64, &g);
            bank_hits[loc.bank] += 1;
        }
        for (bank, &hits) in bank_hits.iter().enumerate() {
            assert!(hits > 512, "bank {bank} only hit {hits} times");
        }
    }

    #[test]
    fn slice_hash_is_roughly_uniform() {
        let g = CacheGeometry::xeon_e5_2697_v3();
        let mut slice_hits = vec![0usize; g.slices];
        let n = 140_000u64;
        for i in 0..n {
            slice_hits[decode_address(i * 64, &g).slice] += 1;
        }
        let expect = n as usize / g.slices;
        for (slice, &hits) in slice_hits.iter().enumerate() {
            assert!(
                hits > expect * 8 / 10 && hits < expect * 12 / 10,
                "slice {slice}: {hits} vs expected ~{expect}"
            );
        }
    }
}
