//! Cache geometry, interconnect, and DRAM stream models for the Neural
//! Cache (ISCA 2018) reproduction.
//!
//! The paper models the last-level cache (LLC) of the Intel Xeon E5-2697 v3:
//! 14 slices of 2.5 MB, each slice holding 20 ways of 4 x 32KB banks, each
//! bank two 16KB sub-arrays of two 8KB SRAM arrays (Figure 3). Re-purposing
//! the 4480 8KB arrays yields 1,146,880 bit-line ALU slots.
//!
//! This crate provides:
//!
//! - [`CacheGeometry`]: the slice/way/bank/array hierarchy with the paper's
//!   presets (35/45/60 MB) and derived quantities (array counts, ALU slots,
//!   compute capacity);
//! - [`InterconnectModel`]: deterministic transfer-time calculators for the
//!   bidirectional inter-slice ring and the intra-slice 256-bit data bus
//!   (4 x 64-bit quadrant buses, per-bank 64-bit input latches);
//! - [`DramModel`]: the effective-bandwidth stream model substituted for the
//!   paper's measured C micro-benchmark (DESIGN.md §4);
//! - [`decode_address`]: a set-decode model in the spirit of the paper's
//!   reverse-engineered Xeon addressing;
//! - [`SimTime`]: seconds newtype shared by all timing results.
//!
//! # Example
//!
//! ```
//! use nc_geometry::CacheGeometry;
//!
//! let xeon = CacheGeometry::xeon_e5_2697_v3();
//! assert_eq!(xeon.total_arrays(), 4480);
//! assert_eq!(xeon.alu_slots(), 1_146_880);
//! assert_eq!(xeon.capacity_bytes(), 35 << 20);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::pedantic)]
// Pedantic allowlist: geometry math moves between usize/u64/f64 freely
// (values are bounded far below 2^52), and the SimTime tests compare exact
// rational results with `==` on purpose.
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::float_cmp
)]

mod address;
mod dram;
mod geometry;
mod interconnect;
mod time;

pub use address::{decode_address, CacheLocation};
pub use dram::DramModel;
pub use geometry::CacheGeometry;
pub use interconnect::InterconnectModel;
pub use time::SimTime;
