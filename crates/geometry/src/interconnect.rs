//! Deterministic transfer-time models for the inter-slice ring and the
//! intra-slice data bus (Section IV-C).
//!
//! Filter weights loaded from DRAM are broadcast to every slice over the
//! bidirectional ring and to every way over the intra-slice bus. Inputs
//! stream from the reserved way over the slice's 256-bit data bus, which is
//! composed of four 64-bit quadrant buses; two arrays sharing sense amps
//! receive 32 bits per bus cycle, and a 64-bit latch at each bank lets a
//! transfer serve two array pairs, halving input delivery time.

use crate::{CacheGeometry, SimTime};

/// Bandwidth model of the on-chip interconnect in compute mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectModel {
    /// Bytes one ring link moves per cycle (256-bit links: 32 B).
    pub ring_bytes_per_cycle: usize,
    /// Width of the intra-slice data bus in bits (Xeon E5: 256).
    pub bus_bits_per_slice: usize,
    /// Number of independent quadrant buses composing the slice bus (4).
    pub quadrant_buses: usize,
    /// Whether the per-bank 64-bit input latch is present (halves input
    /// streaming time, Section IV-C).
    pub bank_latch: bool,
    /// Clock of ring and buses while the cache computes, Hz (2.5 GHz).
    pub freq_hz: f64,
}

impl InterconnectModel {
    /// The paper's Xeon E5 interconnect operating point.
    #[must_use]
    pub const fn paper() -> Self {
        InterconnectModel {
            ring_bytes_per_cycle: 32,
            bus_bits_per_slice: 256,
            quadrant_buses: 4,
            bank_latch: true,
            freq_hz: 2.5e9,
        }
    }

    /// Bytes the intra-slice bus delivers per cycle.
    #[must_use]
    pub fn bus_bytes_per_cycle(&self) -> usize {
        self.bus_bits_per_slice / 8
    }

    /// Effective input-delivery bytes per cycle per slice, including the
    /// bank-latch doubling.
    #[must_use]
    pub fn effective_input_bytes_per_cycle(&self) -> usize {
        self.bus_bytes_per_cycle() * if self.bank_latch { 2 } else { 1 }
    }

    /// Time to broadcast `bytes` to **all** slices over the ring.
    ///
    /// Both ring directions carry a pipelined broadcast, so the time is
    /// bounded by link bandwidth, not by hop count (the fill is streamed,
    /// each datum visits every slice).
    #[must_use]
    pub fn ring_broadcast_time(&self, bytes: usize) -> SimTime {
        let cycles = bytes.div_ceil(self.ring_bytes_per_cycle) as u64;
        SimTime::from_cycles(cycles, self.freq_hz)
    }

    /// Time for one slice's bus to deliver `bytes` into its arrays
    /// (broadcast within the slice counts once; distinct destinations
    /// serialize). All slices stream in parallel, so a per-slice time is
    /// also the cache-wide time when work is balanced.
    #[must_use]
    pub fn slice_stream_time(&self, bytes: usize) -> SimTime {
        let per_cycle = self.effective_input_bytes_per_cycle();
        let cycles = bytes.div_ceil(per_cycle) as u64;
        SimTime::from_cycles(cycles, self.freq_hz)
    }

    /// Time for one slice's bus to move `bytes` without the input latch
    /// optimization (output transfers to the reserved way).
    #[must_use]
    pub fn slice_transfer_time(&self, bytes: usize) -> SimTime {
        let cycles = bytes.div_ceil(self.bus_bytes_per_cycle()) as u64;
        SimTime::from_cycles(cycles, self.freq_hz)
    }

    /// Aggregate input-streaming bandwidth of the whole cache, bytes/s.
    #[must_use]
    pub fn total_input_bandwidth(&self, geometry: &CacheGeometry) -> f64 {
        self.effective_input_bytes_per_cycle() as f64 * self.freq_hz * geometry.slices as f64
    }

    /// Dynamic interconnect energy for moving `bytes` across the slice bus,
    /// joules. A flat per-byte constant (on-chip wire energy) used by the
    /// system energy model.
    #[must_use]
    pub fn bus_energy_joules(&self, bytes: usize) -> f64 {
        const BUS_PJ_PER_BYTE: f64 = 1.1;
        bytes as f64 * BUS_PJ_PER_BYTE * 1e-12
    }

    /// Dynamic ring energy for moving `bytes` across the inter-slice ring,
    /// joules (longer wires than the slice bus).
    #[must_use]
    pub fn ring_energy_joules(&self, bytes: usize) -> f64 {
        const RING_PJ_PER_BYTE: f64 = 4.5;
        bytes as f64 * RING_PJ_PER_BYTE * 1e-12
    }
}

impl Default for InterconnectModel {
    fn default() -> Self {
        InterconnectModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidths() {
        let ic = InterconnectModel::paper();
        assert_eq!(ic.bus_bytes_per_cycle(), 32);
        assert_eq!(ic.effective_input_bytes_per_cycle(), 64);
        let g = CacheGeometry::xeon_e5_2697_v3();
        // 64 B/cycle * 2.5 GHz * 14 slices = 2.24 TB/s aggregate.
        let bw = ic.total_input_bandwidth(&g);
        assert!((bw - 2.24e12).abs() / 2.24e12 < 1e-9);
    }

    #[test]
    fn ring_broadcast_scales_with_bytes() {
        let ic = InterconnectModel::paper();
        let t1 = ic.ring_broadcast_time(1 << 20);
        let t2 = ic.ring_broadcast_time(2 << 20);
        assert!((t2.as_secs_f64() / t1.as_secs_f64() - 2.0).abs() < 1e-6);
        // 1 MiB over a 32 B/cycle link at 2.5 GHz = 13.1 us.
        assert!((t1.as_micros_f64() - 13.1).abs() < 0.1);
    }

    #[test]
    fn latch_halves_input_time() {
        let with = InterconnectModel::paper();
        let without = InterconnectModel {
            bank_latch: false,
            ..InterconnectModel::paper()
        };
        let b = 100_000;
        let r = without.slice_stream_time(b) / with.slice_stream_time(b);
        assert!((r - 2.0).abs() < 0.01);
    }

    #[test]
    fn transfer_rounds_up_to_cycles() {
        let ic = InterconnectModel::paper();
        assert_eq!(
            ic.slice_transfer_time(1).as_secs_f64(),
            ic.slice_transfer_time(32).as_secs_f64()
        );
        assert!(ic.slice_transfer_time(33) > ic.slice_transfer_time(32));
    }

    #[test]
    fn energy_monotone_in_bytes() {
        let ic = InterconnectModel::paper();
        assert!(ic.bus_energy_joules(2000) > ic.bus_energy_joules(1000));
        assert!(ic.ring_energy_joules(1000) > ic.bus_energy_joules(1000));
    }
}
