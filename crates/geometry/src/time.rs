//! Simulation time as a strongly-typed seconds value.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time, stored in seconds.
///
/// A newtype rather than `std::time::Duration` because model arithmetic
/// (scaling by utilization factors, dividing times for speedups) is
/// floating-point, and sub-nanosecond precision matters at 2.5 GHz.
///
/// # Examples
///
/// ```
/// use nc_geometry::SimTime;
///
/// let cycle = SimTime::from_cycles(2500, 2.5e9);
/// assert!((cycle.as_micros_f64() - 1.0).abs() < 1e-12);
/// let doubled = cycle + cycle;
/// assert_eq!(doubled, cycle * 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time span from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    #[must_use]
    pub fn from_secs(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "time must be finite and non-negative, got {seconds}"
        );
        SimTime(seconds)
    }

    /// Creates a time span from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        SimTime::from_secs(ms * 1e-3)
    }

    /// Time taken by `cycles` cycles at `freq_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not positive.
    #[must_use]
    pub fn from_cycles(cycles: u64, freq_hz: f64) -> Self {
        assert!(freq_hz > 0.0, "frequency must be positive");
        SimTime(cycles as f64 / freq_hz)
    }

    /// The span in seconds.
    #[must_use]
    pub fn as_secs_f64(&self) -> f64 {
        self.0
    }

    /// The span in milliseconds.
    #[must_use]
    pub fn as_millis_f64(&self) -> f64 {
        self.0 * 1e3
    }

    /// The span in microseconds.
    #[must_use]
    pub fn as_micros_f64(&self) -> f64 {
        self.0 * 1e6
    }

    /// Number of cycles this span covers at `freq_hz`, rounded up.
    #[must_use]
    pub fn cycles_at(&self, freq_hz: f64) -> u64 {
        (self.0 * freq_hz).ceil() as u64
    }

    /// Larger of two spans.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Smaller of two spans.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Difference of two spans.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the result would be negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "negative time span");
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<SimTime> for SimTime {
    type Output = f64;
    /// Ratio of two spans (e.g. a speedup).
    fn div(self, rhs: SimTime) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else if self.0 >= 1e-6 {
            write!(f, "{:.3} us", self.0 * 1e6)
        } else {
            write!(f, "{:.1} ns", self.0 * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let t = SimTime::from_millis(4.72);
        assert!((t.as_secs_f64() - 0.00472).abs() < 1e-12);
        assert!((t.as_millis_f64() - 4.72).abs() < 1e-9);
        assert_eq!(SimTime::from_cycles(2_500_000, 2.5e9).as_millis_f64(), 1.0);
        assert_eq!(t.cycles_at(2.5e9), 11_800_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(2.0);
        let b = SimTime::from_millis(1.0);
        assert_eq!((a + b).as_millis_f64(), 3.0);
        assert_eq!((a - b).as_millis_f64(), 1.0);
        assert_eq!(a / b, 2.0);
        assert_eq!((a * 3.0).as_millis_f64(), 6.0);
        assert_eq!((a / 2.0).as_millis_f64(), 1.0);
        let total: SimTime = [a, b, b].into_iter().sum();
        assert_eq!(total.as_millis_f64(), 4.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_secs(2.0)), "2.000 s");
        assert_eq!(format!("{}", SimTime::from_millis(4.7)), "4.700 ms");
        assert_eq!(format!("{}", SimTime::from_secs(3e-6)), "3.000 us");
        assert_eq!(format!("{}", SimTime::from_secs(4e-9)), "4.0 ns");
    }
}
