//! The slice/way/bank/array hierarchy of a compute-capable LLC (Figure 3).

use std::fmt;

use nc_sram::{COLS, ROWS};

/// Geometry of a sliced last-level cache re-purposed for in-cache compute.
///
/// The default construction models the Intel Xeon E5-2697 v3 LLC the paper
/// evaluates: 14 x 2.5 MB slices, each slice 20 ways, each way 4 x 32KB
/// banks, each bank 4 x 8KB SRAM arrays (two 16KB sub-arrays of two arrays
/// sharing sense amps). Table IV scales the slice count to 18 (45 MB) and
/// 24 (60 MB).
///
/// Two ways per slice are reserved (Section IV): the last way stays a normal
/// cache for the CPU cores, the penultimate way buffers layer inputs and
/// outputs. The remaining ways hold stationary filters and compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Number of LLC slices on the ring.
    pub slices: usize,
    /// Ways per slice (Xeon E5: 20).
    pub ways_per_slice: usize,
    /// Banks per way (Xeon E5: 4; the slice has 80 banks total).
    pub banks_per_way: usize,
    /// 8KB SRAM arrays per 32KB bank (Xeon E5: 4).
    pub arrays_per_bank: usize,
    /// Ways reserved for normal CPU operation (paper: 1, way-20).
    pub reserved_cpu_ways: usize,
    /// Ways reserved for input/output staging (paper: 1, way-19).
    pub reserved_io_ways: usize,
}

impl CacheGeometry {
    /// The paper's evaluation platform: dual-socket Xeon E5-2697 v3 with a
    /// 35 MB LLC per socket (14 slices). Neural Cache numbers are reported
    /// per socket.
    #[must_use]
    pub const fn xeon_e5_2697_v3() -> Self {
        CacheGeometry {
            slices: 14,
            ways_per_slice: 20,
            banks_per_way: 4,
            arrays_per_bank: 4,
            reserved_cpu_ways: 1,
            reserved_io_ways: 1,
        }
    }

    /// A geometry with a different slice count but the Xeon slice design
    /// (2.5 MB / 20 ways / 80 banks), as in the Table IV capacity sweep.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is zero.
    #[must_use]
    pub fn with_slices(slices: usize) -> Self {
        assert!(slices > 0, "at least one slice required");
        CacheGeometry {
            slices,
            ..CacheGeometry::xeon_e5_2697_v3()
        }
    }

    /// Geometry for the Table IV capacity points: 35, 45 or 60 MB.
    ///
    /// # Panics
    ///
    /// Panics for capacities that are not a multiple of the 2.5 MB slice.
    #[must_use]
    pub fn with_capacity_mb(mb: usize) -> Self {
        let slice_kb = 2560;
        let total_kb = mb * 1024;
        assert!(
            total_kb.is_multiple_of(slice_kb),
            "capacity must be a multiple of the 2.5 MB slice, got {mb} MB"
        );
        CacheGeometry::with_slices(total_kb / slice_kb)
    }

    /// Bytes stored by one 8KB array (256 x 256 bits).
    #[must_use]
    pub const fn array_bytes(&self) -> usize {
        ROWS * COLS / 8
    }

    /// Arrays per way (Xeon E5: 16).
    #[must_use]
    pub fn arrays_per_way(&self) -> usize {
        self.banks_per_way * self.arrays_per_bank
    }

    /// Arrays per slice (Xeon E5: 320).
    #[must_use]
    pub fn arrays_per_slice(&self) -> usize {
        self.ways_per_slice * self.arrays_per_way()
    }

    /// Total 8KB arrays in the cache (Xeon E5: 4480).
    #[must_use]
    pub fn total_arrays(&self) -> usize {
        self.slices * self.arrays_per_slice()
    }

    /// Total banks in the cache (Xeon E5: 1120) — one control FSM each.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        self.slices * self.ways_per_slice * self.banks_per_way
    }

    /// Bit-serial ALU slots: one per bit line of every array
    /// (paper headline: 1,146,880 for the 35 MB Xeon E5).
    #[must_use]
    pub fn alu_slots(&self) -> usize {
        self.total_arrays() * COLS
    }

    /// Cache capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.total_arrays() * self.array_bytes()
    }

    /// Ways per slice available for compute (filters + arithmetic),
    /// after removing the CPU and I/O reservations (Xeon E5: 18).
    #[must_use]
    pub fn compute_ways(&self) -> usize {
        self.ways_per_slice
            .saturating_sub(self.reserved_cpu_ways + self.reserved_io_ways)
    }

    /// Compute arrays per slice (Xeon E5: 288).
    #[must_use]
    pub fn compute_arrays_per_slice(&self) -> usize {
        self.compute_ways() * self.arrays_per_way()
    }

    /// Total compute arrays (Xeon E5: 4032).
    #[must_use]
    pub fn compute_arrays(&self) -> usize {
        self.slices * self.compute_arrays_per_slice()
    }

    /// Bit lines available for compute across the whole cache.
    #[must_use]
    pub fn compute_lanes(&self) -> usize {
        self.compute_arrays() * COLS
    }

    /// Capacity of one reserved I/O way across all slices, in bytes
    /// (the staging space for layer inputs/outputs; Xeon E5: 14 x 128 KB).
    #[must_use]
    pub fn io_way_bytes(&self) -> usize {
        self.slices * self.arrays_per_way() * self.array_bytes() * self.reserved_io_ways
    }

    /// Peak 8-bit operations per second when every compute lane performs a
    /// multiply-accumulate (2 ops) every `mac_cycles` at `freq_hz`.
    ///
    /// The paper quotes 28 TOP/s at 22 nm for the full 35 MB cache.
    #[must_use]
    pub fn peak_ops_per_sec(&self, mac_cycles: u64, freq_hz: f64) -> f64 {
        2.0 * self.alu_slots() as f64 * freq_hz / mac_cycles as f64
    }
}

impl Default for CacheGeometry {
    fn default() -> Self {
        CacheGeometry::xeon_e5_2697_v3()
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} MB LLC: {} slices x {} ways x {} banks x {} arrays ({} ALU slots)",
            self.capacity_bytes() as f64 / (1024.0 * 1024.0),
            self.slices,
            self.ways_per_slice,
            self.banks_per_way,
            self.arrays_per_bank,
            self.alu_slots()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_matches_paper_headline_numbers() {
        let g = CacheGeometry::xeon_e5_2697_v3();
        assert_eq!(g.arrays_per_slice(), 320, "Section III-A: 320 arrays/slice");
        assert_eq!(g.total_arrays(), 4480, "Section III-A: 4480 arrays");
        assert_eq!(g.alu_slots(), 1_146_880, "paper headline ALU slots");
        assert_eq!(g.capacity_bytes(), 35 << 20, "35 MB LLC");
        assert_eq!(g.total_banks(), 1120);
        assert_eq!(g.compute_ways(), 18);
        assert_eq!(g.compute_arrays(), 4032);
        assert_eq!(g.io_way_bytes(), 14 * 128 * 1024);
    }

    #[test]
    fn capacity_sweep_matches_table4_slices() {
        assert_eq!(CacheGeometry::with_capacity_mb(35).slices, 14);
        assert_eq!(CacheGeometry::with_capacity_mb(45).slices, 18);
        assert_eq!(CacheGeometry::with_capacity_mb(60).slices, 24);
    }

    #[test]
    #[should_panic(expected = "multiple of the 2.5 MB slice")]
    fn rejects_unaligned_capacity() {
        let _ = CacheGeometry::with_capacity_mb(36);
    }

    #[test]
    fn peak_tops_in_paper_ballpark() {
        let g = CacheGeometry::xeon_e5_2697_v3();
        // With the paper's ~200-cycle effective 8-bit MAC the cache delivers
        // tens of TOP/s; the paper quotes 28 TOP/s at 22 nm.
        let tops = g.peak_ops_per_sec(204, 2.5e9) / 1e12;
        assert!((tops - 28.1).abs() < 0.2, "got {tops} TOP/s");
    }

    #[test]
    fn display_mentions_capacity() {
        let s = CacheGeometry::xeon_e5_2697_v3().to_string();
        assert!(s.contains("35.0 MB"));
        assert!(s.contains("1146880"));
    }
}
