//! Calibrated analytic CPU/GPU baseline models for the Neural Cache
//! (ISCA 2018) reproduction.
//!
//! The paper measures TensorFlow Inception v3 inference on a dual-socket
//! Xeon E5-2697 v3 (RAPL power) and an Nvidia Titan Xp (nvidia-smi power).
//! We have neither machine nor TensorFlow; these baselines are analytic
//! stand-ins **calibrated to the paper's published totals** (DESIGN.md §4):
//!
//! - end-to-end latency: 86 ms CPU (stated in Section V) and 36.3 ms GPU
//!   (derived from the 18.3x / 7.7x Neural Cache speedups over the same
//!   run);
//! - per-layer latency: the total distributed proportionally to each
//!   layer's multiply-accumulate volume plus a fixed per-layer overhead
//!   (kernel launch / framework dispatch), reproducing Figure 13's
//!   mixed-layer-dominated shape;
//! - throughput vs batch: a two-parameter amortization curve
//!   `thr(N) = N / (a + N*b)` pinned at the measured batch-1 latency and
//!   the Figure 16 plateaus (48.7 inf/s CPU, 274.5 inf/s GPU);
//! - power: the Table III averages (105.56 W CPU, 112.87 W GPU).
//!
//! Because the *comparisons* in the paper's evaluation only use these
//! endpoint measurements, calibrating to them preserves who-wins-by-what-
//! factor while the Neural Cache series remains fully model-derived.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::pedantic)]
// Pedantic allowlist: throughput/energy math converts counters to f64
// (bounded far below 2^52); the layer-MAC match reads better than an
// if-let chain; tests name near-identical stem layers deliberately.
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::float_cmp,
    clippy::single_match_else,
    clippy::similar_names
)]

use nc_dnn::{Layer, Model};
use nc_geometry::SimTime;

/// Hardware description of a baseline platform (Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Platform name.
    pub name: &'static str,
    /// Core clock, GHz.
    pub frequency_ghz: f64,
    /// CPU cores (with threads) or CUDA cores.
    pub cores: u32,
    /// Process node, nm.
    pub process_nm: u32,
    /// Thermal design power, W.
    pub tdp_w: f64,
    /// Cache description.
    pub cache: &'static str,
    /// Memory description.
    pub memory: &'static str,
}

impl PlatformConfig {
    /// Table II CPU row: Intel Xeon E5-2697 v3 (per socket).
    #[must_use]
    pub const fn xeon_e5_2697_v3() -> Self {
        PlatformConfig {
            name: "Intel Xeon E5-2697 v3",
            frequency_ghz: 2.6,
            cores: 14,
            process_nm: 22,
            tdp_w: 145.0,
            cache: "32 kB i-L1 + 32 kB d-L1 per core, 256 kB L2 per core, 35 MB shared L3",
            memory: "64 GB DDR4 DRAM",
        }
    }

    /// Table II GPU row: Nvidia Titan Xp.
    #[must_use]
    pub const fn titan_xp() -> Self {
        PlatformConfig {
            name: "Nvidia Titan Xp",
            frequency_ghz: 1.6,
            cores: 3840,
            process_nm: 16,
            tdp_w: 250.0,
            cache: "3 MB shared L2",
            memory: "12 GB GDDR5X DRAM",
        }
    }
}

/// A calibrated baseline platform model.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Hardware description.
    pub config: PlatformConfig,
    /// Measured Inception v3 batch-1 latency.
    pub inception_latency: SimTime,
    /// Throughput-curve fixed cost `a` (seconds per batch).
    amortized_a: f64,
    /// Throughput-curve marginal cost `b` (seconds per image).
    marginal_b: f64,
    /// Measured average power, W (Table III).
    pub avg_power_w: f64,
    /// Fixed per-layer dispatch overhead used by the per-layer split.
    layer_overhead: SimTime,
}

/// The calibrated CPU baseline (TensorFlow on dual-socket Xeon E5-2697 v3).
#[must_use]
pub fn cpu_xeon_e5() -> Baseline {
    // 86 ms measured (Section V); plateau 48.7 inf/s (= 604 / 12.4,
    // Section VI-B).
    let latency = 0.086;
    let plateau = 604.0 / 12.4;
    Baseline {
        config: PlatformConfig::xeon_e5_2697_v3(),
        inception_latency: SimTime::from_secs(latency),
        marginal_b: 1.0 / plateau,
        amortized_a: latency - 1.0 / plateau,
        avg_power_w: 105.56,
        layer_overhead: SimTime::from_secs(0.4e-3),
    }
}

/// The calibrated GPU baseline (TensorFlow on Titan Xp).
#[must_use]
pub fn gpu_titan_xp() -> Baseline {
    // 36.3 ms (derived: Neural Cache is 18.3x over CPU and 7.7x over GPU
    // on the same inference, so GPU = 86 ms * 7.7 / 18.3); plateau
    // 274.5 inf/s (= 604 / 2.2).
    let latency = 0.086 * 7.7 / 18.3;
    let plateau = 604.0 / 2.2;
    Baseline {
        config: PlatformConfig::titan_xp(),
        inception_latency: SimTime::from_secs(latency),
        marginal_b: 1.0 / plateau,
        amortized_a: latency - 1.0 / plateau,
        avg_power_w: 112.87,
        layer_overhead: SimTime::from_secs(0.25e-3),
    }
}

impl Baseline {
    /// Batch-1 Inception v3 latency.
    #[must_use]
    pub fn total_latency(&self) -> SimTime {
        self.inception_latency
    }

    /// Splits the measured total across a model's layers proportionally to
    /// multiply-accumulate volume plus a fixed dispatch overhead per layer
    /// (Figure 13's per-layer series).
    #[must_use]
    pub fn layer_latencies(&self, model: &Model) -> Vec<(String, SimTime)> {
        let weights: Vec<(String, f64)> = model
            .layers
            .iter()
            .zip(model.layer_inputs())
            .map(|(layer, input)| (layer.name().to_owned(), layer_macs(layer, input)))
            .collect();
        let total_macs: f64 = weights.iter().map(|(_, w)| w).sum();
        let overhead_total = self.layer_overhead * weights.len() as f64;
        let compute_total = self.inception_latency - overhead_total;
        weights
            .into_iter()
            .map(|(name, w)| {
                let t = self.layer_overhead + compute_total * (w / total_macs);
                (name, t)
            })
            .collect()
    }

    /// Throughput at a batch size, inferences per second (Figure 16).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn throughput(&self, batch: usize) -> f64 {
        assert!(batch > 0, "batch must be at least 1");
        batch as f64 / (self.amortized_a + batch as f64 * self.marginal_b)
    }

    /// Peak (large-batch) throughput, inferences per second.
    #[must_use]
    pub fn peak_throughput(&self) -> f64 {
        1.0 / self.marginal_b
    }

    /// Energy of one batch-1 inference, joules (Table III).
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.avg_power_w * self.inception_latency.as_secs_f64()
    }

    /// Energy-delay product, joule-seconds.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy_j() * self.inception_latency.as_secs_f64()
    }
}

/// Multiply-accumulate volume of one layer (pools weighted by their cheap
/// window compares).
fn layer_macs(layer: &Layer, input: nc_dnn::Shape) -> f64 {
    match layer {
        Layer::Pool(pool) => {
            let out = pool.out_shape(input);
            // Pool comparisons are ~10x cheaper than MACs on both platforms.
            (out.len() * pool.k * pool.k) as f64 * 0.1
        }
        _ => {
            let mut macs = 0.0;
            if let Layer::Mixed(block) = layer {
                for branch in &block.branches {
                    let mut cur = input;
                    for op in &branch.ops {
                        if let nc_dnn::BranchOp::Conv(c) = op {
                            let out = c.spec.out_shape(cur);
                            macs += (out.len() * c.spec.macs_per_output()) as f64;
                            cur = out;
                        } else if let nc_dnn::BranchOp::Split(convs) = op {
                            for c in convs {
                                let out = c.spec.out_shape(cur);
                                macs += (out.len() * c.spec.macs_per_output()) as f64;
                            }
                        } else if let nc_dnn::BranchOp::Pool(p) = op {
                            cur = p.out_shape(cur);
                        }
                    }
                }
            } else if let Layer::Conv(c) = layer {
                let out = c.spec.out_shape(input);
                macs += (out.len() * c.spec.macs_per_output()) as f64;
            }
            macs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dnn::inception::inception_v3;

    #[test]
    fn calibrated_latencies_match_paper() {
        let cpu = cpu_xeon_e5();
        let gpu = gpu_titan_xp();
        assert!((cpu.total_latency().as_millis_f64() - 86.0).abs() < 1e-9);
        assert!((gpu.total_latency().as_millis_f64() - 36.19).abs() < 0.1);
    }

    #[test]
    fn layer_latencies_sum_to_total_and_mixed_dominates() {
        let cpu = cpu_xeon_e5();
        let model = inception_v3();
        let layers = cpu.layer_latencies(&model);
        assert_eq!(layers.len(), 20);
        let sum: f64 = layers.iter().map(|(_, t)| t.as_secs_f64()).sum();
        assert!((sum - 0.086).abs() < 1e-9);
        // Figure 13: mixed layers dominate the CPU time.
        let mixed: f64 = layers
            .iter()
            .filter(|(n, _)| n.starts_with("Mixed"))
            .map(|(_, t)| t.as_secs_f64())
            .sum();
        assert!(mixed / sum > 0.6, "mixed share {:.2}", mixed / sum);
        // Conv2d_2b is among the most expensive stem layers, as in Fig 13.
        let stem_2b = layers.iter().find(|(n, _)| n == "Conv2d_2b_3x3").unwrap().1;
        let stem_1a = layers.iter().find(|(n, _)| n == "Conv2d_1a_3x3").unwrap().1;
        assert!(stem_2b > stem_1a);
    }

    #[test]
    fn throughput_curves_hit_figure16_endpoints() {
        let cpu = cpu_xeon_e5();
        let gpu = gpu_titan_xp();
        assert!((cpu.throughput(1) - 1.0 / 0.086).abs() < 1e-6);
        assert!((cpu.peak_throughput() - 48.7).abs() < 0.1);
        assert!((gpu.peak_throughput() - 274.5).abs() < 0.1);
        // GPU plateaus by batch 64 (Figure 16).
        assert!(gpu.throughput(64) / gpu.peak_throughput() > 0.85);
        // Monotone non-decreasing.
        for n in 1..256 {
            assert!(gpu.throughput(n + 1) >= gpu.throughput(n));
            assert!(cpu.throughput(n + 1) >= cpu.throughput(n));
        }
    }

    #[test]
    fn energy_matches_table3() {
        let cpu = cpu_xeon_e5();
        let gpu = gpu_titan_xp();
        assert!((cpu.energy_j() - 9.137).abs() < 0.1, "paper: 9.137 J");
        assert!((gpu.energy_j() - 4.087).abs() < 0.1, "paper: 4.087 J");
        assert!(cpu.edp() > gpu.edp());
    }

    #[test]
    fn table2_configs() {
        let c = PlatformConfig::xeon_e5_2697_v3();
        assert_eq!(c.cores, 14);
        assert_eq!(c.process_nm, 22);
        let g = PlatformConfig::titan_xp();
        assert_eq!(g.cores, 3840);
        assert_eq!(g.tdp_w, 250.0);
    }
}
