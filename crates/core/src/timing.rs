//! The deterministic timing simulator: per-layer, phase-resolved inference
//! time (the paper's "cycle-accurate simulator based on the deterministic
//! computation model", Section V).
//!
//! Every layer's time decomposes into the Figure 14 phases: filter loading
//! from DRAM, input streaming over the intra-slice buses, MACs, channel
//! reduction, quantization, pooling, and output transfer to the reserved
//! way. Phases do not overlap, matching the paper's breakdown accounting.

use std::fmt;
use std::fmt::Write as _;

use nc_dnn::{Model, PoolKind};
use nc_geometry::SimTime;

use crate::config::SystemConfig;
use crate::mapping::{plan_model_with, ConvMapping, LayerPlan, PoolMapping, UnitPlan};

/// Execution phases of Figure 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Loading filter weights (and per-channel constants) from DRAM and
    /// broadcasting them into the compute arrays.
    FilterLoad,
    /// Streaming input elements from the reserved way into the arrays.
    InputStream,
    /// Bit-serial multiply-accumulate cycles.
    Mac,
    /// Channel reduction (in-array and cross-array tree steps).
    Reduce,
    /// Dynamic ranging and requantization of outputs.
    Quantize,
    /// Max/average pooling compute.
    Pool,
    /// Transferring outputs to the reserved way.
    OutputTransfer,
}

impl Phase {
    /// All phases in display order.
    pub const ALL: [Phase; 7] = [
        Phase::FilterLoad,
        Phase::InputStream,
        Phase::Mac,
        Phase::Reduce,
        Phase::Quantize,
        Phase::Pool,
        Phase::OutputTransfer,
    ];

    /// Short label used in reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Phase::FilterLoad => "filter-load",
            Phase::InputStream => "input-stream",
            Phase::Mac => "mac",
            Phase::Reduce => "reduce",
            Phase::Quantize => "quantize",
            Phase::Pool => "pool",
            Phase::OutputTransfer => "output-xfer",
        }
    }
}

/// Time per phase.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    times: [SimTime; 7],
}

impl PhaseBreakdown {
    /// Zeroed breakdown.
    #[must_use]
    pub fn new() -> Self {
        PhaseBreakdown::default()
    }

    /// Time of one phase.
    #[must_use]
    pub fn get(&self, phase: Phase) -> SimTime {
        self.times[Self::index(phase)]
    }

    /// Adds time to a phase.
    pub fn add(&mut self, phase: Phase, time: SimTime) {
        self.times[Self::index(phase)] += time;
    }

    /// Sum over phases.
    #[must_use]
    pub fn total(&self) -> SimTime {
        self.times.iter().copied().sum()
    }

    /// Fraction of the total spent in `phase` (0 when the total is zero).
    #[must_use]
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.get(phase).as_secs_f64() / total
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for (i, t) in other.times.iter().enumerate() {
            self.times[i] += *t;
        }
    }

    fn index(phase: Phase) -> usize {
        Phase::ALL
            .iter()
            .position(|p| *p == phase)
            .expect("phase in ALL")
    }
}

/// Timing result of one top-level layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTiming {
    /// Layer name (Table I row).
    pub name: String,
    /// Phase-resolved times.
    pub phases: PhaseBreakdown,
    /// Serial rounds summed over sub-layer units.
    pub rounds: usize,
    /// Per-array compute cycles (serial view, summed over units).
    pub compute_cycles: u64,
    /// MAC cycles elided by round skipping (0 under dense execution);
    /// already excluded from `compute_cycles`. Under the dynamic modes this
    /// is the **net** saving (dense minus detect-charged sparse MAC
    /// cycles), saturated at 0 when the detect overhead exceeds the
    /// savings.
    pub mac_saved_cycles: u64,
    /// Tag-latch wired-NOR zero-detect cycles the dynamic sparsity modes
    /// charge (one per scheduled multiplier-bit round; 0 under `Dense` and
    /// `SkipZeroRows`). Included in `mac_cycles`/`compute_cycles`.
    pub mac_detect_cycles: u64,
    /// MAC cycles of the layer under the per-bank-FSM skip variant (what
    /// the phase breakdown charges): the mean skip fraction over arrays.
    pub mac_cycles: u64,
    /// MAC cycles under the lockstep-bank skip variant (all banks share
    /// one FSM, so the MAC phase is the max over arrays). Equal to
    /// `mac_cycles` under dense execution; otherwise `>= mac_cycles`.
    pub mac_cycles_lockstep: u64,
    /// Average fraction of compute arrays active during compute phases.
    pub active_fraction: f64,
    /// Bytes streamed over the interconnect (inputs + outputs).
    pub streamed_bytes: usize,
    /// Bytes loaded from DRAM (filters; plus inputs for the first layer).
    pub dram_bytes: usize,
}

impl LayerTiming {
    /// Total layer latency.
    #[must_use]
    pub fn total(&self) -> SimTime {
        self.phases.total()
    }

    /// Relative MAC-phase spread between the skip-time variants:
    /// `(lockstep - mean) / mean` — the extra MAC time lockstep banks pay
    /// over per-bank FSMs (0 under dense execution or when the layer has no
    /// MAC work).
    #[must_use]
    pub fn skip_time_spread(&self) -> f64 {
        if self.mac_cycles == 0 {
            0.0
        } else {
            (self.mac_cycles_lockstep as f64 - self.mac_cycles as f64) / self.mac_cycles as f64
        }
    }
}

/// Timing result of one full inference (batch size 1).
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// Model name.
    pub model: String,
    /// Cost-model name used.
    pub cost_model: &'static str,
    /// Number of LLC slices of the geometry.
    pub slices: usize,
    /// Per-layer timings in execution order.
    pub layers: Vec<LayerTiming>,
}

impl InferenceReport {
    /// End-to-end inference latency.
    #[must_use]
    pub fn total(&self) -> SimTime {
        self.layers.iter().map(LayerTiming::total).sum()
    }

    /// Phase breakdown aggregated over all layers (Figure 14).
    #[must_use]
    pub fn breakdown(&self) -> PhaseBreakdown {
        let mut agg = PhaseBreakdown::new();
        for layer in &self.layers {
            agg.merge(&layer.phases);
        }
        agg
    }

    /// Latency of one named layer.
    #[must_use]
    pub fn layer(&self, name: &str) -> Option<&LayerTiming> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Time not spent loading filters (the per-image marginal cost under
    /// batching, Section IV-E).
    #[must_use]
    pub fn non_filter_time(&self) -> SimTime {
        self.total() - self.breakdown().get(Phase::FilterLoad)
    }

    /// Renders the report as CSV (`layer,phase...,total_ms`), one row per
    /// layer plus a totals row — convenient for external plotting of
    /// Figures 13/14.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("layer");
        for phase in Phase::ALL {
            out.push(',');
            out.push_str(phase.label());
        }
        out.push_str(",total_ms\n");
        let mut write_row = |name: &str, phases: &PhaseBreakdown| {
            out.push_str(name);
            for phase in Phase::ALL {
                let _ = write!(out, ",{:.6}", phases.get(phase).as_millis_f64());
            }
            let _ = writeln!(out, ",{:.6}", phases.total().as_millis_f64());
        };
        for layer in &self.layers {
            write_row(&layer.name, &layer.phases);
        }
        write_row("TOTAL", &self.breakdown());
        out
    }
}

impl fmt::Display for InferenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {} slices ({} cost model): {}",
            self.model,
            self.slices,
            self.cost_model,
            self.total()
        )?;
        for layer in &self.layers {
            writeln!(f, "  {:<18} {}", layer.name, layer.total())?;
        }
        let b = self.breakdown();
        for phase in Phase::ALL {
            writeln!(
                f,
                "  [{:>12}] {:>10}  ({:.1}%)",
                phase.label(),
                b.get(phase).to_string(),
                100.0 * b.fraction(phase)
            )?;
        }
        Ok(())
    }
}

/// Computes the timing of one inference (batch size 1) of `model`.
///
/// Layer timings are independent of one another, so they are dispatched as
/// shard jobs through [`SystemConfig::parallelism`]; the report is
/// identical under every engine (results fold in layer order).
///
/// Under the dynamic sparsity modes this prices the detect overhead but no
/// skips (activation densities are per-input and unknown here); use
/// [`time_inference_with_profile`] to price a measured input.
#[must_use]
pub fn time_inference(config: &SystemConfig, model: &Model) -> InferenceReport {
    let plans = plan_model_with(model, &config.geometry, config.sparsity);
    time_plans(config, model, &plans)
}

/// [`time_inference`] with the MAC phase priced for one **measured input**:
/// the [`crate::sparsity::ActivationProfile`]'s per-sub-layer input-bit
/// skip fractions are written into the plans before timing, so under
/// [`crate::SparsityMode::SkipZeroInputs`] / `SkipBoth` the report reflects
/// that input's activation sparsity (detect overhead charged per round).
/// Under the static modes the profile changes nothing.
#[must_use]
pub fn time_inference_with_profile(
    config: &SystemConfig,
    model: &Model,
    profile: &crate::sparsity::ActivationProfile,
) -> InferenceReport {
    let mut plans = plan_model_with(model, &config.geometry, config.sparsity);
    profile.apply_to_plans(&mut plans);
    time_plans(config, model, &plans)
}

fn time_plans(config: &SystemConfig, model: &Model, plans: &[LayerPlan]) -> InferenceReport {
    let layers = config
        .parallelism
        .run(plans.len(), |i| time_layer(config, &plans[i], i == 0));
    InferenceReport {
        model: model.name.clone(),
        cost_model: config.cost.model().name(),
        slices: config.geometry.slices,
        layers,
    }
}

/// Computes the timing of one layer. `first_layer` inputs stream from DRAM
/// through the TMUs instead of the reserved way (Section IV-C).
#[must_use]
pub fn time_layer(config: &SystemConfig, plan: &LayerPlan, first_layer: bool) -> LayerTiming {
    let cost = config.cost.model();
    let freq = config.timings.compute_freq_hz;
    let slices = config.geometry.slices.max(1);
    let mut phases = PhaseBreakdown::new();
    let mut rounds_total = 0usize;
    let mut compute_cycles = 0u64;
    let mut mac_saved_cycles = 0u64;
    let mut mac_detect_cycles = 0u64;
    let mut mac_cycles = 0u64;
    let mut mac_cycles_lockstep = 0u64;
    let mut active_weighted = 0.0f64;
    let mut streamed_bytes = 0usize;
    let mut dram_bytes = 0usize;

    // --- Filter loading: DRAM-bound stream, broadcast over ring and buses.
    if plan.filter_bytes > 0 {
        let t = config
            .dram
            .stream_time(plan.filter_bytes)
            .max(config.interconnect.ring_broadcast_time(plan.filter_bytes));
        phases.add(Phase::FilterLoad, t);
        dram_bytes += plan.filter_bytes;
    }

    for unit in &plan.units {
        match unit {
            UnitPlan::Conv(c) => {
                let cycles = conv_cycles(cost, c);
                let (cycles_mac, cycles_saved, cycles_red, cycles_quant) =
                    (cycles.mac, cycles.saved, cycles.reduce, cycles.quant);
                mac_saved_cycles += cycles_saved;
                mac_detect_cycles += cycles.detect;
                mac_cycles += cycles_mac;
                mac_cycles_lockstep += cycles.mac_lockstep;
                phases.add(Phase::Mac, SimTime::from_cycles(cycles_mac, freq));
                phases.add(Phase::Reduce, SimTime::from_cycles(cycles_red, freq));
                phases.add(Phase::Quantize, SimTime::from_cycles(cycles_quant, freq));

                let unit_cycles = cycles_mac + cycles_red + cycles_quant;
                compute_cycles += unit_cycles;
                active_weighted += unit_cycles as f64 * c.utilization() * c.lane_occupancy();
                rounds_total += c.rounds;

                // Input streaming (Section IV-C): each active way of a
                // slice receives its own pixel's window, one full
                // 256-bit-wide row set per streamed filter byte; ways with
                // the same pixel position share one broadcast, and the
                // per-bank latch (already in the bus model) halves delivery
                // time. Stride reuse reduces the fresh rows per round.
                let arrays_per_slice = c.active_arrays().div_ceil(slices);
                let ways_active = arrays_per_slice
                    .div_ceil(config.geometry.arrays_per_way())
                    .clamp(1, config.geometry.compute_ways());
                let row_bytes = nc_sram::COLS / 8;
                let bytes_per_round = ways_active as f64
                    * (c.eff_window * crate::cost::DATA_BITS * row_bytes) as f64
                    * c.fresh_input_fraction
                    * INPUT_DELIVERY_SERIALIZATION;
                let in_bytes = (c.rounds as f64 * bytes_per_round).ceil() as usize;
                let mut t_in = config.interconnect.slice_stream_time(in_bytes);
                if first_layer {
                    t_in = t_in.max(config.dram.stream_time(c.in_shape.bytes()));
                    dram_bytes += c.in_shape.bytes();
                }
                phases.add(Phase::InputStream, t_in);
                streamed_bytes += in_bytes * slices;

                // Output transfer: the 4-byte accumulator of every
                // convolution moves to the reserved way (Figure 10's output
                // segments) with set-walk granularity, slices in parallel.
                let out_bytes = c.total_convs * 4 * OUTPUT_SET_WALK_FACTOR;
                phases.add(
                    Phase::OutputTransfer,
                    config.interconnect.slice_transfer_time(out_bytes / slices),
                );
                streamed_bytes += out_bytes;
            }
            UnitPlan::Pool(p) => {
                let cycles = pool_cycles(cost, p);
                phases.add(Phase::Pool, SimTime::from_cycles(cycles, freq));
                compute_cycles += cycles;
                let util = p.total_outputs as f64 / (p.rounds as f64 * p.parallel_outputs as f64);
                active_weighted += cycles as f64 * util;
                rounds_total += p.rounds;

                // Pool inputs stream like convolutions without filters:
                // window rows into every active way.
                let row_bytes = nc_sram::COLS / 8;
                let window_lane_bytes = p.window.min(crate::mapping::MAX_INPUT_BYTES_PER_LANE);
                let bytes_per_round = (config.geometry.compute_ways()
                    * window_lane_bytes
                    * crate::cost::DATA_BITS
                    * row_bytes) as f64
                    * p.fresh_input_fraction
                    * INPUT_DELIVERY_SERIALIZATION;
                let in_bytes = (p.rounds as f64 * bytes_per_round).ceil() as usize;
                let mut t_in = config.interconnect.slice_stream_time(in_bytes);
                if first_layer {
                    t_in = t_in.max(config.dram.stream_time(p.in_shape.bytes()));
                    dram_bytes += p.in_shape.bytes();
                }
                phases.add(Phase::InputStream, t_in);
                streamed_bytes += in_bytes * slices;

                let out_bytes = p.total_outputs;
                phases.add(
                    Phase::OutputTransfer,
                    config.interconnect.slice_transfer_time(out_bytes / slices),
                );
                streamed_bytes += out_bytes;
            }
        }
    }

    let active_fraction = if compute_cycles == 0 {
        0.0
    } else {
        active_weighted / compute_cycles as f64
    };
    LayerTiming {
        name: plan.name.clone(),
        phases,
        rounds: rounds_total,
        compute_cycles,
        mac_saved_cycles,
        mac_detect_cycles,
        mac_cycles,
        mac_cycles_lockstep,
        active_fraction,
        streamed_bytes,
        dram_bytes,
    }
}

/// Cycle costs of one convolution unit under both skip-time variants.
struct ConvCycles {
    /// MAC cycles under the per-bank-FSM (mean skip) variant — what the
    /// phase breakdown charges.
    mac: u64,
    /// MAC cycles under the lockstep-bank (max-over-arrays) variant.
    mac_lockstep: u64,
    /// Dense-minus-mean MAC cycles elided by round skipping (net of the
    /// detect overhead under the dynamic modes; saturated at 0).
    saved: u64,
    /// Wired-NOR zero-detect cycles charged (dynamic modes only).
    detect: u64,
    /// Reduction cycles.
    reduce: u64,
    /// Ranging/requantization cycles.
    quant: u64,
}

/// Cycles of one convolution unit. Under `SkipZeroRows` the MAC phase
/// shrinks by the mapping's measured skip fraction. The phase-level model
/// is the **per-bank-FSM** variant (banks advance through their own round
/// schedules between reduction barriers, and filters of one sub-layer are
/// pruned uniformly, so the mean skip fraction applies); the
/// **lockstep-bank** variant (one FSM steps every bank, so only globally
/// zero rounds skip) is computed alongside to quantify the spread.
///
/// Under the dynamic modes (`SkipZeroInputs`/`SkipBoth`) the MAC phase is
/// priced by [`CostModelRef::mac_cycles_dynamic`]: every scheduled round
/// pays the 1-cycle wired-NOR detect, the mapping's (profile-measured)
/// `input_skip_fraction` of rounds is elided, and executed rounds run only
/// `live_mult_bits` adds. No lockstep variant exists here — the dynamic
/// detect is inherently per-array (a single-cycle wired-NOR cannot span
/// thousands of arrays), so per-bank FSMs are a prerequisite and the
/// lockstep column mirrors the per-bank value.
fn conv_cycles(cost: &dyn CostModelRef, c: &ConvMapping) -> ConvCycles {
    let rounds = c.rounds as u64;
    let serial_macs = rounds * c.eff_window as u64;
    let mac_dense = serial_macs * cost.mac_cycles();
    let (mac, mac_lockstep, detect) = if c.dynamic_detect {
        let mac = (serial_macs as f64
            * cost.mac_cycles_dynamic(c.input_skip_fraction, c.live_mult_bits))
        .round() as u64;
        let detect = serial_macs * crate::cost::DATA_BITS as u64 * cost.detect_cycle();
        (mac, mac, detect)
    } else {
        let mac =
            (serial_macs as f64 * cost.mac_cycles_sparse(c.simd_skip_fraction)).round() as u64;
        let lockstep =
            (serial_macs as f64 * cost.mac_cycles_sparse(c.lockstep_skip_fraction)).round() as u64;
        (mac, lockstep, 0)
    };
    let saved = mac_dense.saturating_sub(mac);
    let reduce = rounds
        * (cost.reduction_setup_cycles()
            + u64::from(c.reduce_steps) * cost.reduction_step_cycles()
            + u64::from(c.cross_array_steps) * cost.cross_array_step_cycles());
    let quant = rounds * cost.requant_cycles()
        + cost.minmax_tree_cycles(nc_sram::COLS)
        + CROSS_SLICE_MINMAX_CYCLES;
    ConvCycles {
        mac,
        mac_lockstep,
        saved,
        detect,
        reduce,
        quant,
    }
}

/// Pooling cycles of one pooling unit.
fn pool_cycles(cost: &dyn CostModelRef, p: &PoolMapping) -> u64 {
    let rounds = p.rounds as u64;
    let per_output = match p.kind {
        PoolKind::Max => (p.window as u64 - 1) * cost.max_cycles(),
        PoolKind::Avg => (p.window as u64 - 1) * cost.avg_add_cycles() + cost.avg_div_cycles(),
    };
    rounds * per_output
}

/// Fixed cost of reducing per-array min/max values to one value across
/// banks, ways and slices (bus transfers + ring hops; Section IV-D notes
/// this happens once per layer and its penalty is small).
const CROSS_SLICE_MINMAX_CYCLES: u64 = 2000;

/// Serialization factor on input delivery beyond raw bus bandwidth:
/// set-address walking, bank write-port conflicts and row-write pacing
/// observed by the paper's fill micro-benchmark (which we cannot run;
/// calibrated so input streaming lands at its Figure 14 share, ~15%).
const INPUT_DELIVERY_SERIALIZATION: f64 = 4.0;

/// Set-walk granularity of output stores to the reserved way (outputs move
/// as row fragments, not packed bytes); calibrated against Figure 14's ~4%
/// output-transfer share.
const OUTPUT_SET_WALK_FACTOR: usize = 4;

use crate::cost::CostModel as CostModelRef;

/// Multiply cycles per live multiplicand bit in the derived cost model: a
/// `k`-bit multiplicand makes the bit-serial multiply cost `9k + 24` cycles
/// (8 multiplier rounds of `k + 2` row ops plus the `8 + k` product bits),
/// so each trimmed bit saves 9 cycles per serial MAC.
const MUL_CYCLES_PER_MULT_BIT: u64 = 9;

/// Reduction cycles per bit of running-sum width: one tree step moves and
/// adds two operands across the `S1` and `S2` trees (2 trees x 3 row ops
/// per bit = 6), so each trimmed reduce bit saves 6 cycles per step.
const REDUCE_CYCLES_PER_BIT: u64 = 6;

/// Partial-accumulate cycles per bit of partial-sum width (the lane
/// accumulate is 1 cycle per bit), so each trimmed partial bit saves one
/// cycle per serial MAC.
const PARTIAL_CYCLES_PER_BIT: u64 = 1;

/// MAC and reduction cycles one convolution unit saves when executed under
/// a trimmed [`BitBudget`](crate::mapping::BitBudget) instead of the
/// default Figure 10 allocation.
/// Counts only the phases the budget widths govern (lane accumulate,
/// multiply, in-array reduction steps) — conservative, since cross-array
/// steps and scratch moves shrink too.
#[must_use]
pub fn advised_trim_savings(c: &ConvMapping, budget: &crate::mapping::BitBudget) -> u64 {
    let rounds = c.rounds as u64;
    let serial_macs = rounds * c.eff_window as u64;
    let partial_trim =
        u64::from((crate::cost::PARTIAL_BITS as u32).saturating_sub(budget.partial_bits));
    let mult_trim = u64::from((crate::cost::DATA_BITS as u32).saturating_sub(budget.mult_bits));
    let reduce_trim =
        u64::from((crate::cost::REDUCE_BITS as u32).saturating_sub(budget.reduce_bits));
    serial_macs * (PARTIAL_CYCLES_PER_BIT * partial_trim + MUL_CYCLES_PER_MULT_BIT * mult_trim)
        + rounds * u64::from(c.reduce_steps) * REDUCE_CYCLES_PER_BIT * reduce_trim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use nc_dnn::inception::inception_v3;

    fn report() -> InferenceReport {
        time_inference(&SystemConfig::xeon_e5_2697_v3(), &inception_v3())
    }

    #[test]
    fn trim_savings_scale_with_proven_widths() {
        use crate::mapping::{plan_model, BitBudget};
        use nc_geometry::CacheGeometry;
        let plans = plan_model(&inception_v3(), &CacheGeometry::xeon_e5_2697_v3());
        let conv = plans
            .iter()
            .flat_map(|p| &p.units)
            .find_map(|u| match u {
                UnitPlan::Conv(c) if c.name == "Conv2d_2b_3x3" => Some(c),
                _ => None,
            })
            .expect("Conv2d_2b_3x3 plan");
        assert_eq!(advised_trim_savings(conv, &BitBudget::default_for("x")), 0);
        // 43 rounds x 9-tap lanes: 2 partial bits + 2 mult bits save
        // 387 * (2 + 9*2) cycles; 8 reduce bits save 43 * 5 * 6 * 8.
        let trimmed = BitBudget {
            name: "Conv2d_2b_3x3".into(),
            mult_bits: 6,
            partial_bits: 22,
            reduce_bits: 24,
        };
        assert_eq!(
            advised_trim_savings(conv, &trimmed),
            387 * 20 + 43 * 5 * 6 * 8
        );
    }

    #[test]
    fn total_latency_in_paper_ballpark() {
        // Paper Table IV: 4.72 ms at 35 MB, batch 1.
        let total = report().total().as_millis_f64();
        assert!(
            (3.0..7.0).contains(&total),
            "expected ~4.7 ms, got {total:.2} ms"
        );
    }

    #[test]
    fn filter_loading_dominates_like_figure14() {
        let r = report();
        let b = r.breakdown();
        let filter = b.fraction(Phase::FilterLoad);
        assert!(
            (0.30..0.60).contains(&filter),
            "filter share {filter:.2} vs paper 0.46"
        );
        assert!(b.fraction(Phase::Mac) > b.fraction(Phase::Reduce));
        assert!(b.fraction(Phase::Pool) < 0.02, "pooling ~0.04% in paper");
        let sum: f64 = Phase::ALL.iter().map(|p| b.fraction(*p)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to 1");
    }

    #[test]
    fn conv2d_2b_latency_matches_worked_example() {
        // Section VI-A: convolution compute of Conv2D_2b = 43 rounds *
        // 2784 cycles = 119,712 cycles = 0.0479 ms at 2.5 GHz.
        let r = report();
        let layer = r.layer("Conv2d_2b_3x3").unwrap();
        let conv_compute = layer.phases.get(Phase::Mac) + layer.phases.get(Phase::Reduce);
        let ms = conv_compute.as_millis_f64();
        assert!((ms - 0.0479).abs() < 0.001, "got {ms:.4} ms");
    }

    #[test]
    fn layer_times_sum_to_total() {
        let r = report();
        let sum: SimTime = r.layers.iter().map(LayerTiming::total).sum();
        assert!((sum.as_secs_f64() - r.total().as_secs_f64()).abs() < 1e-12);
    }

    #[test]
    fn more_cache_is_faster() {
        let model = inception_v3();
        let t35 = time_inference(&SystemConfig::with_capacity_mb(35), &model).total();
        let t45 = time_inference(&SystemConfig::with_capacity_mb(45), &model).total();
        let t60 = time_inference(&SystemConfig::with_capacity_mb(60), &model).total();
        assert!(t45 < t35, "45 MB beats 35 MB");
        assert!(t60 < t45, "60 MB beats 45 MB");
        // Filter loading does not improve with capacity (Section VI-D).
        let f35 = time_inference(&SystemConfig::with_capacity_mb(35), &model)
            .breakdown()
            .get(Phase::FilterLoad);
        let f60 = time_inference(&SystemConfig::with_capacity_mb(60), &model)
            .breakdown()
            .get(Phase::FilterLoad);
        assert!((f35.as_secs_f64() - f60.as_secs_f64()).abs() < 1e-12);
    }

    #[test]
    fn derived_cost_model_also_lands_near_paper() {
        let mut config = SystemConfig::xeon_e5_2697_v3();
        config.cost = crate::cost::CostModelKind::Derived;
        let total = time_inference(&config, &inception_v3())
            .total()
            .as_millis_f64();
        assert!(
            (2.5..7.0).contains(&total),
            "derived model total {total:.2} ms"
        );
    }

    #[test]
    fn threaded_timing_is_identical_to_sequential() {
        let model = inception_v3();
        let seq = time_inference(&SystemConfig::xeon_e5_2697_v3(), &model);
        let thr = time_inference(&SystemConfig::with_parallelism(4), &model);
        assert_eq!(seq, thr, "parallelism must not change simulated timing");
    }

    #[test]
    fn skip_zero_rows_shrinks_mac_phase_on_pruned_models() {
        use crate::sparsity::SparsityMode;
        use nc_dnn::workload::pruned_inception;
        let model = pruned_inception(7);
        let dense = time_inference(&SystemConfig::xeon_e5_2697_v3(), &model);
        let sparse = time_inference(
            &SystemConfig::with_sparsity(SparsityMode::SkipZeroRows),
            &model,
        );
        let mac_dense = dense.breakdown().get(Phase::Mac).as_secs_f64();
        let mac_sparse = sparse.breakdown().get(Phase::Mac).as_secs_f64();
        assert!(
            mac_dense / mac_sparse >= 1.3,
            "pruned model must elide >= 1.3x MAC cycles, got {:.2}x",
            mac_dense / mac_sparse
        );
        // Savings are reported per layer and only the MAC phase changes.
        assert!(sparse.layers.iter().any(|l| l.mac_saved_cycles > 0));
        assert!(dense.layers.iter().all(|l| l.mac_saved_cycles == 0));
        for (d, s) in dense.layers.iter().zip(&sparse.layers) {
            for phase in Phase::ALL {
                if phase != Phase::Mac {
                    assert_eq!(d.phases.get(phase), s.phases.get(phase), "{phase:?}");
                }
            }
        }
        assert!(sparse.total() < dense.total());
    }

    #[test]
    fn lockstep_variant_reports_per_layer_spread() {
        use crate::sparsity::SparsityMode;
        use nc_dnn::workload::{prune_conv, random_conv, single_conv_model};
        use nc_dnn::{Padding, Shape};
        // Near-total magnitude pruning differentiates arrays (moderate
        // pruning saturates every ~256-lane OR alike, giving zero spread).
        let conv = prune_conv(
            random_conv("spread", (3, 3), 16, 64, 1, Padding::Same, true, 9),
            2,
            0.99,
            9,
        );
        let model = single_conv_model(conv, Shape::new(12, 12, 16));
        // Dense: both variants degenerate to the same dense MAC cycles.
        let dense = time_inference(&SystemConfig::xeon_e5_2697_v3(), &model);
        for l in &dense.layers {
            assert_eq!(l.mac_cycles, l.mac_cycles_lockstep, "{}", l.name);
            assert_eq!(l.skip_time_spread(), 0.0, "{}", l.name);
        }
        // Skipping: lockstep pays at least the per-bank mean, and the MAC
        // phase charged in the breakdown is the per-bank variant.
        let sparse = time_inference(
            &SystemConfig::with_sparsity(SparsityMode::SkipZeroRows),
            &model,
        );
        let freq = SystemConfig::xeon_e5_2697_v3().timings.compute_freq_hz;
        let mut any_spread = false;
        for l in &sparse.layers {
            assert!(
                l.mac_cycles_lockstep >= l.mac_cycles,
                "{}: lockstep {} < mean {}",
                l.name,
                l.mac_cycles_lockstep,
                l.mac_cycles
            );
            assert!(l.skip_time_spread() >= 0.0);
            any_spread |= l.skip_time_spread() > 0.0;
            let phase_cycles = (l.phases.get(Phase::Mac).as_secs_f64() * freq).round() as u64;
            assert_eq!(
                phase_cycles, l.mac_cycles,
                "{}: phase charges the mean",
                l.name
            );
        }
        assert!(
            any_spread,
            "magnitude-pruned inception must show a lockstep spread somewhere"
        );
        // Lockstep still beats dense (uniform bit pruning skips globally).
        let dense_mac: u64 = dense.layers.iter().map(|l| l.mac_cycles).sum();
        let lockstep_mac: u64 = sparse.layers.iter().map(|l| l.mac_cycles_lockstep).sum();
        assert!(lockstep_mac < dense_mac, "lockstep skipping still helps");
    }

    #[test]
    fn dynamic_skip_prices_measured_activations_and_detect_overhead() {
        use crate::sparsity::{activation_profile, SparsityMode};
        use nc_dnn::workload::{relu_sparse_conv_model, relu_sparse_input};
        let model = relu_sparse_conv_model(7);
        let dense = time_inference(&SystemConfig::xeon_e5_2697_v3(), &model);
        let dense_mac: u64 = dense.layers.iter().map(|l| l.mac_cycles).sum();
        for l in &dense.layers {
            assert_eq!(l.mac_detect_cycles, 0, "static modes charge no detect");
        }

        let config = SystemConfig::with_sparsity(SparsityMode::SkipZeroInputs);
        // Without a profile the planner knows no skips: the dynamic mode is
        // pure detect overhead over dense.
        let unprofiled = time_inference(&config, &model);
        let unprofiled_mac: u64 = unprofiled.layers.iter().map(|l| l.mac_cycles).sum();
        let detect: u64 = unprofiled.layers.iter().map(|l| l.mac_detect_cycles).sum();
        assert!(detect > 0);
        assert_eq!(
            unprofiled_mac,
            dense_mac + detect,
            "no measured skips: dynamic = dense + detect overhead"
        );

        // A measured ReLU-sparse input yields a *net* MAC speedup after
        // the detect charge.
        let sparse_in = relu_sparse_input(model.input_shape, 0.7, 2, 3);
        let profile = activation_profile(&model, &sparse_in);
        let profiled = time_inference_with_profile(&config, &model, &profile);
        let profiled_mac: u64 = profiled.layers.iter().map(|l| l.mac_cycles).sum();
        assert!(
            (dense_mac as f64) / (profiled_mac as f64) > 1.3,
            "ReLU-sparse input must net a MAC speedup: dense {dense_mac} vs {profiled_mac}"
        );
        // A dense-activation input shows the break-even's other side: the
        // detect overhead makes the dynamic mode *slower* than dense.
        let dense_in = relu_sparse_input(model.input_shape, 0.0, 8, 3);
        let dense_prof = activation_profile(&model, &dense_in);
        let overhead = time_inference_with_profile(&config, &model, &dense_prof);
        let overhead_mac: u64 = overhead.layers.iter().map(|l| l.mac_cycles).sum();
        assert!(
            overhead_mac > dense_mac,
            "dense activations make detection pure overhead"
        );
        // Non-MAC phases are untouched by the dynamic mode.
        for (d, s) in dense.layers.iter().zip(&profiled.layers) {
            for phase in Phase::ALL {
                if phase != Phase::Mac {
                    assert_eq!(d.phases.get(phase), s.phases.get(phase), "{phase:?}");
                }
            }
        }
        // SkipBoth composes the static weight truncation on top: never
        // slower than inputs-only on the same profile.
        let both = time_inference_with_profile(
            &SystemConfig::with_sparsity(SparsityMode::SkipBoth),
            &model,
            &profile,
        );
        let both_mac: u64 = both.layers.iter().map(|l| l.mac_cycles).sum();
        assert!(both_mac <= profiled_mac);
        // The lockstep column mirrors the per-bank value under dynamic
        // modes (no lockstep wired-NOR across arrays is modeled).
        for l in &profiled.layers {
            assert_eq!(l.mac_cycles, l.mac_cycles_lockstep);
        }
    }

    #[test]
    fn skip_mode_is_a_no_op_for_dense_random_weights() {
        use crate::sparsity::SparsityMode;
        use nc_dnn::workload::mini_inception;
        let model = mini_inception(7);
        let dense = time_inference(&SystemConfig::xeon_e5_2697_v3(), &model);
        let sparse = time_inference(
            &SystemConfig::with_sparsity(SparsityMode::SkipZeroRows),
            &model,
        );
        // Random dense codes offer (almost) no all-lanes-zero rows.
        let ratio = dense.breakdown().get(Phase::Mac).as_secs_f64()
            / sparse.breakdown().get(Phase::Mac).as_secs_f64();
        assert!(ratio < 1.05, "dense weights should barely skip: {ratio:.3}");
    }

    #[test]
    fn display_report_mentions_phases() {
        let text = report().to_string();
        assert!(text.contains("filter-load"));
        assert!(text.contains("Mixed_7c"));
    }

    #[test]
    fn csv_export_has_all_rows_and_totals() {
        let csv = report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 20 + 1, "header + 20 layers + totals");
        assert!(lines[0].starts_with("layer,filter-load,"));
        assert!(lines.last().unwrap().starts_with("TOTAL,"));
        // Every row has 9 comma-separated fields.
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 9, "bad row: {line}");
        }
    }
}
