//! Batched inference (Section IV-E): filter weights stay stationary across
//! a batch, amortizing the dominant filter-loading phase; over-sized layer
//! outputs overflow the reserved way and round-trip through DRAM.

use nc_geometry::SimTime;

use crate::config::SystemConfig;
use crate::mapping::plan_model;
use crate::timing::{time_layer, Phase};

/// Timing result of a batch of inferences.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Batch size `N`.
    pub batch: usize,
    /// Latency of the whole batch on one socket.
    pub latency: SimTime,
    /// One-time filter loading across all layers.
    pub filter_time: SimTime,
    /// Per-image streaming + compute time.
    pub per_image_time: SimTime,
    /// Per-batch DRAM dump overhead (reserved-way overflow).
    pub dump_time: SimTime,
    /// Inferences per second across `sockets` sockets (Neural Cache scales
    /// linearly with the host CPU count, Section VI-B).
    pub throughput_ips: f64,
    /// Layer names whose batched outputs overflow the reserved way.
    pub dumped_layers: Vec<String>,
}

/// Times a batch of `batch` images through `model` (Section IV-E
/// semantics: per layer, filters load once, then the batch streams
/// through).
///
/// # Panics
///
/// Panics if `batch` is zero.
#[must_use]
pub fn time_batch(config: &SystemConfig, model: &nc_dnn::Model, batch: usize) -> BatchReport {
    assert!(batch > 0, "batch must be at least 1");
    let plans = plan_model(model, &config.geometry);
    let io_capacity = config.geometry.io_way_bytes();

    let mut filter_time = SimTime::ZERO;
    let mut per_image_time = SimTime::ZERO;
    let mut dump_time = SimTime::ZERO;
    let mut dumped_layers = Vec::new();

    for (i, plan) in plans.iter().enumerate() {
        let layer = time_layer(config, plan, i == 0);
        let f = layer.phases.get(Phase::FilterLoad);
        filter_time += f;
        per_image_time += layer.total() - f;

        // Reserved-way overflow: the batch's outputs of this layer exceed
        // the staging capacity and round-trip through DRAM (the paper's
        // "first five layers" effect).
        let batch_out = plan.output_bytes * batch;
        if batch > 1 && batch_out > io_capacity {
            dumped_layers.push(plan.name.clone());
            dump_time += config.dram.round_trip_time(plan.output_bytes) * batch as f64;
        }
    }

    let latency = filter_time + per_image_time * batch as f64 + dump_time;
    let throughput_ips = config.sockets as f64 * batch as f64 / latency.as_secs_f64();
    BatchReport {
        batch,
        latency,
        filter_time,
        per_image_time,
        dump_time,
        throughput_ips,
        dumped_layers,
    }
}

/// Sweeps throughput over batch sizes (Figure 16's x-axis).
#[must_use]
pub fn throughput_sweep(
    config: &SystemConfig,
    model: &nc_dnn::Model,
    batches: &[usize],
) -> Vec<BatchReport> {
    batches
        .iter()
        .map(|&b| time_batch(config, model, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dnn::inception::inception_v3;

    fn config() -> SystemConfig {
        SystemConfig::xeon_e5_2697_v3()
    }

    #[test]
    fn batch_one_matches_single_inference() {
        let model = inception_v3();
        let single = crate::timing::time_inference(&config(), &model).total();
        let batch = time_batch(&config(), &model, 1);
        assert!(
            (batch.latency.as_secs_f64() - single.as_secs_f64()).abs() < 1e-12,
            "batch-1 latency equals single-inference latency"
        );
        assert!(batch.dumped_layers.is_empty(), "batch 1 never dumps");
    }

    #[test]
    fn throughput_grows_then_plateaus() {
        let model = inception_v3();
        let sweep = throughput_sweep(&config(), &model, &[1, 4, 16, 64, 256]);
        // Batching amortizes filter loading; reserved-way overflow dumps
        // kick in at discrete thresholds, so small local dips are expected
        // (the paper's Figure 16 also flattens rather than rising
        // monotonically).
        for pair in sweep.windows(2) {
            assert!(
                pair[1].throughput_ips >= pair[0].throughput_ips * 0.9,
                "throughput should not regress by more than the dump steps"
            );
        }
        let gain_small = sweep[1].throughput_ips / sweep[0].throughput_ips;
        let gain_large = sweep[4].throughput_ips / sweep[3].throughput_ips;
        assert!(gain_small > 1.2, "early batching gains are large");
        assert!(gain_large < 1.1, "throughput plateaus at high batch");
    }

    #[test]
    fn peak_throughput_in_paper_ballpark() {
        // Figure 16: 604 inferences/sec at batch 256 (dual socket).
        let model = inception_v3();
        let peak = time_batch(&config(), &model, 256).throughput_ips;
        assert!((450.0..800.0).contains(&peak), "got {peak:.0} inf/s");
    }

    #[test]
    fn early_layers_dump_when_batched() {
        // Section IV-E: with batching, the first five layers dump outputs
        // to DRAM.
        let model = inception_v3();
        let r = time_batch(&config(), &model, 16);
        assert!(
            !r.dumped_layers.is_empty(),
            "large-output layers must overflow the reserved way"
        );
        assert!(r.dumped_layers.iter().any(|l| l.contains("2b")));
        assert!(r.dump_time > SimTime::ZERO);
    }
}
