//! Batched inference (Section IV-E): filter weights stay stationary across
//! a batch, amortizing the dominant filter-loading phase; over-sized layer
//! outputs overflow the reserved way and round-trip through DRAM.

use nc_geometry::SimTime;

use crate::config::SystemConfig;
use crate::mapping::{plan_model_with, LayerPlan};
use crate::timing::{time_layer, Phase};

/// One socket's Section IV-E time split: (one-time filter loading,
/// per-image streaming + compute). Per-layer timings are sharded through
/// [`SystemConfig::parallelism`] and folded in layer order, so the split is
/// engine-independent. Shared by the batch and serving drivers.
fn socket_times(config: &SystemConfig, plans: &[LayerPlan]) -> (SimTime, SimTime) {
    let layer_times = config
        .parallelism
        .run(plans.len(), |i| time_layer(config, &plans[i], i == 0));
    let mut filter_time = SimTime::ZERO;
    let mut per_image_time = SimTime::ZERO;
    for layer in &layer_times {
        let f = layer.phases.get(Phase::FilterLoad);
        filter_time += f;
        per_image_time += layer.total() - f;
    }
    (filter_time, per_image_time)
}

/// Timing result of a batch of inferences.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Batch size `N`.
    pub batch: usize,
    /// Latency of the whole batch on one socket.
    pub latency: SimTime,
    /// One-time filter loading across all layers.
    pub filter_time: SimTime,
    /// Per-image streaming + compute time.
    pub per_image_time: SimTime,
    /// Per-batch DRAM dump overhead (reserved-way overflow).
    pub dump_time: SimTime,
    /// Inferences per second across `sockets` sockets (Neural Cache scales
    /// linearly with the host CPU count, Section VI-B).
    pub throughput_ips: f64,
    /// Layer names whose batched outputs overflow the reserved way.
    pub dumped_layers: Vec<String>,
}

/// Times a batch of `batch` images through `model` (Section IV-E
/// semantics: per layer, filters load once, then the batch streams
/// through). Per-layer timings are sharded through
/// [`SystemConfig::parallelism`] and folded in layer order.
///
/// # Panics
///
/// Panics if `batch` is zero.
#[must_use]
pub fn time_batch(config: &SystemConfig, model: &nc_dnn::Model, batch: usize) -> BatchReport {
    assert!(batch > 0, "batch must be at least 1");
    let plans = plan_model_with(model, &config.geometry, config.sparsity);
    let io_capacity = config.geometry.io_way_bytes();
    let (filter_time, per_image_time) = socket_times(config, &plans);

    // Reserved-way overflow: the batch's outputs of a layer exceed the
    // staging capacity and the **overflow** round-trips through DRAM (the
    // paper's "first five layers" effect). Only bytes beyond
    // `io_way_bytes()` move — the resident portion stays in the reserved
    // way — and a batch of one is no exception when a single image's
    // output alone overflows.
    let mut dump_time = SimTime::ZERO;
    let mut dumped_layers = Vec::new();
    for plan in &plans {
        let batch_out = plan.output_bytes * batch;
        if batch_out > io_capacity {
            dumped_layers.push(plan.name.clone());
            dump_time += config.dram.round_trip_time(batch_out - io_capacity);
        }
    }

    let latency = filter_time + per_image_time * batch as f64 + dump_time;
    let throughput_ips = config.sockets as f64 * batch as f64 / latency.as_secs_f64();
    BatchReport {
        batch,
        latency,
        filter_time,
        per_image_time,
        dump_time,
        throughput_ips,
        dumped_layers,
    }
}

/// Result of the multi-request throughput-serving driver: `N` concurrent
/// inference requests dispatched round-robin across the host's sockets.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Number of requests served.
    pub requests: usize,
    /// Independent accelerator sockets the requests were spread over.
    pub sockets: usize,
    /// Requests dispatched to each socket (round-robin remainder first).
    pub per_socket: Vec<usize>,
    /// Time until the last request completes.
    pub makespan: SimTime,
    /// Aggregate inferences per second over the makespan.
    pub throughput_ips: f64,
    /// Mean request completion latency (all requests arrive at t = 0).
    pub mean_latency: SimTime,
    /// Worst-case request completion latency (the queue tail).
    pub max_latency: SimTime,
}

/// Simulates serving `requests` concurrent inference requests across
/// `config.sockets` independent Neural Cache sockets.
///
/// Each socket behaves per Section IV-E: its filters load once, stay
/// stationary, and its queued requests then stream back-to-back, each
/// paying only the per-image (non-filter) time. Requests are dispatched
/// round-robin; request latencies are queueing delays plus service time,
/// all derived from the deterministic timing model, so the report is fully
/// reproducible.
///
/// # Panics
///
/// Panics if `requests` is zero.
#[must_use]
pub fn serve_requests(
    config: &SystemConfig,
    model: &nc_dnn::Model,
    requests: usize,
) -> ServingReport {
    assert!(requests > 0, "must serve at least one request");
    let plans = plan_model_with(model, &config.geometry, config.sparsity);
    let (filter_time, per_image_time) = socket_times(config, &plans);

    let sockets = config.sockets.max(1);
    let per_socket: Vec<usize> = (0..sockets)
        .map(|s| requests / sockets + usize::from(s < requests % sockets))
        .collect();

    let mut makespan = SimTime::ZERO;
    let mut latency_sum = 0.0f64;
    let mut max_latency = SimTime::ZERO;
    for &queued in &per_socket {
        if queued == 0 {
            continue;
        }
        // k-th request on this socket completes after the one-time filter
        // load plus k back-to-back per-image services.
        let tail = filter_time + per_image_time * queued as f64;
        makespan = makespan.max(tail);
        max_latency = max_latency.max(tail);
        for k in 1..=queued {
            latency_sum += (filter_time + per_image_time * k as f64).as_secs_f64();
        }
    }

    ServingReport {
        requests,
        sockets,
        per_socket,
        makespan,
        throughput_ips: requests as f64 / makespan.as_secs_f64(),
        mean_latency: SimTime::from_secs(latency_sum / requests as f64),
        max_latency,
    }
}

/// Sweeps throughput over batch sizes (Figure 16's x-axis).
#[must_use]
pub fn throughput_sweep(
    config: &SystemConfig,
    model: &nc_dnn::Model,
    batches: &[usize],
) -> Vec<BatchReport> {
    batches
        .iter()
        .map(|&b| time_batch(config, model, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dnn::inception::inception_v3;

    fn config() -> SystemConfig {
        SystemConfig::xeon_e5_2697_v3()
    }

    #[test]
    fn batch_one_matches_single_inference() {
        let model = inception_v3();
        let single = crate::timing::time_inference(&config(), &model).total();
        let batch = time_batch(&config(), &model, 1);
        assert!(
            (batch.latency.as_secs_f64() - single.as_secs_f64()).abs() < 1e-12,
            "batch-1 latency equals single-inference latency"
        );
        assert!(batch.dumped_layers.is_empty(), "batch 1 never dumps");
    }

    #[test]
    fn throughput_grows_then_plateaus() {
        let model = inception_v3();
        let sweep = throughput_sweep(&config(), &model, &[1, 4, 16, 64, 256]);
        // Batching amortizes filter loading; reserved-way overflow dumps
        // kick in at discrete thresholds, so small local dips are expected
        // (the paper's Figure 16 also flattens rather than rising
        // monotonically).
        for pair in sweep.windows(2) {
            assert!(
                pair[1].throughput_ips >= pair[0].throughput_ips * 0.9,
                "throughput should not regress by more than the dump steps"
            );
        }
        let gain_small = sweep[1].throughput_ips / sweep[0].throughput_ips;
        let gain_large = sweep[4].throughput_ips / sweep[3].throughput_ips;
        assert!(gain_small > 1.2, "early batching gains are large");
        assert!(gain_large < 1.1, "throughput plateaus at high batch");
    }

    #[test]
    fn peak_throughput_in_paper_ballpark() {
        // Figure 16: 604 inferences/sec at batch 256 (dual socket).
        let model = inception_v3();
        let peak = time_batch(&config(), &model, 256).throughput_ips;
        assert!((450.0..800.0).contains(&peak), "got {peak:.0} inf/s");
    }

    #[test]
    fn serving_one_request_matches_single_inference() {
        let model = inception_v3();
        let single = crate::timing::time_inference(&config(), &model).total();
        let r = serve_requests(&config(), &model, 1);
        assert_eq!(r.per_socket.iter().sum::<usize>(), 1);
        assert!((r.makespan.as_secs_f64() - single.as_secs_f64()).abs() < 1e-12);
        assert_eq!(r.mean_latency, r.max_latency);
    }

    #[test]
    fn serving_spreads_requests_and_amortizes_filters() {
        let model = inception_v3();
        let one = serve_requests(&config(), &model, 1);
        let many = serve_requests(&config(), &model, 64);
        assert_eq!(many.sockets, 2);
        assert_eq!(many.per_socket, vec![32, 32]);
        // Filters load once per socket: 64 requests complete in far less
        // than 64 single-request latencies.
        assert!(many.makespan.as_secs_f64() < 40.0 * one.makespan.as_secs_f64());
        // Later requests queue behind earlier ones.
        assert!(many.mean_latency < many.max_latency);
        assert!(many.throughput_ips > one.throughput_ips);
        // Deterministic.
        assert_eq!(many, serve_requests(&config(), &model, 64));
    }

    #[test]
    fn serving_odd_requests_round_robins_the_remainder() {
        let model = inception_v3();
        let r = serve_requests(&config(), &model, 7);
        assert_eq!(r.per_socket, vec![4, 3]);
        assert_eq!(r.requests, 7);
    }

    #[test]
    fn dump_accounts_only_the_overflow_beyond_the_reserved_way() {
        // Regression: the old model round-tripped the *full* output bytes
        // of every dumped layer per image. Only bytes beyond io_way_bytes()
        // actually move.
        let config = config();
        let model = inception_v3();
        let batch = 16;
        let r = time_batch(&config, &model, batch);
        let io = config.geometry.io_way_bytes();
        let plans = crate::mapping::plan_model(&model, &config.geometry);
        let mut expected = SimTime::ZERO;
        for plan in &plans {
            let batch_out = plan.output_bytes * batch;
            if batch_out > io {
                expected += config.dram.round_trip_time(batch_out - io);
            }
        }
        assert!((r.dump_time.as_secs_f64() - expected.as_secs_f64()).abs() < 1e-15);
        // Strictly less than the old full-output accounting.
        let mut old_model = SimTime::ZERO;
        for plan in &plans {
            if plan.output_bytes * batch > io {
                old_model += config.dram.round_trip_time(plan.output_bytes) * batch as f64;
            }
        }
        assert!(
            r.dump_time < old_model,
            "overflow-only accounting is cheaper"
        );
    }

    #[test]
    fn batch_of_one_dumps_an_oversized_output() {
        // Regression: a single image whose layer output alone overflows the
        // reserved way must round-trip the overflow even at batch 1.
        use nc_dnn::workload::{random_conv, single_conv_model};
        use nc_dnn::{Padding, Shape};
        let config = config();
        let io = config.geometry.io_way_bytes();
        // 80x80x300 output = 1.92 MB > the 1.75 MB reserved way.
        let conv = random_conv("big", (1, 1), 4, 300, 1, Padding::Valid, true, 3);
        let model = single_conv_model(conv, Shape::new(80, 80, 4));
        let out_bytes = 80 * 80 * 300;
        assert!(out_bytes > io, "test premise: output overflows the way");
        let r = time_batch(&config, &model, 1);
        assert_eq!(r.dumped_layers, vec!["big".to_owned()]);
        let expected = config.dram.round_trip_time(out_bytes - io);
        assert!((r.dump_time.as_secs_f64() - expected.as_secs_f64()).abs() < 1e-15);
        assert!(r.dump_time > SimTime::ZERO);
    }

    #[test]
    fn early_layers_dump_when_batched() {
        // Section IV-E: with batching, the first five layers dump outputs
        // to DRAM.
        let model = inception_v3();
        let r = time_batch(&config(), &model, 16);
        assert!(
            !r.dumped_layers.is_empty(),
            "large-output layers must overflow the reserved way"
        );
        assert!(r.dumped_layers.iter().any(|l| l.contains("2b")));
        assert!(r.dump_time > SimTime::ZERO);
    }
}
