//! Batched inference (Section IV-E): filter weights stay stationary across
//! a batch, amortizing the dominant filter-loading phase; over-sized layer
//! outputs overflow the reserved way and round-trip through DRAM.
//!
//! [`BatchCostModel`] is the plan-once costing substrate: it plans the
//! model a single time, folds the per-layer timings into the Section IV-E
//! (filter, per-image) split, and can then price any batch size in O(layers)
//! without re-planning — [`time_batch`], [`throughput_sweep`],
//! [`serve_requests`] and the `nc-serve` discrete-event simulator all cost
//! batches through it.

use nc_geometry::{DramModel, SimTime};

use crate::config::SystemConfig;
use crate::mapping::{plan_model_with, LayerPlan};
use crate::timing::{time_layer, Phase};

/// Fraction of the double-buffered dump traffic that actually drains in the
/// background: the reserved I/O way is a single-ported staging buffer, so
/// while the next image's inputs stream through it the background DRAM dump
/// can claim at most every other access slot (half-duplex sharing). At 0.5
/// the batch-256 Inception v3 peak lands at ~725 inf/s — between the
/// fully-serialized ~588 and the fully-overlapped ~945, on the optimistic
/// side of the paper's 604 (which models no overlap at all).
pub const DUMP_OVERLAP_EFFICIENCY: f64 = 0.5;

/// One socket's Section IV-E time split: (one-time filter loading,
/// per-image streaming + compute). Per-layer timings are sharded through
/// [`SystemConfig::parallelism`] and folded in layer order, so the split is
/// engine-independent. Shared by the batch and serving drivers.
fn socket_times(config: &SystemConfig, plans: &[LayerPlan]) -> (SimTime, SimTime) {
    let layer_times = config
        .parallelism
        .run(plans.len(), |i| time_layer(config, &plans[i], i == 0));
    let mut filter_time = SimTime::ZERO;
    let mut per_image_time = SimTime::ZERO;
    for layer in &layer_times {
        let f = layer.phases.get(Phase::FilterLoad);
        filter_time += f;
        per_image_time += layer.total() - f;
    }
    (filter_time, per_image_time)
}

/// Timing result of a batch of inferences.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Batch size `N`.
    pub batch: usize,
    /// Latency of the whole batch on one socket.
    pub latency: SimTime,
    /// One-time filter loading across all layers.
    pub filter_time: SimTime,
    /// Per-image streaming + compute time.
    pub per_image_time: SimTime,
    /// Raw per-batch DRAM dump traffic time (reserved-way overflow), before
    /// double-buffering overlap.
    pub dump_time: SimTime,
    /// Dump time hidden behind later images' compute by double buffering
    /// through the reserved I/O way; the latency only pays
    /// `dump_time - dump_overlap_saved`.
    pub dump_overlap_saved: SimTime,
    /// Inferences per second across `sockets` sockets (Neural Cache scales
    /// linearly with the host CPU count, Section VI-B).
    pub throughput_ips: f64,
    /// Layer names whose batched outputs overflow the reserved way.
    pub dumped_layers: Vec<String>,
}

impl BatchReport {
    /// Dump time the batch actually stalls on (`dump_time` minus the
    /// double-buffered overlap).
    #[must_use]
    pub fn dump_stall(&self) -> SimTime {
        self.dump_time - self.dump_overlap_saved
    }
}

/// Plan-once batch costing: the Section IV-E (filter, per-image) split and
/// the reserved-way overflow profile of one `(config, model)` pair, priced
/// against any batch size in O(layers) — no re-planning per query.
///
/// # Examples
///
/// ```
/// use neural_cache::{BatchCostModel, SystemConfig};
/// use nc_dnn::inception::inception_v3;
///
/// let cost = BatchCostModel::new(&SystemConfig::xeon_e5_2697_v3(), &inception_v3());
/// let r16 = cost.report(16);
/// assert_eq!(r16.batch, 16);
/// assert!(cost.report(64).throughput_ips >= r16.throughput_ips * 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCostModel {
    filter_time: SimTime,
    per_image_time: SimTime,
    /// How much *slower* a fully-dense-activation image is than the
    /// profile-measured `per_image_time` under a dynamic sparsity mode
    /// (zero for static modes and unprofiled models): the activation
    /// sparsity of each image decides where in
    /// `[per_image_time, per_image_time + image_time_spread]` its marginal
    /// cost lands.
    image_time_spread: SimTime,
    io_capacity: usize,
    dram: DramModel,
    sockets: usize,
    /// `(layer name, single-image output bytes)` per plan layer.
    layer_outputs: Vec<(String, usize)>,
}

impl BatchCostModel {
    /// Plans `model` once under `config` and captures everything needed to
    /// cost batches of any size.
    #[must_use]
    pub fn new(config: &SystemConfig, model: &nc_dnn::Model) -> Self {
        let plans = plan_model_with(model, &config.geometry, config.sparsity);
        let (filter_time, per_image_time) = socket_times(config, &plans);
        BatchCostModel::from_plans(config, &plans, filter_time, per_image_time, SimTime::ZERO)
    }

    /// Shared constructor tail of [`BatchCostModel::new`] /
    /// [`BatchCostModel::with_profile`]: captures the config-derived fields
    /// and the per-layer output profile from a set of plans.
    fn from_plans(
        config: &SystemConfig,
        plans: &[LayerPlan],
        filter_time: SimTime,
        per_image_time: SimTime,
        image_time_spread: SimTime,
    ) -> Self {
        BatchCostModel {
            filter_time,
            per_image_time,
            image_time_spread,
            io_capacity: config.geometry.io_way_bytes(),
            dram: config.dram,
            sockets: config.sockets,
            layer_outputs: plans
                .iter()
                .map(|p| (p.name.clone(), p.output_bytes))
                .collect(),
        }
    }

    /// [`BatchCostModel::new`] priced for a **measured activation
    /// profile**: under [`crate::SparsityMode::SkipZeroInputs`] /
    /// `SkipBoth`, `per_image_time()` reflects the profile's input-bit
    /// skip fractions, and [`BatchCostModel::image_time_spread`] captures
    /// how much slower a fully-dense-activation image runs (the same
    /// plans with zero measured skip — detect overhead still charged).
    /// This is what makes serving latency activation-dependent: images are
    /// no longer interchangeable units of work. Under static modes the
    /// profile changes nothing and the spread is zero.
    #[must_use]
    pub fn with_profile(
        config: &SystemConfig,
        model: &nc_dnn::Model,
        profile: &crate::sparsity::ActivationProfile,
    ) -> Self {
        let mut plans = plan_model_with(model, &config.geometry, config.sparsity);
        // Zero-skip pricing first (plans carry no measured fractions yet):
        // the worst-case per-image time of a fully dense activation tensor.
        let (_, per_image_dense) = socket_times(config, &plans);
        profile.apply_to_plans(&mut plans);
        let (filter_time, per_image_time) = socket_times(config, &plans);
        let spread = if per_image_dense > per_image_time {
            per_image_dense - per_image_time
        } else {
            SimTime::ZERO
        };
        BatchCostModel::from_plans(config, &plans, filter_time, per_image_time, spread)
    }

    /// Extra marginal time of a fully-dense-activation image over the
    /// profiled `per_image_time()` (zero unless built by
    /// [`BatchCostModel::with_profile`] under a dynamic sparsity mode).
    #[must_use]
    pub fn image_time_spread(&self) -> SimTime {
        self.image_time_spread
    }

    /// One-time filter-loading cost (paid once while weights become
    /// stationary on a socket or slice).
    #[must_use]
    pub fn filter_time(&self) -> SimTime {
        self.filter_time
    }

    /// Marginal streaming + compute cost of one image once filters are
    /// resident.
    #[must_use]
    pub fn per_image_time(&self) -> SimTime {
        self.per_image_time
    }

    /// Raw DRAM dump traffic of a batch (reserved-way overflow: only bytes
    /// beyond `io_way_bytes()` move — the resident portion stays in the
    /// reserved way — and a batch of one is no exception when a single
    /// image's output alone overflows), plus the overflowing layer names.
    #[must_use]
    pub fn dump_profile(&self, batch: usize) -> (SimTime, Vec<String>) {
        let mut dumped_layers = Vec::new();
        for (name, output_bytes) in &self.layer_outputs {
            if output_bytes * batch > self.io_capacity {
                dumped_layers.push(name.clone());
            }
        }
        (self.dump_time(batch), dumped_layers)
    }

    /// [`BatchCostModel::dump_profile`]'s time alone, allocation-free — the
    /// hot path for policies that probe many candidate batch sizes per
    /// decision.
    #[must_use]
    pub fn dump_time(&self, batch: usize) -> SimTime {
        let mut dump_time = SimTime::ZERO;
        for (_, output_bytes) in &self.layer_outputs {
            let batch_out = output_bytes * batch;
            if batch_out > self.io_capacity {
                dump_time += self.dram.round_trip_time(batch_out - self.io_capacity);
            }
        }
        dump_time
    }

    /// Dump time hidden by double buffering through the reserved I/O way:
    /// while image `k+1` streams and computes, image `k`'s overflow drains
    /// to DRAM in the background. The last image's share (`dump/batch`) has
    /// no subsequent compute to hide behind and always stalls; the earlier
    /// images' share hides under up to `per_image * (batch - 1)` of
    /// compute, discounted by [`DUMP_OVERLAP_EFFICIENCY`] for the reserved
    /// way's port conflict with input staging.
    ///
    /// `batch <= 1` returns zero **explicitly** (handled before the
    /// `(batch - 1) / batch` window arithmetic, whose `usize` subtraction
    /// would underflow at `batch = 0` and whose division would be 0/0): a
    /// single image has no later compute to hide behind, and an empty
    /// batch has nothing to dump.
    #[must_use]
    pub fn dump_overlap_saved(&self, batch: usize, dump_time: SimTime) -> SimTime {
        if batch <= 1 {
            return SimTime::ZERO;
        }
        let overlappable = dump_time * ((batch - 1) as f64 / batch as f64);
        let window = self.per_image_time * (batch - 1) as f64;
        overlappable.min(window) * DUMP_OVERLAP_EFFICIENCY
    }

    /// Service time of a batch on one socket/slice: per-image work plus the
    /// exposed dump stall, plus the one-time filter load when `cold` (the
    /// first batch after weights change). Warm batches reuse the stationary
    /// filters (Section IV-E).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn service_time(&self, batch: usize, cold: bool) -> SimTime {
        assert!(batch > 0, "batch must be at least 1");
        let dump_time = self.dump_time(batch);
        let stall = dump_time - self.dump_overlap_saved(batch, dump_time);
        let filter = if cold {
            self.filter_time
        } else {
            SimTime::ZERO
        };
        filter + self.per_image_time * batch as f64 + stall
    }

    /// [`BatchCostModel::service_time`] with **per-image activation
    /// densities**: each image contributes `per_image_time() + act *
    /// image_time_spread()`, where `act` in `[0, 1]` is its activation
    /// density relative to the measured profile (0 = as sparse as the
    /// profile, 1 = fully dense activations). With a zero spread (static
    /// modes / unprofiled models) this is exactly
    /// `service_time(acts.len(), cold)` — the serving simulator calls this
    /// unconditionally and degenerates to the classic cost when
    /// activation pricing is off.
    ///
    /// # Panics
    ///
    /// Panics if `acts` is empty.
    #[must_use]
    pub fn service_time_acts(&self, acts: &[f64], cold: bool) -> SimTime {
        assert!(!acts.is_empty(), "batch must be at least 1");
        let mut t = self.service_time(acts.len(), cold);
        if self.image_time_spread > SimTime::ZERO {
            for &act in acts {
                t += self.image_time_spread * act.clamp(0.0, 1.0);
            }
        }
        t
    }

    /// Full Section IV-E batch report (cold start: includes filter load).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn report(&self, batch: usize) -> BatchReport {
        assert!(batch > 0, "batch must be at least 1");
        let (dump_time, dumped_layers) = self.dump_profile(batch);
        let dump_overlap_saved = self.dump_overlap_saved(batch, dump_time);
        let latency = self.filter_time
            + self.per_image_time * batch as f64
            + (dump_time - dump_overlap_saved);
        let throughput_ips = self.sockets as f64 * batch as f64 / latency.as_secs_f64();
        BatchReport {
            batch,
            latency,
            filter_time: self.filter_time,
            per_image_time: self.per_image_time,
            dump_time,
            dump_overlap_saved,
            throughput_ips,
            dumped_layers,
        }
    }
}

/// Times a batch of `batch` images through `model` (Section IV-E
/// semantics: per layer, filters load once, then the batch streams
/// through). Per-layer timings are sharded through
/// [`SystemConfig::parallelism`] and folded in layer order. Reserved-way
/// overflow dumps double-buffer behind later images' compute; only the
/// exposed stall adds latency.
///
/// # Panics
///
/// Panics if `batch` is zero.
#[must_use]
pub fn time_batch(config: &SystemConfig, model: &nc_dnn::Model, batch: usize) -> BatchReport {
    BatchCostModel::new(config, model).report(batch)
}

/// Result of the multi-request throughput-serving driver: `N` concurrent
/// inference requests dispatched round-robin across the host's sockets.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Number of requests served.
    pub requests: usize,
    /// Independent accelerator sockets the requests were spread over.
    pub sockets: usize,
    /// Requests dispatched to each socket (round-robin remainder first).
    pub per_socket: Vec<usize>,
    /// Time until the last request completes.
    pub makespan: SimTime,
    /// Aggregate inferences per second over the makespan.
    pub throughput_ips: f64,
    /// Mean request completion latency (all requests arrive at t = 0).
    pub mean_latency: SimTime,
    /// Worst-case request completion latency (the queue tail).
    pub max_latency: SimTime,
}

/// Simulates serving `requests` concurrent inference requests across
/// `config.sockets` independent Neural Cache sockets.
///
/// Each socket behaves per Section IV-E: its filters load once, stay
/// stationary, and its queued requests then stream back-to-back, each
/// paying only the per-image (non-filter) time. Requests are dispatched
/// round-robin; request latencies are queueing delays plus service time,
/// all derived from the deterministic timing model, so the report is fully
/// reproducible.
///
/// # Panics
///
/// Panics if `requests` is zero.
#[must_use]
pub fn serve_requests(
    config: &SystemConfig,
    model: &nc_dnn::Model,
    requests: usize,
) -> ServingReport {
    assert!(requests > 0, "must serve at least one request");
    let cost = BatchCostModel::new(config, model);
    let (filter_time, per_image_time) = (cost.filter_time(), cost.per_image_time());

    let sockets = config.sockets.max(1);
    let per_socket: Vec<usize> = (0..sockets)
        .map(|s| requests / sockets + usize::from(s < requests % sockets))
        .collect();

    let mut makespan = SimTime::ZERO;
    let mut latency_sum = 0.0f64;
    let mut max_latency = SimTime::ZERO;
    for &queued in &per_socket {
        if queued == 0 {
            continue;
        }
        // k-th request on this socket completes after the one-time filter
        // load plus k back-to-back per-image services.
        let tail = filter_time + per_image_time * queued as f64;
        makespan = makespan.max(tail);
        max_latency = max_latency.max(tail);
        for k in 1..=queued {
            latency_sum += (filter_time + per_image_time * k as f64).as_secs_f64();
        }
    }

    ServingReport {
        requests,
        sockets,
        per_socket,
        makespan,
        throughput_ips: requests as f64 / makespan.as_secs_f64(),
        mean_latency: SimTime::from_secs(latency_sum / requests as f64),
        max_latency,
    }
}

/// Sweeps throughput over batch sizes (Figure 16's x-axis). The model is
/// planned **once** through [`BatchCostModel`]; each sweep point reuses the
/// same plan (identical to pointwise [`time_batch`], just not O(points *
/// layers^2)).
#[must_use]
pub fn throughput_sweep(
    config: &SystemConfig,
    model: &nc_dnn::Model,
    batches: &[usize],
) -> Vec<BatchReport> {
    let cost = BatchCostModel::new(config, model);
    batches.iter().map(|&b| cost.report(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dnn::inception::inception_v3;

    fn config() -> SystemConfig {
        SystemConfig::xeon_e5_2697_v3()
    }

    #[test]
    fn batch_one_matches_single_inference() {
        let model = inception_v3();
        let single = crate::timing::time_inference(&config(), &model).total();
        let batch = time_batch(&config(), &model, 1);
        assert!(
            (batch.latency.as_secs_f64() - single.as_secs_f64()).abs() < 1e-12,
            "batch-1 latency equals single-inference latency"
        );
        assert!(batch.dumped_layers.is_empty(), "batch 1 never dumps");
    }

    #[test]
    fn throughput_grows_then_plateaus() {
        let model = inception_v3();
        let sweep = throughput_sweep(&config(), &model, &[1, 4, 16, 64, 256]);
        // Batching amortizes filter loading; reserved-way overflow dumps
        // kick in at discrete thresholds, so small local dips are expected
        // (the paper's Figure 16 also flattens rather than rising
        // monotonically).
        for pair in sweep.windows(2) {
            assert!(
                pair[1].throughput_ips >= pair[0].throughput_ips * 0.9,
                "throughput should not regress by more than the dump steps"
            );
        }
        let gain_small = sweep[1].throughput_ips / sweep[0].throughput_ips;
        let gain_large = sweep[4].throughput_ips / sweep[3].throughput_ips;
        assert!(gain_small > 1.2, "early batching gains are large");
        assert!(gain_large < 1.1, "throughput plateaus at high batch");
    }

    #[test]
    fn peak_throughput_in_paper_ballpark() {
        // Figure 16: 604 inferences/sec at batch 256 (dual socket).
        let model = inception_v3();
        let peak = time_batch(&config(), &model, 256).throughput_ips;
        assert!((450.0..800.0).contains(&peak), "got {peak:.0} inf/s");
    }

    #[test]
    fn serving_one_request_matches_single_inference() {
        let model = inception_v3();
        let single = crate::timing::time_inference(&config(), &model).total();
        let r = serve_requests(&config(), &model, 1);
        assert_eq!(r.per_socket.iter().sum::<usize>(), 1);
        assert!((r.makespan.as_secs_f64() - single.as_secs_f64()).abs() < 1e-12);
        assert_eq!(r.mean_latency, r.max_latency);
    }

    #[test]
    fn serving_spreads_requests_and_amortizes_filters() {
        let model = inception_v3();
        let one = serve_requests(&config(), &model, 1);
        let many = serve_requests(&config(), &model, 64);
        assert_eq!(many.sockets, 2);
        assert_eq!(many.per_socket, vec![32, 32]);
        // Filters load once per socket: 64 requests complete in far less
        // than 64 single-request latencies.
        assert!(many.makespan.as_secs_f64() < 40.0 * one.makespan.as_secs_f64());
        // Later requests queue behind earlier ones.
        assert!(many.mean_latency < many.max_latency);
        assert!(many.throughput_ips > one.throughput_ips);
        // Deterministic.
        assert_eq!(many, serve_requests(&config(), &model, 64));
    }

    #[test]
    fn serving_odd_requests_round_robins_the_remainder() {
        let model = inception_v3();
        let r = serve_requests(&config(), &model, 7);
        assert_eq!(r.per_socket, vec![4, 3]);
        assert_eq!(r.requests, 7);
    }

    #[test]
    fn dump_accounts_only_the_overflow_beyond_the_reserved_way() {
        // Regression: the old model round-tripped the *full* output bytes
        // of every dumped layer per image. Only bytes beyond io_way_bytes()
        // actually move.
        let config = config();
        let model = inception_v3();
        let batch = 16;
        let r = time_batch(&config, &model, batch);
        let io = config.geometry.io_way_bytes();
        let plans = crate::mapping::plan_model(&model, &config.geometry);
        let mut expected = SimTime::ZERO;
        for plan in &plans {
            let batch_out = plan.output_bytes * batch;
            if batch_out > io {
                expected += config.dram.round_trip_time(batch_out - io);
            }
        }
        assert!((r.dump_time.as_secs_f64() - expected.as_secs_f64()).abs() < 1e-15);
        // Strictly less than the old full-output accounting.
        let mut old_model = SimTime::ZERO;
        for plan in &plans {
            if plan.output_bytes * batch > io {
                old_model += config.dram.round_trip_time(plan.output_bytes) * batch as f64;
            }
        }
        assert!(
            r.dump_time < old_model,
            "overflow-only accounting is cheaper"
        );
    }

    #[test]
    fn batch_of_one_dumps_an_oversized_output() {
        // Regression: a single image whose layer output alone overflows the
        // reserved way must round-trip the overflow even at batch 1.
        use nc_dnn::workload::{random_conv, single_conv_model};
        use nc_dnn::{Padding, Shape};
        let config = config();
        let io = config.geometry.io_way_bytes();
        // 80x80x300 output = 1.92 MB > the 1.75 MB reserved way.
        let conv = random_conv("big", (1, 1), 4, 300, 1, Padding::Valid, true, 3);
        let model = single_conv_model(conv, Shape::new(80, 80, 4));
        let out_bytes = 80 * 80 * 300;
        assert!(out_bytes > io, "test premise: output overflows the way");
        let r = time_batch(&config, &model, 1);
        assert_eq!(r.dumped_layers, vec!["big".to_owned()]);
        let expected = config.dram.round_trip_time(out_bytes - io);
        assert!((r.dump_time.as_secs_f64() - expected.as_secs_f64()).abs() < 1e-15);
        assert!(r.dump_time > SimTime::ZERO);
    }

    #[test]
    fn early_layers_dump_when_batched() {
        // Section IV-E: with batching, the first five layers dump outputs
        // to DRAM.
        let model = inception_v3();
        let r = time_batch(&config(), &model, 16);
        assert!(
            !r.dumped_layers.is_empty(),
            "large-output layers must overflow the reserved way"
        );
        assert!(r.dumped_layers.iter().any(|l| l.contains("2b")));
        assert!(r.dump_time > SimTime::ZERO);
    }

    #[test]
    fn dump_overlap_hides_all_but_the_last_image_share() {
        // Double buffering through the reserved I/O way: only the last
        // image's dump share stalls once the compute window is long enough.
        let model = inception_v3();
        let r = time_batch(&config(), &model, 64);
        assert!(r.dump_time > SimTime::ZERO);
        assert!(
            r.dump_overlap_saved > SimTime::ZERO,
            "batches overlap dumps"
        );
        // The compute window dominates on Inception v3, so exactly the
        // half-duplex share of (batch-1)/batch hides.
        let expected = r.dump_time * (63.0 / 64.0) * DUMP_OVERLAP_EFFICIENCY;
        assert!(
            (r.dump_overlap_saved.as_secs_f64() - expected.as_secs_f64()).abs() < 1e-15,
            "saved {} vs expected {}",
            r.dump_overlap_saved,
            expected
        );
        assert!(
            (r.latency.as_secs_f64()
                - (r.filter_time + r.per_image_time * 64.0 + r.dump_stall()).as_secs_f64())
            .abs()
                < 1e-15
        );
        // Overlap never hides more than the raw dump traffic.
        assert!(r.dump_overlap_saved <= r.dump_time);
    }

    #[test]
    fn batch_of_one_cannot_overlap_dumps() {
        use nc_dnn::workload::{random_conv, single_conv_model};
        use nc_dnn::{Padding, Shape};
        let conv = random_conv("big", (1, 1), 4, 300, 1, Padding::Valid, true, 3);
        let model = single_conv_model(conv, Shape::new(80, 80, 4));
        let r = time_batch(&config(), &model, 1);
        assert!(r.dump_time > SimTime::ZERO, "premise: batch-1 dump");
        assert_eq!(r.dump_overlap_saved, SimTime::ZERO);
        assert_eq!(r.dump_stall(), r.dump_time);
    }

    #[test]
    fn overlap_is_bounded_by_the_compute_window() {
        // A model whose dump traffic dwarfs its compute: the hidden share
        // saturates at per_image * (batch - 1), leaving a real stall.
        use nc_dnn::workload::{random_conv, single_conv_model};
        use nc_dnn::{Padding, Shape};
        let conv = random_conv("huge_out", (1, 1), 2, 512, 1, Padding::Valid, true, 5);
        let model = single_conv_model(conv, Shape::new(64, 64, 2));
        let cost = BatchCostModel::new(&config(), &model);
        let r = cost.report(8);
        let window = r.per_image_time * 7.0;
        if r.dump_time * (7.0 / 8.0) > window {
            let expected = window * DUMP_OVERLAP_EFFICIENCY;
            assert!(
                (r.dump_overlap_saved.as_secs_f64() - expected.as_secs_f64()).abs() < 1e-15,
                "window-bound overlap"
            );
            assert!(r.dump_stall() > SimTime::ZERO);
        } else {
            // Geometry shifted the balance; the invariant still holds.
            assert!(r.dump_overlap_saved <= window * DUMP_OVERLAP_EFFICIENCY);
        }
    }

    #[test]
    fn sweep_reuses_one_plan_and_matches_pointwise_time_batch() {
        // Regression for the re-planning sweep: every sweep point must be
        // identical to an independent time_batch call.
        let model = inception_v3();
        let config = config();
        let batches = [1usize, 3, 8, 32, 128, 256];
        let sweep = throughput_sweep(&config, &model, &batches);
        assert_eq!(sweep.len(), batches.len());
        for (r, &b) in sweep.iter().zip(&batches) {
            assert_eq!(r, &time_batch(&config, &model, b), "batch {b}");
        }
    }

    #[test]
    fn zero_and_one_image_batches_never_overlap_dumps() {
        // Regression: the overlappable window `(batch - 1) / batch` assumed
        // batch >= 1 — batch = 0 would underflow the usize subtraction and
        // divide 0/0. Both degenerate batches must report zero overlap even
        // against nonzero dump traffic, and the batch-entry points must
        // reject batch = 0 outright.
        let model = inception_v3();
        let cost = BatchCostModel::new(&config(), &model);
        let fake_dump = SimTime::from_millis(5.0);
        assert_eq!(cost.dump_overlap_saved(0, fake_dump), SimTime::ZERO);
        assert_eq!(cost.dump_overlap_saved(1, fake_dump), SimTime::ZERO);
        assert!(cost.dump_overlap_saved(2, fake_dump) > SimTime::ZERO);
        // An empty batch has no dump traffic or dumped layers either.
        assert_eq!(cost.dump_time(0), SimTime::ZERO);
        let (t, layers) = cost.dump_profile(0);
        assert_eq!(t, SimTime::ZERO);
        assert!(layers.is_empty());
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn service_time_rejects_empty_batches() {
        let cost = BatchCostModel::new(&config(), &inception_v3());
        let _ = cost.service_time(0, false);
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn report_rejects_empty_batches() {
        let cost = BatchCostModel::new(&config(), &inception_v3());
        let _ = cost.report(0);
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn activation_service_time_rejects_empty_batches() {
        let cost = BatchCostModel::new(&config(), &inception_v3());
        let _ = cost.service_time_acts(&[], false);
    }

    #[test]
    fn profiled_cost_model_prices_activation_density() {
        use crate::sparsity::{activation_profile, SparsityMode};
        use nc_dnn::workload::{relu_sparse_conv_model, relu_sparse_input};
        let model = relu_sparse_conv_model(2);
        let input = relu_sparse_input(model.input_shape, 0.7, 2, 5);
        let profile = activation_profile(&model, &input);
        let dynamic = SystemConfig::with_sparsity(SparsityMode::SkipZeroInputs);
        let cost = BatchCostModel::with_profile(&dynamic, &model, &profile);
        assert!(
            cost.image_time_spread() > SimTime::ZERO,
            "a sparse profile must open a dense-vs-sparse image spread"
        );
        // Dense images cost more than profile-sparse ones; the batch total
        // interpolates per image.
        let sparse_batch = cost.service_time_acts(&[0.0, 0.0], false);
        let dense_batch = cost.service_time_acts(&[1.0, 1.0], false);
        let mixed = cost.service_time_acts(&[0.0, 1.0], false);
        assert!(dense_batch > sparse_batch);
        assert!(sparse_batch < mixed && mixed < dense_batch);
        assert_eq!(
            sparse_batch,
            cost.service_time(2, false),
            "act = 0 images cost the profiled per-image time"
        );
        let spread2 = cost.image_time_spread() * 2.0;
        assert!((dense_batch.as_secs_f64() - (sparse_batch + spread2).as_secs_f64()).abs() < 1e-15);
        // Out-of-range densities clamp.
        assert_eq!(
            cost.service_time_acts(&[7.0], false),
            cost.service_time_acts(&[1.0], false)
        );

        // Static modes: no spread, and the acts path degenerates exactly.
        let static_cost = BatchCostModel::new(&SystemConfig::xeon_e5_2697_v3(), &model);
        assert_eq!(static_cost.image_time_spread(), SimTime::ZERO);
        assert_eq!(
            static_cost.service_time_acts(&[0.3, 0.9, 1.0], true),
            static_cost.service_time(3, true)
        );
        // The profiled dynamic per-image time beats the unprofiled one
        // (which charges detects but knows no skips).
        let unprofiled = BatchCostModel::new(&dynamic, &model);
        assert!(cost.per_image_time() < unprofiled.per_image_time());
    }

    #[test]
    fn cost_model_service_time_splits_cold_and_warm() {
        let model = inception_v3();
        let cost = BatchCostModel::new(&config(), &model);
        let cold = cost.service_time(4, true);
        let warm = cost.service_time(4, false);
        assert!(
            (cold.as_secs_f64() - (warm + cost.filter_time()).as_secs_f64()).abs() < 1e-15,
            "cold = warm + one-time filter load"
        );
        // Cold batch service equals the batch report latency.
        let r = cost.report(4);
        assert!((cold.as_secs_f64() - r.latency.as_secs_f64()).abs() < 1e-15);
        // Warm service scales with batch size.
        assert!(cost.service_time(8, false) > cost.service_time(2, false));
    }
}
