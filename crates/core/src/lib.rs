//! **Neural Cache**: bit-serial in-cache acceleration of deep neural
//! networks — the core of the ISCA 2018 reproduction.
//!
//! This crate turns the substrates ([`nc_sram`] compute arrays,
//! [`nc_geometry`] cache/interconnect models, [`nc_dnn`] quantized DNNs)
//! into the paper's system:
//!
//! - [`mapping`]: the Section IV data layout — filter packing/splitting,
//!   channel round-up, array allocation, slice partitioning, serial-round
//!   scheduling;
//! - [`timing`]: the deterministic phase-resolved timing simulator behind
//!   Figures 13-15 and Table IV;
//! - [`energy`]: the chip-side energy/power model behind Table III;
//! - [`batching`]: Section IV-E batch scheduling behind Figure 16;
//! - [`cost`]: paper-published vs micro-op-derived cycle-cost models;
//! - [`isa`]: the Section IV-F instruction/FSM execution model;
//! - [`engine`]: the work-sharded execution engine (sequential or threaded
//!   backends) the simulators dispatch independent shard jobs through;
//! - [`layout`]: the named operand-row layouts of every executor shard job,
//!   shared with the `nc-verify` static plan checker;
//! - [`functional`]: the bit-accurate executor that runs layers on real
//!   [`nc_sram::ComputeArray`]s and must match the [`nc_dnn::reference`]
//!   golden model bit-for-bit;
//! - [`trace`]: exports timing reports onto [`nc_telemetry`] timelines
//!   (Perfetto-loadable via the `nc-bench` exporters), reconciling
//!   bit-exactly with the reports they mirror.
//!
//! # Quickstart
//!
//! ```
//! use neural_cache::{NeuralCache, SystemConfig};
//! use nc_dnn::inception::inception_v3;
//!
//! let system = NeuralCache::new(SystemConfig::xeon_e5_2697_v3());
//! let report = system.run_inference(&inception_v3());
//! println!("Inception v3 inference: {}", report.total());
//! let energy = system.energy(&report);
//! println!("energy: {:.3} J at {:.1} W", energy.total_j(), energy.avg_power_w());
//! # assert!(report.total().as_millis_f64() > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::pedantic)]
// Pedantic allowlist: the timing/energy models convert cycle counters and
// byte counts to f64 throughout (bounded far below 2^52); tests compare
// exact rational outputs with `==`; shard-job helpers are declared next to
// the loops that dispatch them; bytecount would add a dependency.
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::naive_bytecount,
    clippy::too_many_lines
)]

pub mod batching;
mod config;
pub mod cost;
pub mod energy;
pub mod engine;
pub mod functional;
pub mod isa;
pub mod layout;
pub mod mapping;
pub mod sparsity;
pub mod timing;
pub mod trace;

pub use batching::{
    serve_requests, throughput_sweep, time_batch, BatchCostModel, BatchReport, ServingReport,
};
pub use config::SystemConfig;
pub use cost::{CostModel, CostModelKind, DerivedCostModel, PaperCostModel};
pub use energy::{energy_of, EnergyReport};
pub use engine::{ExecutionEngine, ShardObserver, ShardSample};
pub use mapping::{
    plan_model, plan_model_with, ConvMapping, LaneGeometry, LayerPlan, PoolMapping, UnitPlan,
};
pub use sparsity::{ActivationProfile, SparsityMode};
pub use timing::{
    time_inference, time_inference_with_profile, InferenceReport, LayerTiming, Phase,
    PhaseBreakdown,
};
pub use trace::trace_inference_report;

/// The Neural Cache system: a configured accelerator exposing the timing,
/// energy, batching and functional execution entry points.
#[derive(Debug, Clone, Default)]
pub struct NeuralCache {
    config: SystemConfig,
}

impl NeuralCache {
    /// Creates a system from a configuration.
    #[must_use]
    pub fn new(config: SystemConfig) -> Self {
        NeuralCache { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Plans the data layout of every layer (Section IV-A/IV-B) under the
    /// configured sparsity mode, so the returned mappings carry the same
    /// skip fractions the timing entry points use.
    #[must_use]
    pub fn plan(&self, model: &nc_dnn::Model) -> Vec<LayerPlan> {
        plan_model_with(model, &self.config.geometry, self.config.sparsity)
    }

    /// Times one inference (batch size 1).
    #[must_use]
    pub fn run_inference(&self, model: &nc_dnn::Model) -> InferenceReport {
        time_inference(&self.config, model)
    }

    /// Times a batch of inferences (Section IV-E).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn run_batch(&self, model: &nc_dnn::Model, batch: usize) -> BatchReport {
        time_batch(&self.config, model, batch)
    }

    /// Simulates serving `requests` concurrent inference requests across
    /// the configured sockets (the throughput-serving driver; weights stay
    /// stationary per socket, Section IV-E).
    ///
    /// # Panics
    ///
    /// Panics if `requests` is zero.
    #[must_use]
    pub fn serve(&self, model: &nc_dnn::Model, requests: usize) -> ServingReport {
        serve_requests(&self.config, model, requests)
    }

    /// Plans `model` once and returns the reusable batch costing the
    /// serving stack (`nc-serve`) prices dynamic batches with.
    #[must_use]
    pub fn batch_cost_model(&self, model: &nc_dnn::Model) -> BatchCostModel {
        BatchCostModel::new(&self.config, model)
    }

    /// Energy/power of a timed inference (Table III).
    #[must_use]
    pub fn energy(&self, report: &InferenceReport) -> EnergyReport {
        energy_of(&self.config, report)
    }

    /// Runs a model bit-accurately on simulated compute arrays and returns
    /// the output tensor (must match the [`nc_dnn::reference`] executor).
    /// Shard jobs run on the engine selected by
    /// [`SystemConfig::parallelism`] and rounds are elided per
    /// [`SystemConfig::sparsity`]; the output is identical under every
    /// combination.
    ///
    /// # Errors
    ///
    /// Returns an error if a sub-layer lacks weights or an internal SRAM
    /// operation is rejected.
    pub fn run_functional(
        &self,
        model: &nc_dnn::Model,
        input: &nc_dnn::QTensor,
    ) -> Result<functional::FunctionalResult, functional::FunctionalError> {
        functional::run_model_configured(
            model,
            input,
            self.config.parallelism,
            self.config.sparsity,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dnn::inception::inception_v3;

    #[test]
    fn system_facade_end_to_end() {
        let system = NeuralCache::new(SystemConfig::xeon_e5_2697_v3());
        let model = inception_v3();
        let report = system.run_inference(&model);
        assert_eq!(report.layers.len(), 20);
        let energy = system.energy(&report);
        assert!(energy.total_j() > 0.0);
        let batch = system.run_batch(&model, 4);
        assert!(batch.throughput_ips > 0.0);
        assert_eq!(system.plan(&model).len(), 20);
        let serving = system.serve(&model, 8);
        assert_eq!(serving.requests, 8);
        assert!(serving.throughput_ips > 0.0);
    }

    #[test]
    fn parallel_config_matches_sequential_reports() {
        // The parallelism knob changes host wall-clock only: simulated
        // timing reports must be identical.
        let model = inception_v3();
        let seq = NeuralCache::new(SystemConfig::xeon_e5_2697_v3()).run_inference(&model);
        let par = NeuralCache::new(SystemConfig::with_parallelism(4)).run_inference(&model);
        assert_eq!(seq, par);
    }
}
