//! The bit-accurate functional executor: runs quantized inference on real
//! simulated [`ComputeArray`]s using the bit-serial operations of
//! Sections III and IV-D, and must match the [`nc_dnn::reference`] golden
//! executor **bit for bit** (the paper's trace-matching validation,
//! Section V; DESIGN.md §4/S19).
//!
//! ## Staging
//!
//! One layer executes as three in-cache passes, each of which fits the
//! 256-row budget of an 8KB array:
//!
//! 1. **MAC + reduce** — filters/inputs stream tap-by-tap into 8-row byte
//!    regions; bit-serial multiply accumulates the per-lane partial sum
//!    (`S1`) and the zero-point-correction running sum (`S2`); the grouped
//!    in-array reduction tree (and, for filters spanning two arrays, an
//!    inter-array transfer + add) collapses channels.
//! 2. **Accumulator assembly** — `ACC = S1 - zp_w*S2 + C0(m)` via scalar
//!    multiply and region subtract/add over 40-bit two's-complement
//!    operands, then the MSB-masked `ReLU`.
//! 3. **Requantization** — subtract the layer minimum, scalar-multiply by
//!    the CPU-provided multiplier, shift by row re-addressing, saturate.
//!
//! Between passes the executor re-stages values into fresh arrays (in
//! hardware they stay put and the quantization temporaries overlay the
//! spent MAC regions); the arithmetic performed is identical, and every
//! step is a genuine `nc-sram` micro-op sequence.
//!
//! ## Sharding
//!
//! The hardware runs thousands of arrays in lockstep; the simulator mirrors
//! that shape. Each pass is expressed as independent **array-shard jobs**
//! (one job per output window in pass 1+2, one per 256-lane array run in
//! pass 3 and the pooling/ranging helpers), dispatched through an
//! [`ExecutionEngine`] — [`Sequential`](ExecutionEngine::Sequential) or
//! [`Threaded`](ExecutionEngine::Threaded). Jobs draw recycled arrays from
//! a shared [`ArrayPool`] and report their own [`CycleStats`]; shard results
//! are folded in job order, so both backends produce bit-identical outputs
//! *and* identical cycle counts. The only synchronization point is the
//! explicit inter-array reduce barrier before dynamic ranging
//! (Section IV-D), which needs every shard's accumulators.

use std::error::Error;
use std::fmt;

use nc_dnn::quant::{branch_requantizer, conv_requant_plan, shared_out_quant, CodeRequant};
use nc_dnn::reference::SublayerRecord;
use nc_dnn::{
    pad_before, ActQuant, Branch, BranchOp, Conv2d, Layer, MixedBlock, Model, PoolKind, QTensor,
    Requantizer, Shape,
};
use nc_sram::ops::copy_lanes_between;
use nc_sram::{ArrayPool, ArrayTimings, ComputeArray, CycleStats, SramError, COLS};
use nc_telemetry::{Level, Telemetry, TrackId, Value};

use crate::engine::{ExecutionEngine, ShardObserver};
use crate::layout::{self, DUMP_ROW, ZERO_ROW};
use crate::mapping::{chunk_filter, chunk_window_bytes, conv_lane_geometry};
use crate::sparsity::SparsityMode;

/// Result of a functional (bit-accurate) model execution.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalResult {
    /// Final output tensor.
    pub output: QTensor,
    /// Requantization records of every convolution sub-layer, comparable
    /// with the reference executor's records.
    pub sublayers: Vec<SublayerRecord>,
    /// Total array cycles consumed by the in-cache operations.
    pub cycles: CycleStats,
    /// [`ArrayPool`] checkout totals of the run (deterministic across
    /// engines and sparsity modes; see [`PoolEvents`]).
    pub pool: PoolEvents,
}

/// The deterministic [`ArrayPool`] event totals of one execution: how many
/// arrays the shard jobs checked out and returned. Both counts depend only
/// on the model's work decomposition — never on thread scheduling or
/// sparsity mode — which is exactly why the `nc-verify` shard-graph
/// reconciliation can pin them statically. The scheduling-dependent
/// fresh/recycled split stays in [`nc_sram::PoolStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolEvents {
    /// Total pool checkouts across every shard job of the run.
    pub acquires: u64,
    /// Total handles returned; a completed run always matches `acquires`
    /// (shard jobs own their arrays for exactly the job's lifetime).
    pub releases: u64,
}

/// Errors of the functional executor.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FunctionalError {
    /// A convolution sub-layer has no weights (shape-only model).
    MissingWeights {
        /// Offending sub-layer.
        name: String,
    },
    /// An underlying SRAM operation was rejected.
    Sram(SramError),
}

impl fmt::Display for FunctionalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunctionalError::MissingWeights { name } => {
                write!(
                    f,
                    "sub-layer {name} has no weights; build the model with weights"
                )
            }
            FunctionalError::Sram(e) => write!(f, "sram operation failed: {e}"),
        }
    }
}

impl Error for FunctionalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FunctionalError::Sram(e) => Some(e),
            FunctionalError::MissingWeights { .. } => None,
        }
    }
}

impl From<SramError> for FunctionalError {
    fn from(e: SramError) -> Self {
        FunctionalError::Sram(e)
    }
}

type Result<T> = std::result::Result<T, FunctionalError>;

/// Runs the whole model bit-accurately on simulated compute arrays, using
/// the sequential reference backend.
///
/// # Errors
///
/// Fails if any convolution sub-layer lacks weights.
pub fn run_model(model: &Model, input: &QTensor) -> Result<FunctionalResult> {
    run_model_with(model, input, ExecutionEngine::Sequential)
}

/// Runs the whole model bit-accurately on simulated compute arrays with an
/// explicit execution engine (dense sparsity mode). Outputs, sub-layer
/// records and cycle counts are identical across engines.
///
/// # Errors
///
/// Fails if any convolution sub-layer lacks weights.
pub fn run_model_with(
    model: &Model,
    input: &QTensor,
    engine: ExecutionEngine,
) -> Result<FunctionalResult> {
    run_model_configured(model, input, engine, SparsityMode::Dense)
}

/// Runs the whole model bit-accurately with an explicit execution engine
/// **and** sparsity mode. [`SparsityMode::SkipZeroRows`] elides
/// all-lanes-zero weight-bit rounds in the MACs;
/// [`SparsityMode::SkipZeroInputs`] makes the streamed input byte the
/// multiplier and elides all-lanes-zero input-bit rounds behind a 1-cycle
/// wired-NOR detect per round; [`SparsityMode::SkipBoth`] adds static
/// weight-side multiplicand truncation on top. Outputs and sub-layer
/// records are **bit-identical** to dense under every mode (the
/// proptest/bench gates enforce it, like the engine-equivalence gate),
/// while [`CycleStats::skipped_rounds`] /
/// [`CycleStats::input_rounds_skipped`] / [`CycleStats::detect_cycles`] /
/// [`CycleStats::skipped_cycles`] report the elided work and its overhead.
///
/// # Errors
///
/// Fails if any convolution sub-layer lacks weights.
///
/// # Panics
///
/// Panics if the input shape does not match the model's input shape.
pub fn run_model_configured(
    model: &Model,
    input: &QTensor,
    engine: ExecutionEngine,
    mode: SparsityMode,
) -> Result<FunctionalResult> {
    run_model_traced(model, input, engine, mode, &Telemetry::disabled())
}

/// [`run_model_configured`] with a [`Telemetry`] sink attached. The run is
/// observably identical to an untraced one (same outputs, records, cycles,
/// pool events under every engine and sparsity mode); the sink additionally
/// receives:
///
/// - one `functional.layer` span per top-level layer on the **simulated**
///   time axis (cycles converted at [`ArrayTimings::default`]'s compute
///   clock), carrying that layer's [`CycleStats`] delta as integer span
///   arguments — summing any argument over the category reproduces the
///   returned [`FunctionalResult::cycles`] field **exactly**;
/// - at [`Level::Detail`], one `functional.op` span per in-cache pass
///   (MAC+reduce, ranging, requantize, code-requant, pooling), likewise
///   carrying exact [`CycleStats`] deltas that partition the run's totals;
/// - `functional.pool.acquires` / `functional.pool.releases` counters
///   matching [`FunctionalResult::pool`];
/// - on a parallel engine, wall-clock shard observation: the
///   `engine.shard_seconds` histogram, per-worker `engine.worker.N.busy_s`
///   gauges / `engine.worker.N.shards` counters, and `engine.wall_s` /
///   `engine.workers` / `engine.utilization` gauges for
///   utilization-imbalance reporting (host time, never reconciled against
///   simulated time).
///
/// A disabled sink records nothing and costs one branch per call site, so
/// this is also the implementation behind the untraced entry points.
///
/// # Errors
///
/// Fails if any convolution sub-layer lacks weights.
///
/// # Panics
///
/// Panics if the input shape does not match the model's input shape.
pub fn run_model_traced(
    model: &Model,
    input: &QTensor,
    engine: ExecutionEngine,
    mode: SparsityMode,
    tel: &Telemetry,
) -> Result<FunctionalResult> {
    assert_eq!(input.shape(), model.input_shape, "input shape mismatch");
    let mut exec = Exec::new(engine, mode, tel.clone())?;
    let timings = ArrayTimings::default();
    let mut cur = input.clone();
    let mut sublayers = Vec::new();
    for layer in &model.layers {
        let before = exec.cycles;
        let out = exec.run_layer(layer, &cur, &mut sublayers)?;
        cur = out;
        if tel.at(Level::Spans) {
            let start_s = before.seconds(&timings);
            let dur_s = exec.cycles.seconds(&timings) - start_s;
            tel.span(
                exec.layer_track,
                "functional.layer",
                layer.name(),
                start_s,
                dur_s,
                cycle_args(exec.cycles - before),
            );
        }
    }
    let stats = exec.pool.stats();
    debug_assert_eq!(
        stats.acquires, stats.releases,
        "every shard job must return its arrays before the run completes"
    );
    tel.counter_add("functional.pool.acquires", stats.acquires);
    tel.counter_add("functional.pool.releases", stats.releases);
    exec.report_utilization();
    Ok(FunctionalResult {
        output: cur,
        sublayers,
        cycles: exec.cycles,
        pool: PoolEvents {
            acquires: stats.acquires,
            releases: stats.releases,
        },
    })
}

/// A [`CycleStats`] delta rendered as exact integer span arguments, one per
/// public counter field (names match the field names, so reconciliation
/// code reads symmetrically on both sides).
fn cycle_args(delta: CycleStats) -> Vec<(&'static str, Value)> {
    vec![
        ("compute_cycles", Value::U64(delta.compute_cycles)),
        ("access_cycles", Value::U64(delta.access_cycles)),
        ("mul_rounds", Value::U64(delta.mul_rounds)),
        ("skipped_rounds", Value::U64(delta.skipped_rounds)),
        ("skipped_cycles", Value::U64(delta.skipped_cycles)),
        ("detect_cycles", Value::U64(delta.detect_cycles)),
        (
            "input_rounds_skipped",
            Value::U64(delta.input_rounds_skipped),
        ),
    ]
}

struct Exec {
    cycles: CycleStats,
    engine: ExecutionEngine,
    mode: SparsityMode,
    /// Shared recycling pool: arrays persist across layers and shard jobs
    /// instead of being reallocated per run (in hardware they are the same
    /// physical SRAM throughout).
    pool: ArrayPool,
    /// Telemetry sink (the free no-op handle on untraced runs).
    tel: Telemetry,
    /// Simulated-time track for `functional.layer` spans.
    layer_track: TrackId,
    /// Simulated-time track for `functional.op` spans.
    op_track: TrackId,
    /// Wall-clock shard observation, only on traced parallel runs.
    observer: Option<ShardObserver>,
}

/// A branch's final output awaiting the block-shared range.
enum Pending {
    Acc(AccChunk, f64, String),
    Codes(QTensor),
}

/// Host-side staging of a sub-layer's in-cache accumulators between passes,
/// with the layer range already computed by the in-cache min/max trees.
struct AccChunk {
    shape: Shape,
    values: Vec<i64>,
    min: i64,
    max: i64,
}

impl AccChunk {
    fn min_max(&self) -> (i64, i64) {
        (self.min, self.max)
    }
}

impl Exec {
    fn new(engine: ExecutionEngine, mode: SparsityMode, tel: Telemetry) -> Result<Self> {
        // Debug-mode pre-pass: prove every shard-job row layout hazard-free
        // before the first array is touched (`nc-verify` runs the same
        // descriptors statically with structured diagnostics).
        #[cfg(debug_assertions)]
        {
            let hazards = layout::validate_plan();
            assert!(hazards.is_empty(), "executor plan hazards: {hazards:?}");
        }
        let observer = (tel.is_enabled() && engine.is_parallel()).then(ShardObserver::new);
        let layer_track = tel.track("functional", "layers");
        let op_track = tel.track("functional", "ops");
        Ok(Exec {
            cycles: CycleStats::new(),
            engine,
            mode,
            pool: ArrayPool::with_zero_row(ZERO_ROW)?,
            tel,
            layer_track,
            op_track,
            observer,
        })
    }

    /// Emits a [`Level::Detail`] `functional.op` span covering the cycles
    /// accumulated since `before` (the in-cache pass that just folded). Op
    /// spans partition the run's cycle totals: every fold site emits
    /// exactly one per [`ExecutionEngine`] dispatch it folds, so summing a
    /// cycle argument over the category reproduces the run total exactly.
    fn op_span(&self, name: &str, before: CycleStats) {
        if !self.tel.at(Level::Detail) {
            return;
        }
        let timings = ArrayTimings::default();
        let start_s = before.seconds(&timings);
        let dur_s = self.cycles.seconds(&timings) - start_s;
        self.tel.span(
            self.op_track,
            "functional.op",
            name,
            start_s,
            dur_s,
            cycle_args(self.cycles - before),
        );
    }

    /// Folds wall-clock shard samples into the metrics registry (traced
    /// parallel runs only): per-worker busy seconds and shard counts, the
    /// shard-duration histogram, and run-wide wall/utilization gauges.
    fn report_utilization(&self) {
        let Some(obs) = &self.observer else { return };
        let wall_s = obs.elapsed_s();
        let samples = obs.take_samples();
        let workers = self.engine.threads();
        let mut busy = vec![0.0f64; workers];
        let mut shards = vec![0u64; workers];
        for s in &samples {
            busy[s.worker] += s.dur_s;
            shards[s.worker] += 1;
            self.tel.histogram_record("engine.shard_seconds", s.dur_s);
        }
        self.tel.gauge_set("engine.wall_s", wall_s);
        self.tel.gauge_set("engine.workers", workers as f64);
        let busy_total: f64 = busy.iter().sum();
        let utilization = if wall_s > 0.0 {
            busy_total / (wall_s * workers as f64)
        } else {
            0.0
        };
        self.tel.gauge_set("engine.utilization", utilization);
        for w in 0..workers {
            self.tel
                .gauge_set(&format!("engine.worker.{w}.busy_s"), busy[w]);
            self.tel
                .counter_add(&format!("engine.worker.{w}.shards"), shards[w]);
        }
    }

    fn run_layer(
        &mut self,
        layer: &Layer,
        input: &QTensor,
        records: &mut Vec<SublayerRecord>,
    ) -> Result<QTensor> {
        match layer {
            Layer::Conv(conv) => {
                let acc = self.conv_accumulate(conv, input)?;
                let scale = conv.w_quant.scale * input.params().scale;
                let (acc_min, acc_max) = acc.min_max();
                let (requant, out_quant) = conv_requant_plan(acc_min, acc_max, scale);
                let out = self.requantize(&acc, requant, out_quant)?;
                records.push(SublayerRecord {
                    name: conv.spec.name.clone(),
                    acc_min,
                    acc_max,
                    requant,
                    out_quant,
                });
                Ok(out)
            }
            Layer::Pool(pool) => self.pool(pool, input),
            Layer::Mixed(block) => self.mixed(block, input, records),
        }
    }

    fn mixed(
        &mut self,
        block: &MixedBlock,
        input: &QTensor,
        records: &mut Vec<SublayerRecord>,
    ) -> Result<QTensor> {
        let mut pending = Vec::new();
        for branch in &block.branches {
            self.run_branch(branch, input, records, &mut pending)?;
        }

        // Block-wide real range (in hardware: per-array min/max trees plus
        // a bus/ring reduction; the CPU then derives the scalars).
        let mut r_min = f64::INFINITY;
        let mut r_max = f64::NEG_INFINITY;
        for p in &pending {
            match p {
                Pending::Acc(acc, scale, _) => {
                    let (lo, hi) = acc.min_max();
                    r_min = r_min.min(lo as f64 * scale);
                    r_max = r_max.max(hi as f64 * scale);
                }
                Pending::Codes(t) => {
                    let (mut lo, mut hi) = (u8::MAX, u8::MIN);
                    for &q in t.data() {
                        lo = lo.min(q);
                        hi = hi.max(q);
                    }
                    r_min = r_min.min(t.params().dequantize(lo));
                    r_max = r_max.max(t.params().dequantize(hi));
                }
            }
        }
        let out_quant = shared_out_quant(r_min, r_max);

        let mut parts = Vec::with_capacity(pending.len());
        for p in pending {
            match p {
                Pending::Acc(acc, scale, name) => {
                    let requant = branch_requantizer(r_min, r_max, scale);
                    let (acc_min, acc_max) = acc.min_max();
                    let out = self.requantize(&acc, requant, out_quant)?;
                    if let Some(rec) = records.iter_mut().rev().find(|r| r.name == name) {
                        rec.requant = requant;
                        rec.out_quant = out_quant;
                        rec.acc_min = acc_min;
                        rec.acc_max = acc_max;
                    }
                    parts.push(out);
                }
                Pending::Codes(t) => {
                    let map = CodeRequant::between(t.params(), out_quant);
                    parts.push(self.code_requant(&t, map, out_quant)?);
                }
            }
        }
        Ok(concat_channels(&parts, out_quant))
    }

    fn run_branch(
        &mut self,
        branch: &Branch,
        input: &QTensor,
        records: &mut Vec<SublayerRecord>,
        pending: &mut Vec<Pending>,
    ) -> Result<()> {
        let mut cur = input.clone();
        let last = branch.ops.len() - 1;
        for (i, op) in branch.ops.iter().enumerate() {
            match op {
                BranchOp::Pool(p) => {
                    let out = self.pool(p, &cur)?;
                    if i == last {
                        pending.push(Pending::Codes(out));
                        return Ok(());
                    }
                    cur = out;
                }
                BranchOp::Conv(c) => {
                    if i == last {
                        self.pend_conv(c, &cur, records, pending)?;
                        return Ok(());
                    }
                    let acc = self.conv_accumulate(c, &cur)?;
                    let scale = c.w_quant.scale * cur.params().scale;
                    let (acc_min, acc_max) = acc.min_max();
                    let (requant, out_quant) = conv_requant_plan(acc_min, acc_max, scale);
                    let out = self.requantize(&acc, requant, out_quant)?;
                    records.push(SublayerRecord {
                        name: c.spec.name.clone(),
                        acc_min,
                        acc_max,
                        requant,
                        out_quant,
                    });
                    cur = out;
                }
                BranchOp::Split(convs) => {
                    for c in convs {
                        self.pend_conv(c, &cur, records, pending)?;
                    }
                    return Ok(());
                }
            }
        }
        unreachable!("branch has at least one op");
    }

    fn pend_conv(
        &mut self,
        c: &Conv2d,
        input: &QTensor,
        records: &mut Vec<SublayerRecord>,
        pending: &mut Vec<Pending>,
    ) -> Result<()> {
        let acc = self.conv_accumulate(c, input)?;
        let scale = c.w_quant.scale * input.params().scale;
        let (acc_min, acc_max) = acc.min_max();
        let (requant, out_quant) = conv_requant_plan(acc_min, acc_max, scale);
        records.push(SublayerRecord {
            name: c.spec.name.clone(),
            acc_min,
            acc_max,
            requant,
            out_quant,
        });
        pending.push(Pending::Acc(acc, scale, c.spec.name.clone()));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Pass 1: MACs + grouped channel reduction
    // ------------------------------------------------------------------

    /// Computes the (`ReLU`'d, when fused) integer accumulators of one
    /// convolution sub-layer entirely with bit-serial array operations.
    ///
    /// Every output window is an independent shard job (it owns its arrays
    /// for the MAC/reduce and assembly passes); the shards meet only at the
    /// ranging barrier below.
    fn conv_accumulate(&mut self, conv: &Conv2d, input: &QTensor) -> Result<AccChunk> {
        let spec = &conv.spec;
        if conv.weights.is_none() {
            return Err(FunctionalError::MissingWeights {
                name: spec.name.clone(),
            });
        }
        let in_shape = input.shape();
        let out_shape = spec.out_shape(in_shape);
        let zp_a = i64::from(input.params().zero_point);
        let zp_w = u64::from(conv.w_quant.zero_point as u32);
        let n_taps = spec.macs_per_output() as i64;
        let pad_y = pad_before(in_shape.h, spec.r, spec.stride, spec.padding) as isize;
        let pad_x = pad_before(in_shape.w, spec.s, spec.stride, spec.padding) as isize;

        // Lane geometry (Section IV-A packing/splitting) — the exact same
        // computation the mapper plans with, so skip-fraction analysis on
        // the mapping describes this executor's behavior precisely.
        let geom = conv_lane_geometry(spec);

        // Per-filter static data: lane-chunked weight bytes, code sums and
        // the per-channel constant C0.
        let filter_lanes: Vec<Vec<Vec<u8>>> =
            (0..spec.m).map(|m| chunk_filter(conv, m, &geom)).collect();
        let c0: Vec<i64> = (0..spec.m)
            .map(|m| {
                -zp_a * conv.filter_code_sum(m) + n_taps * (zp_w as i64) * zp_a + conv.bias_of(m)
            })
            .collect();

        let group_span = geom.group_span;
        let arrays_per_filter = geom.arrays_per_filter;
        let groups_per_array = geom.groups_per_array(spec.m);

        // Passes 1+2, sharded per output window: each job MACs and reduces
        // every filter group against its window, then assembles the
        // accumulators, on arrays drawn from the shared pool.
        let engine = self.engine;
        let mode = self.mode;
        let pool = &self.pool;
        let positions = out_shape.h * out_shape.w;
        let filter_lanes = &filter_lanes;
        let c0 = &c0;
        #[cfg(debug_assertions)]
        let acquires_before = self.pool.stats().acquires;
        let op_before = self.cycles;
        let observer = self.observer.as_ref();
        let shards = engine.run_observed(
            positions,
            |pos| -> Result<(Vec<i64>, CycleStats)> {
                let (ey, ex) = (pos / out_shape.w, pos % out_shape.w);
                let mut cycles = CycleStats::new();
                let mut window_bytes = vec![0u8; spec.r * spec.s * spec.c];
                gather_window(input, spec, ey, ex, pad_y, pad_x, &mut window_bytes);
                let input_lanes = chunk_window_bytes(&window_bytes, spec.c, &geom);

                let mut vals = vec![0i64; spec.m];
                let mut m = 0;
                while m < spec.m {
                    let group_count = groups_per_array.min(spec.m - m);
                    let (s1s, s2s) = mac_reduce_run(
                        pool,
                        &mut cycles,
                        &filter_lanes[m..m + group_count],
                        &input_lanes,
                        geom.eff_window,
                        group_span,
                        arrays_per_filter,
                        mode,
                    )?;
                    for (g, (s1, s2)) in s1s.iter().zip(&s2s).enumerate() {
                        // Pass 2: ACC assembly + fused ReLU, in-cache.
                        vals[m + g] =
                            assemble_acc(pool, &mut cycles, *s1, *s2, zp_w, c0[m + g], spec.relu)?;
                    }
                    m += group_count;
                }
                Ok((vals, cycles))
            },
            observer,
        );

        let mut acc_values = vec![0i64; out_shape.len()];
        for (pos, shard) in shards.into_iter().enumerate() {
            let (vals, cycles) = shard?;
            self.cycles += cycles;
            let (ey, ex) = (pos / out_shape.w, pos % out_shape.w);
            for (m, v) in vals.into_iter().enumerate() {
                acc_values[out_shape.index(ey, ex, m)] = v;
            }
        }
        self.op_span("mac-reduce", op_before);

        // Inter-array reduce barrier — dynamic ranging (Section IV-D) needs
        // every shard's accumulators: per-array min/max trees, combined
        // across arrays and slices by bus+ring transfers (host-combined
        // here, exactly like the paper's per-array results).
        let (min, max) = self.min_max_in_cache(&acc_values)?;
        // Debug-mode pool-event accounting: the checkout count of this
        // sub-layer must equal the shard-graph prediction `nc-verify`
        // reconciles statically (MAC runs + per-group assemblies per
        // position, then two ranging checkouts per 256-lane chunk).
        #[cfg(debug_assertions)]
        {
            let runs = spec.m.div_ceil(groups_per_array) as u64;
            let per_position = runs * arrays_per_filter as u64 + spec.m as u64;
            let ranging = 2 * acc_values.len().div_ceil(COLS) as u64;
            debug_assert_eq!(
                self.pool.stats().acquires - acquires_before,
                positions as u64 * per_position + ranging,
                "{}: executed pool checkouts drifted from the planned shard \
                 decomposition",
                spec.name
            );
        }
        debug_assert_eq!(
            (min, max),
            (
                acc_values.iter().copied().min().unwrap_or(0),
                acc_values.iter().copied().max().unwrap_or(0)
            ),
            "in-cache ranging must agree with a host scan"
        );
        Ok(AccChunk {
            shape: out_shape,
            values: acc_values,
            min,
            max,
        })
    }

    /// In-cache dynamic ranging: accumulator values are loaded with a 2^38
    /// offset (so two's-complement order matches unsigned order) and
    /// reduced by the in-array min/max trees of Section IV-D; per-chunk
    /// results combine like per-array results do over the bus and ring
    /// (each 256-lane chunk is one shard job).
    fn min_max_in_cache(&mut self, values: &[i64]) -> Result<(i64, i64)> {
        let engine = self.engine;
        let pool = &self.pool;
        let before = self.cycles;
        let observer = self.observer.as_ref();
        let chunks: Vec<&[i64]> = values.chunks(COLS).collect();
        let shards =
            engine.run_observed(chunks.len(), |i| min_max_chunk(pool, chunks[i]), observer);

        // Per-shard extremes fold through ValueStats: merge is commutative
        // and associative, so the combined range is independent of shard
        // completion order (the threaded engine's only freedom here).
        let mut range = nc_sram::ValueStats::new();
        for shard in shards {
            let (lo, hi, cycles) = shard?;
            self.cycles += cycles;
            let mut shard_stats = nc_sram::ValueStats::new();
            shard_stats.observe(lo);
            shard_stats.observe(hi);
            range = range.merge(shard_stats);
        }
        self.op_span("ranging", before);
        Ok((range.min, range.max))
    }

    // ------------------------------------------------------------------
    // Pass 3: requantization
    // ------------------------------------------------------------------

    /// Requantizes a chunk of accumulators in-cache: subtract the layer
    /// minimum, ReLU-clamp, scalar multiply, shift by row re-addressing,
    /// saturate at 255. Each 256-output array run is one shard job.
    fn requantize(
        &mut self,
        acc: &AccChunk,
        requant: Requantizer,
        out_quant: ActQuant,
    ) -> Result<QTensor> {
        let engine = self.engine;
        let pool = &self.pool;
        let before = self.cycles;
        let observer = self.observer.as_ref();
        let chunks: Vec<&[i64]> = acc.values.chunks(COLS).collect();
        let shards = engine.run_observed(
            chunks.len(),
            |i| requant_chunk(pool, chunks[i], requant),
            observer,
        );

        let mut out = Vec::with_capacity(acc.values.len());
        for shard in shards {
            let (bytes, cycles) = shard?;
            self.cycles += cycles;
            out.extend_from_slice(&bytes);
        }
        self.op_span("requantize", before);
        Ok(QTensor::from_vec(acc.shape, out_quant, out))
    }

    /// In-cache code-to-code requantization of a pool-final branch
    /// (`q' = clamp((q*m + c) >> sh)`, Section IV-D batch-norm style
    /// multiply/add/shift), sharded per 256-lane array run.
    fn code_requant(
        &mut self,
        t: &QTensor,
        map: CodeRequant,
        out_quant: ActQuant,
    ) -> Result<QTensor> {
        let engine = self.engine;
        let pool = &self.pool;
        let before = self.cycles;
        let observer = self.observer.as_ref();
        let chunks: Vec<&[u8]> = t.data().chunks(COLS).collect();
        let shards = engine.run_observed(
            chunks.len(),
            |i| code_requant_chunk(pool, chunks[i], map),
            observer,
        );

        let mut out = Vec::with_capacity(t.data().len());
        for shard in shards {
            let (bytes, cycles) = shard?;
            self.cycles += cycles;
            out.extend_from_slice(&bytes);
        }
        self.op_span("code-requant", before);
        Ok(QTensor::from_vec(t.shape(), out_quant, out))
    }

    // ------------------------------------------------------------------
    // Pooling (Section IV-D)
    // ------------------------------------------------------------------

    fn pool(&mut self, pool: &nc_dnn::Pool2d, input: &QTensor) -> Result<QTensor> {
        let in_shape = input.shape();
        let out_shape = pool.out_shape(in_shape);
        let pad_y = pad_before(in_shape.h, pool.k, pool.stride, pool.padding) as isize;
        let pad_x = pad_before(in_shape.w, pool.k, pool.stride, pool.padding) as isize;

        // Collect each output's valid window elements (one output per lane).
        let total = out_shape.len();
        let mut windows: Vec<Vec<u8>> = Vec::with_capacity(total);
        for ey in 0..out_shape.h {
            for ex in 0..out_shape.w {
                for c in 0..out_shape.c {
                    let oy = (ey * pool.stride) as isize - pad_y;
                    let ox = (ex * pool.stride) as isize - pad_x;
                    let mut w = Vec::with_capacity(pool.k * pool.k);
                    for r in 0..pool.k {
                        for s in 0..pool.k {
                            let (y, x) = (oy + r as isize, ox + s as isize);
                            if y >= 0
                                && x >= 0
                                && (y as usize) < in_shape.h
                                && (x as usize) < in_shape.w
                            {
                                w.push(input.get(y as usize, x as usize, c));
                            }
                        }
                    }
                    windows.push(w);
                }
            }
        }

        // All lanes (across every array run) advance through the same
        // number of rounds, in lockstep with the widest window.
        let max_window = windows.iter().map(Vec::len).max().unwrap_or(0);
        let engine = self.engine;
        let shared_pool = &self.pool;
        let before = self.cycles;
        let observer = self.observer.as_ref();
        let chunks: Vec<&[Vec<u8>]> = windows.chunks(COLS).collect();
        let kind = pool.kind;
        let shards = engine.run_observed(
            chunks.len(),
            |i| match kind {
                PoolKind::Max => pool_max_chunk(shared_pool, chunks[i], max_window),
                PoolKind::Avg => pool_avg_chunk(shared_pool, chunks[i], max_window),
            },
            observer,
        );

        let mut out = Vec::with_capacity(total);
        for shard in shards {
            let (bytes, cycles) = shard?;
            self.cycles += cycles;
            out.extend_from_slice(&bytes);
        }
        self.op_span(
            match kind {
                PoolKind::Max => "pool-max",
                PoolKind::Avg => "pool-avg",
            },
            before,
        );
        Ok(QTensor::from_vec(out_shape, input.params(), out))
    }
}

// ----------------------------------------------------------------------
// Shard jobs: each runs on arrays drawn from the shared pool and reports
// the cycles it consumed, so results fold deterministically in job order.
// ----------------------------------------------------------------------

/// One MAC+reduce run: `groups` filters (or one filter spanning
/// `arrays_per_filter` arrays) against one input window. Under
/// [`SparsityMode::SkipZeroRows`] the weight operand is the multiplier and
/// all-lanes-zero weight-bit rounds are elided (bit-identical products).
#[allow(clippy::too_many_arguments)]
fn mac_reduce_run(
    pool: &ArrayPool,
    cycles: &mut CycleStats,
    filters: &[Vec<Vec<u8>>],
    input_lanes: &[Vec<u8>],
    eff_window: usize,
    group_span: usize,
    arrays_per_filter: usize,
    mode: SparsityMode,
) -> Result<(Vec<u64>, Vec<u64>)> {
    // Row layout of the pass-1 array (all regions disjoint, 202 rows) —
    // shared with the static checker via `crate::layout`.
    let layout::MacReduceLayout {
        filter_byte,
        input_byte,
        scratch16,
        partial,
        s2sum,
        seg_a,
        seg_b,
        s2_a,
        s2_b,
    } = layout::MacReduceLayout::new();

    let groups = filters.len();
    let mut partial_arrays = Vec::with_capacity(arrays_per_filter);

    for array_idx in 0..arrays_per_filter {
        let mut arr = pool.acquire();
        *cycles += arr.zero(partial)? + arr.zero(s2sum)?;

        // Lane slice handled by this array.
        let lane_base = array_idx * COLS;

        for t in 0..eff_window {
            // Stream tap t of the filter and input bytes (loader path;
            // transfer time is the movement model's concern).
            for (g, chunks) in filters.iter().enumerate() {
                for l in 0..group_span {
                    let lane = g * group_span + l;
                    let byte = chunks.get(lane_base + l).map_or(0, |c| c[t]);
                    arr.poke_lane(lane, filter_byte, u64::from(byte));
                }
            }
            for l in 0..group_span {
                let byte = input_lanes.get(lane_base + l).map_or(0, |c| c[t]);
                for g in 0..groups {
                    arr.poke_lane(g * group_span + l, input_byte, u64::from(byte));
                }
            }
            // S1 += w * x ; S2 += x — all lanes in parallel. Under
            // SkipZeroRows the stationary filter byte is the multiplier,
            // so its bit-slice rows are what the FSM elides for free; the
            // dynamic modes flip the roles — the streamed input byte
            // becomes the multiplier so the per-round wired-NOR detect can
            // elide all-lanes-zero input-bit rounds (8x8 multiply cost is
            // symmetric in the operand order, and the product is
            // identical either way).
            *cycles += match mode {
                SparsityMode::Dense => arr.mul(input_byte, filter_byte, scratch16)?,
                SparsityMode::SkipZeroRows => {
                    arr.mul_skip_zero_rows(input_byte, filter_byte, scratch16)?
                }
                SparsityMode::SkipZeroInputs => {
                    arr.mul_skip_zero_input_bits(filter_byte, input_byte, scratch16)?
                }
                SparsityMode::SkipBoth => arr.mul_skip_both(filter_byte, input_byte, scratch16)?,
            };
            *cycles += arr.add_assign(partial, scratch16)?;
            *cycles += arr.add_assign(s2sum, input_byte)?;
        }

        // Widen into the 4-byte reduction segments (Figure 10b).
        *cycles += arr.copy_zext(partial, seg_a)?;
        *cycles += arr.copy_zext(s2sum, s2_a)?;
        // Grouped in-array channel reduction.
        *cycles += arr.reduce_sum_grouped(seg_a, seg_b, group_span, groups)?;
        *cycles += arr.reduce_sum_grouped(s2_a, s2_b, group_span, groups)?;
        partial_arrays.push(arr);
    }

    // Cross-array fold (filters spanning two arrays share sense amps,
    // Section III-D): transfer partner sums into array 0 and add.
    let (first, rest) = partial_arrays.split_at_mut(1);
    let arr0: &mut ComputeArray = &mut first[0];
    for partner in rest.iter_mut() {
        *cycles += copy_lanes_between(partner, seg_a, arr0, seg_b, 0, 1)?;
        *cycles += arr0.add_assign(seg_a, seg_b)?;
        *cycles += copy_lanes_between(partner, s2_a, arr0, s2_b, 0, 1)?;
        *cycles += arr0.add_assign(s2_a, s2_b)?;
    }

    let mut s1s = Vec::with_capacity(groups);
    let mut s2s = Vec::with_capacity(groups);
    for g in 0..groups {
        s1s.push(arr0.peek_lane(g * group_span, seg_a));
        s2s.push(arr0.peek_lane(g * group_span, s2_a));
    }
    Ok((s1s, s2s))
}

/// Assembles `ACC = S1 - zp_w*S2 + C0` in a 40-bit two's-complement
/// region and applies the MSB-masked `ReLU` when fused (pass 2).
fn assemble_acc(
    pool: &ArrayPool,
    cycles: &mut CycleStats,
    s1: u64,
    s2: u64,
    zp_w: u64,
    c0: i64,
    relu: bool,
) -> Result<i64> {
    const W: usize = 40;
    let layout::AssembleLayout {
        s1_op,
        s2_op,
        t,
        u,
        scratch,
        c0_op,
    } = layout::AssembleLayout::new();
    let mut arr = pool.acquire();

    arr.poke_lane(0, s1_op, s1);
    arr.poke_lane(0, s2_op, s2);
    arr.poke_lane_signed(0, c0_op, clamp_to_bits(c0, W));

    *cycles += arr.copy_zext(s1_op, t)?;
    *cycles += arr.mul_scalar(s2_op, zp_w, u)?;
    *cycles += arr.sub(t, u, t, scratch)?;
    *cycles += arr.add_assign(t, c0_op)?;
    if relu {
        *cycles += arr.relu(t)?;
    }
    Ok(arr.peek_lane_signed(0, t))
}

/// One 256-lane min/max ranging run over a chunk of accumulators.
fn min_max_chunk(pool: &ArrayPool, chunk: &[i64]) -> Result<(i64, i64, CycleStats)> {
    const OFFSET: i64 = 1 << 38; // |ACC| < 2^38 stays positive
    let layout::RangingLayout { v, scratch, cmp } = layout::RangingLayout::new();
    const DUMP: usize = DUMP_ROW;

    let mut cycles = CycleStats::new();
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    for want_max in [false, true] {
        let mut arr = pool.acquire();
        for lane in 0..COLS {
            // Idle lanes replicate the first value (neutral for both
            // reductions).
            let val = chunk.get(lane).copied().unwrap_or(chunk[0]);
            arr.poke_lane(lane, v, (val + OFFSET) as u64);
        }
        if want_max {
            cycles += arr.reduce_max(v, scratch, cmp, DUMP, COLS)?;
            max = max.max(arr.peek_lane(0, v) as i64 - OFFSET);
        } else {
            cycles += arr.reduce_min(v, scratch, cmp, DUMP, COLS)?;
            min = min.min(arr.peek_lane(0, v) as i64 - OFFSET);
        }
    }
    Ok((min, max, cycles))
}

/// One 256-output requantization array run (pass 3).
fn requant_chunk(
    pool: &ArrayPool,
    chunk: &[i64],
    requant: Requantizer,
) -> Result<(Vec<u8>, CycleStats)> {
    let layout::RequantLayout { d_op, prod } = layout::RequantLayout::new();
    let d32 = d_op.slice(0, 32)?;
    const DUMP: usize = DUMP_ROW;

    let mut cycles = CycleStats::new();
    let mut arr = pool.acquire();
    for (lane, &v) in chunk.iter().enumerate() {
        arr.poke_lane_signed(lane, d_op, clamp_to_bits(v, 40));
    }
    // D = max(ACC - acc_min, 0).
    cycles += arr.add_scalar_signed(d_op, -requant.acc_min)?;
    cycles += arr.relu(d_op)?;
    // P = D * M; q = min(P >> SH, 255).
    cycles += arr.mul_scalar(d32, u64::from(requant.multiplier), prod)?;
    let shifted = prod.slice(requant.shift as usize, 16)?;
    cycles += arr.clamp_max_scalar(shifted, 255, DUMP)?;
    let q_op = shifted.slice(0, 8)?;
    let mut out = vec![0u8; chunk.len()];
    for (lane, byte) in out.iter_mut().enumerate() {
        *byte = arr.peek_lane(lane, q_op) as u8;
    }
    Ok((out, cycles))
}

/// One 256-code code-to-code requantization array run.
fn code_requant_chunk(
    pool: &ArrayPool,
    chunk: &[u8],
    map: CodeRequant,
) -> Result<(Vec<u8>, CycleStats)> {
    let layout::CodeRequantLayout { q_in, prod } = layout::CodeRequantLayout::new();
    let m_abs = map.m.unsigned_abs();

    let mut cycles = CycleStats::new();
    let mut arr = pool.acquire();
    for (lane, &q) in chunk.iter().enumerate() {
        arr.poke_lane(lane, q_in, u64::from(q));
    }
    cycles += arr.mul_scalar(q_in, m_abs, prod)?;
    // m is non-negative for real scale ratios; fold c (possibly negative)
    // as a two's-complement scalar add.
    cycles += arr.add_scalar_signed(prod, map.c)?;
    cycles += arr.relu(prod)?;
    let shifted = prod.slice(map.sh as usize, 16)?;
    cycles += arr.clamp_max_scalar(shifted, 255, DUMP_ROW)?;
    let q_op = shifted.slice(0, 8)?;
    let mut out = vec![0u8; chunk.len()];
    for (lane, byte) in out.iter_mut().enumerate() {
        *byte = arr.peek_lane(lane, q_op) as u8;
    }
    Ok((out, cycles))
}

/// Max pooling over one 256-lane chunk: running max via subtract / MSB
/// mask / selective copy.
fn pool_max_chunk(
    pool: &ArrayPool,
    chunk: &[Vec<u8>],
    max_window: usize,
) -> Result<(Vec<u8>, CycleStats)> {
    let layout::PoolMaxLayout { acc, x, scratch } = layout::PoolMaxLayout::new();
    const DUMP: usize = DUMP_ROW;

    let mut cycles = CycleStats::new();
    let mut arr = pool.acquire();
    for (lane, w) in chunk.iter().enumerate() {
        arr.poke_lane(lane, acc, u64::from(w[0]));
    }
    for i in 1..max_window {
        for (lane, w) in chunk.iter().enumerate() {
            // Short windows (image edges) repeat their first element,
            // which is a no-op for max.
            let v = w.get(i).copied().unwrap_or(w[0]);
            arr.poke_lane(lane, x, u64::from(v));
        }
        cycles += arr.max_assign(acc, x, scratch, DUMP)?;
    }
    let mut out = vec![0u8; chunk.len()];
    for (lane, byte) in out.iter_mut().enumerate() {
        *byte = arr.peek_lane(lane, acc) as u8;
    }
    Ok((out, cycles))
}

/// Average pooling over one 256-lane chunk: bit-serial window sum, then
/// lane-wise restoring division by the per-lane valid-element count.
fn pool_avg_chunk(
    pool: &ArrayPool,
    chunk: &[Vec<u8>],
    max_window: usize,
) -> Result<(Vec<u8>, CycleStats)> {
    let layout::PoolAvgLayout {
        x,
        sum,
        den,
        quot,
        rem,
        trial,
        notden,
    } = layout::PoolAvgLayout::new();

    let mut cycles = CycleStats::new();
    let mut arr = pool.acquire();
    cycles += arr.zero(sum)?;
    for i in 0..max_window {
        for (lane, w) in chunk.iter().enumerate() {
            let v = w.get(i).copied().unwrap_or(0);
            arr.poke_lane(lane, x, u64::from(v));
        }
        cycles += arr.add_assign(sum, x)?;
    }
    for (lane, w) in chunk.iter().enumerate() {
        arr.poke_lane(lane, den, w.len() as u64);
    }
    cycles += arr.div(sum, den, quot, rem, trial, notden)?;
    let q_op = quot.slice(0, 8)?;
    let mut out = vec![0u8; chunk.len()];
    for (lane, byte) in out.iter_mut().enumerate() {
        *byte = arr.peek_lane(lane, q_op) as u8;
    }
    Ok((out, cycles))
}

// ----------------------------------------------------------------------
// Window gathering (lane chunking lives in `crate::mapping`)
// ----------------------------------------------------------------------

/// Gathers one padded input window in the same (r, s, c) order as the
/// reference executor, then regroups it channel-major for lane chunking.
fn gather_window(
    input: &QTensor,
    spec: &nc_dnn::ConvSpec,
    ey: usize,
    ex: usize,
    pad_y: isize,
    pad_x: isize,
    out: &mut [u8],
) {
    let oy = (ey * spec.stride) as isize - pad_y;
    let ox = (ex * spec.stride) as isize - pad_x;
    let mut idx = 0;
    for r in 0..spec.r {
        for s in 0..spec.s {
            for c in 0..spec.c {
                out[idx] = input.get_padded(oy + r as isize, ox + s as isize, c);
                idx += 1;
            }
        }
    }
}

fn clamp_to_bits(v: i64, bits: usize) -> i64 {
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    debug_assert!(
        (lo..=hi).contains(&v),
        "{v} exceeds {bits}-bit two's complement"
    );
    v.clamp(lo, hi)
}

fn concat_channels(parts: &[QTensor], params: ActQuant) -> QTensor {
    let (h, w) = (parts[0].shape().h, parts[0].shape().w);
    let total_c: usize = parts.iter().map(|p| p.shape().c).sum();
    QTensor::from_fn(Shape::new(h, w, total_c), params, |y, x, c| {
        let mut offset = 0;
        for p in parts {
            let pc = p.shape().c;
            if c < offset + pc {
                return p.get(y, x, c - offset);
            }
            offset += pc;
        }
        unreachable!("channel {c} out of range");
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dnn::reference;
    use nc_dnn::workload::{random_conv, random_input, single_conv_model, tiny_cnn};
    use nc_dnn::Padding;

    fn check_model(model: &Model, input_seed: u64) {
        let input = random_input(model.input_shape, model.input_quant, input_seed);
        let golden = reference::run_model(model, &input);
        let ours = run_model(model, &input).expect("functional run");
        assert_eq!(
            ours.output.data(),
            golden.output.data(),
            "functional output differs from the golden executor"
        );
        let golden_recs: Vec<&SublayerRecord> =
            golden.layers.iter().flat_map(|l| &l.sublayers).collect();
        assert_eq!(ours.sublayers.len(), golden_recs.len());
        for (a, b) in ours.sublayers.iter().zip(golden_recs) {
            assert_eq!(a, b, "sub-layer record mismatch for {}", a.name);
        }
        assert!(ours.cycles.compute_cycles > 0);

        // The threaded backend must be observably identical to sequential:
        // bit-identical outputs and records, identical cycle counts.
        let threaded = run_model_with(model, &input, ExecutionEngine::from_threads(4))
            .expect("threaded functional run");
        assert_eq!(threaded.output.data(), ours.output.data());
        assert_eq!(threaded.sublayers, ours.sublayers);
        assert_eq!(threaded.cycles, ours.cycles);

        // Round skipping must be bit-identical to dense on every workload
        // (the sparsity analogue of the engine gate): same outputs and
        // records, never more compute cycles, and the skipped/saved
        // counters reconcile the difference exactly.
        let skipping = run_model_configured(
            model,
            &input,
            ExecutionEngine::Sequential,
            SparsityMode::SkipZeroRows,
        )
        .expect("skip-mode functional run");
        assert_eq!(
            skipping.output.data(),
            ours.output.data(),
            "SkipZeroRows output differs from Dense"
        );
        assert_eq!(skipping.sublayers, ours.sublayers);
        assert_eq!(skipping.cycles.mul_rounds, ours.cycles.mul_rounds);
        assert_eq!(ours.cycles.skipped_rounds, 0, "dense never skips");
        assert_eq!(
            skipping.cycles.compute_cycles + skipping.cycles.skipped_cycles,
            ours.cycles.compute_cycles,
            "saved cycles must reconcile dense and skipping runs"
        );

        // Both knobs compose: threaded + skipping matches sequential +
        // skipping, counters included.
        let both = run_model_configured(
            model,
            &input,
            ExecutionEngine::from_threads(4),
            SparsityMode::SkipZeroRows,
        )
        .expect("threaded skip-mode run");
        assert_eq!(both.output.data(), skipping.output.data());
        assert_eq!(both.cycles, skipping.cycles);

        // The dynamic modes are likewise bit-identical to dense; their
        // reconciliation accounts the per-round detect overhead:
        // executed = dense - saved + detect.
        for mode in [SparsityMode::SkipZeroInputs, SparsityMode::SkipBoth] {
            let dynamic = run_model_configured(model, &input, ExecutionEngine::Sequential, mode)
                .expect("dynamic-mode functional run");
            assert_eq!(
                dynamic.output.data(),
                ours.output.data(),
                "{mode:?} output differs from Dense"
            );
            assert_eq!(dynamic.sublayers, ours.sublayers);
            assert_eq!(dynamic.cycles.mul_rounds, ours.cycles.mul_rounds);
            assert_eq!(dynamic.cycles.access_cycles, ours.cycles.access_cycles);
            assert_eq!(
                dynamic.cycles.skipped_rounds, 0,
                "dynamic modes skip input rounds, not weight rounds"
            );
            assert_eq!(
                dynamic.cycles.detect_cycles, dynamic.cycles.mul_rounds,
                "every scheduled round pays exactly one detect"
            );
            assert_eq!(
                dynamic.cycles.compute_cycles + dynamic.cycles.skipped_cycles
                    - dynamic.cycles.detect_cycles,
                ours.cycles.compute_cycles,
                "{mode:?}: detect-aware cycle reconciliation"
            );
            // Threaded execution reproduces the dynamic counters exactly.
            let thr_dyn =
                run_model_configured(model, &input, ExecutionEngine::from_threads(4), mode)
                    .expect("threaded dynamic-mode run");
            assert_eq!(thr_dyn.output.data(), dynamic.output.data());
            assert_eq!(thr_dyn.cycles, dynamic.cycles);
        }
        // SkipBoth elides at least as many cycles as SkipZeroInputs (the
        // truncation only adds savings) on identical round schedules.
        let inputs_only = run_model_configured(
            model,
            &input,
            ExecutionEngine::Sequential,
            SparsityMode::SkipZeroInputs,
        )
        .expect("input-skip run");
        let both_modes = run_model_configured(
            model,
            &input,
            ExecutionEngine::Sequential,
            SparsityMode::SkipBoth,
        )
        .expect("skip-both run");
        assert_eq!(
            both_modes.cycles.input_rounds_skipped, inputs_only.cycles.input_rounds_skipped,
            "input-side elision is identical; truncation is extra"
        );
        assert!(both_modes.cycles.skipped_cycles >= inputs_only.cycles.skipped_cycles);
    }

    #[test]
    fn single_3x3_conv_matches_reference() {
        let conv = random_conv("c", (3, 3), 4, 3, 1, Padding::Same, true, 11);
        let model = single_conv_model(conv, Shape::new(6, 6, 4));
        check_model(&model, 21);
    }

    #[test]
    fn strided_valid_conv_matches_reference() {
        let conv = random_conv("c", (3, 3), 3, 5, 2, Padding::Valid, true, 12);
        let model = single_conv_model(conv, Shape::new(9, 9, 3));
        check_model(&model, 22);
    }

    #[test]
    fn one_by_one_conv_with_packing_matches_reference() {
        // C = 40 > 16 forces real packing (3 lanes per filter).
        let conv = random_conv("c", (1, 1), 40, 4, 1, Padding::Valid, true, 13);
        let model = single_conv_model(conv, Shape::new(3, 3, 40));
        check_model(&model, 23);
    }

    #[test]
    fn five_by_five_conv_with_splitting_matches_reference() {
        let conv = random_conv("c", (5, 5), 3, 2, 1, Padding::Same, true, 14);
        let model = single_conv_model(conv, Shape::new(7, 7, 3));
        check_model(&model, 24);
    }

    #[test]
    fn asymmetric_kernels_match_reference() {
        let conv = random_conv("c", (1, 7), 8, 3, 1, Padding::Same, true, 15);
        let model = single_conv_model(conv, Shape::new(8, 8, 8));
        check_model(&model, 25);
        let conv = random_conv("c", (7, 1), 8, 3, 1, Padding::Same, true, 16);
        let model = single_conv_model(conv, Shape::new(8, 8, 8));
        check_model(&model, 26);
    }

    #[test]
    fn conv_without_relu_matches_reference() {
        let conv = random_conv("c", (1, 1), 6, 10, 1, Padding::Valid, false, 17);
        let model = single_conv_model(conv, Shape::new(1, 1, 6));
        check_model(&model, 27);
    }

    #[test]
    fn cross_array_filter_matches_reference() {
        // C = 300 -> 512 lanes per filter: spans two arrays, exercising the
        // inter-array reduction fold.
        let conv = random_conv("c", (3, 3), 300, 2, 1, Padding::Valid, true, 18);
        let model = single_conv_model(conv, Shape::new(3, 3, 300));
        check_model(&model, 28);
    }

    #[test]
    fn tiny_cnn_end_to_end_bit_exact() {
        check_model(&tiny_cnn(5), 50);
    }

    #[test]
    fn pruned_models_skip_and_stay_bit_exact() {
        check_model(&nc_dnn::workload::pruned_conv_model(4), 44);
    }

    #[test]
    fn executed_skips_match_the_analytical_prediction() {
        // The predicted-vs-executed cross-check: on a single-conv model the
        // skip fraction measured by sparsity::analyze on the mapper's lane
        // packing must equal the executed counter ratio *exactly*.
        for seed in [1u64, 8, 21] {
            let model = nc_dnn::workload::pruned_conv_model(seed);
            let input = random_input(model.input_shape, model.input_quant, seed + 100);
            let run = run_model_configured(
                &model,
                &input,
                ExecutionEngine::Sequential,
                SparsityMode::SkipZeroRows,
            )
            .expect("skip-mode run");
            let predicted = crate::sparsity::analyze(&model).simd_skip();
            let executed = run.cycles.skip_fraction();
            assert!(
                (executed - predicted).abs() < 1e-12,
                "seed {seed}: executed {executed} vs predicted {predicted}"
            );
            assert!(run.cycles.skipped_rounds > 0, "pruned model must skip");
            assert!(predicted >= 0.75, "keep_bits = 2 skips the top 6 rounds");
        }
    }

    #[test]
    fn executed_input_skips_match_the_activation_profile() {
        // The dynamic analogue of the weight-skip cross-check: the
        // activation profile replays the mapper's lane packing on the
        // actual input, so its predicted elidable-round count must equal
        // the executed input_rounds_skipped counter *exactly* — on
        // multi-layer models too (intermediate activations included).
        use nc_dnn::workload::{relu_sparse_input, relu_sparse_mini};
        for seed in [3u64, 14] {
            let model = relu_sparse_mini(seed);
            let input = relu_sparse_input(model.input_shape, 0.6, 3, seed + 50);
            for mode in [SparsityMode::SkipZeroInputs, SparsityMode::SkipBoth] {
                let run = run_model_configured(&model, &input, ExecutionEngine::Sequential, mode)
                    .expect("dynamic run");
                let profile = crate::sparsity::activation_profile(&model, &input);
                assert_eq!(
                    run.cycles.input_rounds_skipped,
                    profile.skippable_rounds(),
                    "seed {seed} {mode:?}: executed vs predicted skip count"
                );
                assert_eq!(
                    run.cycles.mul_rounds,
                    profile.total_rounds(),
                    "seed {seed} {mode:?}: scheduled round count"
                );
                assert!(
                    run.cycles.input_rounds_skipped > 0,
                    "ReLU-sparse input must elide rounds"
                );
            }
        }
    }

    #[test]
    fn traced_run_is_identical_and_rollups_reconcile_exactly() {
        let model = tiny_cnn(5);
        let input = random_input(model.input_shape, model.input_quant, 50);
        let plain = run_model(&model, &input).expect("plain run");
        let tel = Telemetry::enabled(Level::Detail);
        let traced = run_model_traced(
            &model,
            &input,
            ExecutionEngine::from_threads(4),
            SparsityMode::SkipZeroRows,
            &tel,
        )
        .expect("traced run");
        // The trace must be a pure observer: same outputs, records, cycles.
        assert_eq!(traced.output.data(), plain.output.data());
        assert_eq!(traced.sublayers, plain.sublayers);
        assert_eq!(traced.pool, plain.pool);
        // One layer span per top-level layer; both the layer and the op
        // rollups reproduce every cycle counter of the run exactly.
        assert_eq!(tel.span_count("functional.layer"), model.layers.len());
        assert!(tel.span_count("functional.op") >= model.layers.len());
        for (arg, want) in [
            ("compute_cycles", traced.cycles.compute_cycles),
            ("access_cycles", traced.cycles.access_cycles),
            ("mul_rounds", traced.cycles.mul_rounds),
            ("skipped_rounds", traced.cycles.skipped_rounds),
            ("skipped_cycles", traced.cycles.skipped_cycles),
            ("detect_cycles", traced.cycles.detect_cycles),
            ("input_rounds_skipped", traced.cycles.input_rounds_skipped),
        ] {
            assert_eq!(tel.sum_u64_arg("functional.layer", arg), want, "{arg}");
            assert_eq!(tel.sum_u64_arg("functional.op", arg), want, "{arg}");
        }
        assert!(traced.cycles.skipped_rounds > 0 || traced.cycles.skipped_cycles == 0);
        // Pool counters mirror the returned pool events.
        assert_eq!(
            tel.counter("functional.pool.acquires"),
            traced.pool.acquires
        );
        assert_eq!(
            tel.counter("functional.pool.releases"),
            traced.pool.releases
        );
        // A parallel traced run records wall-clock shard utilization.
        assert!(tel.gauge("engine.wall_s").is_some());
        assert_eq!(tel.gauge("engine.workers"), Some(4.0));
        let h = tel.histogram("engine.shard_seconds").expect("shard hist");
        assert!(h.count() > 0);
        let spans_before = tel.total_spans();

        // A Summary-level sink keeps metrics but drops spans.
        let summary = Telemetry::enabled(Level::Summary);
        let again = run_model_traced(
            &model,
            &input,
            ExecutionEngine::Sequential,
            SparsityMode::SkipZeroRows,
            &summary,
        )
        .expect("summary run");
        assert_eq!(again.cycles, traced.cycles);
        assert_eq!(summary.total_spans(), 0);
        assert_eq!(
            summary.counter("functional.pool.acquires"),
            traced.pool.acquires
        );
        // The original sink was untouched by the second run.
        assert_eq!(tel.total_spans(), spans_before);
    }

    #[test]
    fn oversubscribed_threads_still_agree() {
        // More workers than shard jobs (1x1 output): the engine must not
        // deadlock, skip, or duplicate work.
        let conv = random_conv("c", (1, 1), 6, 3, 1, Padding::Valid, true, 19);
        let model = single_conv_model(conv, Shape::new(1, 1, 6));
        let input = random_input(model.input_shape, model.input_quant, 29);
        let seq = run_model(&model, &input).expect("sequential");
        let thr =
            run_model_with(&model, &input, ExecutionEngine::from_threads(16)).expect("threaded");
        assert_eq!(seq.output.data(), thr.output.data());
        assert_eq!(seq.cycles, thr.cycles);
    }

    #[test]
    fn missing_weights_is_an_error() {
        let model = nc_dnn::inception::inception_v3();
        let input = random_input(model.input_shape, model.input_quant, 0);
        let err = run_model(&model, &input).unwrap_err();
        assert!(matches!(err, FunctionalError::MissingWeights { .. }));
        assert!(err.to_string().contains("weights"));

        // The threaded backend reports the same error.
        let err = run_model_with(&model, &input, ExecutionEngine::from_threads(2)).unwrap_err();
        assert!(matches!(err, FunctionalError::MissingWeights { .. }));
    }
}
