//! Sparsity analysis and the round-skipping execution mode — the paper's
//! stated future work (Section VII: "Utilizing sparsity in DNN models for
//! Neural Cache is a promising direction").
//!
//! Bit-serial multiplication iterates over *multiplier bits*: each zero bit
//! of the multiplier still costs a tag load plus `n` predicated add cycles,
//! because lanes are SIMD — a round can only be elided if **every** lane
//! agrees. Weights are stationary, so with the filters as the multiplier
//! the control FSM knows every all-lanes-zero bit-slice row at filter-load
//! time and can skip those rounds for free; [`SparsityMode::SkipZeroRows`]
//! turns that on across the SRAM ops, the functional executor, and the
//! timing simulator (see `nc_sram::ComputeArray::mul_skip_zero_rows`).
//!
//! This module quantifies two optimization levels for a weight
//! distribution:
//!
//! - **oracle (per-lane)**: the lower bound if each lane could skip its own
//!   zero multiplier bits (what a non-SIMD bit-serial machine gets);
//! - **simd (all-lanes-zero rows)**: the rounds actually removable in
//!   Neural Cache, measured on the **mapper's real lane packing**
//!   ([`crate::mapping::conv_lane_geometry`] + [`crate::mapping::chunk_filter`]),
//!   so the analytical skip fraction agrees exactly with the executed
//!   [`nc_sram::CycleStats::skipped_rounds`] counters.
//!
//! All cycle arithmetic derives from the [`CostModel`] trait — the analysis
//! can no longer drift from `cost.rs`.

use nc_dnn::{pad_before, reference, BranchOp, Conv2d, Layer, Model, QTensor};
use nc_sram::COLS;

use crate::cost::{CostModel, DATA_BITS};
use crate::mapping::{chunk_filter, chunk_window_bytes, conv_lane_geometry, LayerPlan, UnitPlan};

/// Which multiplier-bit rounds the executors elide.
///
/// The knob lives on [`crate::SystemConfig`]; every mode produces
/// **bit-identical outputs** (an elided round is a functional no-op by
/// construction), only cycle counts change. The weight-side modes skip for
/// free (the FSM learns all-zero filter bit-slices at load time); the
/// input-side modes pay a 1-cycle tag-latch wired-NOR zero-detect on every
/// scheduled round, because activations are not stationary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SparsityMode {
    /// Execute every multiplier-bit round (the paper's baseline machine).
    #[default]
    Dense,
    /// Elide rounds whose weight bit-slice row is zero on every lane of the
    /// array (Section VII future work; BitWave-style bit-level skipping).
    /// The stationary filters serve as the multiplier.
    SkipZeroRows,
    /// Elide rounds whose **input** bit-slice row is zero on every lane,
    /// detected at run time by the tag-latch wired-NOR (1 cycle per
    /// scheduled round). The streamed input byte serves as the multiplier;
    /// ReLU-sparse activations make most rounds elidable, dense ones make
    /// the detect pure overhead.
    SkipZeroInputs,
    /// [`SparsityMode::SkipZeroInputs`] composed with static weight-side
    /// **multiplicand truncation**: executed rounds schedule adds only up
    /// to the highest live weight bit-slice (known at filter-load time),
    /// capturing contiguous top weight-bit sparsity on top of the dynamic
    /// input skips.
    SkipBoth,
}

impl SparsityMode {
    /// Whether this mode pays the per-round dynamic zero-detect (the input
    /// side of the skip machinery).
    #[must_use]
    pub fn dynamic_detect(&self) -> bool {
        matches!(self, SparsityMode::SkipZeroInputs | SparsityMode::SkipBoth)
    }
}

/// Round-skip opportunity of one convolution sub-layer on its real lane
/// packing, counted per output window (the same filter layout repeats for
/// every window, so the fraction equals the executed one exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipProfile {
    /// Multiplier-bit rounds elidable per output window.
    pub skippable_rounds: u64,
    /// Multiplier-bit rounds scheduled per output window.
    pub total_rounds: u64,
}

impl SkipProfile {
    /// Fraction of scheduled rounds that are elidable.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total_rounds == 0 {
            0.0
        } else {
            self.skippable_rounds as f64 / self.total_rounds as f64
        }
    }
}

/// The two hardware realizations of round skipping, measured on one
/// convolution's real lane packing:
///
/// - **mean (per-bank FSMs)**: every bank advances through its own round
///   schedule between reduction barriers, so each array skips its own
///   all-lanes-zero rounds independently; the MAC phase shrinks by the
///   rounds-weighted *mean* skip fraction (the execution model PR 3 wired
///   in).
/// - **lockstep (max-over-arrays)**: all banks share one FSM and step the
///   same `(tap, bit)` schedule together, so a round is elidable only when
///   it is zero on every live lane of **every** array — the MAC phase is
///   the *max* over arrays, i.e. the global-OR skip fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkipVariants {
    /// Per-bank-FSM (independent arrays) skip fraction: the rounds-weighted
    /// mean over `(m-block, array)` groups. Equals
    /// [`SkipProfile::fraction`].
    pub mean: f64,
    /// Lockstep-bank skip fraction: rounds elidable across **all** arrays
    /// simultaneously (always `<= mean`).
    pub lockstep: f64,
}

impl SkipVariants {
    /// Absolute spread between the variants (mean minus lockstep): how much
    /// skip opportunity lockstep banking forfeits.
    #[must_use]
    pub fn spread(&self) -> f64 {
        self.mean - self.lockstep
    }
}

/// Shared walk over the `(m-block, array, tap)` OR masks of a convolution's
/// lane packing: returns the per-array totals plus the global (lockstep) OR
/// per tap.
fn skip_masks(conv: &Conv2d) -> (SkipProfile, SkipVariants) {
    let spec = &conv.spec;
    assert!(conv.weights.is_some(), "skip profile needs weights");
    let geom = conv_lane_geometry(spec);
    let groups_per_array = geom.groups_per_array(spec.m);

    let mut skippable = 0u64;
    let mut total = 0u64;
    // Lockstep banks share one FSM: a round (tap, bit) is elidable only if
    // zero across every array of every m-block, i.e. in the global OR.
    let mut global_or = vec![0u8; geom.eff_window];
    let mut m = 0;
    while m < spec.m {
        let group_count = groups_per_array.min(spec.m - m);
        let filters: Vec<Vec<Vec<u8>>> = (m..m + group_count)
            .map(|f| chunk_filter(conv, f, &geom))
            .collect();
        for array_idx in 0..geom.arrays_per_filter {
            let lane_base = array_idx * COLS;
            for t in 0..geom.eff_window {
                // OR of this tap's bytes over every live lane of the array:
                // bit j of the mask set <=> round (t, j) has a live 1 bit.
                let mut or_mask = 0u8;
                for chunks in &filters {
                    for l in 0..geom.group_span {
                        or_mask |= chunks.get(lane_base + l).map_or(0, |lane| lane[t]);
                    }
                }
                total += DATA_BITS as u64;
                // DATA_BITS = 8 = u8::BITS: every zero bit of the OR mask
                // is one elidable round.
                skippable += u64::from(or_mask.count_zeros());
                global_or[t] |= or_mask;
            }
        }
        m += group_count;
    }
    let profile = SkipProfile {
        skippable_rounds: skippable,
        total_rounds: total,
    };
    let lockstep_zeros: u64 = global_or.iter().map(|&m| u64::from(m.count_zeros())).sum();
    let lockstep_total = (geom.eff_window * DATA_BITS) as u64;
    let variants = SkipVariants {
        mean: profile.fraction(),
        lockstep: if lockstep_total == 0 {
            0.0
        } else {
            lockstep_zeros as f64 / lockstep_total as f64
        },
    };
    (profile, variants)
}

/// Measures the SIMD skip profile of one convolution on the exact lane
/// packing the mapper/executor realize: filters are chunked per lane
/// ([`chunk_filter`]), grouped `groups_per_array` at a time, and a round
/// `(m-block, array, tap, bit)` is elidable only when that bit is zero on
/// **every** live lane of the array.
///
/// # Panics
///
/// Panics if the sub-layer is shape-only.
#[must_use]
pub fn conv_skip_profile(conv: &Conv2d) -> SkipProfile {
    skip_masks(conv).0
}

/// Measures both skip-time variants (per-bank mean and lockstep
/// max-over-arrays) of one convolution on its real lane packing.
///
/// # Panics
///
/// Panics if the sub-layer is shape-only.
#[must_use]
pub fn conv_skip_variants(conv: &Conv2d) -> SkipVariants {
    skip_masks(conv).1
}

/// Sparsity statistics of one convolution sub-layer's weights.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityStats {
    /// Sub-layer name.
    pub name: String,
    /// Output windows (`E_h * E_w`): every window re-executes the same
    /// round schedule, so model-level fractions weight by this count.
    pub positions: usize,
    /// Total weight codes.
    pub weights: usize,
    /// Codes equal to the weight zero point (exactly-zero real weights).
    pub zero_codes: usize,
    /// Mean set-bit density of the weight codes (bits/8).
    pub bit_density: f64,
    /// Fraction of multiplier-bit rounds an oracle per-lane skipper
    /// removes.
    pub oracle_skip_fraction: f64,
    /// Round-skip profile on the mapper's actual lane packing.
    pub profile: SkipProfile,
    /// Fraction of rounds removable under the SIMD all-lanes-zero
    /// constraint (`profile.fraction()`).
    pub simd_skip_fraction: f64,
}

/// Sparsity report over a whole model.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityReport {
    /// Per-sub-layer statistics.
    pub sublayers: Vec<SparsityStats>,
}

impl SparsityReport {
    /// Mean oracle skip fraction, weighted by executed (weight, bit)
    /// rounds — weight codes times output windows.
    #[must_use]
    pub fn oracle_skip(&self) -> f64 {
        let total: f64 = self
            .sublayers
            .iter()
            .map(|s| (s.weights * s.positions) as f64)
            .sum();
        if total == 0.0 {
            return 0.0;
        }
        self.sublayers
            .iter()
            .map(|s| s.oracle_skip_fraction * (s.weights * s.positions) as f64)
            .sum::<f64>()
            / total
    }

    /// Mean SIMD-feasible skip fraction, weighted by executed rounds
    /// (per-window rounds times output windows). Every window re-runs the
    /// same round schedule, so this equals the functional executor's
    /// `skipped_rounds / mul_rounds` **exactly**, on any model.
    #[must_use]
    pub fn simd_skip(&self) -> f64 {
        let total: u64 = self
            .sublayers
            .iter()
            .map(|s| s.positions as u64 * s.profile.total_rounds)
            .sum();
        if total == 0 {
            return 0.0;
        }
        self.sublayers
            .iter()
            .map(|s| s.positions as u64 * s.profile.skippable_rounds)
            .sum::<u64>() as f64
            / total as f64
    }

    /// Idealized MAC speedup under `cost` if each lane could skip its own
    /// zero multiplier bits (oracle).
    #[must_use]
    pub fn oracle_mac_speedup(&self, cost: &dyn CostModel) -> f64 {
        mac_speedup(cost, self.oracle_skip())
    }

    /// Realizable MAC speedup under `cost` with the SIMD all-lanes-zero
    /// constraint on the real lane packing.
    #[must_use]
    pub fn simd_mac_speedup(&self, cost: &dyn CostModel) -> f64 {
        mac_speedup(cost, self.simd_skip())
    }
}

/// MAC-phase speedup of eliding `skip` of the multiplier-bit rounds,
/// derived entirely from the [`CostModel`] (dense MAC cycles over
/// skip-aware MAC cycles).
fn mac_speedup(cost: &dyn CostModel, skip: f64) -> f64 {
    cost.mac_cycles() as f64 / cost.mac_cycles_sparse(skip)
}

/// Analyzes the weight sparsity of every convolution sub-layer. Shapes
/// propagate through the graph exactly as in the mapper, so every
/// sub-layer's output-window count (the executed-round weighting) is
/// known.
///
/// # Panics
///
/// Panics if the model is shape-only (no weights to analyze).
#[must_use]
pub fn analyze(model: &Model) -> SparsityReport {
    assert!(model.has_weights(), "sparsity analysis needs weights");
    let mut sublayers = Vec::new();
    for (layer, input) in model.layers.iter().zip(model.layer_inputs()) {
        match layer {
            Layer::Conv(conv) => {
                sublayers.push(analyze_conv(conv, conv.spec.out_shape(input)));
            }
            Layer::Pool(_) => {}
            Layer::Mixed(block) => {
                for branch in &block.branches {
                    let mut cur = input;
                    for op in &branch.ops {
                        match op {
                            nc_dnn::BranchOp::Conv(conv) => {
                                let out = conv.spec.out_shape(cur);
                                sublayers.push(analyze_conv(conv, out));
                                cur = out;
                            }
                            nc_dnn::BranchOp::Pool(pool) => cur = pool.out_shape(cur),
                            nc_dnn::BranchOp::Split(convs) => {
                                for conv in convs {
                                    sublayers.push(analyze_conv(conv, conv.spec.out_shape(cur)));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    SparsityReport { sublayers }
}

/// Rounds-weighted mean of the **live multiplicand width** the control FSM
/// schedules per executed round under [`SparsityMode::SkipBoth`]: for each
/// `(m-block, array, tap)` multiply, the highest live weight bit-slice
/// across the array's lanes (`8 - leading_zeros` of the OR mask), averaged
/// over every multiply of the sub-layer on its real lane packing. The
/// timing model prices executed rounds at `live + 2` cycles instead of
/// `DATA_BITS + 2`.
///
/// # Panics
///
/// Panics if the sub-layer is shape-only.
#[must_use]
pub fn conv_live_mult_bits(conv: &Conv2d) -> f64 {
    let spec = &conv.spec;
    assert!(conv.weights.is_some(), "live-bit analysis needs weights");
    let geom = conv_lane_geometry(spec);
    let groups_per_array = geom.groups_per_array(spec.m);

    let mut live_sum = 0u64;
    let mut muls = 0u64;
    let mut m = 0;
    while m < spec.m {
        let group_count = groups_per_array.min(spec.m - m);
        let filters: Vec<Vec<Vec<u8>>> = (m..m + group_count)
            .map(|f| chunk_filter(conv, f, &geom))
            .collect();
        for array_idx in 0..geom.arrays_per_filter {
            let lane_base = array_idx * COLS;
            for t in 0..geom.eff_window {
                let mut or_mask = 0u8;
                for chunks in &filters {
                    for l in 0..geom.group_span {
                        or_mask |= chunks.get(lane_base + l).map_or(0, |lane| lane[t]);
                    }
                }
                live_sum += u64::from(8 - or_mask.leading_zeros());
                muls += 1;
            }
        }
        m += group_count;
    }
    if muls == 0 {
        DATA_BITS as f64
    } else {
        live_sum as f64 / muls as f64
    }
}

/// Measured input-activation round-skip opportunity of one convolution
/// sub-layer on one **actual input tensor**, counted over the full
/// execution (every output window, m-block, array and tap — unlike the
/// per-window [`SkipProfile`], activations differ per window, so there is
/// no repeating schedule to factor out).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivationStats {
    /// Sub-layer name.
    pub name: String,
    /// Input-bit rounds the wired-NOR detect elides across the whole
    /// sub-layer execution.
    pub skippable_rounds: u64,
    /// Multiplier-bit rounds scheduled across the whole sub-layer
    /// execution.
    pub total_rounds: u64,
    /// Input codes equal to the input zero point (exactly-zero real
    /// activations — the `ReLU` footprint).
    pub zero_codes: usize,
    /// Total input codes of the sub-layer's input tensor.
    pub codes: usize,
}

impl ActivationStats {
    /// Fraction of scheduled rounds the detect elides.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total_rounds == 0 {
            0.0
        } else {
            self.skippable_rounds as f64 / self.total_rounds as f64
        }
    }
}

/// Per-input activation-sparsity measurement over a whole model: the
/// dynamic analogue of [`SparsityReport`]. Where PR 3's weight analysis
/// runs once at plan time, this must be re-measured per input — the FSM
/// cannot precompute activation zeros, and neither can the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivationProfile {
    /// Per-conv-sub-layer statistics, in execution order.
    pub sublayers: Vec<ActivationStats>,
}

impl ActivationProfile {
    /// Total elidable input-bit rounds over the model execution.
    #[must_use]
    pub fn skippable_rounds(&self) -> u64 {
        self.sublayers.iter().map(|s| s.skippable_rounds).sum()
    }

    /// Total scheduled multiplier-bit rounds over the model execution.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.sublayers.iter().map(|s| s.total_rounds).sum()
    }

    /// Model-level input-skip fraction; equals the functional executor's
    /// `input_rounds_skipped / mul_rounds` **exactly** under
    /// [`SparsityMode::SkipZeroInputs`] / [`SparsityMode::SkipBoth`] on the
    /// same input (both walk the identical lane packing).
    #[must_use]
    pub fn input_skip(&self) -> f64 {
        let total = self.total_rounds();
        if total == 0 {
            0.0
        } else {
            self.skippable_rounds() as f64 / total as f64
        }
    }

    /// Measured skip fraction of one named sub-layer (`None` when the
    /// profile has no such sub-layer).
    #[must_use]
    pub fn skip_of(&self, name: &str) -> Option<f64> {
        self.sublayers
            .iter()
            .find(|s| s.name == name)
            .map(ActivationStats::fraction)
    }

    /// Writes the measured per-sub-layer skip fractions into a set of
    /// plans (matched by sub-layer name), so the timing simulator can price
    /// the dynamic skip for this specific input. Plans whose mode is not
    /// dynamic ignore the fractions.
    pub fn apply_to_plans(&self, plans: &mut [LayerPlan]) {
        for plan in plans {
            for unit in &mut plan.units {
                if let UnitPlan::Conv(c) = unit {
                    if let Some(f) = self.skip_of(&c.name) {
                        c.input_skip_fraction = f;
                    }
                }
            }
        }
    }
}

/// Measures the dynamic input-bit skip opportunity of every convolution
/// sub-layer of `model` on one actual `input`, replaying the mapper's real
/// lane packing ([`chunk_window_bytes`] over the executor's exact window
/// gathering) on every intermediate activation tensor. Intermediates come
/// from the [`nc_dnn::reference`] golden executor, which the functional
/// executor matches bit for bit — so the profile predicts the executed
/// [`nc_sram::CycleStats::input_rounds_skipped`] counters **exactly**.
///
/// # Panics
///
/// Panics if the model is shape-only or the input shape mismatches.
#[must_use]
pub fn activation_profile(model: &Model, input: &QTensor) -> ActivationProfile {
    assert!(model.has_weights(), "activation profiling needs weights");
    assert_eq!(input.shape(), model.input_shape, "input shape mismatch");
    let mut sublayers = Vec::new();
    let mut cur = input.clone();
    for layer in &model.layers {
        match layer {
            Layer::Conv(conv) => {
                sublayers.push(profile_conv(conv, &cur));
                cur = reference::run_conv(conv, &cur).0;
            }
            Layer::Pool(pool) => cur = reference::run_pool(pool, &cur),
            Layer::Mixed(block) => {
                for branch in &block.branches {
                    let mut bcur = cur.clone();
                    let last = branch.ops.len() - 1;
                    for (i, op) in branch.ops.iter().enumerate() {
                        match op {
                            BranchOp::Conv(c) => {
                                sublayers.push(profile_conv(c, &bcur));
                                if i != last {
                                    bcur = reference::run_conv(c, &bcur).0;
                                }
                            }
                            BranchOp::Pool(p) => bcur = reference::run_pool(p, &bcur),
                            BranchOp::Split(convs) => {
                                for c in convs {
                                    sublayers.push(profile_conv(c, &bcur));
                                }
                            }
                        }
                    }
                }
                cur = reference::run_layer(layer, &cur).output;
            }
        }
    }
    ActivationProfile { sublayers }
}

/// One sub-layer's input-bit skip measurement: for every output window,
/// regroup the padded window exactly as the executor streams it
/// ([`chunk_window_bytes`]), OR each tap's bytes over every live lane of
/// each array, and count the zero bits of the mask — each is one round the
/// wired-NOR elides. M-blocks replicate the same input lanes, so their
/// rounds multiply the count.
fn profile_conv(conv: &Conv2d, input: &QTensor) -> ActivationStats {
    let spec = &conv.spec;
    let in_shape = input.shape();
    let out_shape = spec.out_shape(in_shape);
    let geom = conv_lane_geometry(spec);
    let groups_per_array = geom.groups_per_array(spec.m);
    let m_blocks = spec.m.div_ceil(groups_per_array) as u64;
    let pad_y = pad_before(in_shape.h, spec.r, spec.stride, spec.padding) as isize;
    let pad_x = pad_before(in_shape.w, spec.s, spec.stride, spec.padding) as isize;

    let mut skippable = 0u64;
    let mut total = 0u64;
    let mut window = vec![0u8; spec.r * spec.s * spec.c];
    for ey in 0..out_shape.h {
        for ex in 0..out_shape.w {
            // The executor's exact (r, s, c) window gathering, padding
            // included (padding bytes hold the zero-point code).
            let oy = (ey * spec.stride) as isize - pad_y;
            let ox = (ex * spec.stride) as isize - pad_x;
            let mut idx = 0;
            for r in 0..spec.r {
                for s in 0..spec.s {
                    for c in 0..spec.c {
                        window[idx] = input.get_padded(oy + r as isize, ox + s as isize, c);
                        idx += 1;
                    }
                }
            }
            let lanes = chunk_window_bytes(&window, spec.c, &geom);
            for array_idx in 0..geom.arrays_per_filter {
                let lane_base = array_idx * COLS;
                for t in 0..geom.eff_window {
                    let mut or_mask = 0u8;
                    for l in 0..geom.group_span {
                        or_mask |= lanes.get(lane_base + l).map_or(0, |lane| lane[t]);
                    }
                    total += DATA_BITS as u64;
                    skippable += u64::from(or_mask.count_zeros());
                }
            }
        }
    }
    let zp = input.params().zero_point.clamp(0, 255) as u8;
    ActivationStats {
        name: spec.name.clone(),
        skippable_rounds: skippable * m_blocks,
        total_rounds: total * m_blocks,
        zero_codes: input.data().iter().filter(|&&q| q == zp).count(),
        codes: input.data().len(),
    }
}

fn analyze_conv(conv: &Conv2d, out_shape: nc_dnn::Shape) -> SparsityStats {
    let weights = conv.weights.as_ref().expect("weights present");
    let zp = conv.w_quant.zero_point.clamp(0, 255) as u8;
    let zero_codes = weights.iter().filter(|&&w| w == zp).count();
    let set_bits: u64 = weights.iter().map(|&w| u64::from(w.count_ones())).sum();
    let bit_density = set_bits as f64 / (weights.len() * DATA_BITS) as f64;

    // Oracle: fraction of (weight, bit) rounds with a zero multiplier bit.
    let oracle_skip_fraction = 1.0 - bit_density;

    // SIMD: the real lane packing, exactly as executed.
    let profile = conv_skip_profile(conv);
    SparsityStats {
        name: conv.spec.name.clone(),
        positions: out_shape.h * out_shape.w,
        weights: weights.len(),
        zero_codes,
        bit_density,
        oracle_skip_fraction,
        profile,
        simd_skip_fraction: profile.fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::DerivedCostModel;
    use nc_dnn::workload::{prune_conv, random_conv, single_conv_model, tiny_cnn};
    use nc_dnn::{Padding, Shape, WeightQuant};

    #[test]
    fn dense_random_weights_offer_no_simd_skips() {
        let report = analyze(&tiny_cnn(1));
        // Uniform random codes: ~50% oracle skip, essentially zero SIMD
        // skip (an all-zero bit-slice across a whole array's live lanes is
        // vanishingly unlikely).
        assert!((report.oracle_skip() - 0.5).abs() < 0.05);
        assert!(report.simd_skip() < 0.05);
        assert!(report.oracle_mac_speedup(&DerivedCostModel) > 1.3);
        assert!(report.simd_mac_speedup(&DerivedCostModel) < 1.1);
    }

    #[test]
    fn pruned_weights_enable_simd_skips() {
        // A filter whose codes only use the low 4 bits: the top 4 bit
        // rounds are skippable even under SIMD.
        let mut conv = random_conv("pruned", (3, 3), 8, 2, 1, Padding::Same, true, 5);
        if let Some(w) = conv.weights.as_mut() {
            for q in w.iter_mut() {
                *q &= 0x0F;
            }
        }
        conv.w_quant = WeightQuant {
            scale: 0.01,
            zero_point: 0,
        };
        let model = single_conv_model(conv, Shape::new(4, 4, 8));
        let report = analyze(&model);
        assert!(
            report.simd_skip() >= 0.5,
            "top nibble rounds skippable, got {}",
            report.simd_skip()
        );
        assert!(report.simd_mac_speedup(&DerivedCostModel) > 1.4);
        assert!(
            report.oracle_mac_speedup(&DerivedCostModel)
                >= report.simd_mac_speedup(&DerivedCostModel)
        );
    }

    #[test]
    fn speedups_derive_from_the_cost_model() {
        // The analysis must agree with CostModel::mac_cycles_sparse for any
        // model — no hardcoded cycle constants.
        let report = analyze(&tiny_cnn(3));
        for cost in [
            &crate::cost::PaperCostModel as &dyn CostModel,
            &DerivedCostModel,
        ] {
            let expected = cost.mac_cycles() as f64 / cost.mac_cycles_sparse(report.simd_skip());
            assert!((report.simd_mac_speedup(cost) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn skip_profile_matches_flat_chunks_for_single_filter_arrays() {
        // One 2-filter group over 8x9=72-lane... geometry sanity: the
        // profile's denominator is the executed round count.
        let conv = random_conv("p", (3, 3), 8, 2, 1, Padding::Same, true, 7);
        let profile = conv_skip_profile(&conv);
        let geom = crate::mapping::conv_lane_geometry(&conv.spec);
        // m = 2 filters fit one array: one m-block, eff_window taps, 8 bits.
        assert_eq!(
            profile.total_rounds,
            (geom.eff_window * DATA_BITS) as u64,
            "both filters share one array's rounds"
        );
    }

    #[test]
    fn pruned_conv_profile_reports_three_quarters_skip() {
        // keep_bits = 2: bit rounds 2..8 are always elidable.
        let conv = prune_conv(
            random_conv("pc", (3, 3), 8, 4, 1, Padding::Same, true, 11),
            2,
            0.0,
            13,
        );
        let profile = conv_skip_profile(&conv);
        assert!(
            (profile.fraction() - 0.75).abs() < 1e-9,
            "got {}",
            profile.fraction()
        );
    }

    #[test]
    fn lockstep_variant_never_beats_the_per_bank_mean() {
        for seed in [1u64, 5, 11] {
            let conv = prune_conv(
                random_conv("v", (3, 3), 8, 4, 1, Padding::Same, true, seed),
                3,
                0.5,
                seed,
            );
            let v = conv_skip_variants(&conv);
            assert!(
                v.lockstep <= v.mean + 1e-12,
                "lockstep {} > mean {}",
                v.lockstep,
                v.mean
            );
            assert!(v.spread() >= -1e-12);
            assert!((v.mean - conv_skip_profile(&conv).fraction()).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_bit_pruning_gives_zero_spread() {
        // keep_bits = 2 with no magnitude pruning: every lane's top six
        // bit-slices are zero, so per-bank and lockstep agree exactly.
        let conv = prune_conv(
            random_conv("u", (3, 3), 8, 4, 1, Padding::Same, true, 3),
            2,
            0.0,
            7,
        );
        let v = conv_skip_variants(&conv);
        assert!((v.mean - 0.75).abs() < 1e-9);
        assert!((v.lockstep - 0.75).abs() < 1e-9);
        assert!(v.spread().abs() < 1e-9);
    }

    #[test]
    fn magnitude_pruning_opens_a_spread_on_multi_array_layers() {
        // Near-total magnitude pruning leaves some arrays with an all-zero
        // low bit-slice while others keep a survivor: those arrays can skip
        // rounds the global OR cannot, so mean > lockstep. (Each array ORs
        // ~256 lanes, so moderate pruning saturates every array alike.)
        let conv = prune_conv(
            random_conv("s", (3, 3), 16, 64, 1, Padding::Same, true, 9),
            2,
            0.99,
            9,
        );
        let v = conv_skip_variants(&conv);
        assert!(
            v.mean > v.lockstep,
            "aggressive pruning must differentiate arrays: mean {} lockstep {}",
            v.mean,
            v.lockstep
        );
        assert!(
            v.lockstep >= 0.75 - 1e-9,
            "bit pruning still skips globally"
        );
    }

    #[test]
    fn activation_profile_tracks_input_density() {
        use nc_dnn::workload::{relu_sparse_conv_model, relu_sparse_input};
        let model = relu_sparse_conv_model(5);
        // Mostly-zero, low-magnitude activations: most input-bit rounds
        // are elidable (the top 8 - keep_bits rounds always are).
        let sparse_in = relu_sparse_input(model.input_shape, 0.7, 2, 9);
        let profile = activation_profile(&model, &sparse_in);
        assert_eq!(profile.sublayers.len(), 1);
        assert!(
            profile.input_skip() >= 0.75,
            "keep_bits = 2 elides at least the top six rounds, got {}",
            profile.input_skip()
        );
        assert!(profile.skippable_rounds() <= profile.total_rounds());
        assert_eq!(
            profile.skip_of("relu_conv"),
            Some(profile.input_skip()),
            "single-conv model: layer skip is the model skip"
        );
        assert!(profile.skip_of("nope").is_none());
        let s = &profile.sublayers[0];
        assert!(s.zero_codes as f64 / s.codes as f64 > 0.6);

        // Full-width dense activations: essentially nothing skips (an
        // all-zero bit-slice over a whole array of lanes is vanishingly
        // unlikely), which is what makes the detect pure overhead there.
        let dense_in = relu_sparse_input(model.input_shape, 0.0, 8, 9);
        let dense_profile = activation_profile(&model, &dense_in);
        assert!(dense_profile.input_skip() < 0.1);
        assert!(dense_profile.input_skip() < profile.input_skip());
    }

    #[test]
    fn activation_profile_applies_to_dynamic_plans() {
        use nc_dnn::workload::{relu_sparse_conv_model, relu_sparse_input};
        use nc_geometry::CacheGeometry;
        let model = relu_sparse_conv_model(3);
        let input = relu_sparse_input(model.input_shape, 0.6, 3, 4);
        let profile = activation_profile(&model, &input);
        let geometry = CacheGeometry::xeon_e5_2697_v3();
        let mut plans =
            crate::mapping::plan_model_with(&model, &geometry, SparsityMode::SkipZeroInputs);
        // Plan time cannot know activations: fraction starts at 0.
        for plan in &plans {
            for unit in &plan.units {
                if let UnitPlan::Conv(c) = unit {
                    assert!(c.dynamic_detect);
                    assert_eq!(c.input_skip_fraction, 0.0);
                    assert_eq!(c.live_mult_bits, DATA_BITS as f64, "inputs-only mode");
                }
            }
        }
        profile.apply_to_plans(&mut plans);
        let mut seen = false;
        for plan in &plans {
            for unit in &plan.units {
                if let UnitPlan::Conv(c) = unit {
                    assert!((c.input_skip_fraction - profile.input_skip()).abs() < 1e-15);
                    seen = true;
                }
            }
        }
        assert!(seen);
    }

    #[test]
    fn live_mult_bits_measures_weight_truncation() {
        // keep_bits = 2: every weight code < 4, so the OR mask of any tap
        // has no bit above 1 -> live <= 2.
        let pruned = prune_conv(
            random_conv("lb", (3, 3), 8, 4, 1, Padding::Same, true, 11),
            2,
            0.0,
            13,
        );
        let live = conv_live_mult_bits(&pruned);
        assert!(live <= 2.0 + 1e-12, "got {live}");
        assert!(live > 0.0);
        // Dense random weights: some lane in every ~72-lane OR has the top
        // bit set.
        let dense = random_conv("ld", (3, 3), 8, 4, 1, Padding::Same, true, 11);
        assert!((conv_live_mult_bits(&dense) - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "needs weights")]
    fn activation_profile_rejects_shape_only_models() {
        let model = nc_dnn::inception::inception_v3();
        let input = nc_dnn::workload::random_input(model.input_shape, model.input_quant, 1);
        let _ = activation_profile(&model, &input);
    }

    #[test]
    fn dynamic_modes_report_detection() {
        assert!(!SparsityMode::Dense.dynamic_detect());
        assert!(!SparsityMode::SkipZeroRows.dynamic_detect());
        assert!(SparsityMode::SkipZeroInputs.dynamic_detect());
        assert!(SparsityMode::SkipBoth.dynamic_detect());
    }

    #[test]
    fn stats_count_zero_codes() {
        let mut conv = random_conv("z", (1, 1), 4, 1, 1, Padding::Valid, true, 9);
        conv.w_quant = WeightQuant {
            scale: 0.01,
            zero_point: 7,
        };
        if let Some(w) = conv.weights.as_mut() {
            w.copy_from_slice(&[7, 7, 9, 7]);
        }
        let model = single_conv_model(conv, Shape::new(1, 1, 4));
        let report = analyze(&model);
        assert_eq!(report.sublayers[0].zero_codes, 3);
        assert_eq!(report.sublayers[0].weights, 4);
    }

    #[test]
    #[should_panic(expected = "needs weights")]
    fn shape_only_models_are_rejected() {
        let _ = analyze(&nc_dnn::inception::inception_v3());
    }
}
