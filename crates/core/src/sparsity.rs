//! Sparsity analysis — the paper's stated future work (Section VII:
//! "Utilizing sparsity in DNN models for Neural Cache is a promising
//! direction").
//!
//! Bit-serial multiplication iterates over *multiplier bits*: each zero bit
//! of the multiplier still costs a tag load plus `n` predicated add cycles,
//! because lanes are SIMD — a cycle can only be skipped if **every** lane
//! agrees. This module quantifies two optimization levels for a given
//! weight distribution:
//!
//! - **oracle (per-lane)**: the lower bound if each lane could skip its own
//!   zero multiplier bits (what a non-SIMD bit-serial machine gets);
//! - **simd (all-lanes-zero rows)**: the cycles actually removable in
//!   Neural Cache, where a multiplier-bit round can be elided only when the
//!   bit-slice row is zero across all active lanes of the array.
//!
//! The analysis runs over a model's real weight codes and reports the MAC
//! cycle savings under the derived cost model.

use nc_dnn::{Conv2d, Layer, Model};

use crate::cost::DATA_BITS;

/// Sparsity statistics of one convolution sub-layer's weights.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityStats {
    /// Sub-layer name.
    pub name: String,
    /// Total weight codes.
    pub weights: usize,
    /// Codes equal to the weight zero point (exactly-zero real weights).
    pub zero_codes: usize,
    /// Mean set-bit density of the weight codes (bits/8).
    pub bit_density: f64,
    /// Fraction of multiplier-bit rounds an oracle per-lane skipper
    /// removes.
    pub oracle_skip_fraction: f64,
    /// Fraction of rounds removable under the SIMD constraint, sampling
    /// 256-lane groups in mapping order.
    pub simd_skip_fraction: f64,
}

/// Sparsity report over a whole model.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityReport {
    /// Per-sub-layer statistics.
    pub sublayers: Vec<SparsityStats>,
}

impl SparsityReport {
    /// Weighted mean oracle skip fraction (weighted by weight count).
    #[must_use]
    pub fn oracle_skip(&self) -> f64 {
        weighted(&self.sublayers, |s| s.oracle_skip_fraction)
    }

    /// Weighted mean SIMD-feasible skip fraction.
    #[must_use]
    pub fn simd_skip(&self) -> f64 {
        weighted(&self.sublayers, |s| s.simd_skip_fraction)
    }

    /// Idealized MAC speedup if skipped rounds cost nothing (oracle).
    ///
    /// Each multiplier bit round costs `n + 2` of the `n^2 + 4n` derived
    /// multiply cycles.
    #[must_use]
    pub fn oracle_mac_speedup(&self) -> f64 {
        mac_speedup(self.oracle_skip())
    }

    /// Realizable MAC speedup under the SIMD all-lanes-zero constraint.
    #[must_use]
    pub fn simd_mac_speedup(&self) -> f64 {
        mac_speedup(self.simd_skip())
    }
}

fn weighted(stats: &[SparsityStats], f: impl Fn(&SparsityStats) -> f64) -> f64 {
    let total: usize = stats.iter().map(|s| s.weights).sum();
    if total == 0 {
        return 0.0;
    }
    stats.iter().map(|s| f(s) * s.weights as f64).sum::<f64>() / total as f64
}

fn mac_speedup(skip: f64) -> f64 {
    let n = DATA_BITS as f64;
    let mul = n * n + 4.0 * n; // derived multiply cost
    let per_round = n + 2.0;
    let saved = skip * n * per_round;
    let acc = 24.0 + 16.0; // accumulate + S2 (unaffected by weight sparsity)
    (mul + acc) / (mul + acc - saved)
}

/// Analyzes the weight sparsity of every convolution sub-layer.
///
/// # Panics
///
/// Panics if the model is shape-only (no weights to analyze).
#[must_use]
pub fn analyze(model: &Model) -> SparsityReport {
    assert!(model.has_weights(), "sparsity analysis needs weights");
    let sublayers = model
        .layers
        .iter()
        .flat_map(Layer::conv_sublayers)
        .map(analyze_conv)
        .collect();
    SparsityReport { sublayers }
}

fn analyze_conv(conv: &Conv2d) -> SparsityStats {
    let weights = conv.weights.as_ref().expect("weights present");
    let zp = conv.w_quant.zero_point.clamp(0, 255) as u8;
    let zero_codes = weights.iter().filter(|&&w| w == zp).count();
    let set_bits: u64 = weights.iter().map(|&w| u64::from(w.count_ones())).sum();
    let bit_density = set_bits as f64 / (weights.len() * DATA_BITS) as f64;

    // Oracle: fraction of (weight, bit) rounds with a zero multiplier bit.
    let oracle_skip_fraction = 1.0 - bit_density;

    // SIMD: walk the weights in 256-lane groups (the order the mapper packs
    // filters); a bit round is skippable only when all lanes' bits are 0.
    let mut skippable_rounds = 0u64;
    let mut total_rounds = 0u64;
    for group in weights.chunks(nc_sram::COLS) {
        for bit in 0..DATA_BITS {
            total_rounds += 1;
            if group.iter().all(|&w| (w >> bit) & 1 == 0) {
                skippable_rounds += 1;
            }
        }
    }
    SparsityStats {
        name: conv.spec.name.clone(),
        weights: weights.len(),
        zero_codes,
        bit_density,
        oracle_skip_fraction,
        simd_skip_fraction: if total_rounds == 0 {
            0.0
        } else {
            skippable_rounds as f64 / total_rounds as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dnn::workload::{random_conv, single_conv_model, tiny_cnn};
    use nc_dnn::{Padding, Shape, WeightQuant};

    #[test]
    fn dense_random_weights_offer_no_simd_skips() {
        let report = analyze(&tiny_cnn(1));
        // Uniform random codes: ~50% oracle skip, essentially zero SIMD
        // skip (some all-zero bit-slice across 256 lanes is vanishingly
        // unlikely).
        assert!((report.oracle_skip() - 0.5).abs() < 0.05);
        assert!(report.simd_skip() < 0.05);
        assert!(report.oracle_mac_speedup() > 1.3);
        assert!(report.simd_mac_speedup() < 1.1);
    }

    #[test]
    fn pruned_weights_enable_simd_skips() {
        // A filter whose codes only use the low 4 bits: the top 4 bit
        // rounds are skippable even under SIMD.
        let mut conv = random_conv("pruned", (3, 3), 8, 2, 1, Padding::Same, true, 5);
        if let Some(w) = conv.weights.as_mut() {
            for q in w.iter_mut() {
                *q &= 0x0F;
            }
        }
        conv.w_quant = WeightQuant {
            scale: 0.01,
            zero_point: 0,
        };
        let model = single_conv_model(conv, Shape::new(4, 4, 8));
        let report = analyze(&model);
        assert!(
            report.simd_skip() >= 0.5,
            "top nibble rounds skippable, got {}",
            report.simd_skip()
        );
        assert!(report.simd_mac_speedup() > 1.4);
        assert!(report.oracle_mac_speedup() >= report.simd_mac_speedup());
    }

    #[test]
    fn stats_count_zero_codes() {
        let mut conv = random_conv("z", (1, 1), 4, 1, 1, Padding::Valid, true, 9);
        conv.w_quant = WeightQuant {
            scale: 0.01,
            zero_point: 7,
        };
        if let Some(w) = conv.weights.as_mut() {
            w.copy_from_slice(&[7, 7, 9, 7]);
        }
        let model = single_conv_model(conv, Shape::new(1, 1, 4));
        let report = analyze(&model);
        assert_eq!(report.sublayers[0].zero_codes, 3);
        assert_eq!(report.sublayers[0].weights, 4);
    }

    #[test]
    #[should_panic(expected = "needs weights")]
    fn shape_only_models_are_rejected() {
        let _ = analyze(&nc_dnn::inception::inception_v3());
    }
}
