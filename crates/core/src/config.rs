//! System configuration: geometry + interconnect + DRAM + array constants +
//! cost model, bundled for the simulators.

use nc_geometry::{CacheGeometry, DramModel, InterconnectModel};
use nc_sram::{ArrayEnergy, ArrayTimings};

use crate::cost::CostModelKind;
use crate::engine::ExecutionEngine;
use crate::sparsity::SparsityMode;

/// Full configuration of a Neural Cache system.
///
/// # Examples
///
/// ```
/// use neural_cache::SystemConfig;
///
/// let config = SystemConfig::xeon_e5_2697_v3();
/// assert_eq!(config.geometry.slices, 14);
/// assert_eq!(config.sockets, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Cache geometry (slices/ways/banks/arrays).
    pub geometry: CacheGeometry,
    /// Ring and intra-slice bus model.
    pub interconnect: InterconnectModel,
    /// DRAM stream model for filter loads and batch dumps.
    pub dram: DramModel,
    /// Array timing constants (2.5 GHz compute clock).
    pub timings: ArrayTimings,
    /// Array energy constants (22 nm scaled).
    pub array_energy: ArrayEnergy,
    /// Cycle-cost model used by the timing simulator.
    pub cost: CostModelKind,
    /// Host sockets; Neural Cache throughput scales linearly with sockets
    /// (Section VI-B; the paper's platform is dual-socket).
    pub sockets: usize,
    /// Execution engine used by the simulators themselves (functional
    /// executor shard jobs, per-layer timing): [`ExecutionEngine::Sequential`]
    /// or a threaded backend. Both produce bit-identical results; this knob
    /// only changes host wall-clock time, never simulated time or outputs.
    pub parallelism: ExecutionEngine,
    /// Sparsity execution mode: [`SparsityMode::SkipZeroRows`] elides
    /// all-lanes-zero **weight**-bit rounds for free (stationary filters);
    /// [`SparsityMode::SkipZeroInputs`] / [`SparsityMode::SkipBoth`] elide
    /// **input**-bit rounds behind a 1-cycle wired-NOR zero-detect per
    /// round (activations are dynamic, so skips must be re-measured per
    /// input — see `sparsity::activation_profile`). Outputs stay
    /// bit-identical to [`SparsityMode::Dense`] under every mode.
    pub sparsity: SparsityMode,
}

impl SystemConfig {
    /// The paper's evaluation system: dual-socket Xeon E5-2697 v3, 35 MB
    /// LLC per socket, paper-published cost constants.
    #[must_use]
    pub fn xeon_e5_2697_v3() -> Self {
        SystemConfig {
            geometry: CacheGeometry::xeon_e5_2697_v3(),
            interconnect: InterconnectModel::paper(),
            dram: DramModel::paper_calibrated(),
            timings: ArrayTimings::paper(),
            array_energy: ArrayEnergy::node_22nm(),
            cost: CostModelKind::Paper,
            sockets: 2,
            parallelism: ExecutionEngine::Sequential,
            sparsity: SparsityMode::Dense,
        }
    }

    /// Same system with a scaled LLC capacity (Table IV: 35/45/60 MB).
    ///
    /// # Panics
    ///
    /// Panics for capacities that are not a multiple of the 2.5 MB slice.
    #[must_use]
    pub fn with_capacity_mb(mb: usize) -> Self {
        SystemConfig {
            geometry: CacheGeometry::with_capacity_mb(mb),
            ..SystemConfig::xeon_e5_2697_v3()
        }
    }

    /// Same system with a threaded simulator backend (`0`/`1` threads fall
    /// back to sequential).
    #[must_use]
    pub fn with_parallelism(threads: usize) -> Self {
        SystemConfig {
            parallelism: ExecutionEngine::from_threads(threads),
            ..SystemConfig::xeon_e5_2697_v3()
        }
    }

    /// Same system with an explicit weight-sparsity execution mode.
    #[must_use]
    pub fn with_sparsity(mode: SparsityMode) -> Self {
        SystemConfig {
            sparsity: mode,
            ..SystemConfig::xeon_e5_2697_v3()
        }
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::xeon_e5_2697_v3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let c = SystemConfig::xeon_e5_2697_v3();
        assert_eq!(c.geometry.alu_slots(), 1_146_880);
        assert_eq!(c.cost, CostModelKind::Paper);
        let c60 = SystemConfig::with_capacity_mb(60);
        assert_eq!(c60.geometry.slices, 24);
        assert_eq!(c60.sockets, 2);
        assert_eq!(SystemConfig::default(), SystemConfig::xeon_e5_2697_v3());
        assert_eq!(c.parallelism, ExecutionEngine::Sequential);
        let c4 = SystemConfig::with_parallelism(4);
        assert_eq!(c4.parallelism, ExecutionEngine::Threaded { threads: 4 });
        assert_eq!(c4.geometry, c.geometry);
        assert_eq!(
            SystemConfig::with_parallelism(1).parallelism,
            ExecutionEngine::Sequential
        );
        assert_eq!(c.sparsity, SparsityMode::Dense, "dense by default");
        let sparse = SystemConfig::with_sparsity(SparsityMode::SkipZeroRows);
        assert_eq!(sparse.sparsity, SparsityMode::SkipZeroRows);
        assert_eq!(sparse.geometry, c.geometry);
    }
}
