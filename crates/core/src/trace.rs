//! Exports timing-simulator reports onto a telemetry timeline.
//!
//! [`trace_inference_report`] lays an [`InferenceReport`] out as
//! simulated-time spans: one `timing.layer` span per layer (duration =
//! [`LayerTiming::total`], stored verbatim) and one `timing.phase` span per
//! (layer, phase) pair in [`Phase::ALL`] order. Because [`SimTime`] is a
//! plain `f64` seconds wrapper and the telemetry rollup queries fold span
//! durations in insertion order, the exported trace reconciles
//! **bit-exactly** against the report:
//!
//! - `sum_dur("timing.layer")` equals [`InferenceReport::total`] (same
//!   additions in the same order);
//! - `sum_dur_named("timing.phase", label)` equals the aggregated
//!   [`InferenceReport::breakdown`] value of that phase (the breakdown
//!   merges per-layer, per-phase, in layer order — the identical fold).
//!
//! [`SimTime`]: nc_geometry::SimTime

use nc_telemetry::{Level, Telemetry, Value};

use crate::timing::{InferenceReport, LayerTiming, Phase};

/// Records `report` as `timing.layer` / `timing.phase` spans on `tel`'s
/// simulated-time axis (a no-op below [`Level::Spans`]).
///
/// Layer spans start at the cumulative total of the preceding layers
/// (layers execute back-to-back in the deterministic model) and carry the
/// layer's cycle counters as integer arguments; phase spans subdivide each
/// layer in [`Phase::ALL`] order. Durations are the report's own `f64`
/// values stored verbatim, which is what makes the rollup reconciliation
/// exact rather than approximate.
pub fn trace_inference_report(tel: &Telemetry, report: &InferenceReport) {
    if !tel.at(Level::Spans) {
        return;
    }
    let layer_track = tel.track("timing", "layers");
    let phase_track = tel.track("timing", "phases");
    let mut cursor = 0.0f64;
    for layer in &report.layers {
        let total = layer.total().as_secs_f64();
        tel.span(
            layer_track,
            "timing.layer",
            &layer.name,
            cursor,
            total,
            layer_args(layer),
        );
        let mut phase_cursor = cursor;
        for phase in Phase::ALL {
            let dur = layer.phases.get(phase).as_secs_f64();
            tel.span(
                phase_track,
                "timing.phase",
                phase.label(),
                phase_cursor,
                dur,
                vec![("layer", Value::Str(layer.name.clone()))],
            );
            phase_cursor += dur;
        }
        cursor += total;
    }
}

fn layer_args(layer: &LayerTiming) -> Vec<(&'static str, Value)> {
    vec![
        ("rounds", Value::U64(layer.rounds as u64)),
        ("compute_cycles", Value::U64(layer.compute_cycles)),
        ("mac_cycles", Value::U64(layer.mac_cycles)),
        ("mac_saved_cycles", Value::U64(layer.mac_saved_cycles)),
        ("mac_detect_cycles", Value::U64(layer.mac_detect_cycles)),
        ("streamed_bytes", Value::U64(layer.streamed_bytes as u64)),
        ("dram_bytes", Value::U64(layer.dram_bytes as u64)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::timing::time_inference;
    use nc_dnn::inception::inception_v3;

    #[test]
    fn timing_trace_reconciles_bit_exactly_with_the_report() {
        let report = time_inference(&SystemConfig::xeon_e5_2697_v3(), &inception_v3());
        let tel = Telemetry::enabled(Level::Spans);
        trace_inference_report(&tel, &report);

        assert_eq!(tel.span_count("timing.layer"), report.layers.len());
        assert_eq!(
            tel.span_count("timing.phase"),
            report.layers.len() * Phase::ALL.len()
        );
        // Layer-span durations fold to the report total, bit-for-bit.
        assert_eq!(
            tel.sum_dur("timing.layer"),
            report.total().as_secs_f64(),
            "layer rollup must equal InferenceReport::total exactly"
        );
        // Per-phase rollups fold to the Figure 14 breakdown, bit-for-bit.
        let breakdown = report.breakdown();
        for phase in Phase::ALL {
            assert_eq!(
                tel.sum_dur_named("timing.phase", phase.label()),
                breakdown.get(phase).as_secs_f64(),
                "{phase:?} rollup must equal the aggregated breakdown"
            );
        }
        // Integer args reconcile too.
        let compute: u64 = report.layers.iter().map(|l| l.compute_cycles).sum();
        assert_eq!(tel.sum_u64_arg("timing.layer", "compute_cycles"), compute);
        // Layer names appear in execution order.
        let names = tel.span_names("timing.layer");
        assert_eq!(names.len(), report.layers.len());
        assert_eq!(names[0], report.layers[0].name);
    }

    #[test]
    fn tracing_below_spans_level_records_nothing() {
        let report = time_inference(&SystemConfig::xeon_e5_2697_v3(), &inception_v3());
        for tel in [Telemetry::disabled(), Telemetry::enabled(Level::Summary)] {
            trace_inference_report(&tel, &report);
            assert_eq!(tel.total_spans(), 0);
        }
    }
}
