//! Cycle-cost models for the deterministic timing simulator.
//!
//! Two implementations of [`CostModel`] are provided:
//!
//! - [`PaperCostModel`] uses the constants the paper publishes (236 cycles
//!   per 8-bit MAC, `n^2 + 5n - 2` multiplication, 132-cycle reduction
//!   steps derived from the `Conv2D_2b` worked example, `1.5n^2 + 5.5n`
//!   division). Figure/table regeneration uses this model.
//! - [`DerivedCostModel`] uses the micro-op sequence lengths of the
//!   `nc-sram` implementation; a test executes the real bit-serial ops and
//!   asserts the constants stay in sync. The difference between the two is
//!   quantified by the `cost_model_ablation` bench (DESIGN.md §6).

use std::fmt;

/// Bit width of activation/weight codes (the paper fixes 8-bit precision).
pub const DATA_BITS: usize = 8;

/// Bit width of the per-channel partial sum (Figure 10: 3 bytes).
pub const PARTIAL_BITS: usize = 24;

/// Bit width of reduction segments and outputs (Figure 10: 4 bytes).
pub const REDUCE_BITS: usize = 32;

/// Per-phase cycle costs of the Neural Cache execution model.
///
/// All costs are **per SIMD round**: one invocation operates on every lane
/// of every active array simultaneously, so the timing simulator multiplies
/// these by the number of serial rounds only.
pub trait CostModel: fmt::Debug + Send + Sync {
    /// Cycles of one 8-bit multiply-accumulate into the partial sum
    /// (one filter/input byte pair per lane).
    fn mac_cycles(&self) -> u64;

    /// Cycles of one multiplier-bit round of the bit-serial multiply (tag
    /// load + `n` predicated adds + carry commit = `n + 2` at `n = 8`).
    /// This is the unit of work the [`crate::sparsity`] round-skipping
    /// analysis and `SparsityMode::SkipZeroRows` execution elide.
    fn mul_round_cycles(&self) -> u64;

    /// Skip-aware MAC cost: the [`CostModel::mac_cycles`] of one 8-bit MAC
    /// with `skip_fraction` of its [`DATA_BITS`] multiplier-bit rounds
    /// elided. Elided rounds cost nothing — the multiplier rows are
    /// stationary filter bit-slices, so the control FSM knows the all-zero
    /// rows from filter-load time and never issues them.
    ///
    /// The result is saturated into `[0, mac_cycles()]`: a `skip_fraction`
    /// perturbed past 1.0 by float noise (or a cost model whose per-round
    /// cost overstates the MAC total) must never produce negative sparse
    /// cycles or a sparse cost above the dense one, which would flip
    /// speedups below 1 or divide by a negative downstream.
    fn mac_cycles_sparse(&self, skip_fraction: f64) -> f64 {
        let dense = self.mac_cycles() as f64;
        let saved =
            skip_fraction.clamp(0.0, 1.0) * DATA_BITS as f64 * self.mul_round_cycles() as f64;
        (dense - saved).clamp(0.0, dense)
    }

    /// Cycles of one tag-latch wired-NOR zero-detect probing a dynamic
    /// (input) multiplier bit-slice — the `nc-sram`
    /// `ComputeArray::op_detect_zero` micro-op. Charged once per scheduled
    /// round under the dynamic skip modes.
    fn detect_cycle(&self) -> u64 {
        1
    }

    /// Dynamic-skip MAC cost: one 8-bit MAC where the multiplier is the
    /// streamed **input** byte, every scheduled round pays
    /// [`CostModel::detect_cycle`] (the FSM cannot precompute activation
    /// zeros), `skip_fraction` of the rounds is elided by the detect, and
    /// executed rounds run only `live_bits` of the [`DATA_BITS`]
    /// multiplicand adds (static weight truncation under `SkipBoth`; pass
    /// `DATA_BITS as f64` when only inputs skip). Saturated into
    /// `(0, mac_cycles() + detect overhead]`.
    fn mac_cycles_dynamic(&self, skip_fraction: f64, live_bits: f64) -> f64 {
        let rounds = DATA_BITS as f64;
        let round = self.mul_round_cycles() as f64;
        let skip = skip_fraction.clamp(0.0, 1.0);
        let live = live_bits.clamp(0.0, rounds);
        // Per executed round: the tag-load/carry-commit overhead of a full
        // round minus the truncated adds.
        let exec_round = round - (rounds - live);
        let base = self.mac_cycles() as f64 - rounds * round;
        let detect = rounds * self.detect_cycle() as f64;
        // Saturate like mac_cycles_sparse: a cost model whose per-round
        // cost overstates the MAC total must not go negative.
        (base + detect + (1.0 - skip) * rounds * exec_round)
            .clamp(0.0, self.mac_cycles() as f64 + detect)
    }

    /// Cycles of one step of the in-array reduction tree over
    /// [`REDUCE_BITS`]-bit segments (lane move + add).
    fn reduction_step_cycles(&self) -> u64;

    /// One-time cycles to set up the reduction segments after the MACs
    /// (zero-extending partial sums into the 4-byte segments).
    fn reduction_setup_cycles(&self) -> u64;

    /// Extra cycles per reduction step that must cross an array boundary
    /// (`arrays_per_filter > 1`; pairs share sense amps, Section III-D).
    fn cross_array_step_cycles(&self) -> u64;

    /// Cycles of the requantization pipeline applied to one round's outputs
    /// (subtract min, ReLU-clamp, scalar multiply, shift, saturate).
    fn requant_cycles(&self) -> u64;

    /// Cycles of one pairwise 8-bit max/min (pooling and range search).
    fn max_cycles(&self) -> u64;

    /// Cycles of one 8-bit add into the average-pooling window sum.
    fn avg_add_cycles(&self) -> u64;

    /// Cycles of the average-pooling division (16-bit sum by a small
    /// divisor).
    fn avg_div_cycles(&self) -> u64;

    /// Cycles of one in-array min+max tree over a round's outputs (the
    /// dynamic-ranging step of quantization).
    fn minmax_tree_cycles(&self, lanes: usize) -> u64;

    /// Short human-readable model name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's published constants (Section III and the Section VI-A
/// `Conv2D_2b` worked example: 236 cycles/MAC, 660 reduction cycles for 32
/// channels => 132 per step).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PaperCostModel;

impl PaperCostModel {
    /// The paper's multiplication cost formula `n^2 + 5n - 2`.
    #[must_use]
    pub fn mul_cycles(n: u64) -> u64 {
        n * n + 5 * n - 2
    }

    /// The paper's division cost formula `1.5n^2 + 5.5n`.
    #[must_use]
    pub fn div_cycles(n: u64) -> u64 {
        u64::midpoint(3 * n * n, 11 * n)
    }

    /// The paper's addition cost `n + 1`.
    #[must_use]
    pub fn add_cycles(n: u64) -> u64 {
        n + 1
    }
}

impl CostModel for PaperCostModel {
    fn mac_cycles(&self) -> u64 {
        236 // Section VI-A worked example
    }

    fn mul_round_cycles(&self) -> u64 {
        // The Figure 6 algorithm spends n + 2 cycles per multiplier bit;
        // the remainder of n^2 + 5n - 2 (3n - 2) is round-independent
        // initialization.
        DATA_BITS as u64 + 2
    }

    fn reduction_step_cycles(&self) -> u64 {
        132 // 660 cycles for log2(32) = 5 steps
    }

    fn reduction_setup_cycles(&self) -> u64 {
        0 // folded into the per-step constant
    }

    fn cross_array_step_cycles(&self) -> u64 {
        // Arrays sharing sense amps move data at the sense-amp-cycling rate;
        // one extra move of a 4-byte segment.
        64
    }

    fn requant_cycles(&self) -> u64 {
        // Subtract + scalar multiply + shift on the 32-bit outputs, at the
        // paper's op costs: add(33) + mul-by-8-bit scalar (~8 shifted adds
        // of ~25) + write-back; calibrated against the ~5% quantization
        // share of Figure 14.
        260
    }

    fn max_cycles(&self) -> u64 {
        // Subtract (2n) + mask (2) + selective copy (n) at n = 8.
        26
    }

    fn avg_add_cycles(&self) -> u64 {
        PaperCostModel::add_cycles(16)
    }

    fn avg_div_cycles(&self) -> u64 {
        PaperCostModel::div_cycles(16)
    }

    fn minmax_tree_cycles(&self, lanes: usize) -> u64 {
        let steps = u64::from(lanes.next_power_of_two().trailing_zeros());
        // Initial copy (paper: outputs are first duplicated so min and max
        // reduce together) + per-step move & compare for both trees.
        66 + steps * 2 * self.reduction_step_cycles()
    }

    fn name(&self) -> &'static str {
        "paper"
    }
}

/// Costs derived from the `nc-sram` micro-op sequences (kept in sync by the
/// `derived_cost_model_matches_functional_ops` test).
///
/// The derived 8-bit MAC is cheaper than the paper's 236 cycles (the
/// Figure 4-7 micro-ops compose to ~136 including the zero-point-correction
/// running sum); the derived reduction is costlier per step because the S2
/// correction reduces alongside S1. See DESIGN.md §6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DerivedCostModel;

impl DerivedCostModel {
    /// Derived multiplication cost: `prod_bits + m*(n+2)` (see
    /// `ComputeArray::mul`), i.e. `n^2 + 4n` for equal widths.
    #[must_use]
    pub fn mul_cycles(n: u64, m: u64, prod_bits: u64) -> u64 {
        prod_bits + m * (n + 2)
    }
}

impl CostModel for DerivedCostModel {
    fn mac_cycles(&self) -> u64 {
        // mul(8x8 -> 16): 96, accumulate into 24-bit partial: 24,
        // S2 correction add into 16-bit: 16.
        96 + 24 + 16
    }

    fn mul_round_cycles(&self) -> u64 {
        // One `ComputeArray::mul` round: op_load_tag (1) + n op_full_add
        // (8) + op_write_carry (1); kept in sync with nc-sram by the
        // `derived_mul_round_matches_skip_accounting` test.
        DATA_BITS as u64 + 2
    }

    fn reduction_step_cycles(&self) -> u64 {
        // S1 tree step: move (2*32) + add (32) = 96, and the S2 tree runs
        // the same step.
        192
    }

    fn reduction_setup_cycles(&self) -> u64 {
        // Zero-extend S1 (24 -> 32) and S2 (16 -> 32) into segments.
        64
    }

    fn cross_array_step_cycles(&self) -> u64 {
        // Inter-array transfer of both 32-bit segments through shared sense
        // amps (one access cycle per row each way).
        128
    }

    fn requant_cycles(&self) -> u64 {
        // ACC assembly: mul_scalar(S2 * zp_w into 40b) ~ 40 + 8*40 = 360,
        // sub 40-bit (80), add C0 region (40);
        // requant: add_scalar (40) + relu (41) + mul_scalar 16-bit into
        // 56-bit (56 + 16*56 = 952) + clamp (2*16+2 = 34) + copy out (8).
        360 + 80 + 40 + 40 + 41 + 952 + 34 + 8
    }

    fn max_cycles(&self) -> u64 {
        3 * 8 + 2 // max_assign at n = 8
    }

    fn avg_add_cycles(&self) -> u64 {
        16 // add_assign into the 16-bit window sum
    }

    fn avg_div_cycles(&self) -> u64 {
        // div_scalar on a 16-bit sum by a 4-bit divisor (paper: Inception's
        // divisors fit 4 bits), remainder width w = 5:
        // zero(w) + 16 * (shift w + trial w + writeC + loadT + copy w).
        5 + 16 * (3 * 5 + 2)
    }

    fn minmax_tree_cycles(&self, lanes: usize) -> u64 {
        let steps = u64::from(lanes.next_power_of_two().trailing_zeros());
        // Duplicate outputs (2*32 move), then per step: move (64) + 32-bit
        // max (3*32+2 = 98) for each of the min and max trees.
        64 + steps * 2 * (64 + 98)
    }

    fn name(&self) -> &'static str {
        "derived"
    }
}

/// Selector between the two cost models (part of the system configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModelKind {
    /// Paper-published constants (used for figure regeneration).
    #[default]
    Paper,
    /// Constants derived from the `nc-sram` micro-op implementation.
    Derived,
}

impl CostModelKind {
    /// Materializes the model.
    #[must_use]
    pub fn model(&self) -> &'static dyn CostModel {
        match self {
            CostModelKind::Paper => &PaperCostModel,
            CostModelKind::Derived => &DerivedCostModel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formulas() {
        assert_eq!(PaperCostModel::add_cycles(8), 9);
        assert_eq!(PaperCostModel::mul_cycles(8), 102);
        assert_eq!(PaperCostModel::mul_cycles(2), 12, "Figure 6 walkthrough");
        assert_eq!(PaperCostModel::div_cycles(8), 140);
    }

    #[test]
    fn paper_worked_example_conv2d_2b() {
        // Section VI-A: 9 MACs * 236 + 660 reduction = 2784 cycles per
        // convolution at C = 32.
        let m = PaperCostModel;
        let per_conv =
            9 * m.mac_cycles() + m.reduction_setup_cycles() + 5 * m.reduction_step_cycles();
        assert_eq!(per_conv, 2784);
    }

    #[test]
    fn derived_model_is_cheaper_per_mac_but_costlier_per_reduction() {
        let p = PaperCostModel;
        let d = DerivedCostModel;
        assert!(d.mac_cycles() < p.mac_cycles());
        assert!(d.reduction_step_cycles() > p.reduction_step_cycles());
    }

    #[test]
    fn kind_selects_model() {
        assert_eq!(CostModelKind::Paper.model().name(), "paper");
        assert_eq!(CostModelKind::Derived.model().name(), "derived");
        assert_eq!(CostModelKind::default(), CostModelKind::Paper);
    }

    #[test]
    fn sparse_mac_cost_interpolates_between_full_and_skipless() {
        for model in [&PaperCostModel as &dyn CostModel, &DerivedCostModel] {
            let dense = model.mac_cycles() as f64;
            assert!((model.mac_cycles_sparse(0.0) - dense).abs() < 1e-9);
            let full_skip = model.mac_cycles_sparse(1.0);
            let expected = dense - (DATA_BITS as u64 * model.mul_round_cycles()) as f64;
            assert!((full_skip - expected).abs() < 1e-9, "{}", model.name());
            assert!(full_skip > 0.0, "non-round costs remain");
            let half = model.mac_cycles_sparse(0.5);
            assert!(full_skip < half && half < dense);
        }
    }

    #[test]
    fn sparse_mac_cost_saturates_at_the_boundaries() {
        // Regression: skip fractions perturbed past [0, 1] by float noise
        // (or an adversarial cost model) must never yield sparse cycles
        // that are negative or above the dense total.
        for model in [&PaperCostModel as &dyn CostModel, &DerivedCostModel] {
            let dense = model.mac_cycles() as f64;
            assert_eq!(
                model.mac_cycles_sparse(1.0 + 1e-9),
                model.mac_cycles_sparse(1.0)
            );
            assert_eq!(
                model.mac_cycles_sparse(-0.25),
                dense,
                "negative skip clamps to dense"
            );
            assert_eq!(model.mac_cycles_sparse(5.0), model.mac_cycles_sparse(1.0));
            assert!(model.mac_cycles_sparse(1.0) >= 0.0);
            assert!(model.mac_cycles_sparse(0.999) <= dense);
        }
        // A degenerate model whose round cost exceeds the MAC total still
        // saturates at zero instead of going negative.
        #[derive(Debug)]
        struct Degenerate;
        impl CostModel for Degenerate {
            fn mac_cycles(&self) -> u64 {
                10
            }
            fn mul_round_cycles(&self) -> u64 {
                10 // 8 rounds * 10 = 80 "saved" >> 10 dense
            }
            fn reduction_step_cycles(&self) -> u64 {
                1
            }
            fn reduction_setup_cycles(&self) -> u64 {
                0
            }
            fn cross_array_step_cycles(&self) -> u64 {
                0
            }
            fn requant_cycles(&self) -> u64 {
                1
            }
            fn max_cycles(&self) -> u64 {
                1
            }
            fn avg_add_cycles(&self) -> u64 {
                1
            }
            fn avg_div_cycles(&self) -> u64 {
                1
            }
            fn minmax_tree_cycles(&self, _lanes: usize) -> u64 {
                1
            }
            fn name(&self) -> &'static str {
                "degenerate"
            }
        }
        assert_eq!(
            Degenerate.mac_cycles_sparse(1.0),
            0.0,
            "saturated, not negative"
        );
        assert_eq!(Degenerate.mac_cycles_sparse(0.0), 10.0);
        // The dynamic variant saturates the same way.
        assert_eq!(Degenerate.mac_cycles_dynamic(1.0, 8.0), 0.0);
        assert!(Degenerate.mac_cycles_dynamic(0.0, 8.0) <= 10.0 + 8.0);
        assert!(Degenerate.mac_cycles_dynamic(0.5, 2.0) >= 0.0);
    }

    #[test]
    fn dynamic_mac_cost_charges_detect_and_interpolates() {
        for model in [&PaperCostModel as &dyn CostModel, &DerivedCostModel] {
            let dense = model.mac_cycles() as f64;
            let rounds = DATA_BITS as f64;
            // No skips, full-width weights: dense cost plus one detect per
            // round — dynamic detection on dense activations is pure
            // overhead (the break-even evidence).
            let no_skip = model.mac_cycles_dynamic(0.0, rounds);
            assert!(
                (no_skip - (dense + rounds)).abs() < 1e-9,
                "{}: {no_skip} vs {dense} + detects",
                model.name()
            );
            // Full skip: only the non-round base plus the detects remain.
            let full = model.mac_cycles_dynamic(1.0, rounds);
            let base = dense - rounds * model.mul_round_cycles() as f64;
            assert!((full - (base + rounds)).abs() < 1e-9);
            assert!(full > 0.0, "non-round costs and detects remain");
            // Monotone in skip, and truncation shaves executed rounds.
            let half = model.mac_cycles_dynamic(0.5, rounds);
            assert!(full < half && half < no_skip);
            let truncated = model.mac_cycles_dynamic(0.5, 2.0);
            assert!(truncated < half, "live_bits < 8 must be cheaper");
            // Break-even: skipping 1/(n+2) of rounds repays the detects.
            let break_even = 1.0 / model.mul_round_cycles() as f64;
            let at_even = model.mac_cycles_dynamic(break_even, rounds);
            assert!((at_even - dense).abs() < 1e-9, "{}", model.name());
            // Out-of-range inputs clamp instead of exploding.
            assert_eq!(
                model.mac_cycles_dynamic(7.0, 99.0),
                model.mac_cycles_dynamic(1.0, rounds)
            );
        }
    }

    #[test]
    fn minmax_tree_grows_logarithmically() {
        let p = PaperCostModel;
        let t64 = p.minmax_tree_cycles(64);
        let t128 = p.minmax_tree_cycles(128);
        assert_eq!(t128 - t64, 2 * p.reduction_step_cycles());
    }
}
