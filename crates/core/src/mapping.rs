//! The data-layout planner (Section IV-A/IV-B): filter packing and
//! splitting, channel round-up, array allocation, and the serial-round
//! schedule of every layer.
//!
//! The planner answers, for each convolution or pooling sub-layer: how many
//! bit lines one filter occupies, how many filters fit in one 8KB array,
//! how many filter instances the whole cache computes in parallel, and how
//! many serial rounds the sub-layer therefore needs. The paper's worked
//! example (`Conv2D_2b`: ~32K parallel convolutions, 43 serial rounds, 99.7%
//! utilization) is reproduced by tests.

use nc_dnn::{Conv2d, ConvSpec, Layer, Model, PoolKind, Shape};
use nc_geometry::CacheGeometry;
use nc_sram::{COLS, ROWS};

use crate::cost::{DATA_BITS, PARTIAL_BITS, REDUCE_BITS};
use crate::sparsity::SparsityMode;

/// Filter-window bytes above which filters are split across bit lines
/// (Section IV-A: "filters are split across bitlines when their size
/// exceeds 9 bytes").
pub const SPLIT_THRESHOLD: usize = 9;

/// Channels packed per bit line for 1x1 filters (Section IV-A: "we can
/// instead put 16 bytes of the filter").
pub const PACK_FACTOR: usize = 16;

/// Largest input-window bytes buffered per bit line; larger windows (the
/// global 8x8 average pool) stream in chunks.
pub const MAX_INPUT_BYTES_PER_LANE: usize = 16;

/// The Section IV-A lane layout of one convolution sub-layer: how filter
/// bytes are packed/split onto bit lines and how filters group within one
/// 8KB array. This is the **single source of truth** shared by the planner,
/// the functional executor, and the sparsity analysis — skip fractions are
/// computed on exactly the packing the executor realizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneGeometry {
    /// Channels packed per bit line (1 unless a 1x1 layer).
    pub packing: usize,
    /// Filter split factor (1 unless `R*S > 9`).
    pub split: usize,
    /// Filter bytes per bit line after packing/splitting (`R'*S'`).
    pub eff_window: usize,
    /// Effective channels before power-of-two round-up (`C'`).
    pub eff_channels: usize,
    /// Bit lines per filter: effective channels rounded to a power of two.
    pub lanes_per_filter: usize,
    /// Lanes one filter occupies within a single array.
    pub group_span: usize,
    /// Arrays one filter spans (1 or 2 in Inception v3).
    pub arrays_per_filter: usize,
    /// Filter instances per 8KB array (0 when a filter spans arrays).
    pub filters_per_array: usize,
}

impl LaneGeometry {
    /// Filter groups co-resident in one array during a MAC pass, given the
    /// sub-layer's `m` output channels (the executor packs at most this
    /// many filters side by side; filters spanning arrays run alone).
    #[must_use]
    pub fn groups_per_array(&self, m: usize) -> usize {
        if self.arrays_per_filter == 1 {
            (COLS / self.lanes_per_filter).min(m).max(1)
        } else {
            1
        }
    }
}

/// Computes the lane layout of a convolution spec (packing for 1x1 layers,
/// splitting for windows above [`SPLIT_THRESHOLD`], power-of-two channel
/// round-up, array spanning).
#[must_use]
pub fn conv_lane_geometry(spec: &ConvSpec) -> LaneGeometry {
    let window = spec.window();
    let c = spec.c;
    let (packing, split) = if window == 1 {
        (PACK_FACTOR.min(c), 1)
    } else if window > SPLIT_THRESHOLD {
        (1, window.div_ceil(SPLIT_THRESHOLD))
    } else {
        (1, 1)
    };
    let eff_window = if packing > 1 {
        packing
    } else {
        window.div_ceil(split)
    };
    let eff_channels = if packing > 1 {
        c.div_ceil(packing)
    } else {
        c * split
    };
    let lanes_per_filter = eff_channels.next_power_of_two();
    let (arrays_per_filter, filters_per_array) = if lanes_per_filter <= COLS {
        (1, COLS / lanes_per_filter)
    } else {
        (lanes_per_filter.div_ceil(COLS), 0)
    };
    LaneGeometry {
        packing,
        split,
        eff_window,
        eff_channels,
        lanes_per_filter,
        group_span: lanes_per_filter.min(COLS),
        arrays_per_filter,
        filters_per_array,
    }
}

/// Chunks filter `m`'s bytes into per-lane byte vectors of `eff_window`
/// bytes under `geom`'s layout (packing compresses channels; splitting
/// spreads large windows). This is the exact byte placement the functional
/// executor streams tap-by-tap.
///
/// # Panics
///
/// Panics if the layer is shape-only.
#[must_use]
pub fn chunk_filter(conv: &Conv2d, m: usize, geom: &LaneGeometry) -> Vec<Vec<u8>> {
    let spec = &conv.spec;
    let mut per_channel: Vec<Vec<u8>> = vec![Vec::with_capacity(spec.window()); spec.c];
    for r in 0..spec.r {
        for s in 0..spec.s {
            for (c, bytes) in per_channel.iter_mut().enumerate() {
                bytes.push(conv.weight(m, r, s, c));
            }
        }
    }
    chunk_channel_major(&per_channel, geom)
}

/// Regroups an `(r, s, c)`-ordered input window into per-lane chunks
/// matching [`chunk_filter`].
#[must_use]
pub fn chunk_window_bytes(window: &[u8], channels: usize, geom: &LaneGeometry) -> Vec<Vec<u8>> {
    let taps = window.len() / channels;
    let mut per_channel: Vec<Vec<u8>> = vec![Vec::with_capacity(taps); channels];
    for (i, &b) in window.iter().enumerate() {
        per_channel[i % channels].push(b);
    }
    chunk_channel_major(&per_channel, geom)
}

/// The shared chunking rule: packing places `packing` consecutive channels'
/// single bytes on one lane; splitting spreads one channel's window across
/// `split` lanes of `eff_window` bytes (zero-padded).
fn chunk_channel_major(per_channel: &[Vec<u8>], geom: &LaneGeometry) -> Vec<Vec<u8>> {
    let mut lanes = Vec::new();
    if geom.packing > 1 {
        for group in per_channel.chunks(geom.packing) {
            let mut lane = Vec::with_capacity(geom.eff_window);
            for ch in group {
                lane.push(ch[0]);
            }
            lane.resize(geom.eff_window, 0);
            lanes.push(lane);
        }
    } else {
        for ch in per_channel {
            for piece in 0..geom.split {
                let mut lane: Vec<u8> = ch
                    .iter()
                    .copied()
                    .skip(piece * geom.eff_window)
                    .take(geom.eff_window)
                    .collect();
                lane.resize(geom.eff_window, 0);
                lanes.push(lane);
            }
        }
    }
    lanes
}

/// Word-line budget of one lane under the Figure 10 layout, extended with
/// the zero-point-correction running sum (`S2`) this reproduction carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowBudget {
    /// Stationary filter rows (`R'*S' * 8`).
    pub filter: usize,
    /// Streamed input rows.
    pub input: usize,
    /// Partial-sum rows (3 bytes, Figure 10a).
    pub partial: usize,
    /// Scratch-pad rows (2 bytes, Figure 10a).
    pub scratch: usize,
    /// Zero-point-correction sum rows (2 bytes; DESIGN.md §4).
    pub s2: usize,
    /// Output rows (4 bytes, Figure 10a).
    pub output: usize,
    /// Dedicated all-zero row + comparison dump row.
    pub control: usize,
}

impl RowBudget {
    /// Total rows claimed.
    #[must_use]
    pub fn total(&self) -> usize {
        self.filter
            + self.input
            + self.partial
            + self.scratch
            + self.s2
            + self.output
            + self.control
    }

    /// Whether the layout fits the 256 word lines.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.total() <= ROWS
    }
}

/// Mapping decisions and schedule of one convolution sub-layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvMapping {
    /// Sub-layer name.
    pub name: String,
    /// Input tensor shape.
    pub in_shape: Shape,
    /// Output tensor shape.
    pub out_shape: Shape,
    /// Original filter window `R*S` in bytes.
    pub window: usize,
    /// Stride `U`.
    pub stride: usize,
    /// Filter bytes per bit line after packing/splitting (`R'*S'`).
    pub eff_window: usize,
    /// Channels packed per bit line (1 unless a 1x1 layer).
    pub packing: usize,
    /// Filter split factor (1 unless `R*S > 9`).
    pub split: usize,
    /// Effective channels before power-of-two round-up (`C'`).
    pub eff_channels: usize,
    /// Bit lines per filter: effective channels rounded to a power of two.
    pub lanes_per_filter: usize,
    /// Arrays one filter spans (1 or 2 in Inception v3).
    pub arrays_per_filter: usize,
    /// Filter instances per 8KB array (when a filter fits one array).
    pub filters_per_array: usize,
    /// Filter instances the whole cache computes per round.
    pub parallel_instances: usize,
    /// Serial rounds (`ceil(total_convs / parallel_instances)`).
    pub rounds: usize,
    /// Total convolutions (`E_h * E_w * M`).
    pub total_convs: usize,
    /// In-array reduction steps (`log2(min(lanes_per_filter, 256))`).
    pub reduce_steps: u32,
    /// Reduction steps that cross array boundaries.
    pub cross_array_steps: u32,
    /// Fraction of each input window that must be freshly streamed per
    /// round (stride reuse, Section IV-A).
    pub fresh_input_fraction: f64,
    /// Fraction of multiplier-bit rounds elided under
    /// [`SparsityMode::SkipZeroRows`], computed from the sub-layer's real
    /// weights on this mapping's lane packing (0 when planning densely or
    /// without weights). This is the per-bank-FSM (mean over arrays)
    /// variant the executors realize.
    pub simd_skip_fraction: f64,
    /// Skip fraction under lockstep banks (all banks share one FSM): a
    /// round is elidable only when zero across **every** array, so the MAC
    /// phase is the max over arrays. Always `<= simd_skip_fraction`; 0 when
    /// planning densely or without weights.
    pub lockstep_skip_fraction: f64,
    /// Whether this plan executes under a dynamic sparsity mode
    /// ([`SparsityMode::SkipZeroInputs`] / [`SparsityMode::SkipBoth`]):
    /// the input byte is the multiplier, every scheduled round pays the
    /// 1-cycle wired-NOR zero-detect, and the MAC phase shrinks by
    /// `input_skip_fraction` (which the planner cannot know — see below).
    pub dynamic_detect: bool,
    /// Fraction of multiplier-bit rounds the dynamic input-bit detect
    /// elides. Activations are not stationary, so this is **0 at plan
    /// time**; [`crate::sparsity::ActivationProfile::apply_to_plans`]
    /// fills it with the value measured on an actual input.
    pub input_skip_fraction: f64,
    /// Mean live multiplicand width of executed rounds under
    /// [`SparsityMode::SkipBoth`] (static weight truncation;
    /// [`crate::sparsity::conv_live_mult_bits`] on this packing).
    /// `DATA_BITS` when weights are full-width, absent, or the mode is not
    /// `SkipBoth`.
    pub live_mult_bits: f64,
    /// Word-line budget of one lane.
    pub rows: RowBudget,
}

impl ConvMapping {
    /// Compute-array utilization during convolution rounds (the paper
    /// reports 99.7% for `Conv2D_2b`).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.total_convs as f64 / (self.rounds as f64 * self.parallel_instances as f64)
    }

    /// Output pixels computed in parallel per round (instances / M).
    #[must_use]
    pub fn pixels_per_round(&self) -> usize {
        (self.parallel_instances / self.out_shape.c).max(1)
    }

    /// Input bytes one output pixel consumes (`R*S*C` of the original
    /// geometry — packing/splitting rearrange but do not change volume).
    #[must_use]
    pub fn input_bytes_per_pixel(&self) -> usize {
        self.window * self.in_shape.c
    }

    /// Fraction of an active array's bit lines holding live operands
    /// (power-of-two round-up and partial filter packing leave the rest
    /// idle); scales bit-line switching energy.
    #[must_use]
    pub fn lane_occupancy(&self) -> f64 {
        let busy = if self.arrays_per_filter == 1 {
            self.filters_per_array * self.eff_channels
        } else {
            self.eff_channels.div_ceil(self.arrays_per_filter)
        };
        (busy as f64 / nc_sram::COLS as f64).min(1.0)
    }

    /// Arrays active per round across the cache.
    #[must_use]
    pub fn active_arrays(&self) -> usize {
        if self.arrays_per_filter == 1 {
            self.parallel_instances.div_ceil(self.filters_per_array)
        } else {
            self.parallel_instances * self.arrays_per_filter
        }
    }
}

/// Mapping of a pooling sub-layer: window elements live along the bit line,
/// one output element per lane (Section IV-D: pooling maps like
/// convolution, without filters).
#[derive(Debug, Clone, PartialEq)]
pub struct PoolMapping {
    /// Sub-layer name.
    pub name: String,
    /// Pooling flavor.
    pub kind: PoolKind,
    /// Input tensor shape.
    pub in_shape: Shape,
    /// Output tensor shape.
    pub out_shape: Shape,
    /// Window elements per output (`k*k`).
    pub window: usize,
    /// Stride.
    pub stride: usize,
    /// Serial rounds.
    pub rounds: usize,
    /// Outputs per round across the cache (one per compute lane).
    pub parallel_outputs: usize,
    /// Total outputs (`E_h * E_w * C`).
    pub total_outputs: usize,
    /// Fresh-input fraction per round.
    pub fresh_input_fraction: f64,
}

/// One schedulable unit: a convolution or pooling sub-layer.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitPlan {
    /// Convolution sub-layer mapping.
    Conv(ConvMapping),
    /// Pooling sub-layer mapping.
    Pool(PoolMapping),
}

impl UnitPlan {
    /// Unit name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            UnitPlan::Conv(c) => &c.name,
            UnitPlan::Pool(p) => &p.name,
        }
    }

    /// Output tensor shape.
    #[must_use]
    pub fn out_shape(&self) -> Shape {
        match self {
            UnitPlan::Conv(c) => c.out_shape,
            UnitPlan::Pool(p) => p.out_shape,
        }
    }
}

/// Schedule of one top-level layer: its sub-layer units, executed serially
/// (branches within a layer are serial, Section IV).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPlan {
    /// Layer name (Table I row).
    pub name: String,
    /// Sub-layer units in execution order.
    pub units: Vec<UnitPlan>,
    /// Filter bytes loaded from DRAM for this layer (all sub-layers).
    pub filter_bytes: usize,
    /// Layer output bytes (the tensor passed to the next layer).
    pub output_bytes: usize,
}

/// Plans a whole model against a cache geometry.
///
/// # Panics
///
/// Panics if any sub-layer cannot be mapped (row budget violation), which
/// cannot happen for 8-bit layers within the supported shapes.
#[must_use]
pub fn plan_model(model: &Model, geometry: &CacheGeometry) -> Vec<LayerPlan> {
    plan_model_with(model, geometry, SparsityMode::Dense)
}

/// Plans a whole model under an explicit [`SparsityMode`]: under
/// [`SparsityMode::SkipZeroRows`], every weighted convolution mapping
/// carries the skip fraction measured on its actual lane packing.
///
/// # Panics
///
/// Panics if any sub-layer cannot be mapped (row budget violation).
#[must_use]
pub fn plan_model_with(
    model: &Model,
    geometry: &CacheGeometry,
    mode: SparsityMode,
) -> Vec<LayerPlan> {
    model
        .layers
        .iter()
        .zip(model.layer_inputs())
        .map(|(layer, input)| plan_layer_with(layer, input, geometry, mode))
        .collect()
}

/// Plans one top-level layer (densely).
#[must_use]
pub fn plan_layer(layer: &Layer, input: Shape, geometry: &CacheGeometry) -> LayerPlan {
    plan_layer_with(layer, input, geometry, SparsityMode::Dense)
}

/// Plans one top-level layer under an explicit [`SparsityMode`].
#[must_use]
pub fn plan_layer_with(
    layer: &Layer,
    input: Shape,
    geometry: &CacheGeometry,
    mode: SparsityMode,
) -> LayerPlan {
    let mut units = Vec::new();
    let mut filter_bytes = 0;
    match layer {
        Layer::Conv(conv) => {
            filter_bytes += conv.spec.weight_len();
            units.push(UnitPlan::Conv(plan_conv_unit(
                conv,
                input,
                conv.spec.out_shape(input),
                geometry,
                mode,
            )));
        }
        Layer::Pool(pool) => {
            units.push(UnitPlan::Pool(plan_pool_unit(
                &pool.name,
                pool.kind,
                pool.k,
                pool.stride,
                input,
                pool.out_shape(input),
                geometry,
            )));
        }
        Layer::Mixed(block) => {
            for branch in &block.branches {
                let mut cur = input;
                for op in &branch.ops {
                    match op {
                        nc_dnn::BranchOp::Conv(conv) => {
                            filter_bytes += conv.spec.weight_len();
                            let out = conv.spec.out_shape(cur);
                            units.push(UnitPlan::Conv(plan_conv_unit(
                                conv, cur, out, geometry, mode,
                            )));
                            cur = out;
                        }
                        nc_dnn::BranchOp::Pool(pool) => {
                            let out = pool.out_shape(cur);
                            units.push(UnitPlan::Pool(plan_pool_unit(
                                &pool.name,
                                pool.kind,
                                pool.k,
                                pool.stride,
                                cur,
                                out,
                                geometry,
                            )));
                            cur = out;
                        }
                        nc_dnn::BranchOp::Split(convs) => {
                            for conv in convs {
                                filter_bytes += conv.spec.weight_len();
                                units.push(UnitPlan::Conv(plan_conv_unit(
                                    conv,
                                    cur,
                                    conv.spec.out_shape(cur),
                                    geometry,
                                    mode,
                                )));
                            }
                        }
                    }
                }
            }
        }
    }
    let out_shape = layer.out_shape(input);
    LayerPlan {
        name: layer.name().to_owned(),
        units,
        filter_bytes,
        output_bytes: out_shape.bytes(),
    }
}

fn plan_conv_unit(
    conv: &Conv2d,
    in_shape: Shape,
    out_shape: Shape,
    geometry: &CacheGeometry,
    mode: SparsityMode,
) -> ConvMapping {
    let spec = &conv.spec;
    let (name, m, stride) = (&spec.name, spec.m, spec.stride);
    let window = spec.window();
    let geom = conv_lane_geometry(spec);

    let compute_arrays = geometry.compute_arrays();
    let parallel_instances = if geom.arrays_per_filter == 1 {
        compute_arrays * geom.filters_per_array
    } else {
        (compute_arrays / geom.arrays_per_filter).max(1)
    };

    let total_convs = out_shape.h * out_shape.w * m;
    let rounds = total_convs.div_ceil(parallel_instances).max(1);

    let reduce_steps = geom.group_span.trailing_zeros();
    let cross_array_steps = geom.arrays_per_filter.trailing_zeros();

    // Packed 1x1 layers have no input reuse and stream one input byte at a
    // time (Section IV-A), so their lanes buffer a single byte.
    let input_lane_bytes = if geom.packing > 1 {
        1
    } else {
        geom.eff_window.min(MAX_INPUT_BYTES_PER_LANE)
    };
    let rows = RowBudget {
        filter: geom.eff_window * DATA_BITS,
        input: input_lane_bytes * DATA_BITS,
        partial: PARTIAL_BITS,
        scratch: 2 * DATA_BITS,
        s2: 2 * DATA_BITS,
        output: REDUCE_BITS,
        control: 2,
    };
    assert!(
        rows.fits(),
        "{name}: row budget {} exceeds {} word lines",
        rows.total(),
        ROWS
    );

    // Weight-sparsity round elision: both hardware variants measured on
    // this exact lane packing (per-bank mean, lockstep max-over-arrays).
    let (simd_skip_fraction, lockstep_skip_fraction) = match mode {
        SparsityMode::SkipZeroRows if conv.weights.is_some() => {
            let v = crate::sparsity::conv_skip_variants(conv);
            (v.mean, v.lockstep)
        }
        SparsityMode::Dense
        | SparsityMode::SkipZeroRows
        | SparsityMode::SkipZeroInputs
        | SparsityMode::SkipBoth => (0.0, 0.0),
    };
    // Dynamic input-bit elision: the skip fraction itself is per-input
    // (filled by ActivationProfile::apply_to_plans); the weight-side
    // truncation width of SkipBoth is static and measured here.
    let dynamic_detect = mode.dynamic_detect();
    let live_mult_bits = match mode {
        SparsityMode::SkipBoth if conv.weights.is_some() => {
            crate::sparsity::conv_live_mult_bits(conv)
        }
        SparsityMode::Dense
        | SparsityMode::SkipZeroRows
        | SparsityMode::SkipZeroInputs
        | SparsityMode::SkipBoth => DATA_BITS as f64,
    };

    ConvMapping {
        name: name.clone(),
        in_shape,
        out_shape,
        window,
        stride,
        eff_window: geom.eff_window,
        packing: geom.packing,
        split: geom.split,
        eff_channels: geom.eff_channels,
        lanes_per_filter: geom.lanes_per_filter,
        arrays_per_filter: geom.arrays_per_filter,
        filters_per_array: geom.filters_per_array,
        parallel_instances,
        rounds,
        total_convs,
        reduce_steps,
        cross_array_steps,
        fresh_input_fraction: fresh_fraction(spec.r, stride),
        simd_skip_fraction,
        lockstep_skip_fraction,
        dynamic_detect,
        input_skip_fraction: 0.0,
        live_mult_bits,
        rows,
    }
}

fn plan_pool_unit(
    name: &str,
    kind: PoolKind,
    k: usize,
    stride: usize,
    in_shape: Shape,
    out_shape: Shape,
    geometry: &CacheGeometry,
) -> PoolMapping {
    let total_outputs = out_shape.len();
    let parallel_outputs = geometry.compute_lanes();
    PoolMapping {
        name: name.to_owned(),
        kind,
        in_shape,
        out_shape,
        window: k * k,
        stride,
        rounds: total_outputs.div_ceil(parallel_outputs).max(1),
        parallel_outputs,
        total_outputs,
        fresh_input_fraction: fresh_fraction(k, stride),
    }
}

/// Fraction of the window that must be freshly streamed when the window
/// slides by `stride` (Section IV-A: a 3x3 stride-1 window reuses 6 of 9
/// bytes).
fn fresh_fraction(window_rows: usize, stride: usize) -> f64 {
    if stride >= window_rows {
        1.0
    } else {
        stride as f64 / window_rows as f64
    }
}

/// Per-sublayer operand bit allocation: the widths the bit-serial schedule
/// spends cycles on. [`BitBudget::default_for`] is the fixed Figure 10
/// provisioning every plan ships (8-bit multiplicand, 24-bit lane partial,
/// 32-bit reduction segments); the bit-budget advisor shrinks each width to
/// what a value-range certificate proves sufficient, because every trimmed
/// bit is a skipped compute cycle per serial MAC or reduction step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitBudget {
    /// Sub-layer name this budget applies to.
    pub name: String,
    /// Live multiplicand (weight) width in bits.
    pub mult_bits: u32,
    /// Per-lane partial-sum width in bits.
    pub partial_bits: u32,
    /// Reduction-tree running-sum width in bits (shared by `S1`/`S2`).
    pub reduce_bits: u32,
}

impl BitBudget {
    /// The default (untrimmed) Figure 10 allocation.
    #[must_use]
    pub fn default_for(name: impl Into<String>) -> Self {
        BitBudget {
            name: name.into(),
            mult_bits: DATA_BITS as u32,
            partial_bits: PARTIAL_BITS as u32,
            reduce_bits: REDUCE_BITS as u32,
        }
    }

    /// Whether the budget equals the default allocation (nothing trimmed).
    #[must_use]
    pub fn is_default(&self) -> bool {
        self.mult_bits == DATA_BITS as u32
            && self.partial_bits == PARTIAL_BITS as u32
            && self.reduce_bits == REDUCE_BITS as u32
    }

    /// Total operand bits trimmed relative to the default allocation.
    #[must_use]
    pub fn trimmed_bits(&self) -> u64 {
        u64::from((DATA_BITS as u32).saturating_sub(self.mult_bits))
            + u64::from((PARTIAL_BITS as u32).saturating_sub(self.partial_bits))
            + u64::from((REDUCE_BITS as u32).saturating_sub(self.reduce_bits))
    }
}

/// Proven per-sublayer magnitude bounds the advisor consumes. Produced by
/// `nc-verify`'s value-range abstract interpretation; kept as plain numbers
/// here so the planner stays free of a verifier dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvenBounds {
    /// Largest per-lane partial sum any lane grouping can accumulate.
    pub partial_max: u64,
    /// Largest `S1` reduction-tree running sum.
    pub s1_max: u64,
    /// Largest `S2` reduction-tree running sum.
    pub s2_max: u64,
    /// Bit-length of the largest live weight code.
    pub weight_bits: u32,
}

/// Minimum bits representing `v` as an unsigned value (1 for `v == 0`).
#[must_use]
pub fn bits_for_unsigned(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

/// Derives the trimmed bit budget a value-range certificate justifies:
/// each width shrinks to exactly the proven need, clamped to the default
/// allocation — a bound *past* a default is an overflow hazard the verifier
/// reports (V021/V026/V027), not something wider provisioning here could
/// hide.
#[must_use]
pub fn advise_bit_budget(name: &str, bounds: &ProvenBounds) -> BitBudget {
    BitBudget {
        name: name.to_owned(),
        mult_bits: bounds.weight_bits.clamp(1, DATA_BITS as u32),
        partial_bits: bits_for_unsigned(bounds.partial_max).min(PARTIAL_BITS as u32),
        reduce_bits: bits_for_unsigned(bounds.s1_max.max(bounds.s2_max)).min(REDUCE_BITS as u32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dnn::inception::inception_v3;

    fn xeon() -> CacheGeometry {
        CacheGeometry::xeon_e5_2697_v3()
    }

    fn find_conv<'p>(plans: &'p [LayerPlan], name: &str) -> &'p ConvMapping {
        plans
            .iter()
            .flat_map(|p| &p.units)
            .find_map(|u| match u {
                UnitPlan::Conv(c) if c.name == name => Some(c),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no conv unit named {name}"))
    }

    #[test]
    fn bits_for_unsigned_edges() {
        assert_eq!(bits_for_unsigned(0), 1);
        assert_eq!(bits_for_unsigned(1), 1);
        assert_eq!(bits_for_unsigned(2), 2);
        assert_eq!(bits_for_unsigned(255), 8);
        assert_eq!(bits_for_unsigned(256), 9);
        assert_eq!(bits_for_unsigned(u64::MAX), 64);
    }

    #[test]
    fn bit_budget_advisor_trims_to_proven_need() {
        let bounds = ProvenBounds {
            partial_max: 1000,
            s1_max: 50_000,
            s2_max: 522_240,
            weight_bits: 5,
        };
        let advised = advise_bit_budget("t", &bounds);
        assert_eq!(advised.mult_bits, 5);
        assert_eq!(advised.partial_bits, 10);
        assert_eq!(
            advised.reduce_bits, 19,
            "max(S1, S2) = 522240 needs 19 bits"
        );
        assert!(!advised.is_default());
        assert_eq!(advised.trimmed_bits(), 3 + 14 + 13);
    }

    #[test]
    fn bit_budget_advisor_never_widens_past_defaults() {
        // Bounds past the default allocation clamp to it: the width
        // deficit is a hazard the verifier reports (V021/V027), not
        // something the advisor can provision away.
        let bounds = ProvenBounds {
            partial_max: u64::MAX,
            s1_max: u64::MAX,
            s2_max: 0,
            weight_bits: 12,
        };
        let advised = advise_bit_budget("t", &bounds);
        assert!(advised.is_default());
        assert_eq!(advised.trimmed_bits(), 0);
        assert_eq!(advised, BitBudget::default_for("t"));
    }

    #[test]
    fn paper_worked_example_conv2d_2b() {
        // Section VI-A: Conv2D_2b computes ~1.4M convolutions, ~32K in
        // parallel, 43 serial rounds, 99.7% utilization.
        let plans = plan_model(&inception_v3(), &xeon());
        let c = find_conv(&plans, "Conv2d_2b_3x3");
        assert_eq!(c.total_convs, 1_382_976);
        assert_eq!(c.lanes_per_filter, 32);
        assert_eq!(c.filters_per_array, 8);
        assert_eq!(c.parallel_instances, 32_256, "~32K parallel convolutions");
        assert_eq!(c.rounds, 43, "43 convolutions in series");
        assert!((c.utilization() - 0.997).abs() < 0.001, "99.7% utilization");
        assert_eq!(c.reduce_steps, 5);
        assert_eq!(c.cross_array_steps, 0);
    }

    #[test]
    fn one_by_one_filters_pack_sixteen_channels() {
        let plans = plan_model(&inception_v3(), &xeon());
        // Mixed_7c b0: 1x1 over 2048 channels.
        let c = find_conv(&plans, "Mixed_7c/b0_1x1");
        assert_eq!(c.packing, 16);
        assert_eq!(c.eff_window, 16);
        assert_eq!(c.lanes_per_filter, 128, "2048/16 channels per filter");
        assert_eq!(
            c.arrays_per_filter, 1,
            "packing keeps every filter within one array"
        );
    }

    #[test]
    fn five_by_five_filters_split() {
        let plans = plan_model(&inception_v3(), &xeon());
        let c = find_conv(&plans, "Mixed_5b/b1_5x5");
        assert_eq!(c.window, 25);
        assert_eq!(c.split, 3, "25 bytes split into <=9-byte pieces");
        assert_eq!(c.eff_window, 9);
        assert_eq!(c.lanes_per_filter, (48 * 3usize).next_power_of_two());
    }

    #[test]
    fn channels_span_at_most_two_arrays() {
        // Section IV-A: the mapping guarantees all channels fit within two
        // arrays that share sense amps.
        let plans = plan_model(&inception_v3(), &xeon());
        for plan in &plans {
            for unit in &plan.units {
                if let UnitPlan::Conv(c) = unit {
                    assert!(
                        c.arrays_per_filter <= 2,
                        "{}: filter spans {} arrays",
                        c.name,
                        c.arrays_per_filter
                    );
                }
            }
        }
    }

    #[test]
    fn row_budgets_fit_everywhere() {
        let plans = plan_model(&inception_v3(), &xeon());
        for plan in &plans {
            for unit in &plan.units {
                if let UnitPlan::Conv(c) = unit {
                    assert!(c.rows.fits(), "{}: {} rows", c.name, c.rows.total());
                }
            }
        }
    }

    #[test]
    fn utilization_is_high_across_the_network() {
        let plans = plan_model(&inception_v3(), &xeon());
        for plan in &plans {
            for unit in &plan.units {
                if let UnitPlan::Conv(c) = unit {
                    let u = c.utilization();
                    assert!(u > 0.0 && u <= 1.0, "{}: utilization {u}", c.name);
                }
            }
        }
    }

    #[test]
    fn more_slices_fewer_rounds() {
        let model = inception_v3();
        let p35 = plan_model(&model, &CacheGeometry::with_capacity_mb(35));
        let p60 = plan_model(&model, &CacheGeometry::with_capacity_mb(60));
        let rounds = |plans: &[LayerPlan]| -> usize {
            plans
                .iter()
                .flat_map(|p| &p.units)
                .map(|u| match u {
                    UnitPlan::Conv(c) => c.rounds,
                    UnitPlan::Pool(p) => p.rounds,
                })
                .sum()
        };
        assert!(rounds(&p60) < rounds(&p35));
    }

    #[test]
    fn lane_geometry_reproduces_the_worked_examples() {
        // Conv2D_2b: 3x3 over 32 channels, no packing or splitting.
        let g = conv_lane_geometry(&nc_dnn::ConvSpec {
            name: "conv2d_2b".into(),
            r: 3,
            s: 3,
            c: 32,
            m: 64,
            stride: 1,
            padding: nc_dnn::Padding::Same,
            relu: true,
        });
        assert_eq!((g.packing, g.split, g.eff_window), (1, 1, 9));
        assert_eq!(g.lanes_per_filter, 32);
        assert_eq!((g.arrays_per_filter, g.filters_per_array), (1, 8));
        assert_eq!(g.groups_per_array(64), 8);
        assert_eq!(g.groups_per_array(3), 3, "few filters limit the groups");

        // A 2048-channel 1x1 packs 16 channels per lane into one array.
        let g = conv_lane_geometry(&nc_dnn::ConvSpec {
            name: "b0_1x1".into(),
            r: 1,
            s: 1,
            c: 2048,
            m: 192,
            stride: 1,
            padding: nc_dnn::Padding::Same,
            relu: true,
        });
        assert_eq!((g.packing, g.eff_window, g.lanes_per_filter), (16, 16, 128));
        assert_eq!(g.groups_per_array(192), 2);

        // 300 channels of a 3x3 span two arrays.
        let g = conv_lane_geometry(&nc_dnn::ConvSpec {
            name: "wide".into(),
            r: 3,
            s: 3,
            c: 300,
            m: 2,
            stride: 1,
            padding: nc_dnn::Padding::Valid,
            relu: true,
        });
        assert_eq!(g.lanes_per_filter, 512);
        assert_eq!(g.arrays_per_filter, 2);
        assert_eq!(g.group_span, 256);
        assert_eq!(g.groups_per_array(2), 1, "spanning filters run alone");
    }

    #[test]
    fn dense_plans_carry_no_skip_fraction() {
        let plans = plan_model(&inception_v3(), &xeon());
        for plan in &plans {
            for unit in &plan.units {
                if let UnitPlan::Conv(c) = unit {
                    assert_eq!(c.simd_skip_fraction, 0.0, "{}", c.name);
                }
            }
        }
    }

    #[test]
    fn sparse_plans_measure_skip_on_the_real_packing() {
        use nc_dnn::workload::pruned_inception;
        let model = pruned_inception(3);
        let plans = plan_model_with(&model, &xeon(), SparsityMode::SkipZeroRows);
        for plan in &plans {
            for unit in &plan.units {
                if let UnitPlan::Conv(c) = unit {
                    // keep_bits = 2: at least the top 6 bit rounds skip.
                    assert!(
                        c.simd_skip_fraction >= 0.75,
                        "{}: {}",
                        c.name,
                        c.simd_skip_fraction
                    );
                    assert!(c.simd_skip_fraction <= 1.0);
                }
            }
        }
        // Shape-only models plan fine in skip mode (no weights, no skips).
        let shape_only = plan_model_with(&inception_v3(), &xeon(), SparsityMode::SkipZeroRows);
        for plan in &shape_only {
            for unit in &plan.units {
                if let UnitPlan::Conv(c) = unit {
                    assert_eq!(c.simd_skip_fraction, 0.0);
                }
            }
        }
    }

    #[test]
    fn layer_plan_bookkeeping() {
        let plans = plan_model(&inception_v3(), &xeon());
        let total_filter: usize = plans.iter().map(|p| p.filter_bytes).sum();
        assert_eq!(total_filter, inception_v3().total_filter_bytes());
        // Mixed_5b: 7 convs + 1 avg pool = 8 units.
        let m5b = plans.iter().find(|p| p.name == "Mixed_5b").unwrap();
        assert_eq!(m5b.units.len(), 8);
        assert_eq!(m5b.output_bytes, 35 * 35 * 256);
    }
}
