//! The work-sharded execution engine behind the functional and timing
//! simulators.
//!
//! Neural Cache's defining property is massive data parallelism: thousands
//! of 8KB compute arrays execute the same bit-serial sequence in lockstep
//! (Sections IV/VI). Within one pass the arrays share **no** state — they
//! only meet at the inter-array reduction/ranging barriers — so simulating
//! them is embarrassingly shardable. This module abstracts over *how* a set
//! of independent shard jobs runs:
//!
//! - [`ExecutionEngine::Sequential`] executes jobs in index order on the
//!   calling thread (the reference backend);
//! - [`ExecutionEngine::Threaded`] fans jobs out over a scoped pool of
//!   `std::thread` workers pulling shard indices from an atomic counter.
//!
//! Both backends are **observably identical**: [`ExecutionEngine::run`]
//! always returns results in job-index order, so any deterministic
//! reduction over them (summing [`nc_sram::CycleStats`], splicing output
//! chunks) is independent of thread scheduling. No external dependencies
//! are used, consistent with the workspace's vendored-offline policy.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

/// Wall-clock record of one executed shard job, taken by a
/// [`ShardObserver`]: which job ran on which worker, when it started
/// (seconds since the observer's epoch) and how long it took.
///
/// This is **host wall-clock** time — the one axis in the workspace that is
/// *not* simulated — so it feeds utilization/imbalance reporting only and
/// never participates in simulated-time reconciliation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSample {
    /// Shard job index within its `run_observed` call.
    pub job: usize,
    /// Worker index that executed the job (0 on the sequential backend).
    pub worker: usize,
    /// Job start, in seconds since the observer was created.
    pub start_s: f64,
    /// Job wall-clock duration in seconds.
    pub dur_s: f64,
}

/// Collects per-shard wall-clock timings across one or more
/// [`ExecutionEngine::run_observed`] calls, for thread-utilization and
/// load-imbalance reports.
///
/// The observer is passive: engines record into it only when one is passed,
/// so `run_observed(.., None)` stays exactly [`ExecutionEngine::run`].
/// Recording takes a mutex per completed job — acceptable for reporting
/// runs, which is why observation is opt-in rather than always-on.
#[derive(Debug)]
pub struct ShardObserver {
    t0: Instant,
    samples: Mutex<Vec<ShardSample>>,
}

impl Default for ShardObserver {
    fn default() -> Self {
        ShardObserver::new()
    }
}

impl ShardObserver {
    /// A fresh observer; its epoch (time zero) is now.
    #[must_use]
    pub fn new() -> Self {
        ShardObserver {
            t0: Instant::now(),
            samples: Mutex::new(Vec::new()),
        }
    }

    fn record(&self, job: usize, worker: usize, started: Instant, finished: Instant) {
        let sample = ShardSample {
            job,
            worker,
            start_s: started.duration_since(self.t0).as_secs_f64(),
            dur_s: finished.duration_since(started).as_secs_f64(),
        };
        self.samples
            .lock()
            .expect("shard observer poisoned")
            .push(sample);
    }

    /// Seconds elapsed since the observer's epoch.
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    /// Drains and returns every sample recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the sample
    /// lock (poisoned mutex).
    #[must_use]
    pub fn take_samples(&self) -> Vec<ShardSample> {
        std::mem::take(&mut *self.samples.lock().expect("shard observer poisoned"))
    }
}

/// How independent shard jobs are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionEngine {
    /// Run every job on the calling thread, in index order.
    #[default]
    Sequential,
    /// Fan jobs out over `threads` scoped worker threads.
    Threaded {
        /// Number of worker threads (at least 2; use
        /// [`ExecutionEngine::from_threads`] to normalize).
        threads: usize,
    },
}

impl ExecutionEngine {
    /// Normalizes a thread-count knob: `0` and `1` mean [`Sequential`],
    /// anything larger a [`Threaded`] backend with that many workers.
    ///
    /// [`Sequential`]: ExecutionEngine::Sequential
    /// [`Threaded`]: ExecutionEngine::Threaded
    #[must_use]
    pub fn from_threads(threads: usize) -> Self {
        if threads <= 1 {
            ExecutionEngine::Sequential
        } else {
            ExecutionEngine::Threaded { threads }
        }
    }

    /// An engine sized to the host's available parallelism (sequential on
    /// single-core hosts).
    #[must_use]
    pub fn auto() -> Self {
        ExecutionEngine::from_threads(thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// Number of worker threads this engine uses (1 for sequential).
    #[must_use]
    pub fn threads(&self) -> usize {
        match self {
            ExecutionEngine::Sequential => 1,
            ExecutionEngine::Threaded { threads } => (*threads).max(1),
        }
    }

    /// Whether jobs may run on more than one thread.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.threads() > 1
    }

    /// Runs `jobs` independent shard jobs and returns their results in job
    /// order (index `i`'s result at position `i`, regardless of backend or
    /// scheduling).
    ///
    /// `job` must be a pure function of its index with respect to the
    /// shared state it captures; the threaded backend gives no ordering
    /// guarantee *during* execution, only on the returned `Vec`.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job (the scoped workers are joined
    /// before this returns).
    pub fn run<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_observed(jobs, job, None)
    }

    /// [`ExecutionEngine::run`] with optional per-shard wall-clock
    /// observation: when `observer` is `Some`, every executed job records a
    /// [`ShardSample`] (job index, worker index, start, duration) into it.
    /// With `observer == None` this *is* `run` — same scheduling, same
    /// results, no timing overhead.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job (the scoped workers are joined
    /// before this returns).
    pub fn run_observed<T, F>(
        &self,
        jobs: usize,
        job: F,
        observer: Option<&ShardObserver>,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads().min(jobs);
        if workers <= 1 {
            return (0..jobs)
                .map(|i| match observer {
                    None => job(i),
                    Some(obs) => {
                        let started = Instant::now();
                        let out = job(i);
                        obs.record(i, 0, started, Instant::now());
                        out
                    }
                })
                .collect();
        }

        let next = AtomicUsize::new(0);
        // Per-worker in-flight job index, so a panicking job can be named
        // in the propagated message (usize::MAX = idle).
        let in_flight: Vec<AtomicUsize> =
            (0..workers).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let mut indexed: Vec<(usize, T)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let in_flight = &in_flight[w];
                    let next = &next;
                    let job = &job;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs {
                                break;
                            }
                            in_flight.store(i, Ordering::Release);
                            match observer {
                                None => local.push((i, job(i))),
                                Some(obs) => {
                                    let started = Instant::now();
                                    let out = job(i);
                                    obs.record(i, w, started, Instant::now());
                                    local.push((i, out));
                                }
                            }
                        }
                        in_flight.store(usize::MAX, Ordering::Release);
                        local
                    })
                })
                .collect();
            let mut collected = Vec::with_capacity(jobs);
            for (w, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(local) => collected.extend(local),
                    Err(payload) => {
                        let i = in_flight[w].load(Ordering::Acquire);
                        let cause = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        panic!("shard worker {w} panicked on job {i}: {cause}");
                    }
                }
            }
            collected
        });
        indexed.sort_unstable_by_key(|(i, _)| *i);
        // Runtime shard-coverage check (the dynamic analogue of the static
        // verifier's V018): the scheduler must run every job exactly once.
        debug_assert!(
            indexed.iter().map(|(i, _)| *i).eq(0..jobs),
            "threaded scheduler dropped or duplicated a shard job"
        );
        indexed.into_iter().map(|(_, value)| value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_threads_normalizes() {
        assert_eq!(
            ExecutionEngine::from_threads(0),
            ExecutionEngine::Sequential
        );
        assert_eq!(
            ExecutionEngine::from_threads(1),
            ExecutionEngine::Sequential
        );
        assert_eq!(
            ExecutionEngine::from_threads(4),
            ExecutionEngine::Threaded { threads: 4 }
        );
        assert_eq!(ExecutionEngine::Sequential.threads(), 1);
        assert_eq!(ExecutionEngine::Threaded { threads: 3 }.threads(), 3);
        assert!(!ExecutionEngine::Sequential.is_parallel());
        assert!(ExecutionEngine::from_threads(2).is_parallel());
        assert!(ExecutionEngine::auto().threads() >= 1);
    }

    #[test]
    fn results_come_back_in_job_order() {
        for engine in [
            ExecutionEngine::Sequential,
            ExecutionEngine::from_threads(4),
        ] {
            let out = engine.run(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn backends_agree_on_fallible_jobs() {
        let job = |i: usize| -> Result<usize, String> {
            if i == 7 {
                Err("seven".to_owned())
            } else {
                Ok(i)
            }
        };
        let seq: Result<Vec<_>, _> = ExecutionEngine::Sequential
            .run(10, job)
            .into_iter()
            .collect();
        let thr: Result<Vec<_>, _> = ExecutionEngine::from_threads(3)
            .run(10, job)
            .into_iter()
            .collect();
        assert_eq!(seq, thr);
        assert_eq!(seq.unwrap_err(), "seven");
    }

    #[test]
    fn zero_and_single_job_edge_cases() {
        let engine = ExecutionEngine::from_threads(8);
        assert_eq!(engine.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(engine.run(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn worker_panic_names_the_failing_job() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ExecutionEngine::from_threads(2).run(4, |i| {
                assert!(i != 3, "job blew up");
                i
            })
        }));
        let payload = result.expect_err("the job panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic message is a formatted string");
        assert!(
            msg.contains("panicked on job 3"),
            "panic must name the failing job index: {msg}"
        );
        assert!(msg.contains("shard worker"), "message: {msg}");
        assert!(msg.contains("job blew up"), "cause preserved: {msg}");
    }

    #[test]
    fn observer_records_every_job_once_on_both_backends() {
        for engine in [
            ExecutionEngine::Sequential,
            ExecutionEngine::from_threads(4),
        ] {
            let obs = ShardObserver::new();
            let out = engine.run_observed(50, |i| i * 2, Some(&obs));
            assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
            let mut samples = obs.take_samples();
            assert_eq!(samples.len(), 50, "one sample per job");
            samples.sort_unstable_by_key(|s| s.job);
            for (i, s) in samples.iter().enumerate() {
                assert_eq!(s.job, i);
                assert!(s.worker < engine.threads());
                assert!(s.start_s >= 0.0 && s.dur_s >= 0.0);
            }
            assert!(obs.take_samples().is_empty(), "take drains");
            assert!(obs.elapsed_s() >= 0.0);
        }
    }

    #[test]
    fn threaded_run_uses_shared_state_safely() {
        use std::sync::atomic::AtomicU64;
        let total = AtomicU64::new(0);
        let out = ExecutionEngine::from_threads(4).run(1000, |i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
            i as u64
        });
        assert_eq!(out.iter().sum::<u64>(), total.load(Ordering::Relaxed));
    }
}
