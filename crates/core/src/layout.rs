//! Operand layouts of the functional executor's shard jobs — the single
//! source of truth for which word-line ranges each in-cache pass occupies.
//!
//! The bit-accurate executor ([`crate::functional`]) stages every pass into
//! fixed row regions of a 256-row array. Those regions used to live as
//! inline `Operand::new` calls deep inside each shard job, where an overlap
//! or out-of-bounds slip would only surface as a wrong answer at simulation
//! time. This module names every region once, so:
//!
//! - the executor builds its operands from here (no drift possible),
//! - [`validate_plan`] proves the whole plan hazard-free before the first
//!   row is touched (debug-mode pre-pass in the executor), and
//! - the `nc-verify` static checker consumes the same descriptors to emit
//!   structured diagnostics without executing anything.

use nc_sram::{Operand, ROWS};

/// The dedicated all-zero row every executor array reserves (mapping-layer
/// convention; see `ComputeArray::set_zero_row`).
pub const ZERO_ROW: usize = 255;

/// The scratch row comparison/clamp micro-ops dump their borrow bit into.
pub const DUMP_ROW: usize = 250;

/// A named operand region of one shard-job layout.
pub type NamedOperand = (&'static str, Operand);

fn op(base: usize, bits: usize) -> Operand {
    Operand::new(base, bits).expect("static executor layout is in bounds")
}

/// Pass 1 (MAC + grouped channel reduction) row layout.
#[derive(Debug, Clone, Copy)]
pub struct MacReduceLayout {
    /// Streamed filter byte of the current tap.
    pub filter_byte: Operand,
    /// Streamed input byte of the current tap.
    pub input_byte: Operand,
    /// 16-bit product scratch of the bit-serial multiply.
    pub scratch16: Operand,
    /// 24-bit per-lane partial sum `S1`.
    pub partial: Operand,
    /// 16-bit zero-point-correction running sum `S2`.
    pub s2sum: Operand,
    /// 32-bit reduction segment of `S1` (Figure 10b).
    pub seg_a: Operand,
    /// Second 32-bit reduction operand of `S1`.
    pub seg_b: Operand,
    /// 32-bit reduction segment of `S2`.
    pub s2_a: Operand,
    /// Second 32-bit reduction operand of `S2`.
    pub s2_b: Operand,
}

impl MacReduceLayout {
    /// The layout used by every pass-1 shard job.
    #[must_use]
    pub fn new() -> Self {
        MacReduceLayout {
            filter_byte: op(0, 8),
            input_byte: op(8, 8),
            scratch16: op(16, 16),
            partial: op(32, 24),
            s2sum: op(56, 16),
            seg_a: op(72, 32),
            seg_b: op(104, 32),
            s2_a: op(136, 32),
            s2_b: op(168, 32),
        }
    }

    /// Every region with its name, for generic layout checking.
    #[must_use]
    pub fn named(&self) -> Vec<NamedOperand> {
        vec![
            ("filter_byte", self.filter_byte),
            ("input_byte", self.input_byte),
            ("scratch16", self.scratch16),
            ("partial", self.partial),
            ("s2sum", self.s2sum),
            ("seg_a", self.seg_a),
            ("seg_b", self.seg_b),
            ("s2_a", self.s2_a),
            ("s2_b", self.s2_b),
        ]
    }
}

impl Default for MacReduceLayout {
    fn default() -> Self {
        Self::new()
    }
}

/// Pass 2 (accumulator assembly `ACC = S1 - zp_w*S2 + C0`) row layout.
#[derive(Debug, Clone, Copy)]
pub struct AssembleLayout {
    /// 32-bit staged `S1`.
    pub s1_op: Operand,
    /// 32-bit staged `S2`.
    pub s2_op: Operand,
    /// 40-bit two's-complement accumulator `T`.
    pub t: Operand,
    /// 40-bit product region `U = zp_w * S2`.
    pub u: Operand,
    /// 40-bit subtraction scratch.
    pub scratch: Operand,
    /// 40-bit per-channel constant `C0`.
    pub c0_op: Operand,
}

impl AssembleLayout {
    /// The layout used by every pass-2 assembly job.
    #[must_use]
    pub fn new() -> Self {
        AssembleLayout {
            s1_op: op(0, 32),
            s2_op: op(32, 32),
            t: op(64, 40),
            u: op(104, 40),
            scratch: op(144, 40),
            c0_op: op(184, 40),
        }
    }

    /// Every region with its name, for generic layout checking.
    #[must_use]
    pub fn named(&self) -> Vec<NamedOperand> {
        vec![
            ("s1_op", self.s1_op),
            ("s2_op", self.s2_op),
            ("t", self.t),
            ("u", self.u),
            ("scratch", self.scratch),
            ("c0_op", self.c0_op),
        ]
    }
}

impl Default for AssembleLayout {
    fn default() -> Self {
        Self::new()
    }
}

/// Dynamic-ranging (in-array min/max tree) row layout.
#[derive(Debug, Clone, Copy)]
pub struct RangingLayout {
    /// 40-bit offset accumulator value.
    pub v: Operand,
    /// 40-bit reduction scratch.
    pub scratch: Operand,
    /// 40-bit comparison scratch.
    pub cmp: Operand,
}

impl RangingLayout {
    /// The layout used by every ranging job (dump row: [`DUMP_ROW`]).
    #[must_use]
    pub fn new() -> Self {
        RangingLayout {
            v: op(0, 40),
            scratch: op(40, 40),
            cmp: op(80, 40),
        }
    }

    /// Every region with its name, for generic layout checking.
    #[must_use]
    pub fn named(&self) -> Vec<NamedOperand> {
        vec![("v", self.v), ("scratch", self.scratch), ("cmp", self.cmp)]
    }
}

impl Default for RangingLayout {
    fn default() -> Self {
        Self::new()
    }
}

/// Pass 3 (requantization) row layout.
#[derive(Debug, Clone, Copy)]
pub struct RequantLayout {
    /// 40-bit shifted accumulator `D`.
    pub d_op: Operand,
    /// 48-bit scalar-multiply product.
    pub prod: Operand,
}

impl RequantLayout {
    /// The layout used by every pass-3 job (dump row: [`DUMP_ROW`]).
    #[must_use]
    pub fn new() -> Self {
        RequantLayout {
            d_op: op(0, 40),
            prod: op(40, 48),
        }
    }

    /// Every region with its name, for generic layout checking.
    #[must_use]
    pub fn named(&self) -> Vec<NamedOperand> {
        vec![("d_op", self.d_op), ("prod", self.prod)]
    }
}

impl Default for RequantLayout {
    fn default() -> Self {
        Self::new()
    }
}

/// Code-to-code requantization row layout.
#[derive(Debug, Clone, Copy)]
pub struct CodeRequantLayout {
    /// 8-bit input code.
    pub q_in: Operand,
    /// 48-bit multiply/add/shift region.
    pub prod: Operand,
}

impl CodeRequantLayout {
    /// The layout used by every code-requant job (dump row: [`DUMP_ROW`]).
    #[must_use]
    pub fn new() -> Self {
        CodeRequantLayout {
            q_in: op(0, 8),
            prod: op(8, 48),
        }
    }

    /// Every region with its name, for generic layout checking.
    #[must_use]
    pub fn named(&self) -> Vec<NamedOperand> {
        vec![("q_in", self.q_in), ("prod", self.prod)]
    }
}

impl Default for CodeRequantLayout {
    fn default() -> Self {
        Self::new()
    }
}

/// Max-pooling row layout.
#[derive(Debug, Clone, Copy)]
pub struct PoolMaxLayout {
    /// 8-bit running maximum.
    pub acc: Operand,
    /// 8-bit streamed window element.
    pub x: Operand,
    /// 8-bit comparison scratch.
    pub scratch: Operand,
}

impl PoolMaxLayout {
    /// The layout used by every max-pool job (dump row: [`DUMP_ROW`]).
    #[must_use]
    pub fn new() -> Self {
        PoolMaxLayout {
            acc: op(0, 8),
            x: op(8, 8),
            scratch: op(16, 8),
        }
    }

    /// Every region with its name, for generic layout checking.
    #[must_use]
    pub fn named(&self) -> Vec<NamedOperand> {
        vec![("acc", self.acc), ("x", self.x), ("scratch", self.scratch)]
    }
}

impl Default for PoolMaxLayout {
    fn default() -> Self {
        Self::new()
    }
}

/// Average-pooling row layout (window sum + restoring division).
#[derive(Debug, Clone, Copy)]
pub struct PoolAvgLayout {
    /// 8-bit streamed window element.
    pub x: Operand,
    /// 16-bit window sum.
    pub sum: Operand,
    /// 8-bit per-lane valid-element count (divisor).
    pub den: Operand,
    /// 16-bit quotient.
    pub quot: Operand,
    /// 9-bit remainder.
    pub rem: Operand,
    /// 9-bit trial-subtraction scratch.
    pub trial: Operand,
    /// 9-bit complemented-divisor scratch.
    pub notden: Operand,
}

impl PoolAvgLayout {
    /// The layout used by every average-pool job.
    #[must_use]
    pub fn new() -> Self {
        PoolAvgLayout {
            x: op(0, 8),
            sum: op(8, 16),
            den: op(24, 8),
            quot: op(32, 16),
            rem: op(48, 9),
            trial: op(57, 9),
            notden: op(66, 9),
        }
    }

    /// Every region with its name, for generic layout checking.
    #[must_use]
    pub fn named(&self) -> Vec<NamedOperand> {
        vec![
            ("x", self.x),
            ("sum", self.sum),
            ("den", self.den),
            ("quot", self.quot),
            ("rem", self.rem),
            ("trial", self.trial),
            ("notden", self.notden),
        ]
    }
}

impl Default for PoolAvgLayout {
    fn default() -> Self {
        Self::new()
    }
}

/// Every shard-job layout with its name, for exhaustive checking.
#[must_use]
pub fn all_layouts() -> Vec<(&'static str, Vec<NamedOperand>)> {
    all_layouts_with_dump()
        .into_iter()
        .map(|(name, operands, _)| (name, operands))
        .collect()
}

/// Every shard-job layout with its name and whether its micro-op sequence
/// drives the reserved [`DUMP_ROW`] (comparison/clamp borrow dumps). The
/// shard-graph verifier uses the flag to model each job's write set
/// row-exactly, including the reserved row.
#[must_use]
pub fn all_layouts_with_dump() -> Vec<(&'static str, Vec<NamedOperand>, bool)> {
    vec![
        ("mac_reduce", MacReduceLayout::new().named(), false),
        ("assemble_acc", AssembleLayout::new().named(), false),
        ("ranging", RangingLayout::new().named(), true),
        ("requant", RequantLayout::new().named(), true),
        ("code_requant", CodeRequantLayout::new().named(), true),
        ("pool_max", PoolMaxLayout::new().named(), true),
        ("pool_avg", PoolAvgLayout::new().named(), false),
    ]
}

/// Statically validates every shard-job layout: all regions in bounds,
/// pairwise disjoint, and clear of the reserved zero and dump rows.
///
/// Returns one human-readable violation per hazard (empty = clean). The
/// functional executor runs this as a debug-mode pre-pass before touching
/// any array; `nc-verify` re-runs the same descriptors with structured
/// error codes.
#[must_use]
pub fn validate_plan() -> Vec<String> {
    let mut violations = Vec::new();
    for (job, operands) in all_layouts() {
        for (i, (name, o)) in operands.iter().enumerate() {
            if o.rows().end > ROWS {
                violations.push(format!("{job}: {name} {o} exceeds {ROWS} word lines"));
            }
            for reserved in [ZERO_ROW, DUMP_ROW] {
                if o.contains_row(reserved) {
                    violations.push(format!("{job}: {name} {o} claims reserved row {reserved}"));
                }
            }
            for (other_name, other) in &operands[i + 1..] {
                if o.overlaps(other) {
                    violations.push(format!("{job}: {name} {o} overlaps {other_name} {other}"));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_layouts_are_hazard_free() {
        assert_eq!(validate_plan(), Vec::<String>::new());
    }

    #[test]
    fn layouts_expose_every_field() {
        // `named()` must stay in sync with the struct fields — a region
        // missing from `named()` silently escapes all static checking.
        assert_eq!(MacReduceLayout::new().named().len(), 9);
        assert_eq!(AssembleLayout::new().named().len(), 6);
        assert_eq!(RangingLayout::new().named().len(), 3);
        assert_eq!(RequantLayout::new().named().len(), 2);
        assert_eq!(CodeRequantLayout::new().named().len(), 2);
        assert_eq!(PoolMaxLayout::new().named().len(), 3);
        assert_eq!(PoolAvgLayout::new().named().len(), 7);
    }

    #[test]
    fn dump_row_flags_match_the_executor_jobs() {
        // Exactly the jobs whose micro-ops pass a dump row to `nc-sram`
        // (reduce_min/max, clamp_max_scalar, max_assign) may claim it.
        let dumping: Vec<&str> = all_layouts_with_dump()
            .into_iter()
            .filter_map(|(name, _, dumps)| dumps.then_some(name))
            .collect();
        assert_eq!(dumping, ["ranging", "requant", "code_requant", "pool_max"]);
        assert_eq!(all_layouts().len(), all_layouts_with_dump().len());
    }

    #[test]
    fn reserved_rows_sit_above_every_layout() {
        for (job, operands) in all_layouts() {
            for (name, o) in operands {
                assert!(
                    o.rows().end <= DUMP_ROW,
                    "{job}/{name} must stay below the dump row"
                );
            }
        }
    }
}
