//! ISA support and execution model (Section IV-F): the macro-instructions
//! broadcast over the intra-slice address bus, and the per-bank control FSM
//! that sequences SRAM control signals.

use nc_sram::area::AreaModel;

use crate::mapping::{LayerPlan, UnitPlan};

/// The in-cache macro-instruction set of Section IV-F.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheInstruction {
    /// Bit-serial vector addition.
    Add,
    /// Bit-serial vector multiplication.
    Multiply,
    /// One reduction tree step (move + add).
    Reduce,
    /// Data move between word lines / arrays / the reserved way.
    Move,
    /// Max/min compare-and-select (pooling, ranging, `ReLU` masks).
    Compare,
    /// Requantization scalar op (multiply/add/shift by CPU constants).
    Quantize,
}

/// Instruction-count trace of one layer: every bank executes the same
/// stream, so counts are per-bank (the SIMD property that makes one shared
/// FSM per bank sufficient).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstructionCounts {
    /// Additions issued.
    pub add: u64,
    /// Multiplications issued.
    pub multiply: u64,
    /// Reduction steps issued.
    pub reduce: u64,
    /// Moves issued.
    pub moves: u64,
    /// Compare/select ops issued.
    pub compare: u64,
    /// Quantization scalar ops issued.
    pub quantize: u64,
}

impl InstructionCounts {
    /// Total macro-instructions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.add + self.multiply + self.reduce + self.moves + self.compare + self.quantize
    }
}

/// Derives the per-bank instruction stream counts of one layer plan.
#[must_use]
pub fn instruction_trace(plan: &LayerPlan) -> InstructionCounts {
    let mut counts = InstructionCounts::default();
    for unit in &plan.units {
        match unit {
            UnitPlan::Conv(c) => {
                let rounds = c.rounds as u64;
                let macs = rounds * c.eff_window as u64;
                counts.multiply += macs;
                counts.add += macs; // accumulate into the partial sum
                counts.reduce += rounds * u64::from(c.reduce_steps + c.cross_array_steps);
                counts.moves += rounds; // output move to the reserved way
                counts.quantize += rounds; // requant pipeline per round
                counts.compare += rounds; // min/max ranging per round
            }
            UnitPlan::Pool(p) => {
                let rounds = p.rounds as u64;
                match p.kind {
                    nc_dnn::PoolKind::Max => {
                        counts.compare += rounds * (p.window as u64 - 1);
                    }
                    nc_dnn::PoolKind::Avg => {
                        counts.add += rounds * (p.window as u64 - 1);
                        counts.quantize += rounds; // division by window size
                    }
                }
                counts.moves += rounds;
            }
        }
    }
    counts
}

/// Area of the control FSMs for a full cache (Section IV-F: 204 µm² per
/// bank, 0.23 mm² across the 14-slice Xeon E5).
#[must_use]
pub fn control_fsm_area_mm2(geometry: &nc_geometry::CacheGeometry) -> f64 {
    AreaModel::paper_28nm().total_fsm_area_mm2(geometry.total_banks())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::plan_model;
    use nc_dnn::inception::inception_v3;
    use nc_geometry::CacheGeometry;

    #[test]
    fn fsm_area_matches_paper() {
        let area = control_fsm_area_mm2(&CacheGeometry::xeon_e5_2697_v3());
        assert!((area - 0.2285).abs() < 0.01, "paper: 0.23 mm^2, got {area}");
    }

    #[test]
    fn traces_count_convolution_work() {
        let model = inception_v3();
        let plans = plan_model(&model, &CacheGeometry::xeon_e5_2697_v3());
        // plans[2] = Conv2d_2b_3x3: 43 rounds x 9 window bytes = 387
        // multiply instructions.
        let stem = instruction_trace(&plans[2]);
        assert_eq!(stem.multiply, 387);
        assert_eq!(stem.add, 387);
        assert_eq!(stem.reduce, 43 * 5);
        assert!(stem.total() > 0);

        let pool = instruction_trace(&plans[3]); // MaxPool_3a
        assert_eq!(pool.multiply, 0);
        assert!(pool.compare > 0);
    }
}
