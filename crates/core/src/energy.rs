//! System energy and power model (Table III).
//!
//! Energy is accounted chip-side, matching the paper's RAPL-package scope
//! (DESIGN.md §4): dynamic array energy (15.4 pJ per active-array compute
//! cycle, 8.6 pJ per access cycle at 22 nm), interconnect wire energy, and
//! a calibrated background power covering uncore, clocking and leakage of
//! the idle structures. DRAM device energy is excluded, as in the paper's
//! measurement scope.

use nc_geometry::SimTime;

use crate::config::SystemConfig;
use crate::timing::InferenceReport;

/// Background (non-array) power while Neural Cache computes: ring/uncore
/// clocks, leakage of tag/LRU/control structures and the reserved ways.
/// Calibrated so the Inception v3 average power lands at the paper's
/// 52.92 W (Table III).
pub const BACKGROUND_WATTS: f64 = 15.0;

/// Energy/power results for one inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Dynamic energy of compute cycles in active arrays, joules.
    pub compute_j: f64,
    /// Dynamic energy of array access cycles (streaming), joules.
    pub access_j: f64,
    /// Interconnect (bus + ring) wire energy, joules.
    pub interconnect_j: f64,
    /// Background energy (power x latency), joules.
    pub background_j: f64,
    /// Inference latency used for power.
    pub latency: SimTime,
}

impl EnergyReport {
    /// Total energy, joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.access_j + self.interconnect_j + self.background_j
    }

    /// Average power over the inference, watts.
    #[must_use]
    pub fn avg_power_w(&self) -> f64 {
        self.total_j() / self.latency.as_secs_f64()
    }

    /// Energy-delay product, joule-seconds (Section VI-C).
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.total_j() * self.latency.as_secs_f64()
    }
}

/// Computes the energy of a timed inference.
#[must_use]
pub fn energy_of(config: &SystemConfig, report: &InferenceReport) -> EnergyReport {
    let compute_arrays = config.geometry.compute_arrays() as f64;
    let e = config.array_energy;

    let mut compute_j = 0.0;
    let mut access_j = 0.0;
    let mut interconnect_j = 0.0;
    for layer in &report.layers {
        // Compute cycles execute in every active array simultaneously.
        let active = compute_arrays * layer.active_fraction;
        compute_j += layer.compute_cycles as f64 * active * e.compute_cycle_pj * 1e-12;
        // Streaming: one 256-bit array access moves 32 bytes.
        let access_cycles = (layer.streamed_bytes as f64 / 32.0).ceil();
        access_j += access_cycles * e.access_cycle_pj * 1e-12;
        interconnect_j += config.interconnect.bus_energy_joules(layer.streamed_bytes)
            + config.interconnect.ring_energy_joules(layer.dram_bytes);
    }

    let latency = report.total();
    EnergyReport {
        compute_j,
        access_j,
        interconnect_j,
        background_j: BACKGROUND_WATTS * latency.as_secs_f64(),
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::time_inference;
    use nc_dnn::inception::inception_v3;

    fn report() -> EnergyReport {
        let config = SystemConfig::xeon_e5_2697_v3();
        let timing = time_inference(&config, &inception_v3());
        energy_of(&config, &timing)
    }

    #[test]
    fn total_energy_in_paper_ballpark() {
        // Table III: Neural Cache inference energy 0.246 J.
        let e = report();
        let total = e.total_j();
        assert!((0.1..0.5).contains(&total), "got {total:.3} J");
    }

    #[test]
    fn average_power_near_53_w() {
        // Table III: 52.92 W average power.
        let p = report().avg_power_w();
        assert!((35.0..75.0).contains(&p), "got {p:.1} W");
    }

    #[test]
    fn compute_energy_dominates_dynamic_energy() {
        let e = report();
        assert!(e.compute_j > e.access_j);
        assert!(e.compute_j > e.interconnect_j);
    }

    #[test]
    fn edp_is_energy_times_delay() {
        let e = report();
        let expect = e.total_j() * e.latency.as_secs_f64();
        assert!((e.edp() - expect).abs() < 1e-12);
    }
}
