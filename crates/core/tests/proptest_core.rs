//! Property-based tests of the core: mapping invariants over random layer
//! geometries, and bit-exact functional equivalence over random small
//! convolutions.

use nc_dnn::workload::{random_conv, random_input, single_conv_model};
use nc_dnn::{Padding, Shape};
use nc_geometry::CacheGeometry;
use neural_cache::functional;
use neural_cache::mapping::{plan_layer, UnitPlan};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The planner must produce a legal schedule for any layer geometry:
    /// row budget respected, power-of-two lanes, at most 2 arrays per
    /// filter for <= 2048 channels, full work coverage, utilization <= 1.
    #[test]
    fn mapping_invariants_hold(
        r in 1usize..8,
        s in 1usize..8,
        c in 1usize..2049,
        m in 1usize..64,
        stride in 1usize..3,
        h in 8usize..40,
    ) {
        let geometry = CacheGeometry::xeon_e5_2697_v3();
        let spec = nc_dnn::ConvSpec {
            name: "prop".into(),
            r, s, c, m, stride,
            padding: Padding::Same,
            relu: true,
        };
        let input = Shape::new(h, h, c);
        let layer = nc_dnn::Layer::Conv(nc_dnn::Conv2d::shape_only(spec.clone()));
        let plan = plan_layer(&layer, input, &geometry);
        let UnitPlan::Conv(u) = &plan.units[0] else { panic!("expected conv") };

        prop_assert!(u.rows.fits(), "row budget: {}", u.rows.total());
        prop_assert!(u.lanes_per_filter.is_power_of_two());
        prop_assert!(u.arrays_per_filter <= 2 || r * s > 1,
            "1x1 layers always pack into one array");
        prop_assert!(u.rounds * u.parallel_instances >= u.total_convs,
            "schedule must cover all convolutions");
        let util = u.utilization();
        prop_assert!(util > 0.0 && util <= 1.0);
        // Packing/splitting conserve work: lane bytes cover the window.
        prop_assert!(u.eff_window * u.eff_channels >= r * s * c);
        // Occupancy and active arrays are sane.
        prop_assert!(u.lane_occupancy() > 0.0 && u.lane_occupancy() <= 1.0);
        prop_assert!(u.active_arrays() <= geometry.compute_arrays());
    }

    /// Random small convolutions are bit-exact between the in-cache
    /// executor and the golden model, across kernel shapes, strides,
    /// paddings, channel counts and ReLU settings.
    #[test]
    fn random_convs_are_bit_exact(
        r in 1usize..4,
        s in 1usize..4,
        c in 1usize..20,
        m in 1usize..5,
        stride in 1usize..3,
        relu in any::<bool>(),
        same in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let k = 5usize; // input spatial size
        let padding = if same { Padding::Same } else { Padding::Valid };
        let conv = random_conv("prop", (r, s), c, m, stride, padding, relu, seed);
        let model = single_conv_model(conv, Shape::new(k, k, c));
        let input = random_input(model.input_shape, model.input_quant, seed + 1);
        let golden = nc_dnn::reference::run_model(&model, &input);
        let ours = functional::run_model(&model, &input).expect("functional run");
        prop_assert_eq!(golden.output.data(), ours.output.data());
    }
}
