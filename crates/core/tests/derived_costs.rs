//! DESIGN.md §3 promise: the `DerivedCostModel` constants must stay in sync
//! with the *actual* micro-op sequences of `nc-sram`. This test executes
//! the real bit-serial operations and compares measured cycles against the
//! model.

use nc_sram::{ComputeArray, Operand, COLS};
use neural_cache::cost::{CostModel, DerivedCostModel};

fn arr() -> ComputeArray {
    ComputeArray::with_zero_row(255).expect("zero row")
}

#[test]
fn derived_mac_cycles_match_functional_ops() {
    // One MAC = mul(8x8 -> 16) + accumulate into the 24-bit partial +
    // accumulate the input byte into the 16-bit S2 sum.
    let mut a = arr();
    let w = Operand::new(0, 8).unwrap();
    let x = Operand::new(8, 8).unwrap();
    let prod = Operand::new(16, 16).unwrap();
    let partial = Operand::new(32, 24).unwrap();
    let s2 = Operand::new(56, 16).unwrap();
    a.poke_lane(0, w, 200);
    a.poke_lane(0, x, 123);
    let mut measured = 0;
    measured += a.mul(w, x, prod).unwrap().compute_cycles;
    measured += a.add_assign(partial, prod).unwrap().compute_cycles;
    measured += a.add_assign(s2, x).unwrap().compute_cycles;
    assert_eq!(
        measured,
        DerivedCostModel.mac_cycles(),
        "DerivedCostModel::mac_cycles out of sync with nc-sram"
    );
    assert_eq!(a.peek_lane(0, partial), 200 * 123);
    assert_eq!(a.peek_lane(0, s2), 123);
}

#[test]
fn derived_mul_round_matches_skip_accounting() {
    // The per-round cost the sparsity analysis elides must equal what the
    // real bit-serial multiply spends per multiplier bit — and what
    // mul_skip_zero_rows reports as saved when it elides a round.
    let mut a = arr();
    let x = Operand::new(0, 8).unwrap();
    let w = Operand::new(8, 8).unwrap();
    let prod = Operand::new(16, 16).unwrap();
    a.poke_lane(0, x, 77);
    a.poke_lane(0, w, 0b0000_0101); // rounds 1, 3..8 are all-zero
    let d = a.mul_skip_zero_rows(x, w, prod).unwrap();
    assert_eq!(a.peek_lane(0, prod), 77 * 5);
    assert_eq!(d.skipped_rounds, 6);
    assert_eq!(
        d.skipped_cycles,
        6 * DerivedCostModel.mul_round_cycles(),
        "DerivedCostModel::mul_round_cycles out of sync with nc-sram"
    );
    // Dense full-mul cost decomposes as prod zeroing + 8 rounds.
    let mut b = arr();
    b.poke_lane(0, x, 77);
    b.poke_lane(0, w, 255);
    let dense = b.mul(x, w, prod).unwrap();
    assert_eq!(
        dense.compute_cycles,
        16 + 8 * DerivedCostModel.mul_round_cycles()
    );
    assert_eq!(dense.mul_rounds, 8);
}

#[test]
fn derived_reduction_step_matches_functional_ops() {
    // One reduction step = lane move (2 cycles/row) + 32-bit add, for each
    // of the S1 and S2 trees.
    let mut a = arr();
    let v = Operand::new(0, 32).unwrap();
    let s = Operand::new(32, 32).unwrap();
    let before = a.stats();
    a.move_lanes(v, s, 1, 1).unwrap();
    a.add_assign(v, s).unwrap();
    let one_tree_step = (a.stats() - before).compute_cycles;
    assert_eq!(
        2 * one_tree_step,
        DerivedCostModel.reduction_step_cycles(),
        "DerivedCostModel::reduction_step_cycles out of sync"
    );
}

#[test]
fn derived_reduction_setup_matches_functional_ops() {
    let mut a = arr();
    let p = Operand::new(0, 24).unwrap();
    let s2 = Operand::new(24, 16).unwrap();
    let seg = Operand::new(40, 32).unwrap();
    let seg2 = Operand::new(72, 32).unwrap();
    let before = a.stats();
    a.copy_zext(p, seg).unwrap();
    a.copy_zext(s2, seg2).unwrap();
    assert_eq!(
        (a.stats() - before).compute_cycles,
        DerivedCostModel.reduction_setup_cycles(),
    );
}

#[test]
fn derived_max_cycles_match_functional_ops() {
    let mut a = arr();
    let acc = Operand::new(0, 8).unwrap();
    let x = Operand::new(8, 8).unwrap();
    let s = Operand::new(16, 8).unwrap();
    let d = a.max_assign(acc, x, s, 250).unwrap();
    assert_eq!(d.compute_cycles, DerivedCostModel.max_cycles());
}

#[test]
fn derived_avg_pool_costs_match_functional_ops() {
    let mut a = arr();
    let sum = Operand::new(0, 16).unwrap();
    let x = Operand::new(16, 8).unwrap();
    let d = a.add_assign(sum, x).unwrap();
    assert_eq!(d.compute_cycles, DerivedCostModel.avg_add_cycles());

    let quot = Operand::new(24, 16).unwrap();
    let rem = Operand::new(40, 7).unwrap();
    let trial = Operand::new(47, 7).unwrap();
    a.poke_lane(0, sum, 12345);
    let d = a.div_scalar(sum, 9, quot, rem, trial).unwrap();
    assert_eq!(d.compute_cycles, DerivedCostModel.avg_div_cycles());
    assert_eq!(a.peek_lane(0, quot), 12345 / 9);
}

#[test]
fn full_reduction_tree_cost_composes_from_steps() {
    // A 256-lane, 32-bit tree costs exactly steps * (move + add).
    let mut a = arr();
    let v = Operand::new(0, 32).unwrap();
    let s = Operand::new(32, 32).unwrap();
    let d = a.reduce_sum(v, s, COLS).unwrap();
    let per_step = 2 * 32 + 32;
    assert_eq!(d.compute_cycles, 8 * per_step);
}
