//! Property test (vendored proptest): the Sequential and Threaded
//! execution backends of the functional executor are observably identical
//! on random small convolution layers — bit-identical output tensors,
//! identical sub-layer requantization records, and identical [`CycleStats`]
//! (shard results fold in job order, so cycle accounting must not depend on
//! thread scheduling).
//!
//! [`CycleStats`]: nc_sram::CycleStats

use nc_dnn::workload::{random_conv, random_input, single_conv_model};
use nc_dnn::{Padding, Shape};
use neural_cache::engine::ExecutionEngine;
use neural_cache::functional;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sequential_and_threaded_backends_agree(
        r in 1usize..=3,
        s in 1usize..=3,
        c in 1usize..=8,
        m in 1usize..=4,
        stride in 1usize..=2,
        h in 3usize..=6,
        w in 3usize..=6,
        same_pad in any::<bool>(),
        relu in any::<bool>(),
        threads in 2usize..=4,
        seed in 0u64..=1_000_000,
    ) {
        let padding = if same_pad { Padding::Same } else { Padding::Valid };
        let conv = random_conv("prop", (r, s), c, m, stride, padding, relu, seed);
        let model = single_conv_model(conv, Shape::new(h.max(r), w.max(s), c));
        let input = random_input(model.input_shape, model.input_quant, seed ^ 0x9e37_79b9);

        let seq = functional::run_model_with(&model, &input, ExecutionEngine::Sequential)
            .expect("sequential run");
        let thr = functional::run_model_with(
            &model,
            &input,
            ExecutionEngine::Threaded { threads },
        )
        .expect("threaded run");

        prop_assert_eq!(seq.output.data(), thr.output.data(),
            "outputs must be bit-identical across backends");
        prop_assert_eq!(&seq.sublayers, &thr.sublayers,
            "requantization records must agree across backends");
        prop_assert_eq!(seq.cycles, thr.cycles,
            "cycle accounting must be scheduling-independent");
    }
}
