//! Property tests of the telemetry layer's exactness contract: for random
//! (optionally pruned) single-conv models under any [`SparsityMode`] and
//! either [`ExecutionEngine`], a traced run must be indistinguishable from
//! the untraced run — same output bytes, sublayer records, and
//! [`nc_sram::CycleStats`] — while the per-layer **and** per-op span
//! rollups each reproduce the executed cycle counters integer-for-integer
//! and the pool counters match the executor's `PoolEvents`.

use nc_dnn::workload::{prune_conv, random_conv, random_input, single_conv_model};
use nc_dnn::{Padding, Shape};
use nc_sram::CycleStats;
use nc_telemetry::{Level, Telemetry};
use neural_cache::functional::{run_model_configured, run_model_traced};
use neural_cache::{ExecutionEngine, SparsityMode};
use proptest::prelude::*;

/// Decodes a sparsity mode from a random draw.
fn mode_from(sel: u8) -> SparsityMode {
    match sel % 4 {
        0 => SparsityMode::Dense,
        1 => SparsityMode::SkipZeroRows,
        2 => SparsityMode::SkipZeroInputs,
        _ => SparsityMode::SkipBoth,
    }
}

/// One executed counter: span-argument name + accessor.
type CycleField = (&'static str, fn(&CycleStats) -> u64);

/// Every executed counter, keyed by the span-argument name the
/// instrumentation emits.
fn cycle_fields() -> [CycleField; 7] {
    [
        ("compute_cycles", |c| c.compute_cycles),
        ("access_cycles", |c| c.access_cycles),
        ("mul_rounds", |c| c.mul_rounds),
        ("skipped_rounds", |c| c.skipped_rounds),
        ("skipped_cycles", |c| c.skipped_cycles),
        ("detect_cycles", |c| c.detect_cycles),
        ("input_rounds_skipped", |c| c.input_rounds_skipped),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tracing is a pure observation: the traced run matches the untraced
    /// run exactly, and both span taxonomies partition the executed
    /// cycle counters.
    #[test]
    fn traced_runs_are_identical_and_rollups_reconcile_exactly(
        r in 1usize..4,
        s in 1usize..4,
        c in 1usize..16,
        m in 1usize..5,
        mode_sel in 0u8..4,
        threaded in any::<bool>(),
        keep_bits in 1u32..9,
        zero_pct in 0u32..11,
        seed in 0u64..1000,
    ) {
        let k = 5usize; // input spatial size
        let conv = prune_conv(
            random_conv("prop", (r, s), c, m, 1, Padding::Same, true, seed),
            keep_bits,
            f64::from(zero_pct) / 10.0,
            seed + 7,
        );
        let model = single_conv_model(conv, Shape::new(k, k, c));
        let input = random_input(model.input_shape, model.input_quant, seed + 1);
        let mode = mode_from(mode_sel);
        let engine = if threaded {
            ExecutionEngine::from_threads(2)
        } else {
            ExecutionEngine::Sequential
        };

        let tel = Telemetry::enabled(Level::Detail);
        let traced = run_model_traced(&model, &input, engine, mode, &tel)
            .expect("traced run");
        let plain = run_model_configured(&model, &input, engine, mode)
            .expect("plain run");

        // Pure observation: nothing about the run changes.
        prop_assert_eq!(plain.output.data(), traced.output.data());
        prop_assert_eq!(&plain.sublayers, &traced.sublayers);
        prop_assert_eq!(plain.cycles, traced.cycles);
        prop_assert_eq!(plain.pool, traced.pool);

        // One span per layer; per-layer and per-op argument sums each
        // reproduce the executed counters integer-for-integer.
        prop_assert_eq!(tel.span_count("functional.layer"), model.layers.len());
        prop_assert!(tel.span_count("functional.op") >= model.layers.len());
        for (field, get) in cycle_fields() {
            let want = get(&traced.cycles);
            prop_assert_eq!(
                tel.sum_u64_arg("functional.layer", field), want,
                "functional.layer {} diverged", field
            );
            prop_assert_eq!(
                tel.sum_u64_arg("functional.op", field), want,
                "functional.op {} diverged", field
            );
        }
        prop_assert_eq!(tel.counter("functional.pool.acquires"), traced.pool.acquires);
        prop_assert_eq!(tel.counter("functional.pool.releases"), traced.pool.releases);
    }

    /// The metrics-only level records no spans but keeps every counter,
    /// and the executed results still match the untraced run.
    #[test]
    fn summary_level_records_counters_without_spans(
        c in 1usize..12,
        m in 1usize..4,
        mode_sel in 0u8..4,
        seed in 0u64..1000,
    ) {
        let conv = random_conv("prop", (3, 3), c, m, 1, Padding::Same, true, seed);
        let model = single_conv_model(conv, Shape::new(5, 5, c));
        let input = random_input(model.input_shape, model.input_quant, seed + 1);
        let mode = mode_from(mode_sel);

        let tel = Telemetry::enabled(Level::Summary);
        let traced = run_model_traced(
            &model, &input, ExecutionEngine::Sequential, mode, &tel,
        ).expect("traced run");
        let plain = run_model_configured(
            &model, &input, ExecutionEngine::Sequential, mode,
        ).expect("plain run");

        prop_assert_eq!(plain.output.data(), traced.output.data());
        prop_assert_eq!(plain.cycles, traced.cycles);
        prop_assert_eq!(tel.total_spans(), 0);
        prop_assert_eq!(tel.counter("functional.pool.acquires"), traced.pool.acquires);
        prop_assert_eq!(tel.counter("functional.pool.releases"), traced.pool.releases);
    }
}
