//! Property tests of the `SparsityMode::SkipZeroRows` execution mode: for
//! random **and** pruned weights, skipping must be byte-identical to dense
//! execution with exactly reconciled cycle accounting, and on single-conv
//! models the executed skip counters must match the `sparsity::analyze`
//! prediction computed on the mapper's real lane packing.

use nc_dnn::workload::{prune_conv, random_conv, random_input, single_conv_model};
use nc_dnn::{Padding, Shape};
use neural_cache::functional::run_model_configured;
use neural_cache::{ExecutionEngine, SparsityMode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SkipZeroRows output is byte-identical to Dense for random and
    /// pruned weights, across kernel shapes, channels, strides and
    /// pruning strengths; the skipped/saved counters reconcile the two
    /// cycle counts exactly.
    #[test]
    fn skipping_is_byte_identical_to_dense(
        r in 1usize..4,
        s in 1usize..4,
        c in 1usize..20,
        m in 1usize..5,
        stride in 1usize..3,
        keep_bits in 1u32..9,
        zero_pct in 0u32..11,
        prune in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let k = 5usize; // input spatial size
        let mut conv = random_conv("prop", (r, s), c, m, stride, Padding::Same, true, seed);
        if prune {
            conv = prune_conv(conv, keep_bits, f64::from(zero_pct) / 10.0, seed + 7);
        }
        let model = single_conv_model(conv, Shape::new(k, k, c));
        let input = random_input(model.input_shape, model.input_quant, seed + 1);

        let dense = run_model_configured(
            &model, &input, ExecutionEngine::Sequential, SparsityMode::Dense,
        ).expect("dense run");
        let sparse = run_model_configured(
            &model, &input, ExecutionEngine::Sequential, SparsityMode::SkipZeroRows,
        ).expect("skip run");

        prop_assert_eq!(dense.output.data(), sparse.output.data());
        prop_assert_eq!(&dense.sublayers, &sparse.sublayers);
        prop_assert_eq!(dense.cycles.mul_rounds, sparse.cycles.mul_rounds);
        prop_assert_eq!(dense.cycles.skipped_rounds, 0);
        prop_assert!(sparse.cycles.skipped_rounds <= sparse.cycles.mul_rounds);
        prop_assert_eq!(
            sparse.cycles.compute_cycles + sparse.cycles.skipped_cycles,
            dense.cycles.compute_cycles,
            "saved cycles must reconcile the two runs"
        );
        prop_assert_eq!(dense.cycles.access_cycles, sparse.cycles.access_cycles);
    }

    /// The executed skip fraction equals the `sparsity::analyze`
    /// prediction exactly on single-conv models (the analysis walks the
    /// mapper's actual per-array lane packing).
    #[test]
    fn executed_skip_counters_match_analysis(
        r in 1usize..4,
        s in 1usize..4,
        c in 1usize..24,
        m in 1usize..6,
        keep_bits in 1u32..9,
        zero_pct in 0u32..11,
        seed in 0u64..1000,
    ) {
        let conv = prune_conv(
            random_conv("prop", (r, s), c, m, 1, Padding::Valid, true, seed),
            keep_bits,
            f64::from(zero_pct) / 10.0,
            seed + 3,
        );
        let model = single_conv_model(conv, Shape::new(4, 4, c));
        let input = random_input(model.input_shape, model.input_quant, seed + 5);
        let run = run_model_configured(
            &model, &input, ExecutionEngine::Sequential, SparsityMode::SkipZeroRows,
        ).expect("skip run");
        let predicted = neural_cache::sparsity::analyze(&model).simd_skip();
        let executed = run.cycles.skip_fraction();
        prop_assert!(
            (executed - predicted).abs() < 1e-12,
            "executed {} vs predicted {}", executed, predicted
        );
    }
}
