//! Property tests of the round-skipping execution modes: for random **and**
//! pruned weights, `SkipZeroRows` must be byte-identical to dense execution
//! with exactly reconciled cycle accounting, and on single-conv models the
//! executed skip counters must match the `sparsity::analyze` prediction
//! computed on the mapper's real lane packing. The dynamic modes
//! (`SkipZeroInputs`/`SkipBoth`) get the same treatment against ReLU-sparse
//! activations: byte identity with detect-aware reconciliation, and executed
//! input-skip counters equal to the `sparsity::activation_profile`
//! prediction exactly.

use nc_dnn::workload::{
    prune_conv, random_conv, random_input, relu_act_quant, relu_sparse_input, single_conv_model,
};
use nc_dnn::{Padding, Shape};
use neural_cache::functional::run_model_configured;
use neural_cache::{ExecutionEngine, SparsityMode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SkipZeroRows output is byte-identical to Dense for random and
    /// pruned weights, across kernel shapes, channels, strides and
    /// pruning strengths; the skipped/saved counters reconcile the two
    /// cycle counts exactly.
    #[test]
    fn skipping_is_byte_identical_to_dense(
        r in 1usize..4,
        s in 1usize..4,
        c in 1usize..20,
        m in 1usize..5,
        stride in 1usize..3,
        keep_bits in 1u32..9,
        zero_pct in 0u32..11,
        prune in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let k = 5usize; // input spatial size
        let mut conv = random_conv("prop", (r, s), c, m, stride, Padding::Same, true, seed);
        if prune {
            conv = prune_conv(conv, keep_bits, f64::from(zero_pct) / 10.0, seed + 7);
        }
        let model = single_conv_model(conv, Shape::new(k, k, c));
        let input = random_input(model.input_shape, model.input_quant, seed + 1);

        let dense = run_model_configured(
            &model, &input, ExecutionEngine::Sequential, SparsityMode::Dense,
        ).expect("dense run");
        let sparse = run_model_configured(
            &model, &input, ExecutionEngine::Sequential, SparsityMode::SkipZeroRows,
        ).expect("skip run");

        prop_assert_eq!(dense.output.data(), sparse.output.data());
        prop_assert_eq!(&dense.sublayers, &sparse.sublayers);
        prop_assert_eq!(dense.cycles.mul_rounds, sparse.cycles.mul_rounds);
        prop_assert_eq!(dense.cycles.skipped_rounds, 0);
        prop_assert!(sparse.cycles.skipped_rounds <= sparse.cycles.mul_rounds);
        prop_assert_eq!(
            sparse.cycles.compute_cycles + sparse.cycles.skipped_cycles,
            dense.cycles.compute_cycles,
            "saved cycles must reconcile the two runs"
        );
        prop_assert_eq!(dense.cycles.access_cycles, sparse.cycles.access_cycles);
    }

    /// The executed skip fraction equals the `sparsity::analyze`
    /// prediction exactly on single-conv models (the analysis walks the
    /// mapper's actual per-array lane packing).
    #[test]
    fn executed_skip_counters_match_analysis(
        r in 1usize..4,
        s in 1usize..4,
        c in 1usize..24,
        m in 1usize..6,
        keep_bits in 1u32..9,
        zero_pct in 0u32..11,
        seed in 0u64..1000,
    ) {
        let conv = prune_conv(
            random_conv("prop", (r, s), c, m, 1, Padding::Valid, true, seed),
            keep_bits,
            f64::from(zero_pct) / 10.0,
            seed + 3,
        );
        let model = single_conv_model(conv, Shape::new(4, 4, c));
        let input = random_input(model.input_shape, model.input_quant, seed + 5);
        let run = run_model_configured(
            &model, &input, ExecutionEngine::Sequential, SparsityMode::SkipZeroRows,
        ).expect("skip run");
        let predicted = neural_cache::sparsity::analyze(&model).simd_skip();
        let executed = run.cycles.skip_fraction();
        prop_assert!(
            (executed - predicted).abs() < 1e-12,
            "executed {} vs predicted {}", executed, predicted
        );
    }

    /// `SkipZeroInputs` and `SkipBoth` outputs are byte-identical to
    /// `Dense` across kernel shapes, channels, strides, paddings,
    /// activation densities and weight pruning; the detect-aware counters
    /// reconcile the cycle difference exactly
    /// (`sparse + saved - detect = dense`).
    #[test]
    fn dynamic_skipping_is_byte_identical_to_dense(
        r in 1usize..4,
        s in 1usize..4,
        c in 1usize..20,
        m in 1usize..5,
        stride in 1usize..3,
        zero_pct in 0u32..11,
        act_bits in 1u32..9,
        same_pad in any::<bool>(),
        prune in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let k = 5usize;
        let padding = if same_pad { Padding::Same } else { Padding::Valid };
        let mut conv = random_conv("prop", (r, s), c, m, stride, padding, true, seed);
        if prune {
            conv = prune_conv(conv, 3, 0.5, seed + 7);
        }
        let mut model = single_conv_model(conv, Shape::new(k, k, c));
        model.input_quant = relu_act_quant();
        let input = relu_sparse_input(
            model.input_shape, f64::from(zero_pct) / 10.0, act_bits, seed + 1,
        );

        let dense = run_model_configured(
            &model, &input, ExecutionEngine::Sequential, SparsityMode::Dense,
        ).expect("dense run");
        for mode in [SparsityMode::SkipZeroInputs, SparsityMode::SkipBoth] {
            let dynamic = run_model_configured(
                &model, &input, ExecutionEngine::Sequential, mode,
            ).expect("dynamic run");
            prop_assert_eq!(dense.output.data(), dynamic.output.data(), "{:?}", mode);
            prop_assert_eq!(&dense.sublayers, &dynamic.sublayers);
            prop_assert_eq!(dense.cycles.mul_rounds, dynamic.cycles.mul_rounds);
            prop_assert_eq!(dense.cycles.access_cycles, dynamic.cycles.access_cycles);
            prop_assert_eq!(
                dynamic.cycles.detect_cycles, dynamic.cycles.mul_rounds,
                "one detect per scheduled round"
            );
            prop_assert!(dynamic.cycles.input_rounds_skipped <= dynamic.cycles.mul_rounds);
            prop_assert_eq!(dynamic.cycles.skipped_rounds, 0, "no weight-round counter");
            prop_assert_eq!(
                dynamic.cycles.compute_cycles + dynamic.cycles.skipped_cycles
                    - dynamic.cycles.detect_cycles,
                dense.cycles.compute_cycles,
                "detect-aware reconciliation under {:?}", mode
            );
        }
    }

    /// The executed input-skip counters equal the
    /// `sparsity::activation_profile` prediction **exactly** — the profile
    /// replays the mapper's real lane packing on the actual input, so the
    /// counts (not just the fractions) must agree, under both dynamic
    /// modes and regardless of weight pruning.
    #[test]
    fn executed_input_skip_counters_match_activation_profile(
        r in 1usize..4,
        s in 1usize..4,
        c in 1usize..24,
        m in 1usize..6,
        zero_pct in 0u32..11,
        act_bits in 1u32..9,
        same_pad in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let padding = if same_pad { Padding::Same } else { Padding::Valid };
        let conv = random_conv("prop", (r, s), c, m, 1, padding, true, seed);
        let mut model = single_conv_model(conv, Shape::new(4, 4, c));
        model.input_quant = relu_act_quant();
        let input = relu_sparse_input(
            model.input_shape, f64::from(zero_pct) / 10.0, act_bits, seed + 5,
        );
        let profile = neural_cache::sparsity::activation_profile(&model, &input);
        for mode in [SparsityMode::SkipZeroInputs, SparsityMode::SkipBoth] {
            let run = run_model_configured(
                &model, &input, ExecutionEngine::Sequential, mode,
            ).expect("dynamic run");
            prop_assert_eq!(
                run.cycles.input_rounds_skipped,
                profile.skippable_rounds(),
                "executed vs predicted input skips under {:?}", mode
            );
            prop_assert_eq!(run.cycles.mul_rounds, profile.total_rounds());
            let executed = run.cycles.input_skip_fraction();
            let predicted = profile.input_skip();
            prop_assert!(
                (executed - predicted).abs() < 1e-12,
                "executed {} vs predicted {}", executed, predicted
            );
        }
    }
}
