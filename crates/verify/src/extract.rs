//! Schedule extraction: abstract per-cycle row activation sets for every
//! `nc-sram` operation, derived from [`Operand`] descriptors alone.
//!
//! Each extractor replays the *address arithmetic* of the corresponding
//! `ComputeArray` method — same loop structure, same row indices, same
//! counter bookkeeping — but never touches data. Sparsity variants take
//! the data-dependent facts (which multiplier rounds are all-zero, the
//! highest live multiplicand bit) as explicit parameters, because those
//! are exactly the bits of information the control FSM holds.
//!
//! The module's tests prove cycle-exactness: for each op the extracted
//! [`Schedule`]'s counters equal the [`nc_sram::CycleStats`] the real
//! array returns for the same operands.

use nc_sram::Operand;

use crate::ir::Schedule;

/// `dst <- a + b` (`n` cycles, `n + 1` with a carry-out destination).
#[must_use]
pub fn add(a: Operand, b: Operand, dst: Operand) -> Schedule {
    let n = a.bits();
    let mut s = Schedule::new();
    for i in 0..n {
        s.sense2(a.row(i), b.row(i), dst.row(i), "op_full_add");
    }
    if dst.bits() == n + 1 {
        s.write_only(dst.row(n), "op_write_carry");
    }
    s
}

/// `acc <- acc + addend` with zero extension (`acc.bits()` cycles).
#[must_use]
pub fn add_assign(acc: Operand, addend: Operand) -> Schedule {
    let mut s = Schedule::new();
    for i in 0..addend.bits() {
        s.sense2(addend.row(i), acc.row(i), acc.row(i), "op_full_add");
    }
    for i in addend.bits()..acc.bits() {
        s.sense1(acc.row(i), acc.row(i), "op_full_add_const");
    }
    s
}

/// `op <- op + k` (`op.bits()` cycles, independent of `k`).
#[must_use]
pub fn add_scalar(op: Operand) -> Schedule {
    let mut s = Schedule::new();
    for i in 0..op.bits() {
        s.sense1(op.row(i), op.row(i), "op_full_add_const");
    }
    s
}

/// `dst <- a - b` via two's complement through `scratch` (`2n` cycles).
#[must_use]
pub fn sub(a: Operand, b: Operand, dst: Operand, scratch: Operand, zero_row: usize) -> Schedule {
    let n = a.bits();
    let mut s = Schedule::new();
    for i in 0..n {
        s.sense_not(b.row(i), zero_row, Some(scratch.row(i)), "op_not");
    }
    for i in 0..n {
        s.sense2(a.row(i), scratch.row(i), dst.row(i), "op_full_add");
    }
    s
}

/// Region clear / constant broadcast (`op.bits()` write-only cycles).
#[must_use]
pub fn broadcast(op: Operand) -> Schedule {
    let mut s = Schedule::new();
    for i in 0..op.bits() {
        s.write_only(op.row(i), "op_write_const");
    }
    s
}

/// `dst <- src` (`bits` cycles; zero if the regions coincide exactly).
#[must_use]
pub fn copy(src: Operand, dst: Operand) -> Schedule {
    let mut s = Schedule::new();
    if src == dst {
        return s;
    }
    for i in 0..src.bits() {
        s.sense1(src.row(i), dst.row(i), "op_copy");
    }
    s
}

/// `dst <- zext(src)` (`dst.bits()` cycles).
#[must_use]
pub fn copy_zext(src: Operand, dst: Operand) -> Schedule {
    let mut s = Schedule::new();
    for i in 0..src.bits() {
        s.sense1(src.row(i), dst.row(i), "op_copy");
    }
    for i in src.bits()..dst.bits() {
        s.write_only(dst.row(i), "op_write_const");
    }
    s
}

/// `dst <- !src` (`bits` two-row senses against the zero row).
#[must_use]
pub fn not_region(src: Operand, dst: Operand, zero_row: usize) -> Schedule {
    let mut s = Schedule::new();
    for i in 0..src.bits() {
        s.sense_not(src.row(i), zero_row, Some(dst.row(i)), "op_not");
    }
    s
}

/// Bitwise AND/OR/XOR/NOR region op (`bits` two-row senses).
#[must_use]
pub fn logic_region(a: Operand, b: Operand, dst: Operand) -> Schedule {
    let mut s = Schedule::new();
    for i in 0..a.bits() {
        s.sense2(a.row(i), b.row(i), dst.row(i), "op_logic");
    }
    s
}

/// Tag-latch equality search against a broadcast constant (`bits` cycles).
#[must_use]
pub fn search_eq_scalar(op: Operand) -> Schedule {
    let mut s = Schedule::new();
    for i in 0..op.bits() {
        s.read_only(op.row(i), "op_and_tag");
    }
    s
}

/// Dense `prod <- a * b` (`prod.bits() + m * (n + 2)` cycles).
#[must_use]
pub fn mul(a: Operand, b: Operand, prod: Operand) -> Schedule {
    let (n, m) = (a.bits(), b.bits());
    let mut s = broadcast(prod);
    for j in 0..m {
        s.mul_rounds += 1;
        emit_mul_round(&mut s, a, b, prod, j, n);
    }
    s
}

/// `mul_skip_zero_rows`: `skipped[j]` says multiplier bit-slice `j` is
/// all-zero on every lane (known statically for stationary weights).
#[must_use]
pub fn mul_skip_zero_rows(a: Operand, b: Operand, prod: Operand, skipped: &[bool]) -> Schedule {
    let (n, m) = (a.bits(), b.bits());
    debug_assert_eq!(skipped.len(), m);
    let mut s = broadcast(prod);
    for j in 0..m {
        s.mul_rounds += 1;
        if skipped.get(j).copied().unwrap_or(false) {
            s.skipped_rounds += 1;
            s.skipped_cycles += n as u64 + 2;
            continue;
        }
        emit_mul_round(&mut s, a, b, prod, j, n);
    }
    s
}

/// `mul_skip_zero_input_bits`: every round pays a 1-cycle zero-detect;
/// `zero_rounds[j]` says the detect fires (slice all-zero).
#[must_use]
pub fn mul_skip_zero_input_bits(
    a: Operand,
    b: Operand,
    prod: Operand,
    zero_rounds: &[bool],
) -> Schedule {
    let (n, m) = (a.bits(), b.bits());
    debug_assert_eq!(zero_rounds.len(), m);
    let mut s = broadcast(prod);
    for j in 0..m {
        s.mul_rounds += 1;
        s.detect(b.row(j));
        if zero_rounds.get(j).copied().unwrap_or(false) {
            s.input_rounds_skipped += 1;
            s.skipped_cycles += n as u64 + 2;
            continue;
        }
        emit_mul_round(&mut s, a, b, prod, j, n);
    }
    s
}

/// `mul_skip_both`: dynamic input-round elision plus static multiplicand
/// truncation to the highest live bit `live` (`0 ..= n`).
#[must_use]
pub fn mul_skip_both(
    a: Operand,
    b: Operand,
    prod: Operand,
    zero_rounds: &[bool],
    live: usize,
) -> Schedule {
    let (n, m) = (a.bits(), b.bits());
    debug_assert_eq!(zero_rounds.len(), m);
    debug_assert!(live <= n);
    let mut s = broadcast(prod);
    for j in 0..m {
        s.mul_rounds += 1;
        s.detect(b.row(j));
        if zero_rounds.get(j).copied().unwrap_or(false) {
            s.input_rounds_skipped += 1;
            s.skipped_cycles += n as u64 + 2;
            continue;
        }
        s.skipped_cycles += (n - live) as u64;
        s.read_only(b.row(j), "op_load_tag");
        for i in 0..live {
            s.sense2(a.row(i), prod.row(j + i), prod.row(j + i), "op_full_add");
        }
        s.write_only(prod.row(j + live), "op_write_carry");
    }
    s
}

/// `prod <- a * k` for an FSM-held constant: one `add_assign` per set bit.
///
/// # Panics
///
/// Panics if `prod` is too narrow to hold a window for `k`'s highest set
/// bit — the real op rejects such operands before scheduling.
#[must_use]
pub fn mul_scalar(a: Operand, k: u64, prod: Operand) -> Schedule {
    let klen = (64 - k.leading_zeros()) as usize;
    let mut s = broadcast(prod);
    for j in 0..klen {
        if (k >> j) & 1 == 1 {
            let window = prod
                .slice(j, prod.bits() - j)
                .expect("verified by the real op");
            s.extend(add_assign(window, a));
        }
    }
    s
}

/// Trial subtraction leaving the no-borrow flag in the carry latch
/// (`2n` cycles, sums discarded into `dump_row`).
#[must_use]
pub fn compare_ge(
    a: Operand,
    b: Operand,
    scratch: Operand,
    dump_row: usize,
    zero_row: usize,
) -> Schedule {
    let n = a.bits();
    let mut s = Schedule::new();
    for i in 0..n {
        s.sense_not(b.row(i), zero_row, Some(scratch.row(i)), "op_not");
    }
    for i in 0..n {
        s.sense2(a.row(i), scratch.row(i), dump_row, "op_full_add");
    }
    s
}

/// `acc <- max(acc, x)` (`3n + 2` cycles).
#[must_use]
pub fn max_assign(
    acc: Operand,
    x: Operand,
    scratch: Operand,
    dump_row: usize,
    zero_row: usize,
) -> Schedule {
    let mut s = compare_ge(acc, x, scratch, dump_row, zero_row);
    s.write_only(dump_row, "op_write_carry");
    s.sense_not(dump_row, zero_row, None, "op_load_tag_not");
    s.extend(copy(x, acc));
    s
}

/// `acc <- min(acc, x)` (`3n + 2` cycles).
#[must_use]
pub fn min_assign(
    acc: Operand,
    x: Operand,
    scratch: Operand,
    dump_row: usize,
    zero_row: usize,
) -> Schedule {
    let mut s = compare_ge(acc, x, scratch, dump_row, zero_row);
    s.write_only(dump_row, "op_write_carry");
    s.read_only(dump_row, "op_load_tag");
    s.extend(copy(x, acc));
    s
}

/// `ReLU` via the sign-bit write mask (`n + 1` cycles).
#[must_use]
pub fn relu(x: Operand) -> Schedule {
    let mut s = Schedule::new();
    s.read_only(x.msb_row(), "op_load_tag");
    for i in 0..x.bits() {
        s.write_only(x.row(i), "op_write_const");
    }
    s
}

/// Saturation `op <- min(op, k)` (`2n + 2` cycles; zero only when nothing
/// can exceed `k = u64::MAX`).
#[must_use]
pub fn clamp_max_scalar(op: Operand, k: u64, dump_row: usize) -> Schedule {
    let mut s = Schedule::new();
    if k == u64::MAX {
        return s;
    }
    for i in 0..op.bits() {
        s.sense1(op.row(i), dump_row, "op_full_add_const");
    }
    s.write_only(dump_row, "op_write_carry");
    s.read_only(dump_row, "op_load_tag");
    for i in 0..op.bits() {
        s.write_only(op.row(i), "op_write_const");
    }
    s
}

/// Lane move `dst[lane] <- src[lane + shift]` (2 cycles per row; the
/// grouped variant has the identical row schedule).
#[must_use]
pub fn move_lanes(src: Operand, dst: Operand) -> Schedule {
    let mut s = Schedule::new();
    for i in 0..src.bits() {
        s.lane_move_row(src.row(i), dst.row(i));
    }
    s
}

/// Tree reduction skeleton shared by sum/max/min: one lane move plus one
/// combine per halving step.
fn reduce_with(
    value: Operand,
    scratch: Operand,
    lanes: usize,
    combine: impl Fn(Operand, Operand) -> Schedule,
) -> Schedule {
    let mut s = Schedule::new();
    let mut stride = lanes / 2;
    while stride >= 1 {
        s.extend(move_lanes(value, scratch));
        s.extend(combine(value, scratch));
        stride /= 2;
    }
    s
}

/// Tree-sum reduction (`log2(lanes) * 3w` cycles).
#[must_use]
pub fn reduce_sum(value: Operand, scratch: Operand, lanes: usize) -> Schedule {
    reduce_with(value, scratch, lanes, add_assign)
}

/// Tree-max reduction (`log2(lanes) * (2w + 3w + 2)` cycles).
#[must_use]
pub fn reduce_max(
    value: Operand,
    scratch: Operand,
    cmp_scratch: Operand,
    dump_row: usize,
    lanes: usize,
    zero_row: usize,
) -> Schedule {
    reduce_with(value, scratch, lanes, |acc, x| {
        max_assign(acc, x, cmp_scratch, dump_row, zero_row)
    })
}

/// Tree-min reduction (`log2(lanes) * (2w + 3w + 2)` cycles).
#[must_use]
pub fn reduce_min(
    value: Operand,
    scratch: Operand,
    cmp_scratch: Operand,
    dump_row: usize,
    lanes: usize,
    zero_row: usize,
) -> Schedule {
    reduce_with(value, scratch, lanes, |acc, x| {
        min_assign(acc, x, cmp_scratch, dump_row, zero_row)
    })
}

/// Grouped tree-sum reduction: same row schedule as [`reduce_sum`] with
/// `group_lanes` in place of `lanes`.
#[must_use]
pub fn reduce_sum_grouped(value: Operand, scratch: Operand, group_lanes: usize) -> Schedule {
    reduce_sum(value, scratch, group_lanes)
}

/// Inter-array lane transfer: one access-path read per source row plus one
/// access-path write per destination row.
#[must_use]
pub fn copy_lanes_between(src_op: Operand, dst_op: Operand) -> Schedule {
    let mut s = Schedule::new();
    for i in 0..src_op.bits() {
        s.transfer_row(src_op.row(i), dst_op.row(i));
    }
    s
}

/// Emits one executed multiplier-bit round: tag load, `n` predicated adds
/// at offset `j`, carry commit at `prod[j + n]`.
fn emit_mul_round(s: &mut Schedule, a: Operand, b: Operand, prod: Operand, j: usize, n: usize) {
    s.read_only(b.row(j), "op_load_tag");
    for i in 0..n {
        s.sense2(a.row(i), prod.row(j + i), prod.row(j + i), "op_full_add");
    }
    s.write_only(prod.row(j + n), "op_write_carry");
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_sram::{ComputeArray, Predicate};

    const ZERO: usize = 255;
    const DUMP: usize = 250;

    fn arr() -> ComputeArray {
        ComputeArray::with_zero_row(ZERO).unwrap()
    }

    fn op(base: usize, bits: usize) -> Operand {
        Operand::new(base, bits).unwrap()
    }

    /// Asserts every counter of the extracted schedule equals the executed
    /// stats the real array reported.
    fn assert_counters(s: &Schedule, d: nc_sram::CycleStats, what: &str) {
        assert_eq!(s.compute_cycles(), d.compute_cycles, "{what}: compute");
        assert_eq!(s.access_cycles(), d.access_cycles, "{what}: access");
        assert_eq!(s.mul_rounds, d.mul_rounds, "{what}: rounds");
        assert_eq!(s.skipped_rounds, d.skipped_rounds, "{what}: skipped");
        assert_eq!(
            s.input_rounds_skipped, d.input_rounds_skipped,
            "{what}: input skips"
        );
        assert_eq!(s.detect_cycles, d.detect_cycles, "{what}: detects");
        assert_eq!(s.skipped_cycles, d.skipped_cycles, "{what}: saved cycles");
    }

    #[test]
    fn add_family_is_cycle_exact() {
        let mut a = arr();
        let (x, y) = (op(0, 8), op(8, 8));
        let wide = op(16, 9);
        let narrow = op(32, 8);
        assert_counters(&add(x, y, wide), a.add(x, y, wide).unwrap(), "add+carry");
        assert_counters(&add(x, y, narrow), a.add(x, y, narrow).unwrap(), "add");
        let acc = op(40, 24);
        assert_counters(
            &add_assign(acc, x),
            a.add_assign(acc, x).unwrap(),
            "add_assign",
        );
        assert_counters(
            &add_scalar(acc),
            a.add_scalar(acc, 77).unwrap(),
            "add_scalar",
        );
        let (dst, scratch) = (op(64, 8), op(72, 8));
        assert_counters(
            &sub(x, y, dst, scratch, ZERO),
            a.sub(x, y, dst, scratch).unwrap(),
            "sub",
        );
    }

    #[test]
    fn logic_family_is_cycle_exact() {
        let mut a = arr();
        let (x, y, dst) = (op(0, 8), op(8, 8), op(16, 8));
        assert_counters(&broadcast(x), a.zero(x).unwrap(), "zero");
        assert_counters(
            &broadcast(x),
            a.broadcast_scalar(x, 170).unwrap(),
            "broadcast",
        );
        assert_counters(
            &copy(x, dst),
            a.copy(x, dst, Predicate::Always).unwrap(),
            "copy",
        );
        assert_counters(
            &copy(x, x),
            a.copy(x, x, Predicate::Always).unwrap(),
            "copy self",
        );
        let wide = op(24, 16);
        assert_counters(&copy_zext(x, wide), a.copy_zext(x, wide).unwrap(), "zext");
        assert_counters(
            &not_region(x, dst, ZERO),
            a.not_region(x, dst).unwrap(),
            "not",
        );
        assert_counters(
            &logic_region(x, y, dst),
            a.logic_region(nc_sram::ops::LogicOp::And, x, y, dst)
                .unwrap(),
            "and",
        );
        assert_counters(
            &search_eq_scalar(x),
            a.search_eq_scalar(x, 42).unwrap(),
            "search",
        );
    }

    #[test]
    fn dense_mul_is_cycle_exact() {
        let mut a = arr();
        let (x, y, p) = (op(0, 8), op(8, 8), op(16, 16));
        a.poke_lane(0, x, 200);
        a.poke_lane(0, y, 255);
        let s = mul(x, y, p);
        assert_counters(&s, a.mul(x, y, p).unwrap(), "mul");
        assert_eq!(s.compute_cycles(), 96);
        assert_counters(
            &mul_scalar(x, 181, op(32, 24)),
            a.mul_scalar(x, 181, op(32, 24)).unwrap(),
            "mul_scalar",
        );
        assert_counters(
            &mul_scalar(x, 0, op(32, 24)),
            a.mul_scalar(x, 0, op(32, 24)).unwrap(),
            "mul_scalar zero",
        );
    }

    #[test]
    fn sparse_mul_variants_are_cycle_exact() {
        // Low-nibble multipliers across lanes: rounds 4..8 are all-zero.
        let values = [(200u64, 9u64), (37, 0), (255, 15), (1, 8)];
        let zero_rounds = [false, false, false, false, true, true, true, true];
        let (x, y, p) = (op(0, 8), op(8, 8), op(16, 16));

        let mut a = arr();
        for (lane, (wx, wy)) in values.iter().enumerate() {
            a.poke_lane(lane, x, *wx);
            a.poke_lane(lane, y, *wy);
        }
        let s = mul_skip_zero_rows(x, y, p, &zero_rounds);
        assert_counters(&s, a.mul_skip_zero_rows(x, y, p).unwrap(), "skip rows");
        assert_eq!(s.skipped_rounds, 4);
        assert_eq!(s.skipped_cycles, 40);

        let mut a = arr();
        for (lane, (wx, wy)) in values.iter().enumerate() {
            a.poke_lane(lane, x, *wx);
            a.poke_lane(lane, y, *wy);
        }
        let s = mul_skip_zero_input_bits(x, y, p, &zero_rounds);
        assert_counters(
            &s,
            a.mul_skip_zero_input_bits(x, y, p).unwrap(),
            "skip inputs",
        );
        assert_eq!(s.detect_cycles, 8);

        // Weights limited to 3 live bits: live = 3.
        let trunc = [(5u64, 9u64), (7, 0), (3, 15), (1, 8)];
        let mut a = arr();
        for (lane, (wx, wy)) in trunc.iter().enumerate() {
            a.poke_lane(lane, x, *wx);
            a.poke_lane(lane, y, *wy);
        }
        let s = mul_skip_both(x, y, p, &zero_rounds, 3);
        assert_counters(&s, a.mul_skip_both(x, y, p).unwrap(), "skip both");
        assert_eq!(s.skipped_cycles, 4 * 10 + 4 * 5);
    }

    #[test]
    fn cmp_family_is_cycle_exact() {
        let mut a = arr();
        let (x, y, scratch) = (op(0, 8), op(8, 8), op(16, 8));
        assert_counters(
            &compare_ge(x, y, scratch, DUMP, ZERO),
            a.compare_ge(x, y, scratch, DUMP).unwrap(),
            "compare_ge",
        );
        assert_counters(
            &max_assign(x, y, scratch, DUMP, ZERO),
            a.max_assign(x, y, scratch, DUMP).unwrap(),
            "max_assign",
        );
        assert_counters(
            &min_assign(x, y, scratch, DUMP, ZERO),
            a.min_assign(x, y, scratch, DUMP).unwrap(),
            "min_assign",
        );
        assert_counters(&relu(x), a.relu(x).unwrap(), "relu");
        assert_counters(
            &clamp_max_scalar(x, 100, DUMP),
            a.clamp_max_scalar(x, 100, DUMP).unwrap(),
            "clamp",
        );
        let wide = op(24, 64);
        assert_counters(
            &clamp_max_scalar(wide, u64::MAX, DUMP),
            a.clamp_max_scalar(wide, u64::MAX, DUMP).unwrap(),
            "clamp no-op",
        );
    }

    #[test]
    fn reduce_family_is_cycle_exact() {
        let mut a = arr();
        let (value, scratch) = (op(0, 32), op(32, 32));
        assert_counters(
            &move_lanes(value, scratch),
            a.move_lanes(value, scratch, 8, 8).unwrap(),
            "move_lanes",
        );
        let s = reduce_sum(value, scratch, 16);
        assert_counters(&s, a.reduce_sum(value, scratch, 16).unwrap(), "reduce_sum");
        assert_eq!(s.compute_cycles(), 4 * (64 + 32));
        let (cmp, v8, s8) = (op(80, 8), op(64, 8), op(72, 8));
        assert_counters(
            &reduce_max(v8, s8, cmp, DUMP, 8, ZERO),
            a.reduce_max(v8, s8, cmp, DUMP, 8).unwrap(),
            "reduce_max",
        );
        assert_counters(
            &reduce_min(v8, s8, cmp, DUMP, 8, ZERO),
            a.reduce_min(v8, s8, cmp, DUMP, 8).unwrap(),
            "reduce_min",
        );
        assert_counters(
            &reduce_sum_grouped(value, scratch, 8),
            a.reduce_sum_grouped(value, scratch, 8, 16).unwrap(),
            "reduce_sum_grouped",
        );
    }

    #[test]
    fn transfer_is_cycle_exact() {
        let mut a = arr();
        let mut b = arr();
        let region = op(0, 32);
        let s = copy_lanes_between(region, region);
        let d = nc_sram::ops::copy_lanes_between(&mut a, region, &mut b, region, 0, 16).unwrap();
        assert_counters(&s, d, "copy_lanes_between");
        assert_eq!(s.access_cycles(), 64);
    }
}
