//! Structured diagnostics with stable error codes.
//!
//! Every hazard the verifier can detect has a fixed `Vxxx` code so CI
//! artifacts, tests, and humans can match on the class of failure without
//! parsing prose. Codes are append-only: existing codes never change
//! meaning.

use std::fmt;

/// Stable error codes of the static plan verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// V001: two operand regions of one operation share word lines.
    OperandOverlap,
    /// V002: an operand's rows extend past the array's word lines.
    RowOutOfBounds,
    /// V003: one compute cycle activates more than two read word lines
    /// (or the same word line twice — two-row activation needs distinct
    /// rows).
    ReadPortOverflow,
    /// V004: one compute cycle drives more than one write word line.
    WritePortOverflow,
    /// V005: a compute cycle writes the dedicated all-zero row.
    ZeroRowClobbered,
    /// V006: a convolution mapping's row budget exceeds the array.
    RowBudgetOverflow,
    /// V007: lane packing aliases two filter groups onto one bit line.
    LanePackingAlias,
    /// V008: a reduction group span is not a power of two.
    NonPowerOfTwoLanes,
    /// V009: statically derived schedule length disagrees with the
    /// analytical cost model.
    CycleMismatchAnalytical,
    /// V010: executed cycle counters disagree with the static schedule.
    CycleMismatchExecuted,
    /// V011: the reserved-way dump overlap exceeds its port-conflict
    /// window.
    ReservedWayPortConflict,
    /// V012: an operand region claims the comparison dump row.
    DumpRowConflict,
    /// V013: two concurrent shards write overlapping word lines of the
    /// same array.
    ShardWriteWriteRace,
    /// V014: a concurrent shard reads word lines another shard writes in
    /// the same array.
    ShardReadWriteRace,
    /// V015: a cross-shard accumulator read is not dominated by the
    /// inter-array reduce barrier (or any barrier at all).
    BarrierBypass,
    /// V016: the array pool recycled an array still reachable by a live
    /// shard (two concurrent shards hold the same checkout).
    PrematureRecycle,
    /// V017: a shard claims the reserved way inside the batch pipeline's
    /// dump-overlap window.
    DumpWindowRace,
    /// V018: an epoch's shard jobs do not exactly partition its output
    /// slot space (overlapping or missing coverage).
    ShardCoverageHole,
    /// V019: a shard's pool checkouts and returns do not balance (leaked
    /// or doubly released array).
    PoolEventImbalance,
    /// V020: executed `ArrayPool` event counts disagree with the static
    /// shard graph's prediction.
    ExecutedPoolMismatch,
    /// V021: a proven accumulator interval exceeds its allocated operand
    /// width (possible silent wraparound), or an executed per-layer
    /// min/max escaped the certified static interval.
    AccumulatorOverflow,
    /// V022: a proven accumulator range is too wide for the requantization
    /// pipeline's 32-bit multiply operand (values past the width would be
    /// clipped before the scalar multiply).
    RequantClippingRange,
    /// V023: a proven interval cannot be biased into unsigned order by the
    /// ranging offset (sign-extension mismatch in the min/max trees).
    SignExtensionMismatch,
    /// V024: an operand allocation carries at least N provably-dead high
    /// bits (over-provisioned rows the bit-budget advisor should trim).
    OverProvisionedRows,
    /// V025: a value range is degenerate (statically a single value), so
    /// the layer computes a constant.
    DegenerateRange,
    /// V026: the `SkipBoth` live-bit truncation width is below the highest
    /// set weight bit (unsound truncation would corrupt products).
    UnsoundTruncation,
    /// V027: a reduction-tree operand is narrower than the proven worst
    /// case of the running sums it carries.
    ReduceWidthDeficit,
}

/// Coarse diagnostic class used by `plan_lint` to pick its exit code:
/// structural/static hazards versus executed-vs-static reconciliation
/// failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// A static property of the plan or schedule is violated.
    Hazard,
    /// An executed run disagreed with its static prediction.
    Reconciliation,
}

impl ErrorCode {
    /// Every stable code, in `Vxxx` order. This array is the single source
    /// of truth for the diagnostic table: tests derive the README table
    /// check and uniqueness from it.
    pub const ALL: [ErrorCode; 27] = [
        ErrorCode::OperandOverlap,
        ErrorCode::RowOutOfBounds,
        ErrorCode::ReadPortOverflow,
        ErrorCode::WritePortOverflow,
        ErrorCode::ZeroRowClobbered,
        ErrorCode::RowBudgetOverflow,
        ErrorCode::LanePackingAlias,
        ErrorCode::NonPowerOfTwoLanes,
        ErrorCode::CycleMismatchAnalytical,
        ErrorCode::CycleMismatchExecuted,
        ErrorCode::ReservedWayPortConflict,
        ErrorCode::DumpRowConflict,
        ErrorCode::ShardWriteWriteRace,
        ErrorCode::ShardReadWriteRace,
        ErrorCode::BarrierBypass,
        ErrorCode::PrematureRecycle,
        ErrorCode::DumpWindowRace,
        ErrorCode::ShardCoverageHole,
        ErrorCode::PoolEventImbalance,
        ErrorCode::ExecutedPoolMismatch,
        ErrorCode::AccumulatorOverflow,
        ErrorCode::RequantClippingRange,
        ErrorCode::SignExtensionMismatch,
        ErrorCode::OverProvisionedRows,
        ErrorCode::DegenerateRange,
        ErrorCode::UnsoundTruncation,
        ErrorCode::ReduceWidthDeficit,
    ];

    /// The stable `Vxxx` identifier.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::OperandOverlap => "V001",
            ErrorCode::RowOutOfBounds => "V002",
            ErrorCode::ReadPortOverflow => "V003",
            ErrorCode::WritePortOverflow => "V004",
            ErrorCode::ZeroRowClobbered => "V005",
            ErrorCode::RowBudgetOverflow => "V006",
            ErrorCode::LanePackingAlias => "V007",
            ErrorCode::NonPowerOfTwoLanes => "V008",
            ErrorCode::CycleMismatchAnalytical => "V009",
            ErrorCode::CycleMismatchExecuted => "V010",
            ErrorCode::ReservedWayPortConflict => "V011",
            ErrorCode::DumpRowConflict => "V012",
            ErrorCode::ShardWriteWriteRace => "V013",
            ErrorCode::ShardReadWriteRace => "V014",
            ErrorCode::BarrierBypass => "V015",
            ErrorCode::PrematureRecycle => "V016",
            ErrorCode::DumpWindowRace => "V017",
            ErrorCode::ShardCoverageHole => "V018",
            ErrorCode::PoolEventImbalance => "V019",
            ErrorCode::ExecutedPoolMismatch => "V020",
            ErrorCode::AccumulatorOverflow => "V021",
            ErrorCode::RequantClippingRange => "V022",
            ErrorCode::SignExtensionMismatch => "V023",
            ErrorCode::OverProvisionedRows => "V024",
            ErrorCode::DegenerateRange => "V025",
            ErrorCode::UnsoundTruncation => "V026",
            ErrorCode::ReduceWidthDeficit => "V027",
        }
    }

    /// Short human title of the hazard class, matching the README table's
    /// second column (the table-coverage test compares against this).
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            ErrorCode::OperandOverlap => "Operand overlap",
            ErrorCode::RowOutOfBounds => "Row out of bounds",
            ErrorCode::ReadPortOverflow => "Read-port overflow",
            ErrorCode::WritePortOverflow => "Write-port overflow",
            ErrorCode::ZeroRowClobbered => "Zero-row clobber",
            ErrorCode::RowBudgetOverflow => "Row-budget overflow",
            ErrorCode::LanePackingAlias => "Lane-packing alias",
            ErrorCode::NonPowerOfTwoLanes => "Non-power-of-two span",
            ErrorCode::CycleMismatchAnalytical => "Static/analytical cycle mismatch",
            ErrorCode::CycleMismatchExecuted => "Static/executed cycle mismatch",
            ErrorCode::ReservedWayPortConflict => "Reserved-way port conflict",
            ErrorCode::DumpRowConflict => "Dump-row conflict",
            ErrorCode::ShardWriteWriteRace => "Shard write-write race",
            ErrorCode::ShardReadWriteRace => "Shard read-write race",
            ErrorCode::BarrierBypass => "Reduce-barrier bypass",
            ErrorCode::PrematureRecycle => "Premature pool recycle",
            ErrorCode::DumpWindowRace => "Dump-window race",
            ErrorCode::ShardCoverageHole => "Shard coverage hole",
            ErrorCode::PoolEventImbalance => "Pool event imbalance",
            ErrorCode::ExecutedPoolMismatch => "Executed pool mismatch",
            ErrorCode::AccumulatorOverflow => "Accumulator overflow",
            ErrorCode::RequantClippingRange => "Requant clipping range",
            ErrorCode::SignExtensionMismatch => "Sign-extension mismatch",
            ErrorCode::OverProvisionedRows => "Over-provisioned rows",
            ErrorCode::DegenerateRange => "Degenerate range",
            ErrorCode::UnsoundTruncation => "Unsound live-bit truncation",
            ErrorCode::ReduceWidthDeficit => "Reduce-tree width deficit",
        }
    }

    /// Whether this code reports a static hazard or an executed-vs-static
    /// reconciliation failure (`plan_lint` exits 1 vs 2 on them).
    #[must_use]
    pub fn category(self) -> Category {
        match self {
            ErrorCode::CycleMismatchAnalytical
            | ErrorCode::CycleMismatchExecuted
            | ErrorCode::ExecutedPoolMismatch => Category::Reconciliation,
            _ => Category::Hazard,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verifier finding: the hazard class, the offending operation, and
/// the word-line range involved (when row-addressed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable hazard class.
    pub code: ErrorCode,
    /// Label of the offending operation or check context (e.g.
    /// `"mac_reduce/mul"` or `"Conv2d_2b_3x3/SkipZeroRows"`).
    pub op: String,
    /// Offending word-line range `[start, end)`, when the hazard is
    /// row-addressed.
    pub rows: Option<(usize, usize)>,
    /// Human-readable description with the concrete values.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic without a row range.
    #[must_use]
    pub fn new(code: ErrorCode, op: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            op: op.into(),
            rows: None,
            message: message.into(),
        }
    }

    /// Attaches the offending word-line range.
    #[must_use]
    pub fn with_rows(mut self, start: usize, end: usize) -> Self {
        self.rows = Some((start, end));
        self
    }

    /// Serializes this diagnostic as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows = match self.rows {
            Some((start, end)) => format!(r#"{{"start":{start},"end":{end}}}"#),
            None => "null".to_string(),
        };
        format!(
            r#"{{"code":"{}","op":"{}","rows":{},"message":"{}"}}"#,
            self.code,
            escape_json(&self.op),
            rows,
            escape_json(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.code, self.op, self.message)?;
        if let Some((start, end)) = self.rows {
            write!(f, " (rows {start}..{end})")?;
        }
        Ok(())
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for (i, code) in ErrorCode::ALL.into_iter().enumerate() {
            assert!(seen.insert(code.as_str()), "duplicate code {code}");
            // ALL is ordered: position i carries identifier V(i+1).
            assert_eq!(code.as_str(), format!("V{:03}", i + 1));
            assert!(!code.description().is_empty());
        }
        assert_eq!(seen.len(), 27);
    }

    #[test]
    fn categories_split_reconciliation_from_hazards() {
        let recon: Vec<&str> = ErrorCode::ALL
            .into_iter()
            .filter(|c| c.category() == Category::Reconciliation)
            .map(ErrorCode::as_str)
            .collect();
        assert_eq!(recon, ["V009", "V010", "V020"]);
    }

    #[test]
    fn diagnostic_renders_rows_and_json() {
        let d = Diagnostic::new(ErrorCode::OperandOverlap, "mul", "a overlaps b").with_rows(8, 16);
        let shown = d.to_string();
        assert!(shown.contains("V001"));
        assert!(shown.contains("rows 8..16"));
        let json = d.to_json();
        assert!(json.contains(r#""code":"V001""#));
        assert!(json.contains(r#""start":8"#));

        let quoted = Diagnostic::new(ErrorCode::RowOutOfBounds, r#"op"x"#, "msg\n2");
        assert!(quoted.to_json().contains(r#"op\"x"#));
        assert!(quoted.to_json().contains(r"msg\n2"));
    }
}
