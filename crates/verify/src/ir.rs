//! The abstract schedule IR: per-cycle word-line read/write sets.
//!
//! A [`Schedule`] is a straight-line sequence of [`Step`]s, one per array
//! cycle, recording only which word lines each cycle activates — no data.
//! The extractors in [`crate::extract`] build these by replaying the
//! *address arithmetic* of each `nc-sram` operation; the checker in
//! [`crate::check`] then proves port-safety properties over them, and the
//! cycle reconciliation compares their lengths against the analytical cost
//! model and executed counters.

/// Whether a cycle uses the compute path (two-row activation through the
/// bit-line peripherals) or the conventional access path (streaming
/// reads/writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Bit-line compute cycle (counted in `compute_cycles`).
    Compute,
    /// Conventional access cycle (counted in `access_cycles`).
    Access,
}

/// One array cycle: the word lines it senses and the word lines it drives
/// for write-back.
///
/// The hardware activates at most **two** read word lines per compute
/// cycle (the two-row sense of Figure 7) and commits at most **one** write
/// word line. Reading and writing the *same* row in one cycle is legal —
/// the sense phase completes before write-back (this is how in-place adds
/// work) — but sensing one row twice is not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Compute or access path.
    pub kind: StepKind,
    /// Word lines sensed this cycle (hardware port budget: 2).
    pub reads: Vec<usize>,
    /// Word lines driven for write-back this cycle (hardware port
    /// budget: 1).
    pub writes: Vec<usize>,
    /// Micro-op label, for diagnostics.
    pub label: &'static str,
}

/// A straight-line per-cycle schedule with the same side counters the
/// executed [`nc_sram::CycleStats`] reports, so the three-way
/// reconciliation can compare every column.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// Per-cycle steps, in issue order.
    pub steps: Vec<Step>,
    /// Scheduled multiplier-bit rounds (dense, skipped, or executed).
    pub mul_rounds: u64,
    /// Statically elided weight-bit rounds.
    pub skipped_rounds: u64,
    /// Dynamically elided input-bit rounds.
    pub input_rounds_skipped: u64,
    /// Wired-NOR zero-detect cycles issued.
    pub detect_cycles: u64,
    /// Compute cycles the dense schedule would have spent on elided work.
    pub skipped_cycles: u64,
}

impl Schedule {
    /// An empty schedule.
    #[must_use]
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Compute cycles in the schedule (its length on the compute path) —
    /// the statically derived analogue of
    /// [`nc_sram::CycleStats::compute_cycles`].
    #[must_use]
    pub fn compute_cycles(&self) -> u64 {
        self.steps
            .iter()
            .filter(|s| s.kind == StepKind::Compute)
            .count() as u64
    }

    /// Access cycles in the schedule.
    #[must_use]
    pub fn access_cycles(&self) -> u64 {
        self.steps
            .iter()
            .filter(|s| s.kind == StepKind::Access)
            .count() as u64
    }

    /// Appends every step of `other`, folding its counters in.
    pub fn extend(&mut self, other: Schedule) {
        self.steps.extend(other.steps);
        self.mul_rounds += other.mul_rounds;
        self.skipped_rounds += other.skipped_rounds;
        self.input_rounds_skipped += other.input_rounds_skipped;
        self.detect_cycles += other.detect_cycles;
        self.skipped_cycles += other.skipped_cycles;
    }

    // ------------------------------------------------------------------
    // Micro-op emitters: one per single-cycle micro-op of the compute
    // array, recording exactly the word lines that micro-op activates.
    // ------------------------------------------------------------------

    /// Two-row sense + write-back (`op_full_add`, `op_and`, ...). Pass
    /// `dst` equal to a source row for in-place operation.
    pub fn sense2(&mut self, a: usize, b: usize, dst: usize, label: &'static str) {
        self.steps.push(Step {
            kind: StepKind::Compute,
            reads: vec![a, b],
            writes: vec![dst],
            label,
        });
    }

    /// Single-row read + write-back (`op_copy`, `op_full_add_const`).
    pub fn sense1(&mut self, src: usize, dst: usize, label: &'static str) {
        self.steps.push(Step {
            kind: StepKind::Compute,
            reads: vec![src],
            writes: vec![dst],
            label,
        });
    }

    /// Latch-source write (`op_write_carry`, `op_write_tag`,
    /// `op_write_const`): no word line is sensed.
    pub fn write_only(&mut self, dst: usize, label: &'static str) {
        self.steps.push(Step {
            kind: StepKind::Compute,
            reads: Vec::new(),
            writes: vec![dst],
            label,
        });
    }

    /// Tag/carry load from one row (`op_load_tag`, `op_and_tag`): no
    /// write-back.
    pub fn read_only(&mut self, src: usize, label: &'static str) {
        self.steps.push(Step {
            kind: StepKind::Compute,
            reads: vec![src],
            writes: Vec::new(),
            label,
        });
    }

    /// Complement sense against the dedicated zero row (`op_not`,
    /// `op_load_tag_not`): a genuine two-row activation.
    pub fn sense_not(
        &mut self,
        src: usize,
        zero_row: usize,
        dst: Option<usize>,
        label: &'static str,
    ) {
        self.steps.push(Step {
            kind: StepKind::Compute,
            reads: vec![src, zero_row],
            writes: dst.into_iter().collect(),
            label,
        });
    }

    /// Wired-NOR zero-detect (`op_detect_zero`): a tag load that also
    /// charges the detect counter.
    pub fn detect(&mut self, src: usize) {
        self.read_only(src, "op_detect_zero");
        self.detect_cycles += 1;
    }

    /// One row of a lane move: read cycle on the source row, then
    /// read-modify-write cycle on the destination row
    /// ([`nc_sram::ops::LANE_MOVE_CYCLES_PER_ROW`] = 2).
    pub fn lane_move_row(&mut self, src_row: usize, dst_row: usize) {
        self.read_only(src_row, "move_lanes/read");
        self.sense1(dst_row, dst_row, "move_lanes/write");
    }

    /// One row of an inter-array transfer: an access-path read on the
    /// source array and an access-path write on the destination array.
    pub fn transfer_row(&mut self, src_row: usize, dst_row: usize) {
        self.steps.push(Step {
            kind: StepKind::Access,
            reads: vec![src_row],
            writes: Vec::new(),
            label: "transfer/read",
        });
        self.steps.push(Step {
            kind: StepKind::Access,
            reads: Vec::new(),
            writes: vec![dst_row],
            label: "transfer/write",
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_extension() {
        let mut s = Schedule::new();
        s.sense2(0, 8, 8, "op_full_add");
        s.detect(3);
        s.transfer_row(0, 1);
        assert_eq!(s.compute_cycles(), 2);
        assert_eq!(s.access_cycles(), 2);
        assert_eq!(s.detect_cycles, 1);

        let mut t = Schedule::new();
        t.write_only(5, "op_write_carry");
        t.mul_rounds = 3;
        s.extend(t);
        assert_eq!(s.compute_cycles(), 3);
        assert_eq!(s.mul_rounds, 3);
    }

    #[test]
    fn lane_move_is_two_cycles_per_row() {
        let mut s = Schedule::new();
        s.lane_move_row(4, 40);
        assert_eq!(s.compute_cycles(), 2);
        assert_eq!(s.steps[0].reads, vec![4]);
        assert_eq!(s.steps[1].writes, vec![40]);
    }
}
