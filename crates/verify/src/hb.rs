//! Happens-before analysis over the shard graph.
//!
//! The Threaded engine's safety argument has four legs, and each leg gets
//! a static proof obligation here:
//!
//! 1. **Shard independence** — no two concurrent shards touch overlapping
//!    word lines of the same array with a write on either side
//!    ([`ErrorCode::ShardWriteWriteRace`] /
//!    [`ErrorCode::ShardReadWriteRace`]).
//! 2. **Barrier domination** — every cross-shard buffer read happens
//!    after a join that dominates the writer; ranging's cross-array read
//!    specifically requires the inter-array *reduce* barrier
//!    ([`ErrorCode::BarrierBypass`]).
//! 3. **Pool discipline** — a checkout is returned exactly once, and no
//!    two live shards ever hold the same checkout
//!    ([`ErrorCode::PoolEventImbalance`] /
//!    [`ErrorCode::PrematureRecycle`]).
//! 4. **Reserved-way hygiene** — the batch pipeline's dump-overlap window
//!    may coincide with any compute epoch, so no shard may claim the
//!    reserved way ([`ErrorCode::DumpWindowRace`]), and each epoch's
//!    shards must exactly partition its output slots
//!    ([`ErrorCode::ShardCoverageHole`]).
//!
//! Concurrency model: shards of one epoch are always mutually concurrent
//! (that is the Threaded engine's whole point), and epochs whose
//! separating joins are dropped merge into one concurrency group. The
//! builder emits every join; race-injection tests drop them.
//!
//! Diagnostics are aggregated per epoch (or epoch pair) with occurrence
//! counts, so a systematic hazard in a million-shard graph produces a
//! bounded, readable report — nothing is silently truncated, the counts
//! carry the total.

use std::collections::HashMap;

use crate::diag::{Diagnostic, ErrorCode};
use crate::shard::{EpochKind, LayoutSpec, ShardGraph};

/// Runs every happens-before check over `graph` and returns the findings
/// (empty = the concurrency claims hold).
#[must_use]
pub fn check_graph(graph: &ShardGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_pool_balance(graph, &mut diags);
    check_races(graph, &mut diags);
    check_barriers(graph, &mut diags);
    check_dump_windows(graph, &mut diags);
    check_coverage(graph, &mut diags);
    diags
}

/// V019: every pool checkout must be returned exactly once by the shard
/// that made it.
fn check_pool_balance(graph: &ShardGraph, diags: &mut Vec<Diagnostic>) {
    for epoch in &graph.epochs {
        let mut violations = 0u64;
        let mut example = None;
        for (s, shard) in epoch.shards.iter().enumerate() {
            for use_ in &shard.uses {
                if use_.acquired != use_.released {
                    violations += u64::from(use_.count);
                    example.get_or_insert((s, use_));
                }
            }
        }
        if let Some((s, use_)) = example {
            let what = if use_.acquired {
                "leaked"
            } else {
                "returned without a checkout"
            };
            diags.push(Diagnostic::new(
                ErrorCode::PoolEventImbalance,
                epoch.label.clone(),
                format!(
                    "{violations} array(s) {what} (first: shard {s}, {} arrays {}..{} staged as `{}`)",
                    use_.count,
                    use_.first_array,
                    use_.first_array + use_.count,
                    layout_name(graph, use_.layout),
                ),
            ));
        }
    }
}

/// One pool-use interval flattened for the overlap sweep.
struct UseRef {
    start: u32,
    end: u32,
    epoch: usize,
    shard: usize,
    layout: u32,
    acquired: bool,
}

/// V013/V014/V016: sweep each concurrency group for shards whose array
/// intervals overlap, and classify the hazard.
///
/// Two concurrent shards holding the *same checkout* means the pool
/// recycled a live array — V016, the root cause, regardless of rows. An
/// overlap involving a raw (unacquired) touch is judged row-exactly
/// against the pass layouts: write/write → V013, write/read → V014,
/// read/read → harmless.
fn check_races(graph: &ShardGraph, diags: &mut Vec<Diagnostic>) {
    // (code, epoch pair) → (count, example message).
    let mut found: HashMap<(ErrorCode, usize, usize), (u64, String)> = HashMap::new();

    for (lo, hi) in concurrency_groups(graph) {
        let mut refs: Vec<UseRef> = Vec::new();
        for (e, epoch) in graph.epochs.iter().enumerate().take(hi + 1).skip(lo) {
            for (s, shard) in epoch.shards.iter().enumerate() {
                for use_ in &shard.uses {
                    refs.push(UseRef {
                        start: use_.first_array,
                        end: use_.first_array + use_.count,
                        epoch: e,
                        shard: s,
                        layout: use_.layout,
                        acquired: use_.acquired,
                    });
                }
            }
        }
        refs.sort_unstable_by_key(|r| r.start);
        for i in 0..refs.len() {
            for j in (i + 1)..refs.len() {
                if refs[j].start >= refs[i].end {
                    break;
                }
                let (a, b) = (&refs[i], &refs[j]);
                if a.epoch == b.epoch && a.shard == b.shard {
                    continue; // program order within one shard job
                }
                let Some((code, detail)) = classify(graph, a, b) else {
                    continue;
                };
                let key = (code, a.epoch.min(b.epoch), a.epoch.max(b.epoch));
                let entry = found.entry(key).or_insert_with(|| (0, detail));
                entry.0 += 1;
            }
        }
    }

    let mut keys: Vec<_> = found.keys().copied().collect();
    keys.sort_unstable_by_key(|&(code, a, b)| (code.as_str(), a, b));
    for key in keys {
        let (code, a, b) = key;
        let (count, example) = &found[&key];
        let op = if a == b {
            graph.epochs[a].label.clone()
        } else {
            format!("{} × {}", graph.epochs[a].label, graph.epochs[b].label)
        };
        diags.push(Diagnostic::new(
            code,
            op,
            format!("{count} concurrent shard pair(s) collide on the same array ({example})"),
        ));
    }
}

/// Classifies one overlapping pair of concurrent pool uses.
fn classify(graph: &ShardGraph, a: &UseRef, b: &UseRef) -> Option<(ErrorCode, String)> {
    let arrays = (a.start.max(b.start), a.end.min(b.end));
    if a.acquired && b.acquired {
        return Some((
            ErrorCode::PrematureRecycle,
            format!(
                "checkout {}..{} held by shards {} and {} simultaneously",
                arrays.0, arrays.1, a.shard, b.shard
            ),
        ));
    }
    let (la, lb) = (
        &graph.layouts[a.layout as usize],
        &graph.layouts[b.layout as usize],
    );
    if la.writes_overlap(lb) {
        let rows = first_overlap(&la.writes, &lb.writes);
        return Some((
            ErrorCode::ShardWriteWriteRace,
            format!(
                "`{}` and `{}` both write rows {}..{} of array {}",
                la.name, lb.name, rows.0, rows.1, arrays.0
            ),
        ));
    }
    if la.write_read_overlap(lb) {
        let rows = first_overlap(&la.writes, &lb.reads).max(first_overlap(&lb.writes, &la.reads));
        return Some((
            ErrorCode::ShardReadWriteRace,
            format!(
                "`{}` writes rows {}..{} that `{}` reads in array {}",
                la.name, rows.0, rows.1, lb.name, arrays.0
            ),
        ));
    }
    None
}

fn first_overlap(a: &[(u16, u16)], b: &[(u16, u16)]) -> (u16, u16) {
    for &(s1, e1) in a {
        for &(s2, e2) in b {
            if s1 < e2 && s2 < e1 {
                return (s1.max(s2), e1.min(e2));
            }
        }
    }
    (0, 0)
}

/// Maximal runs `[lo, hi]` of epochs not separated by a live join.
fn concurrency_groups(graph: &ShardGraph) -> Vec<(usize, usize)> {
    let mut groups = Vec::new();
    let mut lo = 0;
    for (i, &joined) in graph.joins.iter().enumerate() {
        if joined {
            groups.push((lo, i));
            lo = i + 1;
        }
    }
    if lo < graph.epochs.len() {
        groups.push((lo, graph.epochs.len() - 1));
    }
    groups
}

/// V015: every epoch reading a buffer must be dominated by a join after
/// the writing epoch — and ranging's cross-array accumulator read by a
/// join flagged as the inter-array reduce barrier.
fn check_barriers(graph: &ShardGraph, diags: &mut Vec<Diagnostic>) {
    for (e, epoch) in graph.epochs.iter().enumerate() {
        let Some(buffer) = epoch.reads_buffer else {
            continue;
        };
        let Some(writer) = graph
            .epochs
            .iter()
            .position(|w| w.writes_buffer == Some(buffer))
        else {
            continue; // host-produced input, dominated by program order
        };
        let needs_reduce = epoch.kind == EpochKind::Ranging;
        let dominated = writer < e
            && (writer..e)
                .any(|k| graph.joins[k] && (!needs_reduce || graph.reduce_barriers.contains(&k)));
        if !dominated {
            let kind = if needs_reduce {
                "the inter-array reduce barrier"
            } else {
                "any barrier"
            };
            diags.push(Diagnostic::new(
                ErrorCode::BarrierBypass,
                epoch.label.clone(),
                format!(
                    "cross-shard read of buffer {buffer} (written by `{}`) is not dominated by {kind}",
                    graph.epochs[writer].label
                ),
            ));
        }
    }
}

/// V017: no shard may claim the reserved way while the batch pipeline's
/// dump-overlap window can coincide with its epoch.
fn check_dump_windows(graph: &ShardGraph, diags: &mut Vec<Diagnostic>) {
    for epoch in &graph.epochs {
        if !epoch.dump_window {
            continue;
        }
        let offenders = epoch.shards.iter().filter(|s| s.reserved_way).count();
        if offenders > 0 {
            diags.push(Diagnostic::new(
                ErrorCode::DumpWindowRace,
                epoch.label.clone(),
                format!(
                    "{offenders} shard(s) claim the reserved way inside the dump-overlap window"
                ),
            ));
        }
    }
}

/// V018: the shards of each epoch must exactly partition its output slot
/// space — no overlap (double write), no gap (dropped shard).
fn check_coverage(graph: &ShardGraph, diags: &mut Vec<Diagnostic>) {
    for epoch in &graph.epochs {
        let Some(total) = epoch.out_slots else {
            continue;
        };
        let mut ranges: Vec<(u64, u64)> = epoch
            .shards
            .iter()
            .filter_map(|s| s.write_slots)
            .filter(|&(s, e)| s < e)
            .collect();
        ranges.sort_unstable();
        let mut overlaps = 0u64;
        let mut holes = 0u64;
        let mut example = None;
        let mut cursor = 0u64;
        for &(start, end) in &ranges {
            if start > cursor {
                holes += 1;
                example.get_or_insert(format!("slots {cursor}..{start} written by no shard"));
            } else if start < cursor {
                overlaps += 1;
                example.get_or_insert(format!(
                    "slots {start}..{} written by more than one shard",
                    cursor.min(end)
                ));
            }
            cursor = cursor.max(end);
        }
        if cursor < total {
            holes += 1;
            example.get_or_insert(format!("slots {cursor}..{total} written by no shard"));
        } else if cursor > total {
            overlaps += 1;
            example.get_or_insert(format!("slots spill past the {total}-slot output"));
        }
        if let Some(example) = example {
            diags.push(Diagnostic::new(
                ErrorCode::ShardCoverageHole,
                epoch.label.clone(),
                format!(
                    "shards do not partition the {total} output slots \
                     ({overlaps} overlap(s), {holes} hole(s); first: {example})"
                ),
            ));
        }
    }
}

fn layout_name(graph: &ShardGraph, layout: u32) -> &str {
    graph
        .layouts
        .get(layout as usize)
        .map_or("?", |l: &LayoutSpec| l.name.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardGraph;
    use nc_dnn::workload::tiny_cnn;

    fn graph() -> ShardGraph {
        ShardGraph::from_model(&tiny_cnn(42))
    }

    #[test]
    fn clean_graph_has_no_findings() {
        assert_eq!(check_graph(&graph()), Vec::new());
    }

    #[test]
    fn dropped_reduce_barrier_is_a_bypass() {
        let mut g = graph();
        let barrier = g.reduce_barriers[0];
        g.joins[barrier] = false;
        let diags = check_graph(&g);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, ErrorCode::BarrierBypass);
        assert!(diags[0].message.contains("reduce barrier"));
    }

    #[test]
    fn recycled_live_checkout_is_flagged() {
        let mut g = graph();
        // Alias shard 1's first checkout onto shard 0's.
        let stolen = g.epochs[0].shards[0].uses[0];
        g.epochs[0].shards[1].uses[0].first_array = stolen.first_array;
        let diags = check_graph(&g);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, ErrorCode::PrematureRecycle);
    }

    #[test]
    fn missorted_write_slots_break_coverage() {
        let mut g = graph();
        let (s, e) = g.epochs[0].shards[0].write_slots.unwrap();
        g.epochs[0].shards[0].write_slots = Some((s + 1, e + 1));
        let diags = check_graph(&g);
        assert!(diags.iter().all(|d| d.code == ErrorCode::ShardCoverageHole));
        assert!(!diags.is_empty());
    }

    #[test]
    fn reserved_way_claim_races_the_dump_window() {
        let mut g = graph();
        g.epochs[2].shards[0].reserved_way = true;
        let diags = check_graph(&g);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, ErrorCode::DumpWindowRace);
    }

    #[test]
    fn leaked_checkout_imbalances_the_pool() {
        let mut g = graph();
        g.epochs[1].shards[0].uses[0].released = false;
        let diags = check_graph(&g);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, ErrorCode::PoolEventImbalance);
        assert!(diags[0].message.contains("leaked"));
    }
}
