//! Aggregated verification reports with JSON serialization for CI
//! artifacts.

use std::fmt;

use crate::diag::{escape_json, Diagnostic};

/// The outcome of a verification pass: every diagnostic found, tagged with
/// the context that produced it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Label of the verified artifact (e.g. the workload name).
    pub subject: String,
    /// Checks that ran, in order (for artifact readability).
    pub checks: Vec<String>,
    /// Every diagnostic, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Named scalar measurements (e.g. the shard-graph's epoch/shard/
    /// checkout counts), serialized into the CI artifact.
    pub stats: Vec<(String, u64)>,
}

impl VerifyReport {
    /// An empty report for `subject`.
    #[must_use]
    pub fn new(subject: impl Into<String>) -> Self {
        VerifyReport {
            subject: subject.into(),
            checks: Vec::new(),
            diagnostics: Vec::new(),
            stats: Vec::new(),
        }
    }

    /// Records that a named check ran and absorbs its diagnostics.
    pub fn record(&mut self, check: impl Into<String>, diags: Vec<Diagnostic>) {
        self.checks.push(check.into());
        self.diagnostics.extend(diags);
    }

    /// Records one named scalar measurement for the CI artifact.
    pub fn stat(&mut self, name: impl Into<String>, value: u64) {
        self.stats.push((name.into(), value));
    }

    /// True when no check produced a diagnostic.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Serializes the report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| format!("\"{}\"", escape_json(c)))
            .collect();
        let diags: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        let stats: Vec<String> = self
            .stats
            .iter()
            .map(|(name, value)| format!(r#""{}":{value}"#, escape_json(name)))
            .collect();
        format!(
            r#"{{"subject":"{}","clean":{},"checks":[{}],"stats":{{{}}},"diagnostics":[{}]}}"#,
            escape_json(&self.subject),
            self.is_clean(),
            checks.join(","),
            stats.join(","),
            diags.join(",")
        )
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} check(s), {} diagnostic(s)",
            self.subject,
            self.checks.len(),
            self.diagnostics.len()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::ErrorCode;

    #[test]
    fn report_aggregates_and_serializes() {
        let mut r = VerifyReport::new("tiny_cnn");
        r.record("layouts", Vec::new());
        assert!(r.is_clean());
        r.record(
            "hazards",
            vec![Diagnostic::new(
                ErrorCode::OperandOverlap,
                "mul",
                "a overlaps b",
            )],
        );
        assert!(!r.is_clean());
        let json = r.to_json();
        r.stat("shard_epochs", 9);
        assert!(json.contains(r#""subject":"tiny_cnn""#));
        assert!(json.contains(r#""clean":false"#));
        assert!(json.contains("V001"));
        assert!(r.to_json().contains(r#""stats":{"shard_epochs":9}"#));
        assert!(r.to_string().contains("2 check(s)"));
    }
}
