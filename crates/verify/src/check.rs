//! Hazard checks over schedules, operand layouts, and planned mappings,
//! plus the static ↔ analytical legs of the cycle reconciliation.
//!
//! Every check returns structured [`Diagnostic`]s; an empty vector means
//! the artifact is provably hazard-free under the modeled port semantics.

use nc_sram::{COLS, ROWS};
use neural_cache::cost::{CostModel, DerivedCostModel, DATA_BITS};
use neural_cache::layout::{self, NamedOperand, DUMP_ROW, ZERO_ROW};
use neural_cache::mapping::ConvMapping;
use neural_cache::{LaneGeometry, SparsityMode};

use crate::diag::{Diagnostic, ErrorCode};
use crate::extract;
use crate::ir::{Schedule, StepKind};

/// Word-line port budgets of one compute cycle (Section III: two-row
/// activation with a single write-back driver).
pub const READ_PORTS: usize = 2;
/// Write word lines one compute cycle may drive.
pub const WRITE_PORTS: usize = 1;

/// Checks one extracted schedule for per-cycle port hazards: out-of-bounds
/// word lines (V002), read-port overflow or duplicate sensing (V003),
/// write-port overflow (V004), and zero-row clobbering (V005).
#[must_use]
pub fn check_schedule(label: &str, s: &Schedule) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (cycle, step) in s.steps.iter().enumerate() {
        for &row in step.reads.iter().chain(&step.writes) {
            if row >= ROWS {
                out.push(
                    Diagnostic::new(
                        ErrorCode::RowOutOfBounds,
                        label,
                        format!(
                            "cycle {cycle} ({}) activates word line {row} >= {ROWS}",
                            step.label
                        ),
                    )
                    .with_rows(row, row + 1),
                );
            }
        }
        if step.kind == StepKind::Compute {
            let duplicate = step.reads.len() == 2 && step.reads[0] == step.reads[1];
            if step.reads.len() > READ_PORTS || duplicate {
                out.push(
                    Diagnostic::new(
                        ErrorCode::ReadPortOverflow,
                        label,
                        format!(
                            "cycle {cycle} ({}) senses rows {:?}: two-row activation \
                             needs at most {READ_PORTS} distinct word lines",
                            step.label, step.reads
                        ),
                    )
                    .with_rows(
                        step.reads.iter().copied().min().unwrap_or(0),
                        step.reads.iter().copied().max().unwrap_or(0) + 1,
                    ),
                );
            }
            if step.writes.len() > WRITE_PORTS {
                out.push(
                    Diagnostic::new(
                        ErrorCode::WritePortOverflow,
                        label,
                        format!(
                            "cycle {cycle} ({}) drives {} write word lines {:?}",
                            step.label,
                            step.writes.len(),
                            step.writes
                        ),
                    )
                    .with_rows(
                        step.writes.iter().copied().min().unwrap_or(0),
                        step.writes.iter().copied().max().unwrap_or(0) + 1,
                    ),
                );
            }
        }
        if step.writes.contains(&ZERO_ROW) {
            out.push(
                Diagnostic::new(
                    ErrorCode::ZeroRowClobbered,
                    label,
                    format!(
                        "cycle {cycle} ({}) writes the dedicated all-zero row {ZERO_ROW}",
                        step.label
                    ),
                )
                .with_rows(ZERO_ROW, ZERO_ROW + 1),
            );
        }
    }
    out
}

/// Lints a named operand set: pairwise overlap (V001), out-of-bounds rows
/// (V002), zero-row claims (V005), and dump-row claims (V012).
#[must_use]
pub fn check_operands(label: &str, operands: &[NamedOperand]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (name, op) in operands {
        let rows = op.rows();
        if rows.end > ROWS {
            out.push(
                Diagnostic::new(
                    ErrorCode::RowOutOfBounds,
                    format!("{label}/{name}"),
                    format!(
                        "operand rows {}..{} exceed the {ROWS}-row array",
                        rows.start, rows.end
                    ),
                )
                .with_rows(rows.start, rows.end),
            );
        }
        if op.contains_row(ZERO_ROW) {
            out.push(
                Diagnostic::new(
                    ErrorCode::ZeroRowClobbered,
                    format!("{label}/{name}"),
                    format!("operand claims the dedicated all-zero row {ZERO_ROW}"),
                )
                .with_rows(rows.start, rows.end),
            );
        }
        if op.contains_row(DUMP_ROW) {
            out.push(
                Diagnostic::new(
                    ErrorCode::DumpRowConflict,
                    format!("{label}/{name}"),
                    format!("operand claims the comparison dump row {DUMP_ROW}"),
                )
                .with_rows(rows.start, rows.end),
            );
        }
    }
    for (i, (name_a, a)) in operands.iter().enumerate() {
        for (name_b, b) in &operands[i + 1..] {
            if a.overlaps(b) {
                let start = a.rows().start.max(b.rows().start);
                let end = a.rows().end.min(b.rows().end);
                out.push(
                    Diagnostic::new(
                        ErrorCode::OperandOverlap,
                        format!("{label}/{name_a}+{name_b}"),
                        format!("operands {name_a} and {name_b} share word lines"),
                    )
                    .with_rows(start, end),
                );
            }
        }
    }
    out
}

/// Lints every named operand layout the functional executor ships
/// ([`layout::all_layouts`]).
#[must_use]
pub fn check_layouts() -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (name, operands) in layout::all_layouts() {
        out.extend(check_operands(name, &operands));
    }
    out
}

/// Checks a convolution's lane geometry: non-power-of-two reduction spans
/// (V008) and lane-packing overflow past the array's bit lines (V007).
#[must_use]
pub fn check_lane_geometry(label: &str, geom: &LaneGeometry, filters: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !geom.group_span.is_power_of_two() {
        out.push(Diagnostic::new(
            ErrorCode::NonPowerOfTwoLanes,
            label,
            format!(
                "group span {} is not a power of two: the reduction tree cannot halve it",
                geom.group_span
            ),
        ));
    }
    let packed = geom.group_span * geom.groups_per_array(filters);
    if packed > COLS {
        out.push(Diagnostic::new(
            ErrorCode::LanePackingAlias,
            label,
            format!(
                "{} groups of span {} pack {packed} lanes onto {COLS} bit lines",
                geom.groups_per_array(filters),
                geom.group_span
            ),
        ));
    }
    if geom.group_span * geom.arrays_per_filter < geom.lanes_per_filter {
        out.push(Diagnostic::new(
            ErrorCode::LanePackingAlias,
            label,
            format!(
                "filter needs {} lanes but {} array(s) of span {} map only {}",
                geom.lanes_per_filter,
                geom.arrays_per_filter,
                geom.group_span,
                geom.group_span * geom.arrays_per_filter
            ),
        ));
    }
    out
}

/// Checks a planned convolution mapping's word-line budget (V006).
#[must_use]
pub fn check_row_budget(label: &str, mapping: &ConvMapping) -> Vec<Diagnostic> {
    if mapping.rows.fits() {
        Vec::new()
    } else {
        vec![Diagnostic::new(
            ErrorCode::RowBudgetOverflow,
            label,
            format!(
                "mapping needs {} word lines; the array has {ROWS}",
                mapping.rows.total()
            ),
        )
        .with_rows(0, mapping.rows.total())]
    }
}

// ---------------------------------------------------------------------
// Static MAC-tap schedules and the static <-> analytical reconciliation.
// ---------------------------------------------------------------------

/// The executor's per-tap MAC schedule (one filter/input byte pair:
/// multiply into the 16-bit scratch, accumulate into the 24-bit partial,
/// track the input sum) under `mode`, parameterized by the control-FSM
/// facts: per-round elision flags and the live weight-bit count.
#[must_use]
pub fn mac_tap_schedule(mode: SparsityMode, zero_rounds: &[bool], live_bits: usize) -> Schedule {
    let l = layout::MacReduceLayout::new();
    let mut s = match mode {
        SparsityMode::Dense => extract::mul(l.input_byte, l.filter_byte, l.scratch16),
        SparsityMode::SkipZeroRows => {
            extract::mul_skip_zero_rows(l.input_byte, l.filter_byte, l.scratch16, zero_rounds)
        }
        SparsityMode::SkipZeroInputs => {
            extract::mul_skip_zero_input_bits(l.filter_byte, l.input_byte, l.scratch16, zero_rounds)
        }
        SparsityMode::SkipBoth => extract::mul_skip_both(
            l.filter_byte,
            l.input_byte,
            l.scratch16,
            zero_rounds,
            live_bits,
        ),
    };
    s.extend(extract::add_assign(l.partial, l.scratch16));
    s.extend(extract::add_assign(l.s2sum, l.input_byte));
    s
}

/// The post-MAC reduction schedule of one array (segment widening plus the
/// grouped channel-reduction trees).
#[must_use]
pub fn reduce_schedule(group_span: usize) -> Schedule {
    let l = layout::MacReduceLayout::new();
    let mut s = extract::copy_zext(l.partial, l.seg_a);
    s.extend(extract::copy_zext(l.s2sum, l.s2_a));
    s.extend(extract::reduce_sum_grouped(l.seg_a, l.seg_b, group_span));
    s.extend(extract::reduce_sum_grouped(l.s2_a, l.s2_b, group_span));
    s
}

/// Schedule-derived tap constants: the dense per-tap MAC cycles and the
/// per-round cycle cost, measured from the extracted schedules themselves
/// (never restated as literals).
#[must_use]
pub fn schedule_tap_constants() -> (u64, u64) {
    let all_live = [false; DATA_BITS];
    let dense = mac_tap_schedule(SparsityMode::Dense, &all_live, DATA_BITS).compute_cycles();
    let mut one_skip = [false; DATA_BITS];
    one_skip[0] = true;
    let skipped =
        mac_tap_schedule(SparsityMode::SkipZeroRows, &one_skip, DATA_BITS).compute_cycles();
    (dense, dense - skipped)
}

/// Static per-tap MAC cycles at fractional skip/live parameters, evaluated
/// with the **identical** floating-point expression order the analytical
/// [`CostModel`] uses, so agreement is exact rather than approximate. The
/// integer anchor points (`k/8` skips, integer live bits) coincide with
/// the extracted schedules by construction — `schedule_constants_match_*`
/// tests prove it.
#[must_use]
pub fn static_mac_tap(dense_tap: u64, round: u64, c: &ConvMapping) -> f64 {
    let rounds = DATA_BITS as f64;
    let dense = dense_tap as f64;
    let round = round as f64;
    if c.dynamic_detect {
        let live = c.live_mult_bits.clamp(0.0, rounds);
        let exec_round = round - (rounds - live);
        let base = dense - rounds * round;
        let detect = rounds;
        (base + detect + (1.0 - c.input_skip_fraction.clamp(0.0, 1.0)) * rounds * exec_round)
            .clamp(0.0, dense + detect)
    } else {
        let saved = c.simd_skip_fraction.clamp(0.0, 1.0) * rounds * round;
        (dense - saved).clamp(0.0, dense)
    }
}

/// The analytical per-tap MAC cycles of the cost model under the mapping's
/// sparsity parameters — the exact expression `timing::conv_cycles`
/// charges per serial MAC.
#[must_use]
pub fn analytical_mac_tap(cost: &dyn CostModel, c: &ConvMapping) -> f64 {
    if c.dynamic_detect {
        cost.mac_cycles_dynamic(c.input_skip_fraction, c.live_mult_bits)
    } else {
        cost.mac_cycles_sparse(c.simd_skip_fraction)
    }
}

/// Reconciles one planned convolution's static MAC schedule against the
/// derived analytical cost model (V009), at the layer's full serial-MAC
/// scale with the same rounding `timing::conv_cycles` applies.
#[must_use]
pub fn check_conv_reconciliation(label: &str, c: &ConvMapping) -> Vec<Diagnostic> {
    let cost = &DerivedCostModel;
    let (dense_tap, round) = schedule_tap_constants();
    let serial_macs = (c.rounds * c.eff_window) as u64;
    let static_mac = (serial_macs as f64 * static_mac_tap(dense_tap, round, c)).round() as u64;
    let analytical_mac = (serial_macs as f64 * analytical_mac_tap(cost, c)).round() as u64;
    if static_mac == analytical_mac {
        return Vec::new();
    }
    vec![Diagnostic::new(
        ErrorCode::CycleMismatchAnalytical,
        label,
        format!(
            "static schedule prices {serial_macs} serial MACs at {static_mac} cycles; \
             the {} cost model prices them at {analytical_mac}",
            cost.name()
        ),
    )]
}

/// Proves the derived cost model's constants equal the extracted schedules
/// at every integer skip/live anchor point (V009 on any disagreement).
#[must_use]
pub fn check_cost_model() -> Vec<Diagnostic> {
    let cost = &DerivedCostModel;
    let mut out = Vec::new();
    let (dense_tap, round) = schedule_tap_constants();
    if dense_tap != cost.mac_cycles() {
        out.push(Diagnostic::new(
            ErrorCode::CycleMismatchAnalytical,
            "mac_tap/dense",
            format!(
                "static dense tap is {dense_tap} cycles; cost model says {}",
                cost.mac_cycles()
            ),
        ));
    }
    if round != cost.mul_round_cycles() {
        out.push(Diagnostic::new(
            ErrorCode::CycleMismatchAnalytical,
            "mac_tap/round",
            format!(
                "static round cost is {round} cycles; cost model says {}",
                cost.mul_round_cycles()
            ),
        ));
    }
    for k in 0..=DATA_BITS {
        let mut flags = [false; DATA_BITS];
        for f in flags.iter_mut().take(k) {
            *f = true;
        }
        let skip = k as f64 / DATA_BITS as f64;

        let s = mac_tap_schedule(SparsityMode::SkipZeroRows, &flags, DATA_BITS);
        let analytical = cost.mac_cycles_sparse(skip);
        if s.compute_cycles() as f64 != analytical {
            out.push(Diagnostic::new(
                ErrorCode::CycleMismatchAnalytical,
                "mac_tap/skip_rows",
                format!(
                    "{k}/{DATA_BITS} rounds elided: static {} vs analytical {analytical}",
                    s.compute_cycles()
                ),
            ));
        }

        let s = mac_tap_schedule(SparsityMode::SkipZeroInputs, &flags, DATA_BITS);
        let analytical = cost.mac_cycles_dynamic(skip, DATA_BITS as f64);
        if s.compute_cycles() as f64 != analytical {
            out.push(Diagnostic::new(
                ErrorCode::CycleMismatchAnalytical,
                "mac_tap/skip_inputs",
                format!(
                    "{k}/{DATA_BITS} rounds elided: static {} vs analytical {analytical}",
                    s.compute_cycles()
                ),
            ));
        }

        for live in 0..=DATA_BITS {
            let s = mac_tap_schedule(SparsityMode::SkipBoth, &flags, live);
            let analytical = cost.mac_cycles_dynamic(skip, live as f64);
            if s.compute_cycles() as f64 != analytical {
                out.push(Diagnostic::new(
                    ErrorCode::CycleMismatchAnalytical,
                    "mac_tap/skip_both",
                    format!(
                        "{k}/{DATA_BITS} elided, {live} live bits: static {} vs \
                         analytical {analytical}",
                        s.compute_cycles()
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_sram::Operand;

    fn op(base: usize, bits: usize) -> Operand {
        Operand::new(base, bits).unwrap()
    }

    #[test]
    fn clean_schedules_produce_no_diagnostics() {
        let (a, b, dst) = (op(0, 8), op(8, 8), op(16, 9));
        assert!(check_schedule("add", &extract::add(a, b, dst)).is_empty());
        let prod = op(32, 16);
        assert!(check_schedule("mul", &extract::mul(a, b, prod)).is_empty());
        let flags = [true, false, true, false, true, false, true, false];
        assert!(
            check_schedule("mul_skip", &extract::mul_skip_both(a, b, prod, &flags, 5)).is_empty()
        );
    }

    #[test]
    fn duplicate_sense_is_a_read_port_overflow() {
        // add with b aliasing a senses row i twice in one cycle.
        let a = op(0, 8);
        let s = extract::add(a, a, op(16, 8));
        let diags = check_schedule("alias", &s);
        assert_eq!(diags.len(), 8);
        assert!(diags.iter().all(|d| d.code == ErrorCode::ReadPortOverflow));
    }

    #[test]
    fn out_of_bounds_rows_are_flagged() {
        let mut s = Schedule::new();
        s.sense1(ROWS, 0, "op_copy");
        let diags = check_schedule("oob", &s);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, ErrorCode::RowOutOfBounds);
        assert_eq!(diags[0].rows, Some((ROWS, ROWS + 1)));
    }

    #[test]
    fn zero_row_writes_are_flagged() {
        let mut s = Schedule::new();
        s.write_only(ZERO_ROW, "op_write_const");
        let diags = check_schedule("clobber", &s);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, ErrorCode::ZeroRowClobbered);
    }

    #[test]
    fn operand_lints_cover_overlap_and_reserved_rows() {
        // `Operand::new` already bounds-rejects out-of-range descriptors, so
        // V002 cannot arise here; it is exercised through `check_schedule`
        // in `out_of_bounds_rows_are_flagged` instead.
        let diags = check_operands(
            "lint",
            &[
                ("a", op(0, 16)),
                ("b", op(8, 8)),
                ("tall", op(248, 8)),
                ("dump", op(249, 2)),
            ],
        );
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&ErrorCode::OperandOverlap), "{diags:?}");
        assert!(codes.contains(&ErrorCode::ZeroRowClobbered), "{diags:?}");
        assert!(codes.contains(&ErrorCode::DumpRowConflict), "{diags:?}");
    }

    #[test]
    fn shipped_layouts_are_clean() {
        assert_eq!(check_layouts(), Vec::new());
    }

    #[test]
    fn schedule_constants_match_the_derived_cost_model() {
        assert_eq!(check_cost_model(), Vec::new());
        let (dense, round) = schedule_tap_constants();
        assert_eq!(dense, 136);
        assert_eq!(round, 10);
    }

    #[test]
    fn mac_tap_schedules_are_hazard_free_in_every_mode() {
        let flags = [false, true, false, true, false, true, false, true];
        for mode in [
            SparsityMode::Dense,
            SparsityMode::SkipZeroRows,
            SparsityMode::SkipZeroInputs,
            SparsityMode::SkipBoth,
        ] {
            let s = mac_tap_schedule(mode, &flags, 6);
            assert!(check_schedule("mac_tap", &s).is_empty(), "{mode:?}");
        }
        assert!(check_schedule("reduce", &reduce_schedule(64)).is_empty());
    }
}
