//! Value-range abstract interpretation over the conv schedule (V021–V027).
//!
//! The pass runs an interval × known-bits domain over every convolution
//! sub-layer, seeded from the quantization parameters of `nc-dnn::quant`:
//!
//! - the **interval** half tracks the signed zero-point-corrected
//!   accumulator `ACC = Σ (w - zp_w)(q - zp_a) + bias` before and after the
//!   fused `ReLU` — the value assembled into the 40-bit two's-complement
//!   region, ranged by the min/max trees, and requantized;
//! - the **known-bits** half tracks unsigned magnitude bit-lengths of the
//!   raw-code running sums the bit-serial hardware materializes: the
//!   per-lane `S1` partial (products of `eff_window` taps), the `S1`/`S2`
//!   reduction-tree running sums, and the live multiplicand (weight code)
//!   width.
//!
//! Ranges propagate across layers by a model-level dataflow pass: the layer
//! chain (including mixed-block branches) is a DAG evaluated in execution
//! order, so the dataflow fixpoint is reached in one forward sweep — there
//! are no back edges to iterate. The cross-layer transfer function uses the
//! one fact the runtime-derived requantization guarantees statically:
//! output codes span `[0, 255]`, and a fused `ReLU` (or an all-non-negative
//! mixed block) pins the derived zero point to 0, so the next layer's
//! centered input interval is `[0, 255]` instead of `[-255, 255]`.
//!
//! The static intervals deliberately **over-approximate** the executed
//! ranges (the executors derive requantization from *measured* min/max);
//! [`reconcile_executed_ranges`] closes the loop by proving every executed
//! per-sublayer min/max lies inside its certified interval (V021 on
//! escape), and the bit-budget advisor (`neural_cache::mapping`) turns the
//! proven bounds into trimmed operand allocations.

use nc_dnn::reference::SublayerRecord;
use nc_dnn::{Branch, BranchOp, Conv2d, Layer, Model};
use neural_cache::cost::DATA_BITS;
use neural_cache::mapping::{
    advise_bit_budget, bits_for_unsigned, conv_lane_geometry, BitBudget, ProvenBounds,
};

use crate::diag::{Diagnostic, ErrorCode};

/// Width of the two's-complement accumulator assembly region (5 bytes; the
/// executor's `assemble_acc`/`clamp_to_bits` width).
pub const ACC_BITS: u32 = 40;

/// The dynamic-ranging bias exponent: min/max trees load accumulators with
/// a `2^38` offset so two's-complement order matches unsigned order, which
/// is only sound for values in `[-2^38, 2^38)`.
pub const RANGING_OFFSET_BITS: u32 = 38;

/// Width of the requantization pipeline's multiply operand: the executor
/// slices `D = ACC - acc_min` to 32 bits before the scalar multiply, so a
/// certified range wider than `2^32` codes would clip.
pub const REQUANT_OPERAND_BITS: u32 = 32;

/// Width of the dedicated per-lane `S2` running-sum region (2 bytes,
/// Figure 10a).
pub const S2_LANE_BITS: u32 = 16;

/// Provably-dead high bits at or above which an allocation counts as
/// over-provisioned (V024): one full byte of word lines wasted per operand.
pub const DEAD_BITS_THRESHOLD: u32 = 8;

/// A closed signed interval `[lo, hi]` of accumulator values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest value the abstraction admits.
    pub lo: i64,
    /// Largest value the abstraction admits.
    pub hi: i64,
}

impl Interval {
    /// Builds `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The single-value interval.
    #[must_use]
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Whether `v` lies inside the interval.
    #[must_use]
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Number of distinct values minus one (`hi - lo`), exact even for
    /// intervals spanning most of `i64`.
    #[must_use]
    pub fn width(&self) -> u128 {
        (i128::from(self.hi) - i128::from(self.lo)) as u128
    }

    /// The interval after a fused `ReLU` clamp.
    #[must_use]
    pub fn relu(&self) -> Interval {
        Interval {
            lo: self.lo.max(0),
            hi: self.hi.max(0),
        }
    }

    /// Whether the abstraction admits exactly one value.
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.lo == self.hi
    }

    /// Smallest two's-complement width holding every value of the interval.
    #[must_use]
    pub fn signed_bits(&self) -> u32 {
        let neg = if self.lo < 0 {
            // -2^(b-1) <= lo  <=>  b >= bit-length of -(lo + 1) plus the
            // sign bit (no 1-minimum clamp: -1 genuinely fits one bit).
            (64 - (!(self.lo as u64)).leading_zeros()) + 1
        } else {
            1
        };
        let pos = if self.hi > 0 {
            bits_for_unsigned(self.hi as u64) + 1
        } else {
            1
        };
        neg.max(pos)
    }
}

/// Proven value ranges of one convolution sub-layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvRanges {
    /// Sub-layer name (matches the executed [`SublayerRecord`]).
    pub name: String,
    /// Accumulator interval at 40-bit assembly time, before the fused
    /// `ReLU`.
    pub acc_raw: Interval,
    /// Accumulator interval after the fused `ReLU` — the values the min/max
    /// trees range and the requantizer maps; executed `acc_min`/`acc_max`
    /// must lie inside it.
    pub acc: Interval,
    /// Largest per-lane `S1` partial sum: any `lane_taps` raw-code products
    /// accumulated into the partial region (grouping-independent bound, so
    /// it covers both the channel-major in-cache lanes and the trimmed
    /// reference executor's window-order chunks).
    pub partial_max: u64,
    /// Largest `S1` reduction-tree running sum (`max_m W1(m) * 255` with
    /// weights, `N * 255^2` shape-only).
    pub s1_max: u64,
    /// Largest `S2` reduction-tree running sum (`N * 255`).
    pub s2_max: u64,
    /// Taps accumulated per lane partial (the mapping's `eff_window`).
    pub lane_taps: usize,
    /// Live multiplicand width: bit-length of the largest weight code.
    pub weight_bits: u32,
    /// Whether the bounds were seeded from actual weights (`false` means
    /// the shape-only full-code-space fallback).
    pub exact_weights: bool,
}

impl ConvRanges {
    /// The magnitude bounds the bit-budget advisor consumes.
    #[must_use]
    pub fn proven_bounds(&self) -> ProvenBounds {
        ProvenBounds {
            partial_max: self.partial_max,
            s1_max: self.s1_max,
            s2_max: self.s2_max,
            weight_bits: self.weight_bits,
        }
    }

    /// The advised (trimmed) bit budget for this sub-layer.
    #[must_use]
    pub fn advise(&self) -> BitBudget {
        advise_bit_budget(&self.name, &self.proven_bounds())
    }
}

/// Proven ranges of every convolution sub-layer of a model, in
/// [`Layer::conv_sublayers`] traversal order — positionally aligned with
/// the executed [`SublayerRecord`] streams of both execution engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRanges {
    /// Model name.
    pub model: String,
    /// Per-sublayer ranges in execution-record order.
    pub convs: Vec<ConvRanges>,
}

impl ModelRanges {
    /// Ranges of the sub-layer called `name`, if any.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ConvRanges> {
        self.convs.iter().find(|c| c.name == name)
    }

    /// Advised bit budgets for every sub-layer.
    #[must_use]
    pub fn advice(&self) -> Vec<BitBudget> {
        self.convs.iter().map(ConvRanges::advise).collect()
    }
}

/// Abstract activation state flowing between layers: the centered code
/// interval `q - zp` of the tensor. `lo >= 0` iff the zero point is
/// statically known to be 0 (the tensor's real values are non-negative).
#[derive(Debug, Clone, Copy)]
struct ActState {
    centered: Interval,
}

impl ActState {
    /// The full-range state of a tensor whose zero point is unknown.
    fn unknown() -> Self {
        ActState {
            centered: Interval::new(-255, 255),
        }
    }

    /// The state of a requantized tensor with a provably-zero zero point
    /// (fused `ReLU` pins `acc_min >= 0`, so the derived zero point is 0).
    fn non_negative() -> Self {
        ActState {
            centered: Interval::new(0, 255),
        }
    }

    fn is_non_negative(&self) -> bool {
        self.centered.lo >= 0
    }
}

/// Saturates an `i128` bound into `i64` (bounds this far out already fail
/// the 40-bit checks, so saturation never hides a hazard).
fn sat(v: i128) -> i64 {
    v.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64
}

/// Runs the value-range abstract interpretation over a whole model.
///
/// Works on shape-only models: sub-layers without weights fall back to the
/// full `[0, 255]` weight code space (marked by
/// [`ConvRanges::exact_weights`] = `false`).
#[must_use]
pub fn model_ranges(model: &Model) -> ModelRanges {
    let mut convs = Vec::with_capacity(model.conv_sublayer_count());
    let mut state = ActState {
        centered: {
            let (lo, hi) = model.input_quant.centered_bounds();
            Interval::new(lo, hi)
        },
    };
    for layer in &model.layers {
        state = flow_layer(layer, state, &mut convs);
    }
    ModelRanges {
        model: model.name.clone(),
        convs,
    }
}

/// Transfer function of one top-level layer; pushes a [`ConvRanges`] per
/// conv sub-layer in [`Layer::conv_sublayers`] order.
fn flow_layer(layer: &Layer, input: ActState, out: &mut Vec<ConvRanges>) -> ActState {
    match layer {
        Layer::Conv(conv) => {
            let r = conv_ranges(conv, input.centered);
            let relu = conv.spec.relu;
            out.push(r);
            if relu {
                ActState::non_negative()
            } else {
                ActState::unknown()
            }
        }
        // Pooling preserves codes and quantization parameters.
        Layer::Pool(_) => input,
        Layer::Mixed(block) => {
            let mut all_non_negative = true;
            for branch in &block.branches {
                all_non_negative &= flow_branch(branch, input, out);
            }
            // shared_out_quant derives the block zero point from the
            // block-wide real minimum: non-negative on every branch pins
            // it to 0.
            if all_non_negative {
                ActState::non_negative()
            } else {
                ActState::unknown()
            }
        }
    }
}

/// Transfer function of one mixed-block branch. Returns whether the
/// branch's final real values are provably non-negative.
fn flow_branch(branch: &Branch, input: ActState, out: &mut Vec<ConvRanges>) -> bool {
    let mut cur = input;
    let last = branch.ops.len() - 1;
    for (i, op) in branch.ops.iter().enumerate() {
        match op {
            BranchOp::Conv(conv) => {
                out.push(conv_ranges(conv, cur.centered));
                cur = if conv.spec.relu {
                    ActState::non_negative()
                } else {
                    ActState::unknown()
                };
                if i == last {
                    return conv.spec.relu;
                }
            }
            BranchOp::Pool(_) => {
                if i == last {
                    return cur.is_non_negative();
                }
            }
            BranchOp::Split(convs) => {
                let mut non_negative = true;
                for conv in convs {
                    out.push(conv_ranges(conv, cur.centered));
                    non_negative &= conv.spec.relu;
                }
                return non_negative;
            }
        }
    }
    unreachable!("branch has at least one op");
}

/// Abstract transfer function of one convolution sub-layer: seeds the
/// domain from the layer's quantization parameters and weight metadata and
/// mirrors the executor's op sequence (tap products, per-lane partial,
/// `S1`/`S2` reduce trees, 40-bit assembly, fused `ReLU`).
///
/// `a` is the centered input interval `q - zp_a`; it always contains 0
/// (padding taps hold the zero-point code, contributing exactly zero), so
/// per-tap product intervals contain 0 and the bounds cover padded windows.
#[must_use]
pub fn conv_ranges(conv: &Conv2d, a: Interval) -> ConvRanges {
    debug_assert!(
        a.contains(0),
        "{}: padding must be representable",
        conv.spec.name
    );
    let spec = &conv.spec;
    let zp_w = i64::from(conv.w_quant.zero_point);
    let n = spec.macs_per_output();
    let geom = conv_lane_geometry(spec);

    let code_bounds = conv.weight_code_bounds();
    let exact_weights = code_bounds.is_some();
    let (wq_lo, wq_hi) = code_bounds.unwrap_or((0, 255));

    // Interval half: the signed accumulator.
    let (a_lo, a_hi) = (i128::from(a.lo), i128::from(a.hi));
    let (raw_lo, raw_hi) = if let Some(weights) = conv.weights.as_ref() {
        // Tap-exact: every weight code is known, so each tap contributes
        // (w - zp_w) * [a_lo, a_hi]; sum per filter, take the filter hull.
        let per_filter = spec.r * spec.s * spec.c;
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for m in 0..spec.m {
            let mut flo = i128::from(conv.bias_of(m));
            let mut fhi = flo;
            for &q in &weights[m * per_filter..(m + 1) * per_filter] {
                let wc = i128::from(i64::from(q) - zp_w);
                let (t_lo, t_hi) = ((wc * a_lo).min(wc * a_hi), (wc * a_lo).max(wc * a_hi));
                flo += t_lo;
                fhi += t_hi;
            }
            lo = lo.min(flo);
            hi = hi.max(fhi);
        }
        (lo, hi)
    } else {
        // Shape-only fallback: N taps each in the product hull of the
        // centered weight and activation intervals.
        let wc = [
            i128::from(i64::from(wq_lo) - zp_w),
            i128::from(i64::from(wq_hi) - zp_w),
        ];
        let products = [wc[0] * a_lo, wc[0] * a_hi, wc[1] * a_lo, wc[1] * a_hi];
        let t_lo = products[0]
            .min(products[1])
            .min(products[2])
            .min(products[3]);
        let t_hi = products[0]
            .max(products[1])
            .max(products[2])
            .max(products[3]);
        let (bias_lo, bias_hi) = conv.bias_bounds();
        let taps = i128::try_from(n).unwrap_or(i128::MAX);
        (
            taps * t_lo + i128::from(bias_lo),
            taps * t_hi + i128::from(bias_hi),
        )
    };
    let acc_raw = Interval::new(sat(raw_lo), sat(raw_hi));
    let acc = if spec.relu { acc_raw.relu() } else { acc_raw };

    // Known-bits half: unsigned raw-code running sums. Activation codes
    // span [0, 255] (requantized tensors attain both ends), weight codes
    // span the measured [wq_lo, wq_hi].
    let partial_max = geom.eff_window as u64 * u64::from(wq_hi) * 255;
    let s1_max = match conv.filter_code_sum_bounds() {
        Some((_, sum_hi)) => sum_hi.max(0) as u64 * 255,
        None => n as u64 * 255 * 255,
    };
    let s2_max = n as u64 * 255;
    let weight_bits = if exact_weights {
        bits_for_unsigned(u64::from(wq_hi))
    } else {
        DATA_BITS as u32
    };

    ConvRanges {
        name: spec.name.clone(),
        acc_raw,
        acc,
        partial_max,
        s1_max,
        s2_max,
        lane_taps: geom.eff_window,
        weight_bits,
        exact_weights,
    }
}

/// Budget-independent pipeline checks of one sub-layer's proven ranges:
/// requantization clipping (V022), ranging sign-extension (V023), and
/// degenerate ranges (V025).
#[must_use]
pub fn check_pipeline(label: &str, r: &ConvRanges) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if r.acc.width() >= 1u128 << REQUANT_OPERAND_BITS {
        out.push(Diagnostic::new(
            ErrorCode::RequantClippingRange,
            label,
            format!(
                "certified accumulator range [{}, {}] spans {} values; the requant multiply \
                 operand holds {REQUANT_OPERAND_BITS} bits",
                r.acc.lo,
                r.acc.hi,
                r.acc.width() + 1
            ),
        ));
    }
    let offset_bound = 1i64 << RANGING_OFFSET_BITS;
    if r.acc.lo < -offset_bound || r.acc.hi >= offset_bound {
        out.push(Diagnostic::new(
            ErrorCode::SignExtensionMismatch,
            label,
            format!(
                "certified interval [{}, {}] cannot be biased by the 2^{RANGING_OFFSET_BITS} \
                 ranging offset without breaking unsigned min/max order",
                r.acc.lo, r.acc.hi
            ),
        ));
    }
    if r.acc.is_degenerate() {
        out.push(Diagnostic::new(
            ErrorCode::DegenerateRange,
            label,
            format!(
                "certified range is the single value {}: the sub-layer computes a constant",
                r.acc.lo
            ),
        ));
    }
    out
}

/// Soundness of an operand bit budget against proven bounds: accumulator /
/// partial overflow (V021), live-bit truncation (V026), and reduce-tree
/// width deficit (V027). Clean means a run trimmed to `budget` is
/// bit-identical to the untrimmed executor.
#[must_use]
pub fn check_widths(label: &str, r: &ConvRanges, budget: &BitBudget) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if bits_for_unsigned(r.partial_max) > budget.partial_bits {
        out.push(Diagnostic::new(
            ErrorCode::AccumulatorOverflow,
            label,
            format!(
                "lane partial sum can reach {} ({} bits); the partial region holds {} bits \
                 and would silently wrap",
                r.partial_max,
                bits_for_unsigned(r.partial_max),
                budget.partial_bits
            ),
        ));
    }
    if r.acc_raw.signed_bits() > ACC_BITS {
        out.push(Diagnostic::new(
            ErrorCode::AccumulatorOverflow,
            label,
            format!(
                "assembled accumulator interval [{}, {}] needs {} bits; the two's-complement \
                 assembly region holds {ACC_BITS}",
                r.acc_raw.lo,
                r.acc_raw.hi,
                r.acc_raw.signed_bits()
            ),
        ));
    }
    if budget.mult_bits < r.weight_bits {
        out.push(Diagnostic::new(
            ErrorCode::UnsoundTruncation,
            label,
            format!(
                "live-bit truncation to {} bits drops set weight bits (largest weight code \
                 needs {} bits): products would corrupt",
                budget.mult_bits, r.weight_bits
            ),
        ));
    }
    let reduce_need = bits_for_unsigned(r.s1_max.max(r.s2_max));
    if reduce_need > budget.reduce_bits {
        out.push(Diagnostic::new(
            ErrorCode::ReduceWidthDeficit,
            label,
            format!(
                "reduce-tree running sums can reach {} ({} bits); the reduction segments hold \
                 {} bits",
                r.s1_max.max(r.s2_max),
                reduce_need,
                budget.reduce_bits
            ),
        ));
    }
    let s2_lane_max = r.lane_taps as u64 * 255;
    if bits_for_unsigned(s2_lane_max) > S2_LANE_BITS {
        out.push(Diagnostic::new(
            ErrorCode::ReduceWidthDeficit,
            label,
            format!(
                "per-lane S2 window sum can reach {s2_lane_max}; the dedicated S2 region holds \
                 {S2_LANE_BITS} bits"
            ),
        ));
    }
    out
}

/// Over-provisioning check (V024): fires when `budget` carries at least
/// [`DEAD_BITS_THRESHOLD`] provably-dead high bits in the partial or
/// reduce allocation — word lines the bit-budget advisor should trim.
#[must_use]
pub fn check_provisioning(label: &str, r: &ConvRanges, budget: &BitBudget) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (region, allocated, needed) in [
        (
            "partial",
            budget.partial_bits,
            bits_for_unsigned(r.partial_max),
        ),
        (
            "reduce",
            budget.reduce_bits,
            bits_for_unsigned(r.s1_max.max(r.s2_max)),
        ),
    ] {
        let dead = allocated.saturating_sub(needed);
        if dead >= DEAD_BITS_THRESHOLD {
            out.push(Diagnostic::new(
                ErrorCode::OverProvisionedRows,
                label,
                format!(
                    "{region} allocation of {allocated} bits carries {dead} provably-dead high \
                     bits (proven need: {needed})"
                ),
            ));
        }
    }
    out
}

/// The executed leg of the certification: every per-sublayer `acc_min` /
/// `acc_max` an execution engine measured must lie inside the certified
/// static interval (V021 on escape). Records reconcile positionally — both
/// engines emit them in [`Layer::conv_sublayers`] traversal order.
#[must_use]
pub fn reconcile_executed_ranges(
    label: &str,
    ranges: &ModelRanges,
    executed: &[SublayerRecord],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if executed.len() != ranges.convs.len() {
        out.push(Diagnostic::new(
            ErrorCode::AccumulatorOverflow,
            label,
            format!(
                "executed {} sub-layer records; the range analysis certified {}",
                executed.len(),
                ranges.convs.len()
            ),
        ));
        return out;
    }
    for (r, rec) in ranges.convs.iter().zip(executed) {
        let ctx = format!("{}/{label}", rec.name);
        if rec.name != r.name {
            out.push(Diagnostic::new(
                ErrorCode::AccumulatorOverflow,
                &ctx,
                format!(
                    "executed record order diverges from certified order ({})",
                    r.name
                ),
            ));
            continue;
        }
        if !r.acc.contains(rec.acc_min) || !r.acc.contains(rec.acc_max) {
            out.push(Diagnostic::new(
                ErrorCode::AccumulatorOverflow,
                &ctx,
                format!(
                    "executed accumulator range [{}, {}] escapes the certified interval [{}, {}]",
                    rec.acc_min, rec.acc_max, r.acc.lo, r.acc.hi
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dnn::reference::run_model;
    use nc_dnn::workload::{random_input, relu_sparse_mini, tiny_cnn};
    use nc_dnn::{ActQuant, ConvSpec, Padding, WeightQuant};

    fn conv(weights: Vec<u8>, c: usize, m: usize, relu: bool) -> Conv2d {
        Conv2d::with_weights(
            ConvSpec {
                name: "t".into(),
                r: 1,
                s: 1,
                c,
                m,
                stride: 1,
                padding: Padding::Valid,
                relu,
            },
            weights,
            WeightQuant::default(),
            vec![],
        )
    }

    #[test]
    fn interval_bits_and_width() {
        assert_eq!(Interval::new(0, 0).signed_bits(), 1);
        assert_eq!(Interval::new(-1, 0).signed_bits(), 1);
        assert_eq!(Interval::new(0, 1).signed_bits(), 2);
        assert_eq!(Interval::new(-2, 1).signed_bits(), 2);
        assert_eq!(Interval::new(-3, 1).signed_bits(), 3);
        assert_eq!(Interval::new(0, 127).signed_bits(), 8);
        assert_eq!(Interval::new(-128, 127).signed_bits(), 8);
        assert_eq!(Interval::new(-129, 0).signed_bits(), 9);
        assert_eq!(Interval::new(i64::MIN, i64::MAX).signed_bits(), 64);
        assert_eq!(
            Interval::new(i64::MIN, i64::MAX).width(),
            u128::from(u64::MAX)
        );
        assert_eq!(Interval::new(-4, 3).relu(), Interval::new(0, 3));
        assert_eq!(Interval::new(-4, -2).relu(), Interval::point(0));
    }

    #[test]
    fn conv_transfer_is_tap_exact_with_weights() {
        // Weights [3, 0] with zp_w = 0, input centered [0, 255]:
        // filter acc in [0, 3*255] exactly.
        let c = conv(vec![3, 0], 2, 1, false);
        let r = conv_ranges(&c, Interval::new(0, 255));
        assert_eq!(r.acc_raw, Interval::new(0, 765));
        assert!(r.exact_weights);
        assert_eq!(r.weight_bits, 2);
        assert_eq!(r.s2_max, 2 * 255);
        assert_eq!(r.s1_max, 3 * 255);
    }

    #[test]
    fn relu_clamps_the_certified_interval() {
        let mut c = conv(vec![0, 0], 2, 1, true);
        c.w_quant = WeightQuant {
            scale: 1.0,
            zero_point: 5,
        };
        // Centered weights are -5 each: raw acc in [-10*255, 0].
        let r = conv_ranges(&c, Interval::new(0, 255));
        assert_eq!(r.acc_raw, Interval::new(-2550, 0));
        assert_eq!(r.acc, Interval::point(0), "ReLU pins the whole range");
        assert!(check_pipeline("t", &r)
            .iter()
            .any(|d| d.code == ErrorCode::DegenerateRange));
    }

    #[test]
    fn executed_ranges_stay_inside_static_bounds_on_reference_runs() {
        for (model, seed) in [(tiny_cnn(42), 7u64), (relu_sparse_mini(7), 9)] {
            let ranges = model_ranges(&model);
            let input = random_input(model.input_shape, model.input_quant, seed);
            let result = run_model(&model, &input);
            let executed: Vec<SublayerRecord> = result
                .layers
                .iter()
                .flat_map(|l| l.sublayers.clone())
                .collect();
            let diags = reconcile_executed_ranges("reference", &ranges, &executed);
            assert!(diags.is_empty(), "{model:?}: {diags:?}", model = model.name);
        }
    }

    #[test]
    fn default_widths_certify_clean_on_shipped_models() {
        for model in [tiny_cnn(1), relu_sparse_mini(3)] {
            let ranges = model_ranges(&model);
            assert_eq!(ranges.convs.len(), model.conv_sublayer_count());
            for r in &ranges.convs {
                let budget = BitBudget::default_for(&r.name);
                let diags = check_widths(&r.name, r, &budget);
                assert!(diags.is_empty(), "{}: {diags:?}", r.name);
                assert!(check_pipeline(&r.name, r).is_empty(), "{}", r.name);
            }
        }
    }

    #[test]
    fn advised_budgets_are_sound_and_not_over_provisioned() {
        let model = tiny_cnn(5);
        for r in &model_ranges(&model).convs {
            let advised = r.advise();
            assert!(check_widths(&r.name, r, &advised).is_empty());
            assert!(check_provisioning(&r.name, r, &advised).is_empty());
            assert!(advised.partial_bits <= 24 && advised.reduce_bits <= 32);
        }
    }

    #[test]
    fn undersized_budgets_fire_the_width_codes() {
        let c = conv(vec![255; 8], 8, 1, false);
        let r = conv_ranges(&c, Interval::new(-128, 127));
        let starved = BitBudget {
            name: "t".into(),
            mult_bits: 4,
            partial_bits: 6,
            reduce_bits: 8,
        };
        let codes: Vec<ErrorCode> = check_widths("t", &r, &starved)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert!(codes.contains(&ErrorCode::AccumulatorOverflow));
        assert!(codes.contains(&ErrorCode::UnsoundTruncation));
        assert!(codes.contains(&ErrorCode::ReduceWidthDeficit));
    }

    #[test]
    fn default_budgets_over_provision_small_layers() {
        // A tiny conv provably needs far fewer than 24/32 bits: V024 fires
        // against the default allocation and is what the advisor trims.
        let c = conv(vec![1, 1], 2, 1, true);
        let r = conv_ranges(&c, Interval::new(0, 255));
        let default = BitBudget::default_for("t");
        let diags = check_provisioning("t", &r, &default);
        assert!(diags
            .iter()
            .any(|d| d.code == ErrorCode::OverProvisionedRows));
        assert!(check_provisioning("t", &r, &r.advise()).is_empty());
    }

    #[test]
    fn huge_shape_only_layers_fire_pipeline_codes() {
        // A shape-only conv with an absurd tap count overflows the 40-bit
        // assembly region, the ranging offset, and the requant operand.
        let spec = ConvSpec {
            name: "huge".into(),
            r: 64,
            s: 64,
            c: 4096,
            m: 1,
            stride: 1,
            padding: Padding::Valid,
            relu: false,
        };
        let r = conv_ranges(&Conv2d::shape_only(spec), Interval::new(-255, 255));
        let pipeline: Vec<ErrorCode> = check_pipeline("huge", &r)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert!(pipeline.contains(&ErrorCode::RequantClippingRange));
        assert!(pipeline.contains(&ErrorCode::SignExtensionMismatch));
        let widths: Vec<ErrorCode> = check_widths("huge", &r, &BitBudget::default_for("huge"))
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert!(widths.contains(&ErrorCode::AccumulatorOverflow));
        assert!(widths.contains(&ErrorCode::ReduceWidthDeficit));
    }

    #[test]
    fn reconciliation_flags_escapes_and_order_drift() {
        let model = tiny_cnn(3);
        let ranges = model_ranges(&model);
        let input = random_input(model.input_shape, model.input_quant, 1);
        let mut executed: Vec<SublayerRecord> = run_model(&model, &input)
            .layers
            .iter()
            .flat_map(|l| l.sublayers.clone())
            .collect();
        executed[0].acc_max = i64::MAX / 2; // escape the certified interval
        let diags = reconcile_executed_ranges("seq", &ranges, &executed);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, ErrorCode::AccumulatorOverflow);
        assert!(diags[0].message.contains("escapes"));

        let truncated = &executed[..1];
        let diags = reconcile_executed_ranges("seq", &ranges, truncated);
        assert_eq!(diags.len(), 1, "record-count drift is one diagnostic");
    }

    #[test]
    fn input_quant_seeds_the_first_layer() {
        let q = ActQuant {
            scale: 1.0,
            zero_point: 128,
        };
        let mut model = tiny_cnn(2);
        model.input_quant = q;
        let ranges = model_ranges(&model);
        // First conv's interval must reflect the centered [-128, 127] seed,
        // i.e. be narrower than the unknown-zero-point worst case.
        let wide = conv_ranges(
            model.layers[0].conv_sublayers().next().unwrap(),
            Interval::new(-255, 255),
        );
        assert!(ranges.convs[0].acc_raw.hi <= wide.acc_raw.hi);
        assert!(ranges.convs[0].acc_raw.lo >= wide.acc_raw.lo);
    }
}
