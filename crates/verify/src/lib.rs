//! **nc-verify**: a static plan verifier for the Neural Cache
//! reproduction — hazard detection, operand-layout linting, and three-way
//! cycle reconciliation, all without touching data.
//!
//! The compute arrays of the paper (Section III) impose hard structural
//! limits on every cycle: at most **two** word lines sensed (and they must
//! be distinct — the two-row activation of Figure 7), at most **one** word
//! line driven for write-back, the dedicated all-zero row never written,
//! and every row address inside the 256-row array. The executor's
//! correctness and the timing model's honesty both hinge on its operand
//! layouts and op schedules respecting those limits. This crate proves it
//! statically:
//!
//! 1. [`extract`]: a **schedule extractor** replays the address arithmetic
//!    of every `nc-sram` operation (add/mul and all three sparsity
//!    variants, reduce, compare, logic, transfer) into an abstract
//!    per-cycle IR of row read/write sets ([`ir::Schedule`]) — no
//!    execution; the data-dependent facts (elided rounds, live weight
//!    bits) enter as explicit parameters, because those are exactly what
//!    the control FSM knows.
//! 2. [`check`]: a **hazard checker** over that IR — port overflows,
//!    out-of-bounds rows, zero-row clobbering, operand overlap, lane
//!    packing aliasing, row-budget overflow — plus reserved-way dump
//!    overlap invariants against [`neural_cache::BatchCostModel`].
//! 3. **Three-way cycle reconciliation**: static schedule length ==
//!    analytical [`neural_cache::cost::CostModel`] cycles == executed
//!    [`nc_sram::CycleStats`], per layer per sparsity mode, reported as
//!    structured [`diag::Diagnostic`]s with stable `Vxxx` codes.
//! 4. **Concurrency layer** ([`shard`] + [`hb`]): the Threaded engine's
//!    shard graph — per-output-window/per-chunk jobs, the inter-array
//!    reduce barrier, `ArrayPool` checkout/recycle events — rebuilt from
//!    the model and proven race-free by happens-before analysis
//!    (V013–V019), then reconciled against the executed pool counters
//!    (V020).
//! 5. **Value-range certification** ([`range`]): an interval × known-bits
//!    abstract interpretation seeded from each layer's quantization
//!    parameters, propagated op-by-op through the schedule and across
//!    layers by a single-pass dataflow fixpoint (the layer graph is a
//!    DAG). Emits overflow/clipping/provisioning diagnostics V021–V027,
//!    reconciles executed per-layer min/max against the certified
//!    intervals, and feeds proven bounds to the bit-budget advisor in
//!    `neural_cache::mapping`.
//!
//! Entry points: [`check_model`] (static + analytical legs, works on
//! shape-only models), [`check_threaded_model`] (adds the shard-graph
//! concurrency proof, still shape-only), and [`check_executed_model`]
//! (adds the executed leg by running the functional executor under all
//! four sparsity modes on both engines). The `plan_lint` bench bin sweeps
//! every shipped workload × sparsity mode × engine and fails CI on any
//! diagnostic.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::pedantic)]
// Pedantic allowlist: cycle counters convert between u64/f64 by design
// (the analytical model is f64), and diagnostics format many values.
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::float_cmp,
    clippy::module_name_repetitions,
    clippy::too_many_lines,
    clippy::many_single_char_names
)]

pub mod check;
pub mod diag;
pub mod extract;
pub mod hb;
pub mod ir;
pub mod range;
pub mod report;
pub mod shard;

use nc_dnn::{Model, QTensor};
use nc_sram::COLS;
use neural_cache::batching::{BatchCostModel, DUMP_OVERLAP_EFFICIENCY};
use neural_cache::cost::DATA_BITS;
use neural_cache::functional::{
    run_model_configured, FunctionalError, FunctionalResult, PoolEvents,
};
use neural_cache::mapping::{conv_lane_geometry, plan_model_with, BitBudget};
use neural_cache::{ExecutionEngine, SparsityMode, SystemConfig, UnitPlan};

use crate::diag::{Diagnostic, ErrorCode};
use crate::report::VerifyReport;

/// The four sparsity modes every sweep covers.
pub const ALL_MODES: [SparsityMode; 4] = [
    SparsityMode::Dense,
    SparsityMode::SkipZeroRows,
    SparsityMode::SkipZeroInputs,
    SparsityMode::SkipBoth,
];

/// Statically verifies a model's plan under `config`: executor operand
/// layouts, per-mode MAC-tap schedules, cost-model anchor points, every
/// layer's lane geometry / row budget / static-vs-analytical MAC cycles
/// under all four sparsity modes, and the batching model's reserved-way
/// dump-overlap window invariants.
///
/// Works on shape-only models (no weights needed — nothing executes).
///
/// # Panics
///
/// Panics if a layer cannot be mapped at all (the mapper's own invariant).
#[must_use]
pub fn check_model(config: &SystemConfig, model: &Model) -> VerifyReport {
    let mut report = VerifyReport::new(model.name.clone());

    report.record("layouts", check::check_layouts());
    report.record("cost-model", check::check_cost_model());

    // Per-mode MAC-tap and reduction schedules must be hazard-free.
    let mut hazards = Vec::new();
    let flags = [false, true, false, true, false, true, false, true];
    for mode in ALL_MODES {
        let s = check::mac_tap_schedule(mode, &flags, 5);
        hazards.extend(check::check_schedule(&format!("mac_tap/{mode:?}"), &s));
    }
    report.record("mac-tap-hazards", hazards);

    // Per-layer: lane geometry, row budget, reduction-schedule hazards,
    // and the static <-> analytical MAC reconciliation under every mode.
    let mut geometry_diags = Vec::new();
    for layer in &model.layers {
        for conv in layer.conv_sublayers() {
            let geom = conv_lane_geometry(&conv.spec);
            let label = &conv.spec.name;
            geometry_diags.extend(check::check_lane_geometry(label, &geom, conv.spec.m));
            geometry_diags.extend(check::check_schedule(
                &format!("{label}/reduce"),
                &check::reduce_schedule(geom.group_span),
            ));
        }
    }
    report.record("lane-geometry", geometry_diags);

    let mut plan_diags = Vec::new();
    for mode in ALL_MODES {
        for plan in plan_model_with(model, &config.geometry, mode) {
            for unit in &plan.units {
                if let UnitPlan::Conv(c) = unit {
                    let label = format!("{}/{mode:?}", c.name);
                    plan_diags.extend(check::check_row_budget(&label, c));
                    plan_diags.extend(check::check_conv_reconciliation(&label, c));
                }
            }
        }
    }
    report.record("plan-reconciliation", plan_diags);

    report.record("dump-overlap", check_dump_overlap(config, model));

    // Value-range certification (V021-V027): interval x known-bits pass
    // over the schedule, checked against the default provisioning for
    // soundness and against the advised (trimmed) budgets for both
    // soundness and tightness. V024 is only meaningful against advised
    // budgets — the fixed Figure 10 defaults intentionally over-provision
    // small layers, and the advisor is the remedy, not a hazard.
    let ranges = range::model_ranges(model);
    let mut range_diags = Vec::new();
    let mut trimmed_bits = 0u64;
    let mut acc_bits_max = 0u32;
    let mut exact = 0u64;
    for conv in &ranges.convs {
        let label = &conv.name;
        range_diags.extend(range::check_pipeline(label, conv));
        let default = BitBudget::default_for(label.as_str());
        range_diags.extend(range::check_widths(
            &format!("{label}/default"),
            conv,
            &default,
        ));
        let advised = conv.advise();
        range_diags.extend(range::check_widths(
            &format!("{label}/advised"),
            conv,
            &advised,
        ));
        range_diags.extend(range::check_provisioning(
            &format!("{label}/advised"),
            conv,
            &advised,
        ));
        trimmed_bits += advised.trimmed_bits();
        acc_bits_max = acc_bits_max.max(conv.acc_raw.signed_bits());
        exact += u64::from(conv.exact_weights);
    }
    report.record("value-ranges", range_diags);
    report.stat("range_convs", ranges.convs.len() as u64);
    report.stat("range_exact_weighted", exact);
    report.stat("range_acc_bits_max", u64::from(acc_bits_max));
    report.stat("range_trimmed_bits", trimmed_bits);
    report
}

/// Everything [`check_model`] proves, plus the concurrency layer: builds
/// the Threaded engine's shard graph ([`shard::ShardGraph::from_model`])
/// and runs the happens-before analysis ([`hb::check_graph`]) over it —
/// shard row-set independence (V013/V014), reduce-barrier domination
/// (V015), pool recycling discipline (V016/V019), reserved-way dump-window
/// hygiene (V017), and output-slot coverage (V018).
///
/// Works on shape-only models; the graph is derived from shapes and lane
/// geometry alone. The report's `stats` carry the graph's size for the CI
/// artifact.
///
/// # Panics
///
/// Panics if a layer cannot be mapped at all (the mapper's own invariant).
#[must_use]
pub fn check_threaded_model(config: &SystemConfig, model: &Model) -> VerifyReport {
    let mut report = check_model(config, model);
    let graph = shard::ShardGraph::from_model(model);
    report.record("shard-graph", hb::check_graph(&graph));
    report.stat("shard_epochs", graph.epochs.len() as u64);
    report.stat("shard_jobs", graph.shard_count());
    report.stat("shard_reduce_barriers", graph.reduce_barriers.len() as u64);
    report.stat("shard_predicted_acquires", graph.predicted_acquires());
    report
}

/// Reconciles one executed run's [`ArrayPool`] event counts against the
/// shard graph's prediction (V020): the executor must check out exactly
/// the arrays the static decomposition says it will — on every engine,
/// under every sparsity mode — and return every one of them.
///
/// [`ArrayPool`]: nc_sram::ArrayPool
#[must_use]
pub fn reconcile_pool_events(
    predicted_acquires: u64,
    label: &str,
    events: PoolEvents,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if events.acquires != predicted_acquires {
        out.push(Diagnostic::new(
            ErrorCode::ExecutedPoolMismatch,
            label,
            format!(
                "executed {} pool checkouts; the shard graph predicts {predicted_acquires}",
                events.acquires
            ),
        ));
    }
    if events.releases != events.acquires {
        out.push(Diagnostic::new(
            ErrorCode::ExecutedPoolMismatch,
            label,
            format!(
                "{} checkouts vs {} returns: a shard job leaked an array",
                events.acquires, events.releases
            ),
        ));
    }
    out
}

/// Checks the reserved-way dump-overlap window invariants of the batching
/// model (V011): overlap savings can never exceed the efficiency-scaled
/// conflict window, the last image's dump share can never hide, and the
/// residual stall can never go negative.
#[must_use]
pub fn check_dump_overlap(config: &SystemConfig, model: &Model) -> Vec<Diagnostic> {
    let cost = BatchCostModel::new(config, model);
    let mut out = Vec::new();
    let tol = 1e-9;
    for batch in [1usize, 2, 3, 4, 8, 16, 32] {
        let r = cost.report(batch);
        let saved = r.dump_overlap_saved.as_secs_f64();
        let dump = r.dump_time.as_secs_f64();
        let per_image = r.per_image_time.as_secs_f64();
        let b = batch as f64;
        let share_cap = dump * ((b - 1.0) / b) * DUMP_OVERLAP_EFFICIENCY;
        let window_cap = per_image * (b - 1.0) * DUMP_OVERLAP_EFFICIENCY;
        if saved < -tol {
            out.push(Diagnostic::new(
                ErrorCode::ReservedWayPortConflict,
                format!("batch={batch}"),
                format!("negative dump overlap saving {saved:.3e}s"),
            ));
        }
        if saved > share_cap + tol {
            out.push(Diagnostic::new(
                ErrorCode::ReservedWayPortConflict,
                format!("batch={batch}"),
                format!(
                    "overlap saving {saved:.3e}s exceeds the overlappable dump share \
                     {share_cap:.3e}s (the last image's dump cannot hide)"
                ),
            ));
        }
        if saved > window_cap + tol {
            out.push(Diagnostic::new(
                ErrorCode::ReservedWayPortConflict,
                format!("batch={batch}"),
                format!(
                    "overlap saving {saved:.3e}s exceeds the port-conflict window \
                     {window_cap:.3e}s of {} overlappable compute spans",
                    batch - 1
                ),
            ));
        }
        if r.dump_stall().as_secs_f64() < -tol {
            out.push(Diagnostic::new(
                ErrorCode::ReservedWayPortConflict,
                format!("batch={batch}"),
                "negative residual dump stall".to_string(),
            ));
        }
    }
    out
}

/// Runs the functional executor under every sparsity mode (sequential and
/// threaded) and reconciles the executed [`CycleStats`] against the static
/// schedules (V010): dense executes zero elisions, every mode schedules
/// the same statically predicted multiplier-round count, elided cycles
/// reconcile exactly against dense, the dynamic detect charge equals the
/// scheduled rounds, engines agree cycle-for-cycle, and outputs stay
/// bit-identical across all of it.
///
/// # Errors
///
/// Propagates the executor's failure (e.g. a shape-only model).
pub fn check_executed_model(
    config: &SystemConfig,
    model: &Model,
    input: &QTensor,
) -> Result<VerifyReport, FunctionalError> {
    let mut report = check_threaded_model(config, model);
    let mut diags = Vec::new();

    let run = |mode: SparsityMode,
               engine: ExecutionEngine|
     -> Result<FunctionalResult, FunctionalError> {
        run_model_configured(model, input, engine, mode)
    };
    let dense = run(SparsityMode::Dense, ExecutionEngine::Sequential)?;
    let skipping = run(SparsityMode::SkipZeroRows, ExecutionEngine::Sequential)?;
    let dynamic = run(SparsityMode::SkipZeroInputs, ExecutionEngine::Sequential)?;
    let both = run(SparsityMode::SkipBoth, ExecutionEngine::Sequential)?;
    let threaded = run(SparsityMode::Dense, ExecutionEngine::from_threads(4))?;
    let threaded_rows = run(SparsityMode::SkipZeroRows, ExecutionEngine::from_threads(4))?;
    let threaded_inputs = run(
        SparsityMode::SkipZeroInputs,
        ExecutionEngine::from_threads(4),
    )?;
    let threaded_both = run(SparsityMode::SkipBoth, ExecutionEngine::from_threads(4))?;

    let predicted_rounds = predicted_mul_rounds(config, model);
    let mut expect = |cond: bool, op: &str, msg: String| {
        if !cond {
            diags.push(Diagnostic::new(ErrorCode::CycleMismatchExecuted, op, msg));
        }
    };

    let d = dense.cycles;
    expect(
        d.skipped_rounds == 0
            && d.input_rounds_skipped == 0
            && d.detect_cycles == 0
            && d.skipped_cycles == 0,
        "dense",
        format!("dense execution elided work: {d:?}"),
    );
    expect(
        d.mul_rounds == predicted_rounds,
        "dense/rounds",
        format!(
            "executed {} multiplier rounds; the static plan schedules {predicted_rounds}",
            d.mul_rounds
        ),
    );
    for (name, r) in [
        ("skip_rows", &skipping),
        ("skip_inputs", &dynamic),
        ("skip_both", &both),
    ] {
        expect(
            r.cycles.mul_rounds == d.mul_rounds,
            name,
            format!(
                "{name} scheduled {} rounds; dense scheduled {}",
                r.cycles.mul_rounds, d.mul_rounds
            ),
        );
        expect(
            r.output == dense.output,
            name,
            format!("{name} output diverges from dense"),
        );
    }

    let s = skipping.cycles;
    expect(
        s.compute_cycles + s.skipped_cycles == d.compute_cycles,
        "skip_rows/cycles",
        format!(
            "executed {} + saved {} != dense {}",
            s.compute_cycles, s.skipped_cycles, d.compute_cycles
        ),
    );
    expect(
        s.skipped_cycles == s.skipped_rounds * (DATA_BITS as u64 + 2),
        "skip_rows/rounds",
        format!(
            "{} skipped rounds should save {} cycles, recorded {}",
            s.skipped_rounds,
            s.skipped_rounds * (DATA_BITS as u64 + 2),
            s.skipped_cycles
        ),
    );

    for (name, r) in [("skip_inputs", &dynamic), ("skip_both", &both)] {
        let c = r.cycles;
        expect(
            c.compute_cycles + c.skipped_cycles - c.detect_cycles == d.compute_cycles,
            name,
            format!(
                "executed {} + saved {} - detect {} != dense {}",
                c.compute_cycles, c.skipped_cycles, c.detect_cycles, d.compute_cycles
            ),
        );
        expect(
            c.detect_cycles == c.mul_rounds,
            name,
            format!(
                "every scheduled round pays one detect: {} rounds, {} detects",
                c.mul_rounds, c.detect_cycles
            ),
        );
    }
    expect(
        dynamic.cycles.skipped_cycles
            == dynamic.cycles.input_rounds_skipped * (DATA_BITS as u64 + 2),
        "skip_inputs/rounds",
        format!(
            "{} elided input rounds should save {} cycles, recorded {}",
            dynamic.cycles.input_rounds_skipped,
            dynamic.cycles.input_rounds_skipped * (DATA_BITS as u64 + 2),
            dynamic.cycles.skipped_cycles
        ),
    );

    for (name, seq, thr) in [
        ("engines/dense", &dense, &threaded),
        ("engines/skip_rows", &skipping, &threaded_rows),
        ("engines/skip_inputs", &dynamic, &threaded_inputs),
        ("engines/skip_both", &both, &threaded_both),
    ] {
        expect(
            thr.cycles == seq.cycles && thr.output == seq.output,
            name,
            format!(
                "threaded execution diverges from sequential: {:?} vs {:?}",
                thr.cycles, seq.cycles
            ),
        );
    }

    report.record("executed-reconciliation", diags);

    // V020: every run — 4 sparsity modes x both engines — must check out
    // exactly the arrays the shard graph predicts, and return them all.
    // Sparsity elides compute *rounds*, never checkouts, so one static
    // number covers the whole sweep.
    let predicted = shard::ShardGraph::from_model(model).predicted_acquires();
    let mut pool_diags = Vec::new();
    for (name, r) in [
        ("dense/seq", &dense),
        ("skip_rows/seq", &skipping),
        ("skip_inputs/seq", &dynamic),
        ("skip_both/seq", &both),
        ("dense/threaded", &threaded),
        ("skip_rows/threaded", &threaded_rows),
        ("skip_inputs/threaded", &threaded_inputs),
        ("skip_both/threaded", &threaded_both),
    ] {
        pool_diags.extend(reconcile_pool_events(predicted, name, r.pool));
    }
    report.record("pool-reconciliation", pool_diags);

    // V021 executed leg: every per-sublayer accumulator min/max measured
    // by any of the eight runs must lie inside the statically certified
    // interval — the empirical soundness gate of the range analysis.
    let ranges = range::model_ranges(model);
    let mut range_diags = Vec::new();
    for (name, r) in [
        ("dense/seq", &dense),
        ("skip_rows/seq", &skipping),
        ("skip_inputs/seq", &dynamic),
        ("skip_both/seq", &both),
        ("dense/threaded", &threaded),
        ("skip_rows/threaded", &threaded_rows),
        ("skip_inputs/threaded", &threaded_inputs),
        ("skip_both/threaded", &threaded_both),
    ] {
        range_diags.extend(range::reconcile_executed_ranges(
            name,
            &ranges,
            &r.sublayers,
        ));
    }
    report.record("executed-ranges", range_diags);
    Ok(report)
}

/// The multiplier-round count the static plan schedules for one full
/// inference: every convolution output position runs `ceil(m / groups)`
/// MAC passes of `arrays_per_filter x eff_window` taps, each tap one
/// 8-round bit-serial multiply — mirroring the executor's sharding
/// exactly.
#[must_use]
pub fn predicted_mul_rounds(config: &SystemConfig, model: &Model) -> u64 {
    let mut rounds = 0u64;
    for plan in plan_model_with(model, &config.geometry, SparsityMode::Dense) {
        for unit in &plan.units {
            if let UnitPlan::Conv(c) = unit {
                let positions = (c.out_shape.h * c.out_shape.w) as u64;
                let m = c.out_shape.c;
                let groups = if c.arrays_per_filter == 1 {
                    (COLS / c.lanes_per_filter).min(m).max(1)
                } else {
                    1
                };
                let passes = m.div_ceil(groups) as u64;
                rounds += positions
                    * passes
                    * c.arrays_per_filter as u64
                    * c.eff_window as u64
                    * DATA_BITS as u64;
            }
        }
    }
    rounds
}

/// Re-exported so downstream consumers can name executed cycle totals
/// without importing `nc-sram` directly.
pub use nc_sram::CycleStats as ExecutedCycles;

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dnn::workload::{random_input, tiny_cnn};

    #[test]
    fn shape_only_inception_verifies_clean() {
        let config = SystemConfig::default();
        let model = nc_dnn::inception::inception_v3();
        let report = check_model(&config, &model);
        assert!(report.is_clean(), "{report}");
        assert!(report.checks.iter().any(|c| c == "value-ranges"));
        let expected = model.conv_sublayer_count() as u64;
        assert!(report
            .stats
            .iter()
            .any(|(name, value)| name == "range_convs" && *value == expected));
    }

    #[test]
    fn threaded_check_proves_the_shard_graph_clean() {
        let config = SystemConfig::default();
        let report = check_threaded_model(&config, &tiny_cnn(42));
        assert!(report.is_clean(), "{report}");
        assert!(report.checks.iter().any(|c| c == "shard-graph"));
        assert!(report
            .stats
            .iter()
            .any(|(name, value)| name == "shard_predicted_acquires" && *value > 0));
    }

    #[test]
    fn pool_reconciliation_flags_drifted_counters() {
        let events = PoolEvents {
            acquires: 10,
            releases: 9,
        };
        let diags = reconcile_pool_events(12, "dense/seq", events);
        assert_eq!(diags.len(), 2);
        assert!(diags
            .iter()
            .all(|d| d.code == ErrorCode::ExecutedPoolMismatch));
    }

    #[test]
    fn executed_tiny_cnn_reconciles() {
        let config = SystemConfig::default();
        let model = tiny_cnn(42);
        let input = random_input(model.input_shape, model.input_quant, 7);
        let report = check_executed_model(&config, &model, &input).unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(report.checks.iter().any(|c| c == "executed-reconciliation"));
        assert!(report.checks.iter().any(|c| c == "pool-reconciliation"));
        assert!(report.checks.iter().any(|c| c == "shard-graph"));
        assert!(report.checks.iter().any(|c| c == "executed-ranges"));
    }

    #[test]
    fn predicted_rounds_are_positive_for_conv_models() {
        let config = SystemConfig::default();
        assert!(predicted_mul_rounds(&config, &tiny_cnn(1)) > 0);
    }
}
