//! The shard-graph IR: the Threaded engine's concurrent work decomposition
//! as a verifiable artifact.
//!
//! The functional executor runs each pass of a layer as a batch of
//! independent shard jobs dispatched through one
//! `neural_cache::ExecutionEngine::run` call (an **epoch** here), with an
//! implicit join — a barrier — between consecutive epochs. Each shard
//! checks a fixed number of arrays out of the shared `ArrayPool`, touches
//! only the word-line regions of its pass layout
//! (`neural_cache::layout`), writes a private slice of the host-side
//! accumulator buffer, and returns every array before the job ends. The
//! inter-array reduce barrier of Section IV-D is the join between a MAC
//! epoch and its ranging epoch.
//!
//! [`ShardGraph::from_model`] rebuilds that decomposition from the model
//! alone — the same shape walk and lane geometry the executor uses, shard
//! for shard and checkout for checkout — so the happens-before checker
//! ([`crate::hb`]) can prove the concurrency claims statically and the
//! executed leg can reconcile the predicted checkout count against the
//! real pool counters ([`nc_sram::PoolStats`]).

use nc_dnn::{Branch, BranchOp, ConvSpec, Layer, MixedBlock, Model, Pool2d, PoolKind, Shape};
use nc_sram::COLS;
use neural_cache::layout::{all_layouts_with_dump, DUMP_ROW};
use neural_cache::mapping::conv_lane_geometry;

/// Row-granular read/write footprint of one shard-job pass, derived from
/// the executor's named operand layouts. The footprint is conservative:
/// every operand region is both read and written over the job's lifetime
/// (streaming loads, bit-serial compute, result peeks), and dump-using
/// jobs additionally write the reserved [`DUMP_ROW`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutSpec {
    /// Pass name (e.g. `"mac_reduce"`).
    pub name: String,
    /// Word-line ranges `[start, end)` the job senses.
    pub reads: Vec<(u16, u16)>,
    /// Word-line ranges `[start, end)` the job drives.
    pub writes: Vec<(u16, u16)>,
}

impl LayoutSpec {
    /// Whether any write range of `self` overlaps any write range of
    /// `other`.
    #[must_use]
    pub fn writes_overlap(&self, other: &LayoutSpec) -> bool {
        ranges_overlap(&self.writes, &other.writes)
    }

    /// Whether a write of either layout overlaps a read of the other.
    #[must_use]
    pub fn write_read_overlap(&self, other: &LayoutSpec) -> bool {
        ranges_overlap(&self.writes, &other.reads) || ranges_overlap(&self.reads, &other.writes)
    }
}

fn ranges_overlap(a: &[(u16, u16)], b: &[(u16, u16)]) -> bool {
    a.iter()
        .any(|&(s1, e1)| b.iter().any(|&(s2, e2)| s1 < e2 && s2 < e1))
}

/// One group of pool checkouts by a shard: `count` arrays with consecutive
/// virtual ids `first_array..first_array + count`, all staged with the
/// same pass layout. The builder assigns every checkout a globally unique
/// virtual id — the pool may hand back the same physical array after a
/// release, but never the same *live* checkout, which is exactly the
/// aliasing the checker hunts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolUse {
    /// Index into [`ShardGraph::layouts`].
    pub layout: u32,
    /// First virtual array id of the group.
    pub first_array: u32,
    /// Number of arrays in the group.
    pub count: u32,
    /// Checked out through the `ArrayPool` (false models a raw touch of
    /// an array the shard never checked out).
    pub acquired: bool,
    /// Returned to the pool when the shard job ends.
    pub released: bool,
}

/// One shard job of an epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Shard {
    /// Arrays this shard stages, grouped by pass layout.
    pub uses: Vec<PoolUse>,
    /// Slice `[start, end)` of the epoch's output buffer this shard
    /// writes (host-side fold target).
    pub write_slots: Option<(u64, u64)>,
    /// Slice `[start, end)` of the epoch's input buffer this shard reads.
    pub read_slots: Option<(u64, u64)>,
    /// Claims the reserved cache way (the batch pipeline's dump target).
    /// The executor never schedules compute there; a true flag inside a
    /// dump-overlap window is a race.
    pub reserved_way: bool,
}

/// The pass a set of shard jobs implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochKind {
    /// MAC + grouped reduction + accumulator assembly (one shard per
    /// output window).
    Mac,
    /// Inter-array min/max ranging (one shard per 256-lane chunk). Its
    /// cross-shard accumulator read must be dominated by the reduce
    /// barrier.
    Ranging,
    /// Accumulator requantization (one shard per 256-lane chunk).
    Requant,
    /// Code-to-code requantization of a pool-final branch.
    CodeRequant,
    /// Max/average pooling (one shard per 256-lane chunk).
    Pool,
}

/// One `ExecutionEngine::run` dispatch: a batch of mutually concurrent
/// shard jobs with an implicit join at the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Epoch {
    /// Label (e.g. `"Conv2d_1a_3x3/mac"`).
    pub label: String,
    /// The pass these shards implement.
    pub kind: EpochKind,
    /// The concurrent shard jobs.
    pub shards: Vec<Shard>,
    /// Host buffer id this epoch's shards write, if any.
    pub writes_buffer: Option<u32>,
    /// Host buffer id this epoch's shards read, if any. Buffers gathered
    /// on the host *before* dispatch (input windows) are not modelled —
    /// program order already dominates them.
    pub reads_buffer: Option<u32>,
    /// Total slot count the shards' `write_slots` must exactly partition.
    pub out_slots: Option<u64>,
    /// The batch pipeline may overlap the previous image's reserved-way
    /// dump with this epoch (true for every compute epoch — which is why
    /// no shard may claim the reserved way).
    pub dump_window: bool,
}

impl Epoch {
    fn new(label: String, kind: EpochKind) -> Self {
        Epoch {
            label,
            kind,
            shards: Vec::new(),
            writes_buffer: None,
            reads_buffer: None,
            out_slots: None,
            dump_window: true,
        }
    }
}

/// The full concurrent schedule of one model inference: epochs in dispatch
/// order, the joins between them, and which joins are inter-array reduce
/// barriers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardGraph {
    /// Model name.
    pub name: String,
    /// The pass layouts shards reference (row-granular footprints).
    pub layouts: Vec<LayoutSpec>,
    /// Dispatch-ordered epochs.
    pub epochs: Vec<Epoch>,
    /// `joins[i]` is true when a barrier separates epoch `i` and `i + 1`
    /// (every `ExecutionEngine::run` return is one; the builder emits all
    /// true — race-injection tests drop them).
    pub joins: Vec<bool>,
    /// Join indices that are inter-array reduce barriers (the MAC →
    /// ranging join of each convolution).
    pub reduce_barriers: Vec<usize>,
    /// Virtual array id space (total pool checkouts).
    pub arrays: u32,
    /// Host buffer id space.
    pub buffers: u32,
}

impl ShardGraph {
    /// Builds the shard graph of `model`'s functional execution: the same
    /// work decomposition, in the same dispatch order, with the same pool
    /// checkout counts as `neural_cache::functional` — derived from
    /// shapes and lane geometry alone (no weights, nothing executes).
    ///
    /// # Panics
    ///
    /// Panics on a branch whose final op is missing (malformed model —
    /// `Branch::new` already rejects it).
    #[must_use]
    pub fn from_model(model: &Model) -> Self {
        let mut b = Builder::new(model.name.clone());
        let mut shape = model.input_shape;
        for layer in &model.layers {
            shape = b.layer(layer, shape);
        }
        b.finish()
    }

    /// Total shard jobs across all epochs.
    #[must_use]
    pub fn shard_count(&self) -> u64 {
        self.epochs.iter().map(|e| e.shards.len() as u64).sum()
    }

    /// Total pool checkouts the graph predicts — the number the executed
    /// [`nc_sram::PoolStats::acquires`] counter must match exactly, on
    /// every engine under every sparsity mode.
    #[must_use]
    pub fn predicted_acquires(&self) -> u64 {
        self.epochs
            .iter()
            .flat_map(|e| &e.shards)
            .flat_map(|s| &s.uses)
            .filter(|u| u.acquired)
            .map(|u| u64::from(u.count))
            .sum()
    }
}

/// Indices into [`ShardGraph::layouts`] for the executor pass layouts, in
/// the order [`all_layouts_with_dump`] reports them.
#[derive(Debug, Clone, Copy)]
struct PassIds {
    mac_reduce: u32,
    assemble: u32,
    ranging: u32,
    requant: u32,
    code_requant: u32,
    pool_max: u32,
    pool_avg: u32,
}

/// A branch output waiting for the block-wide range (mirrors the
/// executor's `Pending`).
enum PendingEpochs {
    /// Accumulators awaiting requantization: (slot count, acc buffer,
    /// sub-layer name).
    Acc(u64, u32, String),
    /// Pooled codes awaiting code-to-code requantization.
    Codes(u64, u32, String),
}

struct Builder {
    name: String,
    layouts: Vec<LayoutSpec>,
    ids: PassIds,
    epochs: Vec<Epoch>,
    joins: Vec<bool>,
    reduce_barriers: Vec<usize>,
    next_array: u32,
    next_buffer: u32,
}

impl Builder {
    fn new(name: String) -> Self {
        let mut layouts = Vec::new();
        let mut index_of = |job: &str| -> u32 {
            let (name, operands, dumps) = all_layouts_with_dump()
                .into_iter()
                .find(|(n, _, _)| *n == job)
                .expect("executor pass layout exists");
            let rows: Vec<(u16, u16)> = operands
                .iter()
                .map(|(_, o)| (o.rows().start as u16, o.rows().end as u16))
                .collect();
            let mut writes = rows.clone();
            if dumps {
                writes.push((DUMP_ROW as u16, DUMP_ROW as u16 + 1));
            }
            layouts.push(LayoutSpec {
                name: name.to_string(),
                reads: rows,
                writes,
            });
            (layouts.len() - 1) as u32
        };
        let ids = PassIds {
            mac_reduce: index_of("mac_reduce"),
            assemble: index_of("assemble_acc"),
            ranging: index_of("ranging"),
            requant: index_of("requant"),
            code_requant: index_of("code_requant"),
            pool_max: index_of("pool_max"),
            pool_avg: index_of("pool_avg"),
        };
        Builder {
            name,
            layouts,
            ids,
            epochs: Vec::new(),
            joins: Vec::new(),
            reduce_barriers: Vec::new(),
            next_array: 0,
            next_buffer: 0,
        }
    }

    fn finish(self) -> ShardGraph {
        ShardGraph {
            name: self.name,
            layouts: self.layouts,
            epochs: self.epochs,
            joins: self.joins,
            reduce_barriers: self.reduce_barriers,
            arrays: self.next_array,
            buffers: self.next_buffer,
        }
    }

    fn checkout(&mut self, layout: u32, count: u32) -> PoolUse {
        let first_array = self.next_array;
        self.next_array += count;
        PoolUse {
            layout,
            first_array,
            count,
            acquired: true,
            released: true,
        }
    }

    fn fresh_buffer(&mut self) -> u32 {
        let b = self.next_buffer;
        self.next_buffer += 1;
        b
    }

    fn push(&mut self, epoch: Epoch) {
        if !self.epochs.is_empty() {
            self.joins.push(true);
        }
        self.epochs.push(epoch);
    }

    fn layer(&mut self, layer: &Layer, input: Shape) -> Shape {
        match layer {
            Layer::Conv(conv) => {
                let (out_shape, acc_buffer, total) = self.conv_accumulate(&conv.spec, input);
                self.requant_epochs(&conv.spec.name, total, acc_buffer);
                out_shape
            }
            Layer::Pool(pool) => self.pool_epoch(pool, input).0,
            Layer::Mixed(block) => self.mixed(block, input),
        }
    }

    /// MAC + assembly epoch, reduce barrier, ranging epoch — exactly the
    /// executor's `conv_accumulate`. Returns the output shape, the
    /// accumulator buffer id, and its slot count.
    fn conv_accumulate(&mut self, spec: &ConvSpec, input: Shape) -> (Shape, u32, u64) {
        let geom = conv_lane_geometry(spec);
        let out_shape = spec.out_shape(input);
        let positions = out_shape.h * out_shape.w;
        let m = spec.m;
        let runs = m.div_ceil(geom.groups_per_array(m)) as u32;
        let mac_uses = runs * geom.arrays_per_filter as u32;
        let total = (positions * m) as u64;
        let acc_buffer = self.fresh_buffer();

        let mut mac = Epoch::new(format!("{}/mac", spec.name), EpochKind::Mac);
        mac.writes_buffer = Some(acc_buffer);
        mac.out_slots = Some(total);
        for pos in 0..positions as u64 {
            let uses = vec![
                self.checkout(self.ids.mac_reduce, mac_uses),
                self.checkout(self.ids.assemble, m as u32),
            ];
            mac.shards.push(Shard {
                uses,
                write_slots: Some((pos * m as u64, (pos + 1) * m as u64)),
                read_slots: None,
                reserved_way: false,
            });
        }
        self.push(mac);

        // The join sealing the MAC epoch is THE inter-array reduce
        // barrier: ranging needs every shard's accumulators.
        let barrier = self.epochs.len() - 1;
        let mut ranging = Epoch::new(format!("{}/ranging", spec.name), EpochKind::Ranging);
        ranging.reads_buffer = Some(acc_buffer);
        for chunk in 0..total.div_ceil(COLS as u64) {
            let uses = vec![self.checkout(self.ids.ranging, 2)];
            ranging.shards.push(Shard {
                uses,
                write_slots: None,
                read_slots: Some((chunk * COLS as u64, total.min((chunk + 1) * COLS as u64))),
                reserved_way: false,
            });
        }
        self.push(ranging);
        self.reduce_barriers.push(barrier);
        (out_shape, acc_buffer, total)
    }

    /// Requantization epoch over `total` accumulator slots (pass 3).
    fn requant_epochs(&mut self, name: &str, total: u64, acc_buffer: u32) -> u32 {
        self.chunked_epoch(
            format!("{name}/requant"),
            EpochKind::Requant,
            self.ids.requant,
            total,
            Some(acc_buffer),
        )
    }

    /// One shard per 256-slot chunk, each acquiring one array, reading the
    /// input buffer chunk and writing the same chunk of a fresh output
    /// buffer. Returns the output buffer id.
    fn chunked_epoch(
        &mut self,
        label: String,
        kind: EpochKind,
        layout: u32,
        total: u64,
        reads: Option<u32>,
    ) -> u32 {
        let out_buffer = self.fresh_buffer();
        let mut epoch = Epoch::new(label, kind);
        epoch.writes_buffer = Some(out_buffer);
        epoch.reads_buffer = reads;
        epoch.out_slots = Some(total);
        for chunk in 0..total.div_ceil(COLS as u64) {
            let slots = (chunk * COLS as u64, total.min((chunk + 1) * COLS as u64));
            let uses = vec![self.checkout(layout, 1)];
            epoch.shards.push(Shard {
                uses,
                write_slots: Some(slots),
                read_slots: reads.map(|_| slots),
                reserved_way: false,
            });
        }
        self.push(epoch);
        out_buffer
    }

    /// Pooling epoch (windows are gathered host-side before dispatch, so
    /// no modelled buffer read). Returns the output shape and buffer.
    fn pool_epoch(&mut self, pool: &Pool2d, input: Shape) -> (Shape, u32) {
        let out_shape = pool.out_shape(input);
        let layout = match pool.kind {
            PoolKind::Max => self.ids.pool_max,
            PoolKind::Avg => self.ids.pool_avg,
        };
        let buffer = self.chunked_epoch(
            format!("{}/pool", pool.name),
            EpochKind::Pool,
            layout,
            out_shape.len() as u64,
            None,
        );
        (out_shape, buffer)
    }

    /// Mirrors the executor's `mixed`: every branch's epochs in branch
    /// order, then the deferred (code-)requantizations in pending order
    /// after the block-wide range.
    fn mixed(&mut self, block: &MixedBlock, input: Shape) -> Shape {
        let mut pending = Vec::new();
        for branch in &block.branches {
            self.branch(branch, input, &mut pending);
        }
        for p in pending {
            match p {
                PendingEpochs::Acc(total, buffer, name) => {
                    self.requant_epochs(&name, total, buffer);
                }
                PendingEpochs::Codes(total, buffer, name) => {
                    self.chunked_epoch(
                        format!("{name}/code_requant"),
                        EpochKind::CodeRequant,
                        self.ids.code_requant,
                        total,
                        Some(buffer),
                    );
                }
            }
        }
        block.out_shape(input)
    }

    fn branch(&mut self, branch: &Branch, input: Shape, pending: &mut Vec<PendingEpochs>) {
        let mut cur = input;
        let last = branch.ops.len() - 1;
        for (i, op) in branch.ops.iter().enumerate() {
            match op {
                BranchOp::Pool(p) => {
                    let (shape, buffer) = self.pool_epoch(p, cur);
                    if i == last {
                        pending.push(PendingEpochs::Codes(
                            shape.len() as u64,
                            buffer,
                            p.name.clone(),
                        ));
                        return;
                    }
                    cur = shape;
                }
                BranchOp::Conv(c) => {
                    let (shape, buffer, total) = self.conv_accumulate(&c.spec, cur);
                    if i == last {
                        pending.push(PendingEpochs::Acc(total, buffer, c.spec.name.clone()));
                        return;
                    }
                    self.requant_epochs(&c.spec.name, total, buffer);
                    cur = shape;
                }
                BranchOp::Split(convs) => {
                    for c in convs {
                        let (_, buffer, total) = self.conv_accumulate(&c.spec, cur);
                        pending.push(PendingEpochs::Acc(total, buffer, c.spec.name.clone()));
                    }
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dnn::workload::tiny_cnn;

    #[test]
    fn conv_epochs_mirror_the_executor_decomposition() {
        let model = tiny_cnn(42);
        let g = ShardGraph::from_model(&model);
        assert_eq!(g.name, model.name);
        assert!(g.epochs.len() >= 3, "mac + ranging + requant per conv");
        assert_eq!(g.joins.len(), g.epochs.len() - 1);
        assert!(g.joins.iter().all(|&j| j), "builder emits every barrier");
        assert!(!g.reduce_barriers.is_empty());
        assert!(g.predicted_acquires() > 0);
        assert_eq!(u64::from(g.arrays), g.predicted_acquires());

        // Every MAC epoch is sealed by a reduce barrier and followed by
        // its ranging epoch.
        for (i, e) in g.epochs.iter().enumerate() {
            if e.kind == EpochKind::Mac {
                assert!(g.reduce_barriers.contains(&i), "{}: unsealed MAC", e.label);
                assert_eq!(g.epochs[i + 1].kind, EpochKind::Ranging);
                assert_eq!(g.epochs[i + 1].reads_buffer, e.writes_buffer);
            }
        }
    }

    #[test]
    fn checkout_ids_are_globally_unique() {
        let g = ShardGraph::from_model(&tiny_cnn(42));
        let mut seen = vec![false; g.arrays as usize];
        for use_ in g
            .epochs
            .iter()
            .flat_map(|e| &e.shards)
            .flat_map(|s| &s.uses)
        {
            for id in use_.first_array..use_.first_array + use_.count {
                assert!(!seen[id as usize], "array {id} checked out twice");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "virtual id space is dense");
    }

    #[test]
    fn layout_footprints_cover_the_dump_row_users() {
        let g = ShardGraph::from_model(&tiny_cnn(1));
        let dump = (DUMP_ROW as u16, DUMP_ROW as u16 + 1);
        for spec in &g.layouts {
            let dumps = spec.writes.contains(&dump);
            let should = matches!(
                spec.name.as_str(),
                "ranging" | "requant" | "code_requant" | "pool_max"
            );
            assert_eq!(dumps, should, "{}", spec.name);
        }
    }
}
