//! Property-based soundness gate for the value-range certification:
//! random two-layer models executed with random inputs under all four
//! sparsity modes on both engines must keep every measured per-sublayer
//! accumulator min/max inside the statically certified interval, and
//! injected under-sized bit budgets must fire exactly the matching width
//! code (V021 for the partial, V026 for the multiplicand, V027 for the
//! reduction tree) — never a false positive on the honest budget.
#![recursion_limit = "1024"]

use nc_dnn::workload::{random_conv, random_input};
use nc_dnn::{ActQuant, Layer, Model, Padding, Shape};
use nc_verify::diag::ErrorCode;
use nc_verify::range;
use neural_cache::functional::run_model_configured;
use neural_cache::mapping::{bits_for_unsigned, BitBudget};
use neural_cache::{ExecutionEngine, SparsityMode};
use proptest::prelude::*;

/// A two-convolution model (3x3 then 1x1) so the interval analysis has to
/// propagate a derived activation range across a layer boundary.
fn random_model(c: usize, m1: usize, m2: usize, relu1: bool, centered: bool, seed: u64) -> Model {
    let conv1 = random_conv(
        "prop/conv1_3x3",
        (3, 3),
        c,
        m1,
        1,
        Padding::Same,
        relu1,
        seed,
    );
    let conv2 = random_conv(
        "prop/conv2_1x1",
        (1, 1),
        m1,
        m2,
        1,
        Padding::Valid,
        false,
        seed.wrapping_add(1),
    );
    let input_quant = if centered {
        ActQuant::from_range(-1.0, 1.0)
    } else {
        ActQuant::from_range(0.0, 1.0)
    };
    Model {
        name: "prop-range".into(),
        input_shape: Shape::new(5, 5, c),
        input_quant,
        layers: vec![Layer::Conv(conv1), Layer::Conv(conv2)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Executed accumulator ranges stay inside the static certificate for
    /// every (engine, sparsity mode) pair, and the reference executor's
    /// records agree too.
    #[test]
    fn executed_ranges_never_escape_the_certificate(
        c in 2usize..=6,
        m1 in 1usize..=6,
        m2 in 1usize..=4,
        relu1 in any::<bool>(),
        centered in any::<bool>(),
        seed in 0u64..1_000,
        input_seed in 0u64..1_000,
    ) {
        let model = random_model(c, m1, m2, relu1, centered, seed);
        let input = random_input(model.input_shape, model.input_quant, input_seed);
        let ranges = range::model_ranges(&model);

        // Reference executor leg.
        let reference = nc_dnn::reference::run_model(&model, &input);
        let flat: Vec<_> = reference
            .layers
            .iter()
            .flat_map(|l| l.sublayers.iter().cloned())
            .collect();
        let diags = range::reconcile_executed_ranges("reference", &ranges, &flat);
        prop_assert!(diags.is_empty(), "{diags:?}");

        // In-cache functional executor: 4 sparsity modes x 2 engines.
        for engine in [ExecutionEngine::Sequential, ExecutionEngine::from_threads(4)] {
            for mode in [
                SparsityMode::Dense,
                SparsityMode::SkipZeroRows,
                SparsityMode::SkipZeroInputs,
                SparsityMode::SkipBoth,
            ] {
                let run = run_model_configured(&model, &input, engine, mode);
                prop_assert!(run.is_ok(), "{mode:?}: {:?}", run.err());
                let run = run.unwrap();
                let diags =
                    range::reconcile_executed_ranges("functional", &ranges, &run.sublayers);
                prop_assert!(diags.is_empty(), "{engine:?}/{mode:?}: {diags:?}");
            }
        }
    }

    /// The advised budget carries a clean certificate, while a budget
    /// under-sized by one bit in exactly one operand fires exactly the
    /// matching width code.
    #[test]
    fn undersized_budgets_fire_the_matching_code(
        c in 2usize..=6,
        m1 in 1usize..=6,
        relu1 in any::<bool>(),
        centered in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let model = random_model(c, m1, 2, relu1, centered, seed);
        let ranges = range::model_ranges(&model);
        for r in &ranges.convs {
            let advised = r.advise();
            prop_assert!(
                range::check_widths(&r.name, r, &advised).is_empty(),
                "{}: honest advised budget flagged", r.name
            );

            // Partial one bit short of the proven max: exactly V021.
            let needed = bits_for_unsigned(r.partial_max);
            prop_assert!(needed > 1);
            let starved = BitBudget { partial_bits: needed - 1, ..advised.clone() };
            let diags = range::check_widths(&r.name, r, &starved);
            prop_assert!(!diags.is_empty());
            prop_assert!(
                diags.iter().all(|d| d.code == ErrorCode::AccumulatorOverflow),
                "{diags:?}"
            );

            // Multiplicand narrower than the proven weight width: V026.
            if r.weight_bits > 1 {
                let starved = BitBudget { mult_bits: r.weight_bits - 1, ..advised.clone() };
                let diags = range::check_widths(&r.name, r, &starved);
                prop_assert!(
                    diags.iter().any(|d| d.code == ErrorCode::UnsoundTruncation),
                    "{diags:?}"
                );
            }

            // Reduce tree one bit short of max(S1, S2): V027.
            let needed = bits_for_unsigned(r.s1_max.max(r.s2_max));
            prop_assert!(needed > 1);
            let starved = BitBudget { reduce_bits: needed - 1, ..advised.clone() };
            let diags = range::check_widths(&r.name, r, &starved);
            prop_assert!(
                diags.iter().any(|d| d.code == ErrorCode::ReduceWidthDeficit),
                "{diags:?}"
            );
        }
    }
}
