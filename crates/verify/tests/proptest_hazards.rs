//! Property-based hazard injection: mutate provably clean schedules and
//! operand sets in targeted ways and assert the verifier flags each
//! injected hazard with the *right* error code — and never flags the
//! clean original (no false positives).

use nc_verify::check::{check_lane_geometry, check_operands, check_schedule};
use nc_verify::diag::ErrorCode;
use nc_verify::extract;
use nc_verify::ir::{Step, StepKind};
use neural_cache::LaneGeometry;
use proptest::prelude::*;

use nc_sram::{Operand, COLS, ROWS};

/// Reserved word lines the functional executor dedicates (all-zero row and
/// comparison dump row); clean operands must stay below both.
const RESERVED_FLOOR: usize = 240;

fn op(base: usize, bits: usize) -> Operand {
    Operand::new(base, bits).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Disjoint in-bounds operands below the reserved rows produce zero
    /// diagnostics, for every arithmetic schedule shape.
    #[test]
    fn clean_plans_are_clean(bits in 1usize..=8, gap in 0usize..8) {
        let a = op(0, bits);
        let b = op(bits + gap, bits);
        let dst = op(2 * bits + 2 * gap, bits + 1);
        prop_assert_eq!(check_operands("clean", &[("a", a), ("b", b), ("dst", dst)]), vec![]);
        prop_assert_eq!(check_schedule("add", &extract::add(a, b, dst)), vec![]);
        let prod = op(64, 2 * bits);
        prop_assert_eq!(check_schedule("mul", &extract::mul(a, b, prod)), vec![]);
        prop_assert_eq!(check_schedule("add_assign", &extract::add_assign(prod, a)), vec![]);
    }

    /// Two operands forced to share a word line are flagged V001 — and
    /// nothing else, since both stay in bounds below the reserved rows.
    #[test]
    fn injected_overlap_is_v001(base in 0usize..100, bits in 2usize..=16, offset in 0usize..16, bits_b in 1usize..=16) {
        let a = op(base, bits);
        let b = op(base + (offset % bits), bits_b);
        let diags = check_operands("inject", &[("a", a), ("b", b)]);
        prop_assert!(!diags.is_empty());
        prop_assert!(diags.iter().all(|d| d.code == ErrorCode::OperandOverlap), "{diags:?}");
    }

    /// Rewriting one activated word line of a clean schedule to fall past
    /// the array is flagged V002 exactly once.
    #[test]
    fn injected_out_of_bounds_row_is_v002(bits in 1usize..=8, step_pick in 0usize..64, excess in 0usize..8) {
        let a = op(0, bits);
        let b = op(16, bits);
        let dst = op(32, bits + 1);
        let mut s = extract::add(a, b, dst);
        prop_assert_eq!(check_schedule("pre", &s), vec![]);
        let idx = step_pick % s.steps.len();
        let step = &mut s.steps[idx];
        if step.reads.is_empty() {
            step.writes[0] = ROWS + excess;
        } else {
            step.reads[0] = ROWS + excess;
        }
        let diags = check_schedule("inject", &s);
        let v002: Vec<_> = diags.iter().filter(|d| d.code == ErrorCode::RowOutOfBounds).collect();
        prop_assert_eq!(v002.len(), 1, "{diags:?}");
    }

    /// A compute cycle sensing more than two word lines — or the same word
    /// line twice — is flagged V003.
    #[test]
    fn injected_read_port_overflow_is_v003(row in 0usize..RESERVED_FLOOR, dup in 0usize..2) {
        let reads = if dup == 0 { vec![row, row] } else { vec![row, (row + 1) % RESERVED_FLOOR, (row + 2) % RESERVED_FLOOR] };
        let mut s = extract::add(op(0, 4), op(8, 4), op(16, 5));
        s.steps.push(Step { kind: StepKind::Compute, reads, writes: vec![], label: "injected" });
        let diags = check_schedule("inject", &s);
        prop_assert!(diags.iter().any(|d| d.code == ErrorCode::ReadPortOverflow), "{diags:?}");
        prop_assert!(diags.iter().all(|d| d.code == ErrorCode::ReadPortOverflow), "{diags:?}");
    }

    /// A compute cycle driving two write word lines is flagged V004.
    #[test]
    fn injected_write_port_overflow_is_v004(row in 0usize..RESERVED_FLOOR - 1) {
        let mut s = extract::copy(op(0, 4), op(8, 4));
        s.steps.push(Step {
            kind: StepKind::Compute,
            reads: vec![row],
            writes: vec![row, row + 1],
            label: "injected",
        });
        let diags = check_schedule("inject", &s);
        prop_assert!(diags.iter().any(|d| d.code == ErrorCode::WritePortOverflow), "{diags:?}");
        prop_assert!(diags.iter().all(|d| d.code == ErrorCode::WritePortOverflow), "{diags:?}");
    }

    /// Any write-back targeting the dedicated all-zero row is flagged
    /// V005, from both the schedule checker and the operand linter.
    #[test]
    fn injected_zero_row_write_is_v005(bits in 1usize..=8) {
        // Schedule leg: a broadcast whose top row lands on the zero row.
        let clobber = op(neural_cache::layout::ZERO_ROW + 1 - bits, bits);
        let diags = check_schedule("inject", &extract::broadcast(clobber));
        prop_assert!(diags.iter().any(|d| d.code == ErrorCode::ZeroRowClobbered), "{diags:?}");
        // Operand leg: the linter flags the same claim statically.
        let diags = check_operands("inject", &[("clobber", clobber)]);
        prop_assert!(diags.iter().any(|d| d.code == ErrorCode::ZeroRowClobbered), "{diags:?}");
    }

    /// A lane geometry whose packed groups exceed the array's bit lines is
    /// flagged V007.
    #[test]
    fn injected_lane_packing_alias_is_v007(shift in 1usize..=3, m in 17usize..64) {
        // group_span wider than lanes_per_filter over-packs the array.
        let lanes = 16usize;
        let geom = LaneGeometry {
            packing: 1,
            split: 1,
            eff_window: 9,
            eff_channels: lanes,
            lanes_per_filter: lanes,
            group_span: lanes << shift,
            arrays_per_filter: 1,
            filters_per_array: COLS / lanes,
        };
        let diags = check_lane_geometry("inject", &geom, m);
        prop_assert!(diags.iter().any(|d| d.code == ErrorCode::LanePackingAlias), "{diags:?}");
    }

    /// A reduction span that is not a power of two cannot be halved by the
    /// lane-move tree and is flagged V008.
    #[test]
    fn injected_non_power_of_two_span_is_v008(span in 2usize..=120) {
        // Bump powers of two off by one; the successor of a power of two
        // >= 2 is never itself a power of two.
        let span = if span.is_power_of_two() { span + 1 } else { span };
        let geom = LaneGeometry {
            packing: 1,
            split: 1,
            eff_window: 9,
            eff_channels: span,
            lanes_per_filter: span.next_power_of_two(),
            group_span: span,
            arrays_per_filter: 1,
            filters_per_array: COLS / span.next_power_of_two(),
        };
        let diags = check_lane_geometry("inject", &geom, 8);
        prop_assert!(diags.iter().any(|d| d.code == ErrorCode::NonPowerOfTwoLanes), "{diags:?}");
    }

    /// A filter split across too few arrays to cover its lanes is flagged
    /// V007 even when every span is a power of two.
    #[test]
    fn injected_underprovisioned_split_is_v007(deficit in 1usize..=2) {
        let lanes = 64usize;
        let geom = LaneGeometry {
            packing: 1,
            split: 2,
            eff_window: 5,
            eff_channels: lanes,
            lanes_per_filter: lanes,
            group_span: lanes >> (deficit + 1),
            arrays_per_filter: 2,
            filters_per_array: 0,
        };
        let diags = check_lane_geometry("inject", &geom, 4);
        prop_assert!(diags.iter().any(|d| d.code == ErrorCode::LanePackingAlias), "{diags:?}");
    }
}
