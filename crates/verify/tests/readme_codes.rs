//! Single source of truth for diagnostic codes: the README's diagnostics
//! table must list every `ErrorCode` exactly once, with exactly the
//! `description()` string the crate ships — so adding a code without
//! documenting it (or documenting a phantom code) fails CI.

use std::collections::BTreeMap;

use nc_verify::diag::ErrorCode;

/// Extracts `(code, meaning)` cells from the README's two-column-pair
/// diagnostics tables: every `` `V0xx` `` cell followed by its meaning
/// cell, across all table rows.
fn table_entries(readme: &str) -> Vec<(String, String)> {
    let mut entries = Vec::new();
    for line in readme.lines() {
        let line = line.trim();
        if !line.starts_with("| `V") {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        for pair in cells.chunks(2) {
            let [code, meaning] = pair else { continue };
            let Some(code) = code.strip_prefix('`').and_then(|c| c.strip_suffix('`')) else {
                continue;
            };
            if code.starts_with('V') {
                entries.push((code.to_owned(), (*meaning).to_owned()));
            }
        }
    }
    entries
}

#[test]
fn readme_table_lists_every_code_exactly_once() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"))
        .expect("README.md at the repo root");
    let entries = table_entries(&readme);

    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for (code, _) in &entries {
        *counts.entry(code.as_str()).or_default() += 1;
    }

    for code in ErrorCode::ALL {
        assert_eq!(
            counts.get(code.as_str()).copied().unwrap_or(0),
            1,
            "{} must appear exactly once in the README diagnostics tables",
            code.as_str()
        );
        let documented = entries
            .iter()
            .filter(|(c, _)| c == code.as_str())
            .map(|(_, m)| m.as_str())
            .collect::<Vec<_>>();
        assert_eq!(
            documented,
            vec![code.description()],
            "{}'s README meaning must match ErrorCode::description()",
            code.as_str()
        );
    }

    // No phantom codes: every table entry maps back to a shipped code.
    let known: Vec<&str> = ErrorCode::ALL.iter().map(|c| c.as_str()).collect();
    for (code, _) in &entries {
        assert!(
            known.contains(&code.as_str()),
            "README documents {code}, which no ErrorCode ships"
        );
    }
}
