//! Property-based race injection into the shard graph: start from a
//! provably clean graph built from a real workload, mutate it the way a
//! broken scheduler/pool would, and assert the happens-before checker
//! flags each injected hazard with exactly the matching V013–V020 code —
//! and stays silent on the clean original (no false positives).

use nc_dnn::workload::{pruned_conv_model, relu_sparse_conv_model, tiny_cnn};
use nc_verify::diag::ErrorCode;
use nc_verify::hb::check_graph;
use nc_verify::shard::{LayoutSpec, PoolUse, ShardGraph};
use neural_cache::functional::PoolEvents;
use proptest::prelude::*;

/// The clean shard graphs the injections mutate (small enough to rebuild
/// per proptest case, rich enough to carry every epoch kind).
fn graph(pick: usize, seed: u64) -> ShardGraph {
    match pick % 3 {
        0 => ShardGraph::from_model(&tiny_cnn(seed)),
        1 => ShardGraph::from_model(&pruned_conv_model(seed)),
        _ => ShardGraph::from_model(&relu_sparse_conv_model(seed)),
    }
}

/// Picks an (epoch, shard) pair with at least one pool use, from an epoch
/// with at least two shards (so a concurrent sibling exists to race with).
fn pick_shard(g: &ShardGraph, pick: usize) -> (usize, usize) {
    let mut pairs = Vec::new();
    for (e, epoch) in g.epochs.iter().enumerate() {
        if epoch.shards.len() < 2 {
            continue;
        }
        for (s, shard) in epoch.shards.iter().enumerate() {
            if !shard.uses.is_empty() {
                pairs.push((e, s));
            }
        }
    }
    pairs[pick % pairs.len()]
}

/// A concurrent shard of the same epoch as `(e, s)`.
fn sibling(g: &ShardGraph, e: usize, s: usize) -> usize {
    (s + 1) % g.epochs[e].shards.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The builder's graphs are clean for every shipped small workload
    /// and every weight seed — no false positives.
    #[test]
    fn clean_graphs_are_silent(pick in 0usize..3, seed in 0u64..1000) {
        prop_assert_eq!(check_graph(&graph(pick, seed)), vec![]);
    }

    /// A mis-sharded job whose raw touch aliases a concurrent shard's
    /// array with a writing layout is exactly V013.
    #[test]
    fn missharded_write_write_is_v013(pick in 0usize..3, seed in 0u64..100, shard_pick in 0usize..64) {
        let mut g = graph(pick, seed);
        let (e, s) = pick_shard(&g, shard_pick);
        let victim = g.epochs[e].shards[s].uses[0];
        let other = sibling(&g, e, s);
        // Raw (unacquired) touch of the victim's array with the same
        // writing layout — a shard computing into an array it never
        // checked out.
        g.epochs[e].shards[other].uses.push(PoolUse {
            layout: victim.layout,
            first_array: victim.first_array,
            count: 1,
            acquired: false,
            released: false,
        });
        let diags = check_graph(&g);
        prop_assert!(!diags.is_empty());
        prop_assert!(diags.iter().all(|d| d.code == ErrorCode::ShardWriteWriteRace), "{diags:?}");
    }

    /// A raw touch whose layout only *reads* rows a concurrent shard
    /// writes is exactly V014 (read/write, not write/write).
    #[test]
    fn missharded_read_write_is_v014(pick in 0usize..3, seed in 0u64..100, shard_pick in 0usize..64) {
        let mut g = graph(pick, seed);
        let (e, s) = pick_shard(&g, shard_pick);
        let victim = g.epochs[e].shards[s].uses[0];
        // A read-only lens over the victim layout's write rows.
        let rows = g.layouts[victim.layout as usize].writes.clone();
        g.layouts.push(LayoutSpec {
            name: "injected_probe".to_string(),
            reads: rows,
            writes: Vec::new(),
        });
        let probe = (g.layouts.len() - 1) as u32;
        let other = sibling(&g, e, s);
        g.epochs[e].shards[other].uses.push(PoolUse {
            layout: probe,
            first_array: victim.first_array,
            count: 1,
            acquired: false,
            released: false,
        });
        let diags = check_graph(&g);
        prop_assert!(!diags.is_empty());
        prop_assert!(diags.iter().all(|d| d.code == ErrorCode::ShardReadWriteRace), "{diags:?}");
    }

    /// Dropping the inter-array reduce barrier (the MAC → ranging join) is
    /// exactly V015: the ranging epoch's cross-shard accumulator read
    /// loses its domination. No phantom races appear — MAC and ranging
    /// shards hold disjoint checkouts.
    #[test]
    fn dropped_reduce_barrier_is_v015(pick in 0usize..3, seed in 0u64..100, barrier_pick in 0usize..16) {
        let mut g = graph(pick, seed);
        let barrier = g.reduce_barriers[barrier_pick % g.reduce_barriers.len()];
        g.joins[barrier] = false;
        let diags = check_graph(&g);
        prop_assert_eq!(diags.len(), 1, "{:?}", diags);
        prop_assert_eq!(diags[0].code, ErrorCode::BarrierBypass);
    }

    /// A prematurely recycled pool array — two concurrent shards holding
    /// the same checkout — is exactly V016, regardless of row layouts.
    #[test]
    fn premature_recycle_is_v016(pick in 0usize..3, seed in 0u64..100, shard_pick in 0usize..64) {
        let mut g = graph(pick, seed);
        let (e, s) = pick_shard(&g, shard_pick);
        let stolen = g.epochs[e].shards[s].uses[0].first_array;
        let other = sibling(&g, e, s);
        g.epochs[e].shards[other].uses[0].first_array = stolen;
        let diags = check_graph(&g);
        prop_assert!(!diags.is_empty());
        prop_assert!(diags.iter().all(|d| d.code == ErrorCode::PrematureRecycle), "{diags:?}");
    }

    /// A shard claiming the reserved way inside the batch pipeline's
    /// dump-overlap window is exactly V017.
    #[test]
    fn reserved_way_claim_is_v017(pick in 0usize..3, seed in 0u64..100, shard_pick in 0usize..64) {
        let mut g = graph(pick, seed);
        let (e, s) = pick_shard(&g, shard_pick);
        g.epochs[e].shards[s].reserved_way = true;
        let diags = check_graph(&g);
        prop_assert_eq!(diags.len(), 1, "{:?}", diags);
        prop_assert_eq!(diags[0].code, ErrorCode::DumpWindowRace);
    }

    /// Shifting one shard's output-slot slice breaks the exact partition
    /// both ways (a hole where it was, an overlap where it lands) and is
    /// exactly V018.
    #[test]
    fn shifted_write_slots_are_v018(pick in 0usize..3, seed in 0u64..100, shard_pick in 0usize..64, shift in 1u64..8) {
        let mut g = graph(pick, seed);
        let mut target = None;
        'outer: for (e, epoch) in g.epochs.iter().enumerate() {
            if epoch.out_slots.is_none() {
                continue;
            }
            for (s, shard) in epoch.shards.iter().enumerate() {
                if shard.write_slots.is_some() {
                    target = Some((e, s));
                    if s >= shard_pick % epoch.shards.len() {
                        break 'outer;
                    }
                }
            }
        }
        let (e, s) = target.expect("every workload has a slot-partitioned epoch");
        let (lo, hi) = g.epochs[e].shards[s].write_slots.unwrap();
        g.epochs[e].shards[s].write_slots = Some((lo + shift, hi + shift));
        let diags = check_graph(&g);
        prop_assert!(!diags.is_empty());
        prop_assert!(diags.iter().all(|d| d.code == ErrorCode::ShardCoverageHole), "{diags:?}");
    }

    /// A checkout never returned (or a return without a checkout) is
    /// exactly V019.
    #[test]
    fn unbalanced_pool_events_are_v019(pick in 0usize..3, seed in 0u64..100, shard_pick in 0usize..64, leak in any::<bool>()) {
        let mut g = graph(pick, seed);
        let (e, s) = pick_shard(&g, shard_pick);
        let use_ = &mut g.epochs[e].shards[s].uses[0];
        if leak {
            use_.released = false; // leaked checkout
        } else {
            use_.acquired = false; // stray release
        }
        let diags = check_graph(&g);
        prop_assert_eq!(diags.len(), 1, "{:?}", diags);
        prop_assert_eq!(diags[0].code, ErrorCode::PoolEventImbalance);
    }

    /// Executed pool counters drifting from the graph's prediction (or
    /// from each other) are exactly V020.
    #[test]
    fn drifted_pool_counters_are_v020(pick in 0usize..3, seed in 0u64..100, drift in 1u64..50, leak in 0u64..3) {
        let g = graph(pick, seed);
        let predicted = g.predicted_acquires();

        // Matching counters: silent.
        let clean = PoolEvents { acquires: predicted, releases: predicted };
        prop_assert_eq!(nc_verify::reconcile_pool_events(predicted, "clean", clean), vec![]);

        // Drifted checkout total and/or a leak: V020 only.
        let events = PoolEvents {
            acquires: predicted + drift,
            releases: predicted + drift - leak,
        };
        let diags = nc_verify::reconcile_pool_events(predicted, "drifted", events);
        prop_assert!(!diags.is_empty());
        prop_assert!(diags.iter().all(|d| d.code == ErrorCode::ExecutedPoolMismatch), "{diags:?}");
    }
}
