//! The serving benchmark: drives the `nc-serve` discrete-event simulator
//! over an offered-load sweep and a trace/policy matrix, rendering the
//! `"serving"` section of `BENCH_functional.json` and enforcing its sanity
//! gate (request conservation, latency monotone in offered load, goodput
//! bounded by offered load, engine byte-identity).

use std::fmt::Write as _;

use nc_dnn::inception::inception_v3;
use nc_geometry::SimTime;
use nc_serve::{
    simulate, simulate_with_cost, BatchPolicy, ServeConfig, ServingSummary, TraceConfig,
};
use neural_cache::{BatchCostModel, SystemConfig};

/// Slices the serving bench schedules onto (>= 2 per the acceptance gate).
pub const SLICES: usize = 2;

/// Requests per simulated point: enough for stable percentiles, small
/// enough that the whole bench stays sub-second.
pub const REQUESTS_PER_POINT: usize = 300;

/// Offered-load sweep (requests/second) for the Poisson + SLO-adaptive
/// monotonicity gate: well-separated points from underload to overload of
/// the two-slice capacity (~800 rps warm).
pub const LOAD_SWEEP_RPS: [f64; 4] = [100.0, 300.0, 600.0, 1200.0];

/// One simulated serving point.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingPoint {
    /// Trace kind label.
    pub trace: &'static str,
    /// Batch-policy label.
    pub policy: &'static str,
    /// Nominal offered load (requests/second); 0 for closed-loop traces
    /// (their rate emerges from service times).
    pub nominal_rps: f64,
    /// Simulation summary.
    pub summary: ServingSummary,
}

/// The whole serving bench: the monotonicity sweep, the trace/policy
/// matrix, and the engine byte-identity check.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingBench {
    /// Poisson + SLO-adaptive points at [`LOAD_SWEEP_RPS`], in load order.
    pub load_sweep: Vec<ServingPoint>,
    /// Bursty and closed-loop traces through the other policies.
    pub matrix: Vec<ServingPoint>,
    /// Whether the Sequential and Threaded engines produced byte-identical
    /// serving traces on the check workload.
    pub engine_identical: bool,
}

impl ServingBench {
    /// Every gate violation, empty when the section is sane.
    #[must_use]
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for p in self.load_sweep.iter().chain(&self.matrix) {
            let s = &p.summary;
            if !s.conservation_holds() {
                failures.push(format!(
                    "{}/{}: conservation broken (admitted {} != completed {} + dropped {} + pending {})",
                    p.trace, p.policy, s.admitted, s.completed, s.dropped, s.pending
                ));
            }
            if s.pending != 0 {
                failures.push(format!(
                    "{}/{}: {} requests left pending after drain",
                    p.trace, p.policy, s.pending
                ));
            }
            if !s.goodput_bounded() {
                failures.push(format!(
                    "{}/{}: goodput {:.1} rps exceeds offered load {:.1} rps",
                    p.trace, p.policy, s.goodput_rps, s.offered_load_rps
                ));
            }
        }
        // Latency must grow with offered load on the work-conserving
        // adaptive sweep (2% slack absorbs percentile granularity).
        for pair in self.load_sweep.windows(2) {
            let (lo, hi) = (&pair[0].summary, &pair[1].summary);
            if hi.mean_ms < lo.mean_ms * 0.98 {
                failures.push(format!(
                    "latency not monotone in load: mean {:.2} ms at {:.0} rps vs {:.2} ms at {:.0} rps",
                    lo.mean_ms, pair[0].nominal_rps, hi.mean_ms, pair[1].nominal_rps
                ));
            }
        }
        if !self.engine_identical {
            failures.push("Sequential and Threaded engines diverged on the serving trace".into());
        }
        failures
    }

    /// The bench gate: no violations.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.gate_failures().is_empty()
    }
}

fn serve_config(policy: BatchPolicy, system: SystemConfig) -> ServeConfig {
    ServeConfig {
        system,
        slices: SLICES,
        policy,
        queue_capacity: 512,
        slo: SimTime::from_millis(100.0),
    }
}

fn adaptive() -> BatchPolicy {
    BatchPolicy::SloAdaptive { max_batch: 32 }
}

/// Runs the full serving bench. `threads` sizes the Threaded engine of the
/// byte-identity check.
#[must_use]
pub fn run_serving_bench(threads: usize) -> ServingBench {
    let model = inception_v3();
    // Every sweep/matrix point shares one plan (same system, same model).
    let cost = BatchCostModel::new(&SystemConfig::xeon_e5_2697_v3(), &model);

    // Offered-load sweep: Poisson through the work-conserving SLO-adaptive
    // policy (the latency-monotonicity gate rides on this sweep).
    let load_sweep: Vec<ServingPoint> = LOAD_SWEEP_RPS
        .iter()
        .map(|&rps| {
            let trace = TraceConfig::poisson(rps, REQUESTS_PER_POINT, 2018);
            let out = simulate_with_cost(
                &serve_config(adaptive(), SystemConfig::xeon_e5_2697_v3()),
                &cost,
                &trace,
            );
            ServingPoint {
                trace: "poisson",
                policy: adaptive().label(),
                nominal_rps: rps,
                summary: out.summary,
            }
        })
        .collect();

    // Trace/policy matrix: bursty and closed-loop arrivals through the
    // other two policies.
    let mut matrix = Vec::new();
    let bursty = TraceConfig::bursty(100.0, 1500.0, 0.05, REQUESTS_PER_POINT, 2018);
    for policy in [
        BatchPolicy::Fixed { size: 8 },
        BatchPolicy::MaxWait {
            max_batch: 16,
            max_wait: SimTime::from_millis(10.0),
        },
    ] {
        let out = simulate_with_cost(
            &serve_config(policy, SystemConfig::xeon_e5_2697_v3()),
            &cost,
            &bursty,
        );
        matrix.push(ServingPoint {
            trace: "bursty",
            policy: policy.label(),
            nominal_rps: bursty.nominal_rate_rps().unwrap_or(0.0),
            summary: out.summary,
        });
    }
    let closed = TraceConfig::closed_loop(16, 0.02, REQUESTS_PER_POINT, 2018);
    for policy in [
        BatchPolicy::MaxWait {
            max_batch: 16,
            max_wait: SimTime::from_millis(10.0),
        },
        adaptive(),
    ] {
        let out = simulate_with_cost(
            &serve_config(policy, SystemConfig::xeon_e5_2697_v3()),
            &cost,
            &closed,
        );
        matrix.push(ServingPoint {
            trace: "closed-loop",
            policy: policy.label(),
            nominal_rps: 0.0,
            summary: out.summary,
        });
    }

    // Engine byte-identity: the same seeded bursty workload through both
    // engines must give byte-identical serving traces.
    let check_trace = TraceConfig::bursty(150.0, 1200.0, 0.04, 150, 77);
    let seq = simulate(
        &serve_config(adaptive(), SystemConfig::xeon_e5_2697_v3()),
        &model,
        &check_trace,
    );
    let thr = simulate(
        &serve_config(adaptive(), SystemConfig::with_parallelism(threads.max(2))),
        &model,
        &check_trace,
    );
    let engine_identical = seq.trace.to_log() == thr.trace.to_log() && seq.summary == thr.summary;

    ServingBench {
        load_sweep,
        matrix,
        engine_identical,
    }
}

/// Renders one point as a JSON object at the given indent.
fn point_json(out: &mut String, p: &ServingPoint, indent: &str, comma: bool) {
    let s = &p.summary;
    let _ = writeln!(out, "{indent}{{");
    let _ = writeln!(out, "{indent}  \"trace\": \"{}\",", p.trace);
    let _ = writeln!(out, "{indent}  \"policy\": \"{}\",", p.policy);
    let _ = writeln!(out, "{indent}  \"nominal_rps\": {:.3},", p.nominal_rps);
    let _ = writeln!(
        out,
        "{indent}  \"offered_load_rps\": {:.3},",
        s.offered_load_rps
    );
    let _ = writeln!(out, "{indent}  \"goodput_rps\": {:.3},", s.goodput_rps);
    let _ = writeln!(out, "{indent}  \"mean_ms\": {:.4},", s.mean_ms);
    let _ = writeln!(out, "{indent}  \"p50_ms\": {:.4},", s.p50_ms);
    let _ = writeln!(out, "{indent}  \"p95_ms\": {:.4},", s.p95_ms);
    let _ = writeln!(out, "{indent}  \"p99_ms\": {:.4},", s.p99_ms);
    let _ = writeln!(out, "{indent}  \"max_ms\": {:.4},", s.max_ms);
    let _ = writeln!(out, "{indent}  \"admitted\": {},", s.admitted);
    let _ = writeln!(out, "{indent}  \"completed\": {},", s.completed);
    let _ = writeln!(out, "{indent}  \"dropped\": {},", s.dropped);
    let _ = writeln!(out, "{indent}  \"pending\": {},", s.pending);
    let _ = writeln!(
        out,
        "{indent}  \"slo_violation_rate\": {:.4},",
        s.slo_violation_rate
    );
    let _ = writeln!(
        out,
        "{indent}  \"mean_queue_depth\": {:.3},",
        s.mean_queue_depth
    );
    let _ = writeln!(out, "{indent}  \"max_queue_depth\": {},", s.max_queue_depth);
    let _ = writeln!(out, "{indent}  \"mean_batch\": {:.3},", s.mean_batch);
    let _ = writeln!(out, "{indent}  \"batches\": {},", s.batches);
    let util: Vec<String> = s
        .slice_utilization
        .iter()
        .map(|u| format!("{u:.4}"))
        .collect();
    let _ = writeln!(
        out,
        "{indent}  \"slice_utilization\": [{}]",
        util.join(", ")
    );
    let _ = writeln!(out, "{indent}}}{}", if comma { "," } else { "" });
}

/// Renders the bench as the `"serving"` JSON section body (an object, no
/// trailing comma), for embedding in `BENCH_functional.json`.
#[must_use]
pub fn render_json_section(bench: &ServingBench) -> String {
    let mut out = String::from("  \"serving\": {\n");
    let _ = writeln!(out, "    \"slices\": {SLICES},");
    let _ = writeln!(out, "    \"requests_per_point\": {REQUESTS_PER_POINT},");
    let _ = writeln!(out, "    \"engine_identical\": {},", bench.engine_identical);
    let _ = writeln!(out, "    \"verified\": {},", bench.verified());
    out.push_str("    \"load_sweep\": [\n");
    for (i, p) in bench.load_sweep.iter().enumerate() {
        point_json(&mut out, p, "      ", i + 1 < bench.load_sweep.len());
    }
    out.push_str("    ],\n    \"matrix\": [\n");
    for (i, p) in bench.matrix.iter().enumerate() {
        point_json(&mut out, p, "      ", i + 1 < bench.matrix.len());
    }
    out.push_str("    ]\n  }");
    out
}

/// Renders the bench as human-readable text (the `serving_sim` binary and
/// `run_all` section).
#[must_use]
pub fn render_text(bench: &ServingBench) -> String {
    let mut out = String::from(
        "Serving under load (nc-serve discrete-event simulator, Inception v3, 2 slices)\n",
    );
    let _ = writeln!(
        out,
        "{:<12} {:<13} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7} {:>6} {:>6}",
        "trace",
        "policy",
        "offered",
        "goodput",
        "p50/ms",
        "p99/ms",
        "mean/ms",
        "viol%",
        "drop",
        "batch"
    );
    for p in bench.load_sweep.iter().chain(&bench.matrix) {
        let s = &p.summary;
        let offered = if p.nominal_rps > 0.0 {
            format!("{:.0}", p.nominal_rps)
        } else {
            format!("({:.0})", s.offered_load_rps)
        };
        let _ = writeln!(
            out,
            "{:<12} {:<13} {:>9} {:>9.1} {:>8.2} {:>8.2} {:>8.2} {:>7.1} {:>6} {:>6.1}",
            p.trace,
            p.policy,
            offered,
            s.goodput_rps,
            s.p50_ms,
            s.p99_ms,
            s.mean_ms,
            100.0 * s.slo_violation_rate,
            s.dropped,
            s.mean_batch
        );
    }
    let _ = writeln!(
        out,
        "engine byte-identity: {} | sanity gate: {}",
        bench.engine_identical,
        if bench.verified() { "ok" } else { "FAILED" }
    );
    for f in bench.gate_failures() {
        let _ = writeln!(out, "GATE FAILURE: {f}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_bench_verifies_and_renders() {
        let bench = run_serving_bench(2);
        assert_eq!(bench.load_sweep.len(), LOAD_SWEEP_RPS.len());
        assert_eq!(bench.matrix.len(), 4);
        assert!(
            bench.verified(),
            "gate failures: {:?}",
            bench.gate_failures()
        );
        assert!(bench.engine_identical);
        // Overload shows up as rising latency across the sweep ends.
        let first = &bench.load_sweep.first().unwrap().summary;
        let last = &bench.load_sweep.last().unwrap().summary;
        assert!(last.mean_ms > first.mean_ms, "load must cost latency");
        // Goodput saturates below the overloaded offered load.
        assert!(last.goodput_rps < 1200.0);

        let json = render_json_section(&bench);
        assert!(json.starts_with("  \"serving\": {"));
        assert!(json.contains("\"load_sweep\": ["));
        assert!(json.contains("\"policy\": \"slo-adaptive\""));
        assert!(json.contains("\"trace\": \"closed-loop\""));
        assert!(json.contains("\"engine_identical\": true"));
        assert!(json.ends_with('}'));

        let text = render_text(&bench);
        assert!(text.contains("Serving under load"));
        assert!(text.contains("slo-adaptive"));
        assert!(text.contains("sanity gate: ok"));
    }

    #[test]
    fn gate_catches_a_broken_sweep() {
        let mut bench = run_serving_bench(2);
        // Corrupt the sweep: swap the extreme points so latency "falls".
        let n = bench.load_sweep.len();
        bench.load_sweep.swap(0, n - 1);
        assert!(!bench.verified(), "swapped sweep must trip the gate");
        assert!(bench
            .gate_failures()
            .iter()
            .any(|f| f.contains("not monotone")));
        // And a conservation break trips it too.
        let mut bench2 = run_serving_bench(2);
        bench2.matrix[0].summary.completed += 1;
        assert!(!bench2.verified());
    }
}
