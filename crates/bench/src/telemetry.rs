//! Telemetry wiring for the bench binaries: the shared `--trace-out` /
//! `--telemetry-out` / `--no-telemetry` flags, the telemetry↔counters
//! reconciliation gate (every [`SparsityMode`] × both engines, plus the
//! serving 1:1 event mirror), the no-op-sink overhead gate, and the
//! per-thread utilization/imbalance summary — rendered as the
//! `"telemetry"` section of `BENCH_functional.json` and as text sections
//! of `run_all` / `serving_sim`.
//!
//! The reconciliation contract is **exact**: per-layer and per-op span
//! arguments must sum to the executed [`CycleStats`] integer-for-integer,
//! the `timing.layer` / `timing.phase` rollups must equal the
//! [`neural_cache::InferenceReport`] totals bit-for-bit, pool counters
//! must match `PoolStats`, and every serving [`nc_serve::TraceEvent`]
//! must be mirrored by exactly one telemetry record.

use std::fmt::Write as _;
use std::time::Instant;

use nc_dnn::inception::inception_v3;
use nc_dnn::workload::{random_input, tiny_cnn};
use nc_dnn::{Model, QTensor};
use nc_serve::{simulate_traced, simulate_with_cost, ServeConfig, TraceConfig};
use nc_sram::CycleStats;
use nc_telemetry::{Level, Telemetry};
use neural_cache::functional::{run_model_configured, run_model_traced};
use neural_cache::{
    time_inference, trace_inference_report, BatchCostModel, ExecutionEngine, Phase, SparsityMode,
    SystemConfig,
};

/// The shared telemetry CLI surface every bench binary accepts.
#[derive(Debug, Clone, Default)]
pub struct TelemetryFlags {
    /// `--trace-out <path>`: write a Chrome-trace-event JSON (Perfetto-
    /// loadable) timeline of the run.
    pub trace_out: Option<String>,
    /// `--telemetry-out <path>`: write the `TELEMETRY.json` rollup
    /// artifact (per-category span rollups, counters, gauges, histograms).
    pub telemetry_out: Option<String>,
    /// `--no-telemetry`: force the no-op sink even when an output path or
    /// `NC_TELEMETRY` asks for one.
    pub disabled: bool,
}

impl TelemetryFlags {
    /// Parses the three shared flags from `args`.
    #[must_use]
    pub fn parse(args: &[String]) -> Self {
        TelemetryFlags {
            trace_out: crate::parse_flag(args, "--trace-out"),
            telemetry_out: crate::parse_flag(args, "--telemetry-out"),
            disabled: args.iter().any(|a| a == "--no-telemetry"),
        }
    }

    /// Parses the flags from the process arguments.
    #[must_use]
    pub fn from_process_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        TelemetryFlags::parse(&args)
    }

    /// Whether the run should record and write timeline artifacts.
    #[must_use]
    pub fn wants_artifacts(&self) -> bool {
        !self.disabled && (self.trace_out.is_some() || self.telemetry_out.is_some())
    }

    /// The sink the flags select: disabled when `--no-telemetry`, full
    /// detail when an artifact path is given, else the `NC_TELEMETRY`
    /// environment level.
    #[must_use]
    pub fn sink(&self) -> Telemetry {
        if self.disabled {
            Telemetry::disabled()
        } else if self.wants_artifacts() {
            Telemetry::enabled(Level::Detail)
        } else {
            Telemetry::from_env()
        }
    }

    /// Writes the requested artifacts from `tel` and returns the paths
    /// written.
    ///
    /// # Panics
    ///
    /// Panics when an output path cannot be written.
    #[must_use]
    pub fn write_artifacts(&self, tel: &Telemetry) -> Vec<String> {
        let mut written = Vec::new();
        if self.disabled {
            return written;
        }
        if let Some(path) = &self.trace_out {
            std::fs::write(path, tel.to_chrome_trace()).expect("write chrome trace");
            written.push(path.clone());
        }
        if let Some(path) = &self.telemetry_out {
            std::fs::write(path, tel.to_rollup_json()).expect("write telemetry rollup");
            written.push(path.clone());
        }
        written
    }
}

/// One executed counter: span-argument name + accessor.
type CycleField = (&'static str, fn(&CycleStats) -> u64);

/// Every accessor of the seven [`CycleStats`] counters, keyed by the span
/// argument name the instrumentation emits (the names match the struct
/// fields one-for-one).
fn cycle_fields() -> [CycleField; 7] {
    [
        ("compute_cycles", |c| c.compute_cycles),
        ("access_cycles", |c| c.access_cycles),
        ("mul_rounds", |c| c.mul_rounds),
        ("skipped_rounds", |c| c.skipped_rounds),
        ("skipped_cycles", |c| c.skipped_cycles),
        ("detect_cycles", |c| c.detect_cycles),
        ("input_rounds_skipped", |c| c.input_rounds_skipped),
    ]
}

/// All four sparsity modes, in gate order.
pub const MODES: [SparsityMode; 4] = [
    SparsityMode::Dense,
    SparsityMode::SkipZeroRows,
    SparsityMode::SkipZeroInputs,
    SparsityMode::SkipBoth,
];

/// One (engine, sparsity-mode) reconciliation: the traced functional run
/// and the timing-model trace, each checked against its ground truth.
#[derive(Debug, Clone)]
pub struct ReconcileCase {
    /// Engine label (`sequential` / `threaded`).
    pub engine: &'static str,
    /// Sparsity-mode label.
    pub mode: String,
    /// `functional.layer` spans recorded (must equal the layer count).
    pub layer_spans: usize,
    /// `functional.op` spans recorded.
    pub op_spans: usize,
    /// Executed compute cycles of the traced run.
    pub compute_cycles: u64,
    /// Every reconciliation violation; empty when exact.
    pub failures: Vec<String>,
}

impl ReconcileCase {
    /// Whether this case reconciled exactly.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.failures.is_empty()
    }
}

// The timing.* checks are *bit-exact by contract*: the tracer stores the
// report's SimTime durations verbatim and sums them in insertion order,
// so strict f64 equality is the property under test, not an accident.
#[allow(clippy::float_cmp)]
fn reconcile_case(
    model: &Model,
    input: &QTensor,
    engine_label: &'static str,
    engine: ExecutionEngine,
    mode: SparsityMode,
) -> ReconcileCase {
    let mut failures = Vec::new();
    let tel = Telemetry::enabled(Level::Detail);
    let traced = run_model_traced(model, input, engine, mode, &tel).expect("traced run");
    let plain = run_model_configured(model, input, engine, mode).expect("plain run");
    if plain.output.data() != traced.output.data()
        || plain.sublayers != traced.sublayers
        || plain.cycles != traced.cycles
    {
        failures.push("traced run diverged from the untraced run".to_owned());
    }
    let layer_spans = tel.span_count("functional.layer");
    if layer_spans != model.layers.len() {
        failures.push(format!(
            "functional.layer spans {layer_spans} != {} layers",
            model.layers.len()
        ));
    }
    // Both span taxonomies partition the executed counters: per-layer and
    // per-op argument sums must each reproduce CycleStats exactly.
    for (field, get) in cycle_fields() {
        let want = get(&traced.cycles);
        for cat in ["functional.layer", "functional.op"] {
            let got = tel.sum_u64_arg(cat, field);
            if got != want {
                failures.push(format!("{cat} {field}: span sum {got} != executed {want}"));
            }
        }
    }
    if tel.counter("functional.pool.acquires") != traced.pool.acquires
        || tel.counter("functional.pool.releases") != traced.pool.releases
    {
        failures.push("pool counters diverged from PoolStats".to_owned());
    }

    // Timing-model trace under the same mode/engine: rollups must match
    // the report bit-for-bit.
    let mut config = SystemConfig::with_sparsity(mode);
    config.parallelism = engine;
    let report = time_inference(&config, model);
    let timing_tel = Telemetry::enabled(Level::Spans);
    trace_inference_report(&timing_tel, &report);
    if timing_tel.sum_dur("timing.layer") != report.total().as_secs_f64() {
        failures.push("timing.layer rollup != InferenceReport::total".to_owned());
    }
    let breakdown = report.breakdown();
    for phase in Phase::ALL {
        if timing_tel.sum_dur_named("timing.phase", phase.label())
            != breakdown.get(phase).as_secs_f64()
        {
            failures.push(format!(
                "timing.phase {} rollup != aggregated breakdown",
                phase.label()
            ));
        }
    }

    ReconcileCase {
        engine: engine_label,
        mode: format!("{mode:?}"),
        layer_spans,
        op_spans: tel.span_count("functional.op"),
        compute_cycles: traced.cycles.compute_cycles,
        failures,
    }
}

/// The serving 1:1 mirror check: a traced simulation must be trajectory-
/// identical to the untraced one with exactly one telemetry record per
/// logged [`nc_serve::TraceEvent`].
#[derive(Debug, Clone)]
pub struct ServingCheck {
    /// Events in the deterministic serving log.
    pub events: usize,
    /// `serving.event` telemetry records.
    pub records: usize,
    /// `serving.request` queue-wait spans.
    pub request_spans: usize,
    /// Completed requests.
    pub completed: usize,
    /// Every violation; empty when the mirror is exact.
    pub failures: Vec<String>,
}

impl ServingCheck {
    /// Whether the mirror held.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.failures.is_empty()
    }
}

fn reconcile_serving() -> ServingCheck {
    let model = inception_v3();
    let config = ServeConfig::default_two_slice();
    let cost = BatchCostModel::new(&config.system, &model);
    let trace = TraceConfig::poisson(400.0, 120, 2018);
    let plain = simulate_with_cost(&config, &cost, &trace);
    let tel = Telemetry::enabled(Level::Detail);
    let traced = simulate_traced(&config, &cost, &trace, &tel);

    let mut failures = Vec::new();
    if plain.trace.to_log() != traced.trace.to_log() || plain.summary != traced.summary {
        failures.push("traced serving run diverged from the untraced run".to_owned());
    }
    let events = traced.trace.events.len();
    let records = tel.record_count("serving.event");
    if records != events {
        failures.push(format!(
            "serving.event records {records} != {events} trace events"
        ));
    }
    let s = &traced.summary;
    for (counter, want) in [
        ("serving.arrivals", s.admitted),
        ("serving.drops", s.dropped),
        ("serving.completions", s.completed),
        ("serving.dispatches", s.batches),
    ] {
        let got = tel.counter(counter);
        if got != want as u64 {
            failures.push(format!("{counter} = {got} != summary {want}"));
        }
    }
    ServingCheck {
        events,
        records,
        request_spans: tel.span_count("serving.request"),
        completed: s.completed,
        failures,
    }
}

/// Relative overhead the disabled sink may add to an instrumented hot
/// path (the satellite gate: "no-op sink must not regress wall time by
/// more than 5%").
pub const OVERHEAD_LIMIT_FRAC: f64 = 0.05;

/// Absolute slack (milliseconds) under the relative limit, so scheduler
/// noise on a sub-20 ms workload cannot trip the gate spuriously.
const OVERHEAD_FLOOR_MS: f64 = 2.0;

/// Best-of-reps wall time of the functional executor with no telemetry
/// argument vs the same run through [`run_model_traced`] with the
/// disabled sink.
#[derive(Debug, Clone, Copy)]
pub struct OverheadCheck {
    /// Best uninstrumented wall time, milliseconds.
    pub baseline_ms: f64,
    /// Best disabled-sink wall time, milliseconds.
    pub noop_ms: f64,
}

impl OverheadCheck {
    /// `(noop - baseline) / baseline` (0 for a zero baseline).
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        if self.baseline_ms > 0.0 {
            (self.noop_ms - self.baseline_ms) / self.baseline_ms
        } else {
            0.0
        }
    }

    /// The gate: disabled-sink time within the relative limit (plus the
    /// absolute noise floor) of the baseline.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.noop_ms <= self.baseline_ms * (1.0 + OVERHEAD_LIMIT_FRAC) + OVERHEAD_FLOOR_MS
    }
}

fn measure_overhead(model: &Model, input: &QTensor, reps: usize) -> OverheadCheck {
    let disabled = Telemetry::disabled();
    let mut baseline_ms = f64::INFINITY;
    let mut noop_ms = f64::INFINITY;
    for _ in 0..reps.max(3) {
        let start = Instant::now();
        let plain = run_model_configured(model, input, ExecutionEngine::Sequential, MODES[0])
            .expect("baseline run");
        baseline_ms = baseline_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        let traced = run_model_traced(
            model,
            input,
            ExecutionEngine::Sequential,
            MODES[0],
            &disabled,
        )
        .expect("no-op traced run");
        noop_ms = noop_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(plain.cycles, traced.cycles, "no-op sink changed the run");
    }
    OverheadCheck {
        baseline_ms,
        noop_ms,
    }
}

/// Per-thread utilization of one Threaded functional run, reduced from
/// the engine's wall-clock shard samples (`engine.*` gauges/counters and
/// the `engine.shard_seconds` histogram).
#[derive(Debug, Clone)]
pub struct UtilizationSummary {
    /// Worker threads.
    pub workers: usize,
    /// Host wall time of the run, seconds.
    pub wall_s: f64,
    /// Busy fraction: total busy time over `wall_s * workers`.
    pub utilization: f64,
    /// Busy seconds per worker.
    pub busy_s: Vec<f64>,
    /// Shard jobs per worker.
    pub shards: Vec<u64>,
    /// Total shard jobs timed.
    pub shard_count: u64,
    /// Mean shard duration, milliseconds.
    pub shard_mean_ms: f64,
    /// Longest shard, milliseconds.
    pub shard_max_ms: f64,
    /// Log2-bucketed shard-duration histogram (bucket exponent, count).
    pub shard_buckets: Vec<(i32, u64)>,
}

impl UtilizationSummary {
    /// Busiest worker over the mean worker (1.0 = perfectly balanced;
    /// meaningful only when some work ran).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let total: f64 = self.busy_s.iter().sum();
        let mean = total / self.busy_s.len().max(1) as f64;
        let max = self.busy_s.iter().copied().fold(0.0f64, f64::max);
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }
}

/// Runs one Threaded functional workload with a metrics-only sink and
/// reduces the per-shard wall-clock samples into a utilization summary.
#[must_use]
pub fn measure_utilization(threads: usize) -> UtilizationSummary {
    let workers = threads.max(2);
    let model = tiny_cnn(2018);
    let input = random_input(model.input_shape, model.input_quant, 9);
    let tel = Telemetry::enabled(Level::Summary);
    let _ = run_model_traced(
        &model,
        &input,
        ExecutionEngine::from_threads(workers),
        SparsityMode::Dense,
        &tel,
    )
    .expect("utilization run");
    let busy_s: Vec<f64> = (0..workers)
        .map(|w| {
            tel.gauge(&format!("engine.worker.{w}.busy_s"))
                .unwrap_or(0.0)
        })
        .collect();
    let shards: Vec<u64> = (0..workers)
        .map(|w| tel.counter(&format!("engine.worker.{w}.shards")))
        .collect();
    let hist = tel.histogram("engine.shard_seconds");
    UtilizationSummary {
        workers,
        wall_s: tel.gauge("engine.wall_s").unwrap_or(0.0),
        utilization: tel.gauge("engine.utilization").unwrap_or(0.0),
        busy_s,
        shards,
        shard_count: hist.as_ref().map_or(0, nc_telemetry::Histogram::count),
        shard_mean_ms: hist.as_ref().map_or(0.0, |h| h.mean() * 1e3),
        shard_max_ms: hist.as_ref().map_or(0.0, |h| h.max() * 1e3),
        shard_buckets: hist
            .as_ref()
            .map_or_else(Vec::new, nc_telemetry::Histogram::buckets),
    }
}

/// The whole telemetry bench: the reconciliation matrix, the serving
/// mirror, the no-op overhead gate, and the utilization summary.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// One case per (engine, sparsity mode).
    pub cases: Vec<ReconcileCase>,
    /// The serving 1:1 mirror check.
    pub serving: ServingCheck,
    /// The no-op-sink overhead gate.
    pub overhead: OverheadCheck,
    /// Per-thread utilization of the Threaded engine.
    pub utilization: UtilizationSummary,
}

impl TelemetryReport {
    /// Every gate violation across all sections; empty when the telemetry
    /// layer reconciles exactly and costs nothing when disabled.
    #[must_use]
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for c in &self.cases {
            for f in &c.failures {
                failures.push(format!("{}/{}: {f}", c.engine, c.mode));
            }
        }
        for f in &self.serving.failures {
            failures.push(format!("serving: {f}"));
        }
        if !self.overhead.verified() {
            failures.push(format!(
                "no-op sink overhead {:.1}% exceeds the {:.0}% limit ({:.3} ms vs {:.3} ms)",
                100.0 * self.overhead.overhead_fraction(),
                100.0 * OVERHEAD_LIMIT_FRAC,
                self.overhead.noop_ms,
                self.overhead.baseline_ms
            ));
        }
        failures
    }

    /// The CI gate: no violations.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.gate_failures().is_empty()
    }
}

/// Runs the full telemetry bench: every [`SparsityMode`] under both
/// engines on the functional + timing canary, the serving mirror, the
/// overhead gate (best of `reps`), and the utilization summary.
#[must_use]
pub fn run_telemetry_bench(threads: usize, reps: usize) -> TelemetryReport {
    let model = tiny_cnn(2018);
    let input = random_input(model.input_shape, model.input_quant, 9);
    let engines = [
        ("sequential", ExecutionEngine::Sequential),
        ("threaded", ExecutionEngine::from_threads(threads.max(2))),
    ];
    let mut cases = Vec::with_capacity(engines.len() * MODES.len());
    for (label, engine) in engines {
        for mode in MODES {
            cases.push(reconcile_case(&model, &input, label, engine, mode));
        }
    }
    // A genuine no-op-sink regression reproduces on every attempt;
    // scheduler noise (parallel tests, CI neighbors) does not. Re-measure
    // up to three times before declaring the overhead gate failed.
    let mut overhead = measure_overhead(&model, &input, reps);
    for _ in 0..2 {
        if overhead.verified() {
            break;
        }
        overhead = measure_overhead(&model, &input, reps);
    }
    TelemetryReport {
        cases,
        serving: reconcile_serving(),
        overhead,
        utilization: measure_utilization(threads),
    }
}

/// Records the showcase timeline every artifact-writing binary exports:
/// the serving request lifecycle, the full Inception v3 simulated-time
/// layer/phase timeline, and an executed functional proxy with per-op
/// detail, all on one shared sink.
pub fn record_showcase(tel: &Telemetry, threads: usize) {
    let model = inception_v3();
    let config = ServeConfig::default_two_slice();
    let cost = BatchCostModel::new(&config.system, &model);
    let _ = simulate_traced(&config, &cost, &TraceConfig::poisson(400.0, 120, 2018), tel);
    let report = time_inference(&SystemConfig::xeon_e5_2697_v3(), &model);
    trace_inference_report(tel, &report);
    let proxy = tiny_cnn(2018);
    let input = random_input(proxy.input_shape, proxy.input_quant, 9);
    let _ = run_model_traced(
        &proxy,
        &input,
        ExecutionEngine::from_threads(threads.max(2)),
        SparsityMode::SkipBoth,
        tel,
    )
    .expect("functional showcase");
}

/// Honors the shared telemetry flags from the process arguments: when an
/// artifact path is requested, records the showcase timeline and writes
/// the files, reporting each path on stderr. The shared tail of every
/// single-artifact binary.
pub fn emit_canary_artifacts() {
    let flags = TelemetryFlags::from_process_args();
    if !flags.wants_artifacts() {
        return;
    }
    let tel = flags.sink();
    record_showcase(&tel, 2);
    for path in flags.write_artifacts(&tel) {
        eprintln!("wrote {path}");
    }
}

/// Renders the report as human-readable text (the `run_all` /
/// `serving_sim` telemetry section).
#[must_use]
pub fn render_text(report: &TelemetryReport) -> String {
    let mut out = String::from(
        "Telemetry reconciliation (tiny_cnn canary, every sparsity mode x both engines)\n",
    );
    let _ = writeln!(
        out,
        "{:<12} {:<16} {:>11} {:>9} {:>15} {:>8}",
        "engine", "mode", "layer-spans", "op-spans", "compute-cycles", "status"
    );
    for c in &report.cases {
        let _ = writeln!(
            out,
            "{:<12} {:<16} {:>11} {:>9} {:>15} {:>8}",
            c.engine,
            c.mode,
            c.layer_spans,
            c.op_spans,
            c.compute_cycles,
            if c.verified() { "exact" } else { "FAILED" }
        );
    }
    let s = &report.serving;
    let _ = writeln!(
        out,
        "serving mirror: {} trace events -> {} telemetry records | {} queue-wait spans | {}",
        s.events,
        s.records,
        s.request_spans,
        if s.verified() { "exact" } else { "FAILED" }
    );
    let o = &report.overhead;
    let _ = writeln!(
        out,
        "no-op sink overhead: {:.3} ms baseline vs {:.3} ms disabled sink ({:+.1}%, limit {:.0}%) | {}",
        o.baseline_ms,
        o.noop_ms,
        100.0 * o.overhead_fraction(),
        100.0 * OVERHEAD_LIMIT_FRAC,
        if o.verified() { "ok" } else { "FAILED" }
    );
    out.push_str(&render_utilization_text(&report.utilization));
    let _ = writeln!(
        out,
        "telemetry gate: {}",
        if report.verified() { "ok" } else { "FAILED" }
    );
    for f in report.gate_failures() {
        let _ = writeln!(out, "GATE FAILURE: {f}");
    }
    out
}

/// Renders the per-thread utilization summary as text (also printed by
/// `run_all --threads N`).
#[must_use]
pub fn render_utilization_text(u: &UtilizationSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "thread utilization ({} workers): wall {:.2} ms | busy fraction {:.1}% | imbalance {:.2}x",
        u.workers,
        u.wall_s * 1e3,
        100.0 * u.utilization,
        u.imbalance()
    );
    for w in 0..u.workers {
        let _ = writeln!(
            out,
            "  worker {w}: busy {:.2} ms | {} shards",
            u.busy_s.get(w).copied().unwrap_or(0.0) * 1e3,
            u.shards.get(w).copied().unwrap_or(0)
        );
    }
    let _ = writeln!(
        out,
        "  shards: {} timed | mean {:.3} ms | max {:.3} ms",
        u.shard_count, u.shard_mean_ms, u.shard_max_ms
    );
    out
}

/// Renders the report as the `"telemetry"` JSON section body (an object,
/// no trailing comma) of `BENCH_functional.json`.
#[must_use]
pub fn render_json_section(report: &TelemetryReport) -> String {
    let mut out = String::from("  \"telemetry\": {\n");
    let _ = writeln!(out, "    \"verified\": {},", report.verified());
    out.push_str("    \"reconciliation\": [\n");
    for (i, c) in report.cases.iter().enumerate() {
        let _ = writeln!(out, "      {{");
        let _ = writeln!(out, "        \"engine\": \"{}\",", c.engine);
        let _ = writeln!(out, "        \"mode\": \"{}\",", c.mode);
        let _ = writeln!(out, "        \"layer_spans\": {},", c.layer_spans);
        let _ = writeln!(out, "        \"op_spans\": {},", c.op_spans);
        let _ = writeln!(out, "        \"compute_cycles\": {},", c.compute_cycles);
        let _ = writeln!(out, "        \"exact\": {}", c.verified());
        let comma = if i + 1 < report.cases.len() { "," } else { "" };
        let _ = writeln!(out, "      }}{comma}");
    }
    out.push_str("    ],\n");
    let s = &report.serving;
    let _ = writeln!(out, "    \"serving_mirror\": {{");
    let _ = writeln!(out, "      \"trace_events\": {},", s.events);
    let _ = writeln!(out, "      \"telemetry_records\": {},", s.records);
    let _ = writeln!(out, "      \"queue_wait_spans\": {},", s.request_spans);
    let _ = writeln!(out, "      \"exact\": {}", s.verified());
    let _ = writeln!(out, "    }},");
    let o = &report.overhead;
    let _ = writeln!(out, "    \"noop_overhead\": {{");
    let _ = writeln!(out, "      \"baseline_ms\": {:.4},", o.baseline_ms);
    let _ = writeln!(out, "      \"noop_ms\": {:.4},", o.noop_ms);
    let _ = writeln!(
        out,
        "      \"overhead_fraction\": {:.4},",
        o.overhead_fraction()
    );
    let _ = writeln!(out, "      \"limit_fraction\": {OVERHEAD_LIMIT_FRAC},");
    let _ = writeln!(out, "      \"within_limit\": {}", o.verified());
    let _ = writeln!(out, "    }},");
    let u = &report.utilization;
    let _ = writeln!(out, "    \"thread_utilization\": {{");
    let _ = writeln!(out, "      \"workers\": {},", u.workers);
    let _ = writeln!(out, "      \"wall_ms\": {:.4},", u.wall_s * 1e3);
    let _ = writeln!(out, "      \"busy_fraction\": {:.4},", u.utilization);
    let _ = writeln!(out, "      \"imbalance\": {:.4},", u.imbalance());
    let _ = writeln!(out, "      \"shard_count\": {},", u.shard_count);
    let _ = writeln!(out, "      \"shard_mean_ms\": {:.4},", u.shard_mean_ms);
    let _ = writeln!(out, "      \"shard_max_ms\": {:.4},", u.shard_max_ms);
    out.push_str("      \"per_worker\": [\n");
    for w in 0..u.workers {
        let _ = writeln!(
            out,
            "        {{\"busy_ms\": {:.4}, \"shards\": {}}}{}",
            u.busy_s.get(w).copied().unwrap_or(0.0) * 1e3,
            u.shards.get(w).copied().unwrap_or(0),
            if w + 1 < u.workers { "," } else { "" }
        );
    }
    out.push_str("      ],\n");
    let buckets: Vec<String> = u
        .shard_buckets
        .iter()
        .map(|(b, n)| format!("[{b}, {n}]"))
        .collect();
    let _ = writeln!(out, "      \"shard_buckets\": [{}]", buckets.join(", "));
    out.push_str("    }\n  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_bench_reconciles_exactly_and_renders() {
        let report = run_telemetry_bench(2, 1);
        assert_eq!(report.cases.len(), 8, "4 modes x 2 engines");
        assert!(
            report.verified(),
            "gate failures: {:?}",
            report.gate_failures()
        );
        assert_eq!(report.serving.records, report.serving.events);
        assert!(report.serving.events > 0);
        assert!(report.utilization.shard_count > 0);
        assert!(report.utilization.utilization > 0.0);
        for c in &report.cases {
            assert!(
                c.layer_spans > 0 && c.op_spans > 0,
                "{}/{}",
                c.engine,
                c.mode
            );
        }
        // Dynamic modes run fewer compute cycles than dense on the same
        // engine — the reconciliation covers genuinely different traces.
        let dense = report.cases.iter().find(|c| c.mode == "Dense").unwrap();
        let both = report.cases.iter().find(|c| c.mode == "SkipBoth").unwrap();
        assert_ne!(dense.compute_cycles, both.compute_cycles);

        let text = render_text(&report);
        assert!(text.contains("telemetry gate: ok"));
        assert!(text.contains("serving mirror"));
        assert!(text.contains("thread utilization"));

        let json = render_json_section(&report);
        assert!(json.starts_with("  \"telemetry\": {"));
        assert!(json.contains("\"reconciliation\": ["));
        assert!(json.contains("\"mode\": \"SkipBoth\""));
        assert!(json.contains("\"serving_mirror\""));
        assert!(json.contains("\"noop_overhead\""));
        assert!(json.contains("\"thread_utilization\""));
        assert!(json.contains("\"verified\": true"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn flags_parse_and_pick_the_sink() {
        let args: Vec<String> = ["--threads", "4", "--trace-out", "t.json"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let flags = TelemetryFlags::parse(&args);
        assert_eq!(flags.trace_out.as_deref(), Some("t.json"));
        assert!(flags.telemetry_out.is_none());
        assert!(flags.wants_artifacts());
        assert_eq!(flags.sink().level(), Level::Detail);

        let off: Vec<String> = ["--trace-out", "t.json", "--no-telemetry"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let flags = TelemetryFlags::parse(&off);
        assert!(flags.disabled && !flags.wants_artifacts());
        assert!(!flags.sink().is_enabled());
        assert!(flags.write_artifacts(&Telemetry::disabled()).is_empty());
    }

    #[test]
    fn showcase_produces_a_loadable_trace() {
        let tel = Telemetry::enabled(Level::Detail);
        record_showcase(&tel, 2);
        // All three subsystems landed on the one shared timeline.
        assert!(tel.record_count("serving.event") > 0);
        assert!(tel.span_count("timing.layer") > 0);
        assert!(tel.span_count("functional.layer") > 0);
        let trace = tel.to_chrome_trace();
        assert!(trace.starts_with("{\n  \"traceEvents\": ["));
        assert!(trace.contains("\"ph\": \"X\""));
        let rollup = tel.to_rollup_json();
        assert!(rollup.contains("serving.arrivals"));
    }
}
