//! Regenerates every table and figure of the paper's evaluation in one run.
fn main() {
    for (title, text) in [
        ("== Table I ==", nc_bench::table1()),
        ("== Table II ==", nc_bench::table2()),
        ("== Table III ==", nc_bench::table3()),
        ("== Table IV ==", nc_bench::table4()),
        ("== Figure 2 ==", nc_bench::fig2()),
        ("== Figures 4-6 ==", nc_bench::fig4_6()),
        ("== Figure 12 ==", nc_bench::fig12()),
        ("== Figure 13 ==", nc_bench::fig13()),
        ("== Figure 14 ==", nc_bench::fig14()),
        ("== Figure 15 ==", nc_bench::fig15()),
        ("== Figure 16 ==", nc_bench::fig16()),
        ("== Sparsity ==", nc_bench::sparsity()),
        ("== Headlines ==", nc_bench::headlines()),
    ] {
        println!("{title}");
        println!("{text}");
    }
}
