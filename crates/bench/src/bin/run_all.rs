//! Regenerates every table and figure of the paper's evaluation in one run.
//!
//! `--threads N` runs the simulators behind the artifacts on the threaded
//! execution engine (N worker threads); the regenerated numbers are
//! identical, only host wall-clock changes. With `N >= 2` a per-thread
//! utilization/imbalance summary of the threaded engine is appended.
//! `--trace-out <path>` / `--telemetry-out <path>` additionally write the
//! Perfetto-loadable timeline and the `TELEMETRY.json` rollup.
fn main() {
    let threads = nc_bench::threads_flag(1);
    nc_bench::verify_prepass();
    for (title, text) in [
        ("== Table I ==", nc_bench::table1()),
        ("== Table II ==", nc_bench::table2()),
        ("== Table III ==", nc_bench::table3()),
        ("== Table IV ==", nc_bench::table4()),
        ("== Figure 2 ==", nc_bench::fig2()),
        ("== Figures 4-6 ==", nc_bench::fig4_6()),
        ("== Figure 12 ==", nc_bench::fig12()),
        ("== Figure 13 ==", nc_bench::fig13()),
        ("== Figure 14 ==", nc_bench::fig14()),
        ("== Figure 15 ==", nc_bench::fig15()),
        ("== Figure 16 ==", nc_bench::fig16()),
        ("== Sparsity ==", nc_bench::sparsity()),
        ("== Activation sparsity ==", nc_bench::activation_sparsity()),
        ("== Bit-budget advisor ==", nc_bench::advisor()),
        ("== Serving ==", nc_bench::serving_under_load()),
        ("== Headlines ==", nc_bench::headlines()),
    ] {
        println!("{title}");
        println!("{text}");
    }
    if threads >= 2 {
        println!("== Thread utilization ==");
        let util = nc_bench::telemetry::measure_utilization(threads);
        println!("{}", nc_bench::telemetry::render_utilization_text(&util));
    }
    nc_bench::telemetry::emit_canary_artifacts();
}
