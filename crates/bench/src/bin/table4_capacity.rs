//! Regenerates the paper artifact; see `nc_bench::table4`.
fn main() {
    nc_bench::emit_artifact(nc_bench::table4);
}
