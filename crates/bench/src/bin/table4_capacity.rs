#![forbid(unsafe_code)]

//! Regenerates the paper artifact; see `nc_bench::table4`.
fn main() {
    print!("{}", nc_bench::table4());
}
