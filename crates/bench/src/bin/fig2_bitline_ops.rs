#![forbid(unsafe_code)]

//! Regenerates the paper artifact; see `nc_bench::fig2`.
fn main() {
    print!("{}", nc_bench::fig2());
}
