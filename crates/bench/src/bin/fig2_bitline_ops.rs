//! Regenerates the paper artifact; see `nc_bench::fig2`.
fn main() {
    nc_bench::emit_artifact(nc_bench::fig2);
}
