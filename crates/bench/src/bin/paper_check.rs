//! Self-check binary: regenerates every table/figure artifact and verifies
//! the paper's headline constants appear in each, exiting non-zero on any
//! mismatch. A fast end-to-end sanity gate for the whole reproduction
//! (`cargo run --release --bin paper_check`).

use std::process::ExitCode;

fn main() -> ExitCode {
    nc_bench::verify_prepass();
    // Dense-vs-pruned skip comparisons: computed once, shared by the
    // sparsity artifact rendering and the cross-check guard below.
    let sparsity_comps = nc_bench::perf::compare_sparsity(1);

    // (artifact name, rendered text, substrings the paper fixes).
    let checks: [(&str, String, &[&str]); 13] = [
        // Table I row: Conv2d_1a_3x3 performs 710,432 convolutions.
        ("table1", nc_bench::table1(), &["Conv2d_1a_3x3", "710432"]),
        // Table II: the calibrated baselines.
        ("table2", nc_bench::table2(), &["Xeon", "Titan Xp"]),
        ("table3", nc_bench::table3(), &["Neural Cache"]),
        ("table4", nc_bench::table4(), &["MB"]),
        // Figure 2: the two-word-line AND/NOR bit-line primitive.
        ("fig2", nc_bench::fig2(), &["AND", "NOR"]),
        // Figures 4-6: n-bit add takes n+1 compute cycles.
        ("fig4_6", nc_bench::fig4_6(), &["add"]),
        // Figure 12: 7.5% array area overhead.
        ("fig12", nc_bench::fig12(), &["7.5"]),
        ("fig13", nc_bench::fig13(), &["Conv2d_1a_3x3"]),
        // Figure 14: phase breakdown is dominated by filter loading.
        ("fig14", nc_bench::fig14(), &["filter-load", "mac"]),
        ("fig15", nc_bench::fig15(), &["Neural Cache"]),
        // Figure 16: 604 inferences/sec peak throughput.
        ("fig16", nc_bench::fig16(), &["604"]),
        (
            "sparsity",
            nc_bench::sparsity_with(&sparsity_comps),
            &["oracle", "MAC speedup"],
        ),
        // Section I: 1,146,880 bit-serial ALU slots in 35 MB of LLC.
        ("headlines", nc_bench::headlines(), &["1146880", "28 TOP/s"]),
    ];

    let mut failures = 0u32;
    for (name, text, expects) in &checks {
        if text.trim().is_empty() {
            println!("FAIL {name}: rendered nothing");
            failures += 1;
            continue;
        }
        let missing: Vec<&&str> = expects.iter().filter(|e| !text.contains(**e)).collect();
        if missing.is_empty() {
            println!("ok   {name}");
        } else {
            println!("FAIL {name}: missing {missing:?}");
            failures += 1;
        }
    }

    // Sparsity guard: the artifact's *executed* skip fraction (the
    // SkipZeroRows counters of the functional executor) must match the
    // analytical one computed on the mapper's lane packing, and skipping
    // must stay bit-identical to dense.
    for s in &sparsity_comps {
        let delta = (s.executed_skip_fraction - s.predicted_skip_fraction).abs();
        if s.verified() {
            println!(
                "ok   sparsity/{}: executed {:.4} vs predicted {:.4}",
                s.name, s.executed_skip_fraction, s.predicted_skip_fraction
            );
        } else {
            println!(
                "FAIL sparsity/{}: bit_identical={} skip-fraction delta {delta:.4}",
                s.name, s.bit_identical
            );
            failures += 1;
        }
    }

    nc_bench::telemetry::emit_canary_artifacts();

    if failures == 0 {
        println!(
            "paper_check: all {} artifacts + sparsity cross-check verified",
            checks.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("paper_check: {failures} artifact(s) FAILED");
        ExitCode::FAILURE
    }
}
