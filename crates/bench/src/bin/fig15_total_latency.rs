#![forbid(unsafe_code)]

//! Regenerates the paper artifact; see `nc_bench::fig15`.
fn main() {
    print!("{}", nc_bench::fig15());
}
