//! Static plan lint gate: runs the `nc-verify` hazard checks, three-way
//! cycle reconciliation, the shard-graph concurrency proof, and the
//! value-range overflow certification over every shipped workload under
//! all four sparsity modes, writes the diagnostics (and per-workload
//! shard-graph / value-range stats) as a JSON artifact, and exits non-zero
//! on *any* diagnostic — so CI fails the moment a plan, schedule, cost
//! model, executor, or the Threaded engine's work decomposition drifts out
//! of agreement.
//!
//! Shape-only workloads (the full Inception v3 graph) get the static
//! passes: operand-layout lints, per-mode MAC-tap schedule hazards,
//! cost-model anchors, per-layer lane geometry / row budget / static ↔
//! analytical MAC cycles, the reserved-way dump-overlap window, the
//! shard-graph happens-before analysis (V013–V019), and the value-range
//! abstract interpretation with its overflow/width certificates
//! (V021–V027) checked against both the default and the advised bit
//! budgets. Weighted workloads additionally run the functional executor
//! under every sparsity mode on both engines, reconcile the executed
//! `CycleStats` and `ArrayPool` event counters (V020) against the static
//! predictions, and reconcile every executed per-layer accumulator min/max
//! against the static interval certificate (V021 on escape).
//!
//! ```bash
//! cargo run --release -p nc-bench --bin plan_lint -- --out PLAN_LINT.json
//! ```
//!
//! Exit codes: `0` all workloads clean, `1` at least one hazard-category
//! diagnostic (plan/schedule/width defects, including V021–V027), `2`
//! reconciliation-category diagnostics only (V009/V010/V020 — the static
//! and executed views drifted but no plan hazard was proven), `3` the
//! artifact could not be written.

use std::process::ExitCode;

use nc_dnn::inception::inception_v3;
use nc_dnn::workload::{
    pruned_conv_model, pruned_inception, random_input, relu_sparse_conv_model, relu_sparse_mini,
    tiny_cnn,
};
use nc_dnn::Model;
use nc_verify::diag::Category;
use nc_verify::report::VerifyReport;
use nc_verify::{check_executed_model, check_threaded_model};

/// Runs the static-only or static+executed verification for one workload.
fn verify(model: &Model, executed: bool) -> VerifyReport {
    let config = nc_bench::base_config();
    if executed {
        let input = random_input(model.input_shape, model.input_quant, 7);
        match check_executed_model(&config, model, &input) {
            Ok(report) => report,
            Err(e) => {
                // An executor failure is itself a gate failure: surface it
                // as a report whose only "diagnostic" is the error text.
                let mut report = check_threaded_model(&config, model);
                report.record(
                    "executed-reconciliation",
                    vec![nc_verify::diag::Diagnostic::new(
                        nc_verify::diag::ErrorCode::CycleMismatchExecuted,
                        model.name.clone(),
                        format!("functional executor failed: {e}"),
                    )],
                );
                report
            }
        }
    } else {
        check_threaded_model(&config, model)
    }
}

fn range_stats_line(report: &VerifyReport) -> Option<String> {
    let stat = |name: &str| {
        report
            .stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    };
    let convs = stat("range_convs")?;
    Some(format!(
        "{} conv range(s), {} exact-weighted, acc width max {} bit(s), {} advised bit(s) trimmed",
        convs,
        stat("range_exact_weighted").unwrap_or(0),
        stat("range_acc_bits_max").unwrap_or(0),
        stat("range_trimmed_bits").unwrap_or(0),
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = nc_bench::parse_flag(&args, "--out").unwrap_or_else(|| "PLAN_LINT.json".into());

    // (workload, run the executed leg too). Inception v3 proper is
    // shape-only; every weighted workload executes under all four modes
    // on both engines.
    let workloads: [(Model, bool); 6] = [
        (inception_v3(), false),
        (pruned_inception(3), true),
        (relu_sparse_mini(7), true),
        (tiny_cnn(42), true),
        (pruned_conv_model(5), true),
        (relu_sparse_conv_model(7), true),
    ];

    let mut reports = Vec::new();
    let mut dirty = 0u32;
    let mut hazards = 0u32;
    let mut reconciliations = 0u32;
    for (model, executed) in &workloads {
        let report = verify(model, *executed);
        let n = report.diagnostics.len();
        let shards = report
            .stats
            .iter()
            .find(|(name, _)| name == "shard_jobs")
            .map_or(0, |(_, v)| *v);
        if report.is_clean() {
            println!(
                "ok   {}: {} check(s) clean, {shards} shard job(s) race-free{}",
                report.subject,
                report.checks.len(),
                if *executed {
                    " (static + executed)"
                } else {
                    " (static)"
                }
            );
        } else {
            println!("FAIL {}: {n} diagnostic(s)", report.subject);
            for d in &report.diagnostics {
                println!("     {d}");
            }
            dirty += 1;
        }
        if let Some(line) = range_stats_line(&report) {
            println!("     ranges: {line}");
        }
        for d in &report.diagnostics {
            match d.code.category() {
                Category::Hazard => hazards += 1,
                Category::Reconciliation => reconciliations += 1,
            }
        }
        reports.push(report);
    }

    let json: Vec<String> = reports.iter().map(VerifyReport::to_json).collect();
    let artifact = format!("[{}]\n", json.join(","));
    if let Err(e) = std::fs::write(&out, artifact) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::from(3);
    }
    println!("wrote {out}");
    nc_bench::telemetry::emit_canary_artifacts();

    if dirty == 0 {
        println!(
            "plan_lint: all {} workload(s) verified clean",
            workloads.len()
        );
        ExitCode::SUCCESS
    } else if hazards > 0 {
        eprintln!(
            "plan_lint: {dirty} workload(s) dirty ({hazards} hazard, {reconciliations} \
             reconciliation diagnostic(s))"
        );
        ExitCode::from(1)
    } else {
        eprintln!(
            "plan_lint: {dirty} workload(s) with reconciliation-only drift \
             ({reconciliations} diagnostic(s))"
        );
        ExitCode::from(2)
    }
}
