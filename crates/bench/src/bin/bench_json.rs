//! Emits `BENCH_functional.json`: sequential-vs-threaded wall time of the
//! functional executor on the Inception v3 proxy workloads, for CI to
//! upload as a per-PR perf artifact.
//!
//! ```bash
//! cargo run --release -p nc-bench --bin bench_json -- --threads 4 --out BENCH_functional.json
//! ```
//!
//! Exits non-zero if the threaded backend fails to reproduce the
//! sequential outputs/cycles exactly (the tentpole invariant), so the CI
//! bench job doubles as a determinism gate.

use std::process::ExitCode;

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: usize = parse_flag(&args, "--threads")
        .map(|v| v.parse().expect("--threads takes an integer"))
        .unwrap_or(4);
    let reps: usize = parse_flag(&args, "--reps")
        .map(|v| v.parse().expect("--reps takes an integer"))
        .unwrap_or(3);
    let out_path = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_functional.json".to_owned());

    let comparisons = nc_bench::perf::compare_engines(threads, reps);
    let json = nc_bench::perf::render_json(&comparisons, threads);
    std::fs::write(&out_path, &json).expect("write BENCH_functional.json");
    print!("{json}");
    eprintln!("wrote {out_path}");

    if comparisons
        .iter()
        .all(nc_bench::perf::EngineComparison::verified)
    {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: threaded backend diverged from sequential");
        ExitCode::FAILURE
    }
}
