//! Emits `BENCH_functional.json`: sequential-vs-threaded wall time of the
//! functional executor on the Inception v3 proxy workloads, the
//! dense-vs-pruned sparsity section (simulated cycles, wall times, the
//! predicted-vs-executed skip cross-check, and the per-bank vs lockstep
//! skip-variant spread), the activation-sparsity section (dense vs
//! ReLU-sparse cycles under the dynamic input-bit skip modes and the
//! detect-overhead break-even), the bit-budget advisor section (cycle
//! savings from value-range-proven operand trims, gated on a clean static
//! certificate and a bit-identical trimmed reference run), the `nc-serve`
//! serving section
//! (offered-load sweep, trace/policy matrix, latency percentiles), and the
//! telemetry section (span↔counter reconciliation matrix, no-op-sink
//! overhead, per-thread utilization), for CI to upload as a per-PR perf
//! artifact.
//!
//! ```bash
//! cargo run --release -p nc-bench --bin bench_json -- --threads 4 --out BENCH_functional.json \
//!     --trace-out trace.json --telemetry-out TELEMETRY.json
//! ```
//!
//! Exits non-zero if the threaded backend fails to reproduce the
//! sequential outputs/cycles exactly, if `SparsityMode::SkipZeroRows`
//! diverges from dense output bytes or from the analytical skip fraction,
//! if the activation-sparsity gate fails (dynamic modes not bit-identical
//! to dense, executed input-skip counters disagreeing with
//! `sparsity::activation_profile`, or a ReLU-sparse model failing to show a
//! net MAC-phase speedup after the 1-cycle/round detect charge), if the
//! bit-budget advisor gate fails (an advised budget losing its static
//! soundness certificate, the trimmed run diverging from the untrimmed
//! reference, or no shipped workload reporting a cycle saving), if the
//! serving sanity gate fails (request conservation, latency monotone in
//! offered load, goodput bounded by offered load, engine byte-identity), or
//! if the telemetry gate fails (span rollups not reconciling exactly with
//! `CycleStats`/`LayerTiming`/`ServingTrace`, or the disabled sink
//! regressing wall time beyond 5%), so the CI bench job doubles as a
//! determinism gate.

use std::process::ExitCode;

use nc_bench::parse_flag;
use nc_bench::telemetry::TelemetryFlags;

fn main() -> ExitCode {
    let threads = nc_bench::threads_flag(4);
    nc_bench::verify_prepass();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: usize =
        parse_flag(&args, "--reps").map_or(3, |v| v.parse().expect("--reps takes an integer"));
    let out_path = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_functional.json".to_owned());
    let tel_flags = TelemetryFlags::parse(&args);

    let comparisons = nc_bench::perf::compare_engines(threads, reps);
    let sparsity = nc_bench::perf::compare_sparsity(reps);
    let activation = nc_bench::perf::compare_activation_sparsity(reps);
    let advisor = nc_bench::perf::compare_advisor();
    let serving = nc_bench::serving::run_serving_bench(threads);
    let telemetry = if tel_flags.disabled {
        None
    } else {
        Some(nc_bench::telemetry::run_telemetry_bench(threads, reps))
    };
    let json = nc_bench::perf::render_json_all(
        &comparisons,
        &sparsity,
        &activation,
        &advisor,
        Some(&serving),
        telemetry.as_ref(),
        threads,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_functional.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
    if tel_flags.wants_artifacts() {
        let sink = tel_flags.sink();
        nc_bench::telemetry::record_showcase(&sink, threads);
        for path in tel_flags.write_artifacts(&sink) {
            eprintln!("wrote {path}");
        }
    }

    let engines_ok = comparisons
        .iter()
        .all(nc_bench::perf::EngineComparison::verified);
    let sparsity_ok = sparsity
        .iter()
        .all(nc_bench::perf::SparsityComparison::verified);
    let activation_ok = activation
        .iter()
        .all(nc_bench::perf::ActivationComparison::verified);
    let advisor_ok = advisor
        .iter()
        .all(nc_bench::perf::AdvisorComparison::verified)
        && advisor.iter().any(|a| a.saved_cycles > 0);
    let serving_ok = serving.verified();
    let telemetry_ok = telemetry
        .as_ref()
        .is_none_or(nc_bench::telemetry::TelemetryReport::verified);
    if !engines_ok {
        eprintln!("FAIL: threaded backend diverged from sequential");
    }
    if !sparsity_ok {
        eprintln!("FAIL: round skipping diverged from dense or from the analytical skip fraction");
    }
    if !activation_ok {
        eprintln!(
            "FAIL: activation sparsity gate (dynamic modes must stay bit-identical, match \
             the activation_profile prediction exactly, and net a MAC speedup on ReLU-sparse \
             inputs after the 1-cycle/round detect charge)"
        );
        for a in &activation {
            if !a.verified() {
                eprintln!(
                    "  - {}: executed skip {:.4} vs predicted {:.4}, net MAC speedup {:.3}, \
                     bit_identical {}",
                    a.name,
                    a.executed_input_skip_fraction,
                    a.predicted_input_skip_fraction,
                    a.mac_speedup(),
                    a.bit_identical
                );
            }
        }
    }
    if !advisor_ok {
        eprintln!(
            "FAIL: bit-budget advisor gate (every advised budget must carry a clean static \
             certificate, the trimmed reference run must stay bit-identical, and at least one \
             shipped workload must report a positive MAC-cycle saving)"
        );
        for a in &advisor {
            eprintln!(
                "  - {}: certified_sound {}, bit_identical {}, saved {}/{} cycles ({:.2}%)",
                a.name,
                a.certified_sound,
                a.bit_identical,
                a.saved_cycles,
                a.governed_cycles,
                100.0 * a.cycle_reduction()
            );
        }
    }
    if !serving_ok {
        eprintln!("FAIL: serving sanity gate");
        for f in serving.gate_failures() {
            eprintln!("  - {f}");
        }
    }
    if !telemetry_ok {
        eprintln!("FAIL: telemetry reconciliation/overhead gate");
        if let Some(report) = &telemetry {
            for f in report.gate_failures() {
                eprintln!("  - {f}");
            }
        }
    }
    if engines_ok && sparsity_ok && activation_ok && advisor_ok && serving_ok && telemetry_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
