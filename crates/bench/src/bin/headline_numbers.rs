#![forbid(unsafe_code)]

//! Regenerates the paper artifact; see `nc_bench::headlines`.
fn main() {
    print!("{}", nc_bench::headlines());
}
