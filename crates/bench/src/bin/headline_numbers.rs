//! Regenerates the paper artifact; see `nc_bench::headlines`.
fn main() {
    nc_bench::emit_artifact(nc_bench::headlines);
}
