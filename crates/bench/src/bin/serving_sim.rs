//! Runs the `nc-serve` serving bench (offered-load sweep + trace/policy
//! matrix) and prints the human-readable table; exits non-zero when the
//! serving sanity gate (conservation, monotone latency vs load, goodput
//! bound, engine byte-identity) fails.
//!
//! ```bash
//! cargo run --release -p nc-bench --bin serving_sim -- --threads 4
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let threads = nc_bench::threads_flag(4);
    nc_bench::verify_prepass();

    let bench = nc_bench::serving::run_serving_bench(threads);
    print!("{}", nc_bench::serving::render_text(&bench));
    if bench.verified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
