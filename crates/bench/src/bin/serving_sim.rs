//! Runs the `nc-serve` serving bench (offered-load sweep + trace/policy
//! matrix) plus the telemetry reconciliation gate, prints the
//! human-readable tables, and optionally writes the Perfetto-loadable
//! timeline artifacts; exits non-zero when the serving sanity gate
//! (conservation, monotone latency vs load, goodput bound, engine
//! byte-identity) or the telemetry gate (span rollups must reconcile
//! exactly with `CycleStats`/`LayerTiming`/`ServingTrace` under every
//! sparsity mode and both engines) fails.
//!
//! ```bash
//! cargo run --release -p nc-bench --bin serving_sim -- --threads 4 \
//!     --trace-out trace.json --telemetry-out TELEMETRY.json
//! ```
//!
//! `--trace-out trace.json` writes a Chrome trace-event JSON of the
//! request lifecycle + per-layer/per-op execution timeline — load it at
//! <https://ui.perfetto.dev>. `--no-telemetry` skips the telemetry gate
//! and artifacts.

use std::process::ExitCode;

use nc_bench::telemetry::TelemetryFlags;

fn main() -> ExitCode {
    let threads = nc_bench::threads_flag(4);
    nc_bench::verify_prepass();
    let flags = TelemetryFlags::from_process_args();

    let bench = nc_bench::serving::run_serving_bench(threads);
    print!("{}", nc_bench::serving::render_text(&bench));

    let telemetry_ok = if flags.disabled {
        true
    } else {
        let report = nc_bench::telemetry::run_telemetry_bench(threads, 1);
        println!("== Telemetry ==");
        print!("{}", nc_bench::telemetry::render_text(&report));
        if flags.wants_artifacts() {
            let sink = flags.sink();
            nc_bench::telemetry::record_showcase(&sink, threads);
            for path in flags.write_artifacts(&sink) {
                eprintln!("wrote {path}");
            }
        }
        report.verified()
    };

    if bench.verified() && telemetry_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
