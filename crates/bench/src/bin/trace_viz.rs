//! Records the showcase telemetry timeline — the serving request
//! lifecycle on Inception v3, the full simulated-time per-layer/per-phase
//! timeline, and an executed functional proxy with per-op detail — and
//! writes it as a Chrome trace-event JSON (load at
//! <https://ui.perfetto.dev>) plus the `TELEMETRY.json` rollup, with a
//! human-readable summary of what landed on each track.
//!
//! ```bash
//! cargo run --release -p nc-bench --bin trace_viz -- \
//!     --trace-out trace.json --telemetry-out TELEMETRY.json --threads 4
//! ```
//!
//! Both outputs default on: `trace.json` and `TELEMETRY.json` in the
//! working directory unless overridden.

use nc_bench::telemetry::TelemetryFlags;
use nc_telemetry::{Level, Telemetry};

fn main() {
    let threads = nc_bench::threads_flag(4);
    nc_bench::verify_prepass();
    let mut flags = TelemetryFlags::from_process_args();
    if flags.trace_out.is_none() {
        flags.trace_out = Some("trace.json".to_owned());
    }
    if flags.telemetry_out.is_none() {
        flags.telemetry_out = Some("TELEMETRY.json".to_owned());
    }

    let tel = Telemetry::enabled(Level::Detail);
    nc_bench::telemetry::record_showcase(&tel, threads);

    println!("recorded showcase timeline:");
    for (cat, what) in [
        (
            "serving.event",
            "request lifecycle records (arrive/dispatch/batch/drop)",
        ),
        ("serving.request", "queue-wait spans"),
        ("timing.layer", "simulated-time layer spans"),
        ("timing.phase", "simulated-time phase spans"),
        ("functional.layer", "executed layer spans"),
        ("functional.op", "executed per-op phase spans"),
    ] {
        println!("  {:>6} {cat:<18} {what}", tel.record_count(cat));
    }
    println!(
        "  {:>6} counters, {} gauges, {} histograms",
        tel.counters().len(),
        tel.gauges().len(),
        tel.histogram_names().len()
    );
    println!(
        "  simulated time on timing.layer: {:.3} ms",
        tel.sum_dur("timing.layer") * 1e3
    );

    for path in flags.write_artifacts(&tel) {
        println!("wrote {path}");
    }
    println!("open the trace at https://ui.perfetto.dev");
}
