#![forbid(unsafe_code)]

//! Regenerates the paper artifact; see `nc_bench::table3`.
fn main() {
    print!("{}", nc_bench::table3());
}
