//! Sparsity extension analysis; see `nc_bench::sparsity`.
fn main() {
    nc_bench::emit_artifact(nc_bench::sparsity);
}
