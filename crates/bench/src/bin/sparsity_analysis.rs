#![forbid(unsafe_code)]

//! Sparsity extension analysis; see `nc_bench::sparsity`.
fn main() {
    print!("{}", nc_bench::sparsity());
}
