#![forbid(unsafe_code)]

//! Regenerates the paper artifact; see `nc_bench::fig14`.
fn main() {
    print!("{}", nc_bench::fig14());
}
