//! Benchmark harness for the Neural Cache (ISCA 2018) reproduction: one
//! function per table/figure of the paper's evaluation, each returning the
//! regenerated artifact as formatted text (the `src/bin/*` binaries print
//! them; integration tests smoke-check them).
//!
//! | Artifact | Function | Binary |
//! |---|---|---|
//! | Table I | [`table1`] | `table1_layers` |
//! | Table II | [`table2`] | `table2_baselines` |
//! | Table III | [`table3`] | `table3_energy` |
//! | Table IV | [`table4`] | `table4_capacity` |
//! | Figure 2 | [`fig2`] | `fig2_bitline_ops` |
//! | Figures 4-6 | [`fig4_6`] | `fig4_6_arithmetic` |
//! | Figure 12 | [`fig12`] | `fig12_area` |
//! | Figure 13 | [`fig13`] | `fig13_layer_latency` |
//! | Figure 14 | [`fig14`] | `fig14_breakdown` |
//! | Figure 15 | [`fig15`] | `fig15_total_latency` |
//! | Figure 16 | [`fig16`] | `fig16_throughput` |
//! | §I/III headlines | [`headlines`] | `headline_numbers` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::pedantic)]
// Pedantic allowlist: speedup ratios convert cycle counters to f64
// (bounded far below 2^52); gate helpers panic by design on malformed
// expectations; JSON emitters keep their row structs next to the loops.
#![allow(
    clippy::cast_precision_loss,
    clippy::items_after_statements,
    clippy::many_single_char_names,
    clippy::missing_panics_doc,
    clippy::too_many_lines
)]

pub mod perf;
pub mod serving;
pub mod telemetry;

use std::fmt::Write as _;
use std::sync::{Once, OnceLock};

use nc_baselines::{cpu_xeon_e5, gpu_titan_xp, PlatformConfig};
use nc_dnn::inception::inception_v3;
use nc_sram::area::AreaModel;
use nc_sram::{ComputeArray, Operand, SramArray};
use neural_cache::{
    energy_of, throughput_sweep, time_inference, ExecutionEngine, NeuralCache, Phase, SystemConfig,
};

/// Engine the artifact functions run their simulators on (host wall-clock
/// only; regenerated numbers are identical under every engine).
static ENGINE: OnceLock<ExecutionEngine> = OnceLock::new();

/// Selects the execution engine used by every artifact function's
/// [`SystemConfig`] (`0`/`1` threads mean sequential). The first call wins;
/// later calls are ignored. Wired to `run_all --threads N`.
pub fn set_threads(threads: usize) {
    let _ = ENGINE.set(ExecutionEngine::from_threads(threads));
}

/// The system configuration all artifact functions simulate: the paper's
/// dual-socket Xeon with the engine selected by [`set_threads`].
#[must_use]
pub fn base_config() -> SystemConfig {
    let mut config = SystemConfig::xeon_e5_2697_v3();
    config.parallelism = *ENGINE.get_or_init(|| ExecutionEngine::Sequential);
    config
}

/// Returns the value following `flag` in `args` (the shared CLI
/// convention of every artifact binary).
#[must_use]
pub fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses the shared `--threads N` flag from the process arguments, wires
/// it into [`set_threads`], and returns it (`default` when the flag is
/// absent). Called for the wiring side effect; the return value is a
/// convenience for binaries that also pass the count along.
#[allow(clippy::must_use_candidate)]
pub fn threads_flag(default: usize) -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = parse_flag(&args, "--threads")
        .map_or(default, |v| v.parse().expect("--threads takes an integer"));
    set_threads(threads);
    threads
}

/// Static pre-flight every artifact binary runs before printing numbers:
/// full plan verification — operand layouts, hazard checks, cycle
/// reconciliation, and the Threaded engine's shard-graph happens-before
/// proof (`nc_verify::check_threaded_model`) — on the canary workload.
/// Shape-only and cheap (nothing executes), and it guarantees no artifact
/// is ever rendered from an unsound plan. Runs at most once per process.
///
/// # Panics
///
/// Panics with the full report when any diagnostic fires.
pub fn verify_prepass() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let report =
            nc_verify::check_threaded_model(&base_config(), &nc_dnn::workload::tiny_cnn(42));
        assert!(report.is_clean(), "verify pre-pass failed:\n{report}");
    });
}

/// Entry point shared by the single-artifact binaries: parse the shared
/// `--threads` flag, run the [`verify_prepass`], then print the rendered
/// artifact.
pub fn emit_artifact(render: fn() -> String) {
    threads_flag(1);
    verify_prepass();
    print!("{}", render());
    telemetry::emit_canary_artifacts();
}

/// [`base_config`] with a scaled LLC capacity (Table IV points).
#[must_use]
pub fn capacity_config(mb: usize) -> SystemConfig {
    let mut config = SystemConfig::with_capacity_mb(mb);
    config.parallelism = *ENGINE.get_or_init(|| ExecutionEngine::Sequential);
    config
}

/// Table I — Inception v3 layer parameters, derived from our graph.
#[must_use]
pub fn table1() -> String {
    let rows = nc_dnn::summary::table1(&inception_v3());
    let mut out = String::from("Table I: Parameters of the Layers of Inception v3 (derived)\n");
    out.push_str(&nc_dnn::summary::render_table1(&rows));
    out.push_str(
        "\nNotes: Mixed_6e convolution count derives to 554,880 (paper prints 499,392);\n\
         Mixed_6a/6e filter sizes derive to 1.099/2.039 MB (paper prints 0.255/1.898,\n\
         inconsistent with its own convolution counts). All other cells match.\n",
    );
    out
}

/// Table II — baseline CPU & GPU configuration.
#[must_use]
pub fn table2() -> String {
    let mut out = String::from("Table II: Baseline CPU & GPU Configuration\n");
    for c in [
        PlatformConfig::xeon_e5_2697_v3(),
        PlatformConfig::titan_xp(),
    ] {
        let _ = writeln!(
            out,
            "{}\n  frequency: {} GHz | cores: {} | process: {} nm | TDP: {} W\n  cache: {}\n  memory: {}",
            c.name, c.frequency_ghz, c.cores, c.process_nm, c.tdp_w, c.cache, c.memory
        );
    }
    out
}

/// Table III — energy consumption and average power.
#[must_use]
pub fn table3() -> String {
    let config = base_config();
    let model = inception_v3();
    let report = time_inference(&config, &model);
    let nc = energy_of(&config, &report);
    let cpu = cpu_xeon_e5();
    let gpu = gpu_titan_xp();

    let mut out = String::from("Table III: Energy Consumption and Average Power\n");
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>14}",
        "", "CPU", "GPU", "Neural Cache"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>12.3} {:>12.3} {:>14.3}   (paper: 9.137 / 4.087 / 0.246)",
        "Total Energy/J",
        cpu.energy_j(),
        gpu.energy_j(),
        nc.total_j()
    );
    let _ = writeln!(
        out,
        "{:<16} {:>12.2} {:>12.2} {:>14.2}   (paper: 105.56 / 112.87 / 52.92)",
        "Avg Power/W",
        cpu.avg_power_w,
        gpu.avg_power_w,
        nc.avg_power_w()
    );
    let _ = writeln!(
        out,
        "energy efficiency: {:.1}x vs CPU, {:.1}x vs GPU (paper: 37.1x / 16.6x)",
        cpu.energy_j() / nc.total_j(),
        gpu.energy_j() / nc.total_j()
    );
    out
}

/// Table IV — inference latency vs cache capacity (batch size 1).
#[must_use]
pub fn table4() -> String {
    let model = inception_v3();
    let mut out = String::from("Table IV: Scaling with Cache Capacity (Batch Size = 1)\n");
    let paper = [(35usize, 4.72f64), (45, 4.12), (60, 3.79)];
    for (mb, paper_ms) in paper {
        let t = time_inference(&capacity_config(mb), &model)
            .total()
            .as_millis_f64();
        let _ = writeln!(
            out,
            "{mb} MB ({} slices): {t:.2} ms   (paper: {paper_ms:.2} ms)",
            mb * 1024 / 2560
        );
    }
    out
}

/// Figure 2 — in-place AND/NOR bit-line operations on a real array.
#[must_use]
pub fn fig2() -> String {
    let mut arr = SramArray::new();
    let mut out = String::from("Figure 2: SRAM circuit for in-place operations\n");
    // Store the four (A, B) combinations of Figure 2b on columns 0..4.
    for (col, (a, b)) in [(false, false), (false, true), (true, false), (true, true)]
        .iter()
        .enumerate()
    {
        arr.set(10, col, *a).expect("in range");
        arr.set(20, col, *b).expect("in range");
    }
    let sensed = arr.sense(10, 20).expect("two-row activation");
    let _ = writeln!(
        out,
        "{:>6} {:>3} {:>3} | {:>7} {:>7}",
        "col", "A", "B", "BL=AND", "BLB=NOR"
    );
    for col in 0..4 {
        let _ = writeln!(
            out,
            "{:>6} {:>3} {:>3} | {:>7} {:>7}",
            col,
            u8::from(arr.get(10, col).expect("in range")),
            u8::from(arr.get(20, col).expect("in range")),
            u8::from(sensed.and.get(col)),
            u8::from(sensed.nor.get(col)),
        );
    }
    out
}

/// Figures 4-6 — the addition, reduction and multiplication walkthroughs,
/// executed on a real compute array with cycle counts.
#[must_use]
pub fn fig4_6() -> String {
    let mut out = String::new();

    // Figure 4: 4-bit addition of two vectors.
    let mut arr = ComputeArray::with_zero_row(255).expect("zero row");
    let a = Operand::new(0, 4).expect("operand");
    let b = Operand::new(4, 4).expect("operand");
    let sum = Operand::new(8, 5).expect("operand");
    let pairs = [(5u64, 3u64), (7, 7), (15, 1), (2, 2)];
    for (lane, (x, y)) in pairs.iter().enumerate() {
        arr.poke_lane(lane, a, *x);
        arr.poke_lane(lane, b, *y);
    }
    let d = arr.add(a, b, sum).expect("add");
    let _ = writeln!(
        out,
        "Figure 4 (addition): {} compute cycles for 4-bit operands (paper: n+1 = 5)",
        d.compute_cycles
    );
    for (lane, (x, y)) in pairs.iter().enumerate() {
        let _ = writeln!(
            out,
            "  word {}: {x} + {y} = {}",
            lane + 1,
            arr.peek_lane(lane, sum)
        );
    }

    // Figure 5: reduction of four words.
    let mut arr = ComputeArray::with_zero_row(255).expect("zero row");
    let v = Operand::new(0, 32).expect("operand");
    let s = Operand::new(32, 32).expect("operand");
    for (lane, c) in [17u64, 4, 9, 30].iter().enumerate() {
        arr.poke_lane(lane, v, *c);
    }
    let d = arr.reduce_sum(v, s, 4).expect("reduce");
    let _ = writeln!(
        out,
        "Figure 5 (reduction): C1+C2+C3+C4 = {} in {} cycles (log2(4) = 2 steps)",
        arr.peek_lane(0, v),
        d.compute_cycles
    );

    // Figure 6: 2-bit multiplication (the published operands).
    let mut arr = ComputeArray::with_zero_row(255).expect("zero row");
    let a = Operand::new(0, 2).expect("operand");
    let b = Operand::new(2, 2).expect("operand");
    let p = Operand::new(4, 4).expect("operand");
    let cases = [(3u64, 3u64), (1, 2), (3, 1), (2, 2)];
    for (lane, (x, y)) in cases.iter().enumerate() {
        arr.poke_lane(lane, a, *x);
        arr.poke_lane(lane, b, *y);
    }
    let d = arr.mul(a, b, p).expect("mul");
    let _ = writeln!(
        out,
        "Figure 6 (multiplication): {} cycles for 2-bit operands (paper: n^2+5n-2 = 12)",
        d.compute_cycles
    );
    for (lane, (x, y)) in cases.iter().enumerate() {
        let _ = writeln!(
            out,
            "  word {}: {x} * {y} = {}",
            lane + 1,
            arr.peek_lane(lane, p)
        );
    }
    out
}

/// Figure 12 — SRAM array area overhead.
#[must_use]
pub fn fig12() -> String {
    let m = AreaModel::paper_28nm();
    let g = nc_geometry::CacheGeometry::xeon_e5_2697_v3();
    let mut out = String::from("Figure 12: SRAM array layout / area model (28 nm)\n");
    let _ = writeln!(
        out,
        "array compute overhead: {:.1}% (paper: 7.5%)",
        100.0 * m.array_overhead_fraction()
    );
    let _ = writeln!(
        out,
        "added compute area over {} arrays: {:.2} mm^2",
        g.total_arrays(),
        m.total_compute_area_mm2(g.total_arrays())
    );
    let _ = writeln!(
        out,
        "control FSM area over {} banks: {:.2} mm^2 (paper: 0.23 mm^2)",
        g.total_banks(),
        m.total_fsm_area_mm2(g.total_banks())
    );
    let _ = writeln!(
        out,
        "TMU area: {:.3} mm^2 each | die overhead at 70% cache area: {:.2}% (paper: <2%)",
        m.tmu_area_mm2,
        100.0 * m.die_overhead_fraction(0.7)
    );
    out
}

/// Figure 13 — inference latency by layer for CPU, GPU and Neural Cache.
#[must_use]
pub fn fig13() -> String {
    let model = inception_v3();
    let nc = time_inference(&base_config(), &model);
    let cpu = cpu_xeon_e5().layer_latencies(&model);
    let gpu = gpu_titan_xp().layer_latencies(&model);
    let mut out = String::from("Figure 13: Inference latency by layer of Inception v3 (ms)\n");
    let _ = writeln!(
        out,
        "{:<18} {:>10} {:>10} {:>13}",
        "Layer", "CPU", "GPU", "Neural Cache"
    );
    for ((layer, (_, c)), (_, g)) in nc.layers.iter().zip(&cpu).zip(&gpu) {
        let _ = writeln!(
            out,
            "{:<18} {:>10.3} {:>10.3} {:>13.4}",
            layer.name,
            c.as_millis_f64(),
            g.as_millis_f64(),
            layer.total().as_millis_f64()
        );
    }
    out
}

/// Figure 14 — Neural Cache inference latency breakdown.
#[must_use]
pub fn fig14() -> String {
    let report = time_inference(&base_config(), &inception_v3());
    let b = report.breakdown();
    let paper = [
        (Phase::FilterLoad, 46.0),
        (Phase::InputStream, 15.0),
        (Phase::Mac, 20.0),
        (Phase::Reduce, 10.0),
        (Phase::Quantize, 5.0),
        (Phase::Pool, 0.04),
        (Phase::OutputTransfer, 4.0),
    ];
    let mut out = String::from("Figure 14: Inference latency breakdown\n");
    for (phase, paper_pct) in paper {
        let _ = writeln!(
            out,
            "{:>12}: {:>5.1}%  (paper: {:>5.2}%)  [{}]",
            phase.label(),
            100.0 * b.fraction(phase),
            paper_pct,
            b.get(phase)
        );
    }
    out
}

/// Figure 15 — total Inception v3 inference latency for the three systems.
#[must_use]
pub fn fig15() -> String {
    let nc = time_inference(&base_config(), &inception_v3()).total();
    let cpu = cpu_xeon_e5().total_latency();
    let gpu = gpu_titan_xp().total_latency();
    let mut out = String::from("Figure 15: Total latency on Inception v3 inference\n");
    let _ = writeln!(out, "CPU (Xeon E5):   {:.2} ms", cpu.as_millis_f64());
    let _ = writeln!(out, "GPU (Titan Xp):  {:.2} ms", gpu.as_millis_f64());
    let _ = writeln!(out, "Neural Cache:    {:.2} ms", nc.as_millis_f64());
    let _ = writeln!(
        out,
        "speedup: {:.1}x over CPU (paper: 18.3x), {:.1}x over GPU (paper: 7.7x)",
        cpu / nc,
        gpu / nc
    );
    out
}

/// Figure 16 — throughput vs batch size for the three systems.
#[must_use]
pub fn fig16() -> String {
    let model = inception_v3();
    let config = base_config();
    let batches = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    let nc = throughput_sweep(&config, &model, &batches);
    let cpu = cpu_xeon_e5();
    let gpu = gpu_titan_xp();
    let mut out = String::from("Figure 16: Throughput (inferences/sec) with varying batch size\n");
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>10} {:>13}",
        "batch", "CPU", "GPU", "Neural Cache"
    );
    for (i, &b) in batches.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>6} {:>10.1} {:>10.1} {:>13.1}",
            b,
            cpu.throughput(b),
            gpu.throughput(b),
            nc[i].throughput_ips
        );
    }
    let peak = nc.last().expect("non-empty sweep");
    let _ = writeln!(
        out,
        "peak: {:.0} inf/s = {:.1}x GPU, {:.1}x CPU (paper: 604 = 2.2x GPU, 12.4x CPU)",
        peak.throughput_ips,
        peak.throughput_ips / gpu.peak_throughput(),
        peak.throughput_ips / cpu.peak_throughput()
    );
    out
}

/// Sparsity extension (Section VII future work): weight-sparsity analysis
/// of Inception v3, the bit-serial cycle savings it could unlock, and the
/// executed dense-vs-pruned comparison of `SparsityMode::SkipZeroRows`
/// (skip fractions computed on the mapper's real lane packing, so the
/// analytical and executed numbers agree).
#[must_use]
pub fn sparsity() -> String {
    sparsity_with(&perf::compare_sparsity(1))
}

/// [`sparsity`] rendered from precomputed dense-vs-pruned comparisons, so
/// callers that also gate on them (`paper_check`) run the pruned
/// simulations once.
#[must_use]
pub fn sparsity_with(comparisons: &[perf::SparsityComparison]) -> String {
    use nc_dnn::inception::inception_v3_with_weights;
    use neural_cache::{CostModel as _, DerivedCostModel};
    let cost = &DerivedCostModel;
    let model = inception_v3_with_weights(1);
    let report = neural_cache::sparsity::analyze(&model);
    let mut out = String::from("Sparsity analysis (paper Section VII future work)\n");
    let _ = writeln!(
        out,
        "weight bit density: {:.3} | oracle skip: {:.1}% | SIMD-feasible skip: {:.1}%",
        1.0 - report.oracle_skip(),
        100.0 * report.oracle_skip(),
        100.0 * report.simd_skip()
    );
    let _ = writeln!(
        out,
        "MAC speedup ({} cost model): oracle (per-lane) {:.2}x | SIMD (all-lanes-zero rows) {:.2}x",
        cost.name(),
        report.oracle_mac_speedup(cost),
        report.simd_mac_speedup(cost)
    );
    let _ = writeln!(
        out,
        "(synthetic dense weights: pruned/quantized-sparse models raise the SIMD number)"
    );

    // Executed dense-vs-pruned comparison: SkipZeroRows on the pruned
    // workloads, bit-identical to dense by construction.
    out.push_str("\nSkipZeroRows execution (dense vs pruned workloads):\n");
    for s in comparisons {
        let _ = writeln!(
            out,
            "{:<24} executed skip {:>5.1}% (predicted {:>5.1}%) | compute cycles {:.2}x | \
             simulated MAC {:.2}x | lockstep spread {:.1}% | bit-identical: {}",
            s.name,
            100.0 * s.executed_skip_fraction,
            100.0 * s.predicted_skip_fraction,
            s.cycle_speedup(),
            s.mac_speedup(),
            100.0 * s.lockstep_spread(),
            s.bit_identical
        );
    }

    // Per-array skip-time variants: uniformly bit-pruned workloads skip the
    // same rounds in every array (zero spread); near-total magnitude
    // pruning differentiates arrays, so lockstep banks forfeit skips.
    use nc_dnn::workload::{prune_conv, random_conv};
    let demo = prune_conv(
        random_conv(
            "spread_demo",
            (3, 3),
            16,
            64,
            1,
            nc_dnn::Padding::Same,
            true,
            9,
        ),
        2,
        0.99,
        9,
    );
    let v = neural_cache::sparsity::conv_skip_variants(&demo);
    let _ = writeln!(
        out,
        "\nskip-time variants (99%-magnitude-pruned 3x3x16x64 conv): per-bank mean {:.1}% | \
         lockstep (max-over-arrays) {:.1}% | spread {:.1} pts",
        100.0 * v.mean,
        100.0 * v.lockstep,
        100.0 * v.spread()
    );
    out
}

/// Activation-sparsity artifact: dynamic input-bit round skipping
/// (ROADMAP's input-activation item) — dense vs ReLU-sparse executed
/// cycles under `SkipZeroInputs`/`SkipBoth`, the per-round wired-NOR
/// detect charge, and the break-even on dense activations.
#[must_use]
pub fn activation_sparsity() -> String {
    activation_sparsity_with(&perf::compare_activation_sparsity(1))
}

/// Bit-budget advisor artifact: per-workload operand trims proven by the
/// value-range pass, the bit-exactness gate, and the resulting MAC/reduce
/// cycle savings.
#[must_use]
pub fn advisor() -> String {
    advisor_with(&perf::compare_advisor())
}

/// [`advisor`] rendered from precomputed comparisons.
#[must_use]
pub fn advisor_with(comparisons: &[perf::AdvisorComparison]) -> String {
    let mut out = String::from(
        "Bit-budget advisor (value-range-proven operand trims, bit-exact by certificate)\n",
    );
    for a in comparisons {
        let _ = writeln!(
            out,
            "{:<20} convs {:>3} (trimmed {:>3}) | bits trimmed {:>4} | cycles saved \
             {:>12}/{:>12} ({:>5.1}%) | certified: {} | bit-identical: {}",
            a.name,
            a.convs,
            a.trimmed_convs,
            a.trimmed_bits,
            a.saved_cycles,
            a.governed_cycles,
            100.0 * a.cycle_reduction(),
            a.certified_sound,
            a.bit_identical
        );
    }
    let _ = writeln!(
        out,
        "(saved/governed = trimmed vs default multiplicand+partial+reduce cycle pool; \
         budgets come from nc-verify's interval certificates, never from executed values)"
    );
    out
}

/// [`activation_sparsity`] rendered from precomputed comparisons.
#[must_use]
pub fn activation_sparsity_with(comparisons: &[perf::ActivationComparison]) -> String {
    let mut out = String::from(
        "Activation sparsity (dynamic input-bit round skipping, 1-cycle wired-NOR detect/round)\n",
    );
    for a in comparisons {
        let _ = writeln!(
            out,
            "{:<24} input skip {:>5.1}% (predicted {:>5.1}%) | compute cycles {:.2}x | \
             net MAC {:.2}x (SkipBoth {:.2}x) | detects {} | bit-identical: {}",
            a.name,
            100.0 * a.executed_input_skip_fraction,
            100.0 * a.predicted_input_skip_fraction,
            a.cycle_speedup(),
            a.mac_speedup(),
            a.mac_speedup_both(),
            a.detect_cycles,
            a.bit_identical
        );
    }
    let _ = writeln!(
        out,
        "(net = after the per-round detect charge; the dense-activation row shows the \
         break-even's overhead side)"
    );
    out
}

/// Serving-under-load artifact: the `nc-serve` discrete-event simulator's
/// offered-load sweep and trace/policy matrix (see [`serving`]), run on the
/// engine selected by [`set_threads`].
#[must_use]
pub fn serving_under_load() -> String {
    let threads = ENGINE
        .get_or_init(|| ExecutionEngine::Sequential)
        .threads()
        .max(2);
    serving::render_text(&serving::run_serving_bench(threads))
}

/// Section I/III headline numbers: ALU slots, peak TOP/s, area overheads.
#[must_use]
pub fn headlines() -> String {
    let g = nc_geometry::CacheGeometry::xeon_e5_2697_v3();
    let system = NeuralCache::new(base_config());
    let mut out = String::from("Headline numbers\n");
    let _ = writeln!(
        out,
        "bit-serial ALU slots: {} (paper: 1,146,880)",
        g.alu_slots()
    );
    let _ = writeln!(
        out,
        "8KB arrays: {} ({} per slice) | compute arrays: {}",
        g.total_arrays(),
        g.arrays_per_slice(),
        g.compute_arrays()
    );
    let _ = writeln!(
        out,
        "peak throughput at 204-cycle 8-bit MAC: {:.1} TOP/s (paper: 28 TOP/s at 22 nm)",
        g.peak_ops_per_sec(204, system.config().timings.compute_freq_hz) / 1e12
    );
    let m = AreaModel::paper_28nm();
    let _ = writeln!(
        out,
        "area overhead: {:.1}% per array, {:.2}% of a 70%-cache die",
        100.0 * m.array_overhead_fraction(),
        100.0 * m.die_overhead_fraction(0.7)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_artifact_renders() {
        for (name, text) in [
            ("table1", table1()),
            ("table2", table2()),
            ("table3", table3()),
            ("table4", table4()),
            ("fig2", fig2()),
            ("fig4_6", fig4_6()),
            ("fig12", fig12()),
            ("fig13", fig13()),
            ("fig14", fig14()),
            ("fig15", fig15()),
            ("fig16", fig16()),
            ("headlines", headlines()),
            ("activation_sparsity", activation_sparsity()),
            ("advisor", advisor()),
            ("serving", serving_under_load()),
        ] {
            assert!(text.lines().count() >= 3, "{name} too short:\n{text}");
        }
    }

    #[test]
    fn fig15_reports_speedups_over_both_baselines() {
        let text = fig15();
        assert!(text.contains("CPU"));
        assert!(text.contains("GPU"));
        assert!(text.contains("speedup"));
    }

    #[test]
    fn fig2_truth_table_is_correct() {
        let text = fig2();
        assert!(text.contains("BL=AND"));
        // Only the A=1,B=1 column has AND=1; only A=0,B=0 has NOR=1.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].trim().starts_with("0   0   0 |       0       1"));
        assert!(lines[5].trim().starts_with("3   1   1 |       1       0"));
    }
}
