//! Host wall-time measurement of the functional executor under the
//! Sequential vs Threaded execution engines **and** the Dense vs
//! `SkipZeroRows` sparsity modes, emitted as machine-readable JSON
//! (`BENCH_functional.json`) so CI can track the perf trajectory of the
//! simulator per PR.
//!
//! The workloads are the functional-executor proxies for the paper's
//! Inception v3 evaluation: `mini_inception` (one block of every Inception
//! family — the full 299x299 network is out of reach for a bit-serial
//! simulation in CI), the Inception stem-slice convolution, and `tiny_cnn`;
//! the sparsity section runs `pruned_inception` and the pruned single-conv
//! cross-check model. Every comparison also *verifies* its invariant: the
//! threaded run must be bit-identical to the sequential one with identical
//! cycle counts, and the skipping run must be bit-identical to dense with
//! its executed skip fraction agreeing with the `sparsity::analyze`
//! prediction.

use std::fmt::Write as _;
use std::time::Instant;

use nc_dnn::workload::{
    mini_inception, pruned_conv_model, pruned_inception, random_conv, random_input,
    relu_sparse_conv_model, relu_sparse_input, relu_sparse_mini, single_conv_model, tiny_cnn,
};
use nc_dnn::{Model, Padding, QTensor, Shape};
use neural_cache::functional::{self, run_model_configured, FunctionalResult};
use neural_cache::sparsity::activation_profile;
use neural_cache::{
    time_inference, time_inference_with_profile, ExecutionEngine, SparsityMode, SystemConfig,
};

/// Sequential-vs-threaded wall-time comparison of one workload.
#[derive(Debug, Clone)]
pub struct EngineComparison {
    /// Workload name.
    pub name: String,
    /// Best-of-`reps` sequential wall time, milliseconds.
    pub sequential_ms: f64,
    /// Best-of-`reps` threaded wall time, milliseconds.
    pub threaded_ms: f64,
    /// `sequential_ms / threaded_ms`.
    pub speedup: f64,
    /// Whether the threaded output tensor matched the sequential one
    /// byte-for-byte.
    pub bit_identical: bool,
    /// Whether the threaded cycle counters matched the sequential ones.
    pub cycles_identical: bool,
    /// Simulated compute cycles of the workload (engine-independent).
    pub compute_cycles: u64,
}

impl EngineComparison {
    /// Whether the threaded backend reproduced the sequential results
    /// exactly (the acceptance gate for the comparison).
    #[must_use]
    pub fn verified(&self) -> bool {
        self.bit_identical && self.cycles_identical
    }
}

fn proxy_workloads() -> Vec<(String, Model, QTensor)> {
    let mut workloads = Vec::new();
    let mini = mini_inception(2018);
    let mini_input = random_input(mini.input_shape, mini.input_quant, 7);
    workloads.push(("inception_v3_proxy_mini".to_owned(), mini, mini_input));

    // Conv2d_1a_3x3's channel geometry (3 -> 32, 3x3 stride-2 VALID) at
    // reduced spatial size.
    let stem = single_conv_model(
        random_conv("stem", (3, 3), 3, 32, 2, Padding::Valid, true, 2018),
        Shape::new(11, 11, 3),
    );
    let stem_input = random_input(stem.input_shape, stem.input_quant, 8);
    workloads.push(("inception_stem_slice".to_owned(), stem, stem_input));

    let tiny = tiny_cnn(2018);
    let tiny_input = random_input(tiny.input_shape, tiny.input_quant, 9);
    workloads.push(("tiny_cnn".to_owned(), tiny, tiny_input));
    workloads
}

fn time_runs(
    model: &Model,
    input: &QTensor,
    engine: ExecutionEngine,
    reps: usize,
) -> (FunctionalResult, f64) {
    let mut result = None;
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = functional::run_model_with(model, input, engine).expect("functional run");
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        result = Some(r);
    }
    (result.expect("at least one rep"), best_ms)
}

/// Runs every proxy workload under both engines (best of `reps` wall
/// times) and verifies the threaded results against the sequential ones.
#[must_use]
pub fn compare_engines(threads: usize, reps: usize) -> Vec<EngineComparison> {
    let threaded = ExecutionEngine::from_threads(threads);
    proxy_workloads()
        .into_iter()
        .map(|(name, model, input)| {
            let (seq, sequential_ms) = time_runs(&model, &input, ExecutionEngine::Sequential, reps);
            let (thr, threaded_ms) = time_runs(&model, &input, threaded, reps);
            EngineComparison {
                name,
                sequential_ms,
                threaded_ms,
                speedup: sequential_ms / threaded_ms,
                bit_identical: seq.output.data() == thr.output.data()
                    && seq.sublayers == thr.sublayers,
                cycles_identical: seq.cycles == thr.cycles,
                compute_cycles: seq.cycles.compute_cycles,
            }
        })
        .collect()
}

/// Dense-vs-SkipZeroRows comparison of one pruned workload: host wall
/// time, simulated cycles, and the predicted-vs-executed skip cross-check.
#[derive(Debug, Clone)]
pub struct SparsityComparison {
    /// Workload name.
    pub name: String,
    /// Best-of-`reps` dense functional wall time, milliseconds.
    pub dense_ms: f64,
    /// Best-of-`reps` skipping functional wall time, milliseconds.
    pub sparse_ms: f64,
    /// Simulated compute cycles of the dense functional run.
    pub dense_compute_cycles: u64,
    /// Simulated compute cycles of the skipping functional run.
    pub sparse_compute_cycles: u64,
    /// Simulated MAC-phase cycles of the timing model, dense mode.
    pub timing_mac_cycles_dense: u64,
    /// Simulated MAC-phase cycles of the timing model, skipping mode
    /// (per-bank FSMs: each array skips independently — the mean variant).
    pub timing_mac_cycles_sparse: u64,
    /// Simulated MAC cycles under the lockstep-bank skip variant (one FSM
    /// steps every bank, so only globally-zero rounds skip; the MAC phase
    /// is the max over arrays). Always `>= timing_mac_cycles_sparse`.
    pub timing_mac_cycles_lockstep: u64,
    /// Multiplier-bit rounds scheduled by the skipping run.
    pub mul_rounds: u64,
    /// Rounds the skipping run elided.
    pub skipped_rounds: u64,
    /// `skipped_rounds / mul_rounds`.
    pub executed_skip_fraction: f64,
    /// `sparsity::analyze` prediction on the mapper's lane packing.
    pub predicted_skip_fraction: f64,
    /// Whether skipping reproduced the dense bytes and records exactly.
    pub bit_identical: bool,
}

impl SparsityComparison {
    /// Tolerance on the predicted-vs-executed agreement: the analysis
    /// weights sub-layers by executed rounds (per-window rounds times
    /// output windows), so both fractions are ratios of the same integer
    /// counts and must agree to floating-point exactness on any model.
    pub const SKIP_FRACTION_TOLERANCE: f64 = 1e-9;

    /// Simulated compute-cycle speedup of skipping (functional executor).
    #[must_use]
    pub fn cycle_speedup(&self) -> f64 {
        self.dense_compute_cycles as f64 / self.sparse_compute_cycles as f64
    }

    /// Simulated MAC-phase speedup of skipping (timing model, per-bank
    /// variant).
    #[must_use]
    pub fn mac_speedup(&self) -> f64 {
        self.timing_mac_cycles_dense as f64 / self.timing_mac_cycles_sparse as f64
    }

    /// Relative MAC-time spread between the skip variants:
    /// `(lockstep - per_bank) / per_bank` — the extra MAC time lockstep
    /// banks pay over per-bank FSMs.
    #[must_use]
    pub fn lockstep_spread(&self) -> f64 {
        if self.timing_mac_cycles_sparse == 0 {
            0.0
        } else {
            (self.timing_mac_cycles_lockstep as f64 - self.timing_mac_cycles_sparse as f64)
                / self.timing_mac_cycles_sparse as f64
        }
    }

    /// The acceptance gate: bit identity plus skip-fraction agreement.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.bit_identical
            && (self.executed_skip_fraction - self.predicted_skip_fraction).abs()
                <= Self::SKIP_FRACTION_TOLERANCE
    }
}

fn pruned_workloads() -> Vec<(String, Model, QTensor)> {
    let pruned = pruned_inception(2018);
    let pruned_input = random_input(pruned.input_shape, pruned.input_quant, 7);
    let single = pruned_conv_model(2018);
    let single_input = random_input(single.input_shape, single.input_quant, 8);
    vec![
        ("pruned_inception".to_owned(), pruned, pruned_input),
        ("pruned_conv_crosscheck".to_owned(), single, single_input),
    ]
}

/// `(per-bank, lockstep)` MAC cycles of the deterministic timing model
/// under `mode` (identical under dense execution).
fn timing_mac_cycles(model: &Model, mode: SparsityMode) -> (u64, u64) {
    let config = SystemConfig::with_sparsity(mode);
    let report = time_inference(&config, model);
    let per_bank = report.layers.iter().map(|l| l.mac_cycles).sum();
    let lockstep = report.layers.iter().map(|l| l.mac_cycles_lockstep).sum();
    (per_bank, lockstep)
}

fn time_sparsity_runs(
    model: &Model,
    input: &QTensor,
    mode: SparsityMode,
    reps: usize,
) -> (FunctionalResult, f64) {
    let mut result = None;
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = run_model_configured(model, input, ExecutionEngine::Sequential, mode)
            .expect("functional run");
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        result = Some(r);
    }
    (result.expect("at least one rep"), best_ms)
}

/// Runs the pruned workloads densely and with round skipping (best of
/// `reps` wall times), verifying bit identity and the analytical skip
/// prediction against the executed counters.
#[must_use]
pub fn compare_sparsity(reps: usize) -> Vec<SparsityComparison> {
    pruned_workloads()
        .into_iter()
        .map(|(name, model, input)| {
            let (dense, dense_ms) = time_sparsity_runs(&model, &input, SparsityMode::Dense, reps);
            let (sparse, sparse_ms) =
                time_sparsity_runs(&model, &input, SparsityMode::SkipZeroRows, reps);
            let predicted = neural_cache::sparsity::analyze(&model).simd_skip();
            let (dense_mac, _) = timing_mac_cycles(&model, SparsityMode::Dense);
            let (sparse_mac, lockstep_mac) = timing_mac_cycles(&model, SparsityMode::SkipZeroRows);
            SparsityComparison {
                name,
                dense_ms,
                sparse_ms,
                dense_compute_cycles: dense.cycles.compute_cycles,
                sparse_compute_cycles: sparse.cycles.compute_cycles,
                timing_mac_cycles_dense: dense_mac,
                timing_mac_cycles_sparse: sparse_mac,
                timing_mac_cycles_lockstep: lockstep_mac,
                mul_rounds: sparse.cycles.mul_rounds,
                skipped_rounds: sparse.cycles.skipped_rounds,
                executed_skip_fraction: sparse.cycles.skip_fraction(),
                predicted_skip_fraction: predicted,
                bit_identical: dense.output.data() == sparse.output.data()
                    && dense.sublayers == sparse.sublayers,
            }
        })
        .collect()
}

/// What a dynamic-sparsity workload is expected to demonstrate — the two
/// sides of the detect-overhead break-even.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationExpectation {
    /// ReLU-sparse activations: the elided rounds must repay the 1-cycle
    /// per-round detect with room to spare — a **net** MAC-phase speedup.
    NetSpeedup,
    /// Dense activations: almost nothing skips, so the detect charge must
    /// show up as a MAC-phase *slowdown* (the break-even's other side).
    Overhead,
}

/// Dense-vs-dynamic comparison of one workload under the input-activation
/// skip modes: functional cycles and counters for `SkipZeroInputs` and
/// `SkipBoth`, the `activation_profile` cross-check, and the timing-model
/// MAC phase priced with the measured profile.
#[derive(Debug, Clone)]
pub struct ActivationComparison {
    /// Workload name.
    pub name: String,
    /// Which break-even side this workload demonstrates.
    pub expectation: ActivationExpectation,
    /// Best-of-`reps` dense functional wall time, milliseconds.
    pub dense_ms: f64,
    /// Best-of-`reps` `SkipZeroInputs` functional wall time, milliseconds.
    pub input_ms: f64,
    /// Simulated compute cycles of the dense functional run.
    pub dense_compute_cycles: u64,
    /// Simulated compute cycles under `SkipZeroInputs` (detects included).
    pub input_compute_cycles: u64,
    /// Simulated compute cycles under `SkipBoth`.
    pub both_compute_cycles: u64,
    /// Wired-NOR detect cycles the `SkipZeroInputs` run charged.
    pub detect_cycles: u64,
    /// Multiplier-bit rounds scheduled.
    pub mul_rounds: u64,
    /// Input-bit rounds the detect elided.
    pub input_rounds_skipped: u64,
    /// `input_rounds_skipped / mul_rounds`.
    pub executed_input_skip_fraction: f64,
    /// `sparsity::activation_profile` prediction on the same input.
    pub predicted_input_skip_fraction: f64,
    /// Timing-model MAC cycles, dense mode.
    pub timing_mac_cycles_dense: u64,
    /// Timing-model MAC cycles, `SkipZeroInputs` with the measured profile
    /// applied (detect overhead charged).
    pub timing_mac_cycles_input: u64,
    /// Timing-model MAC cycles, `SkipBoth` with the measured profile.
    pub timing_mac_cycles_both: u64,
    /// Whether both dynamic modes reproduced the dense bytes and records.
    pub bit_identical: bool,
}

impl ActivationComparison {
    /// Simulated compute-cycle speedup of `SkipZeroInputs` over dense in
    /// the functional executor (below 1.0 when detects outweigh skips).
    #[must_use]
    pub fn cycle_speedup(&self) -> f64 {
        self.dense_compute_cycles as f64 / self.input_compute_cycles as f64
    }

    /// Net timing-model MAC-phase speedup of `SkipZeroInputs`, detect
    /// overhead included.
    #[must_use]
    pub fn mac_speedup(&self) -> f64 {
        self.timing_mac_cycles_dense as f64 / self.timing_mac_cycles_input as f64
    }

    /// Net timing-model MAC-phase speedup of `SkipBoth`.
    #[must_use]
    pub fn mac_speedup_both(&self) -> f64 {
        self.timing_mac_cycles_dense as f64 / self.timing_mac_cycles_both as f64
    }

    /// The acceptance gate: bit identity, exact predicted-vs-executed
    /// agreement, one detect per scheduled round, and the workload's
    /// break-even expectation (net speedup for ReLU-sparse activations,
    /// visible overhead for dense ones).
    #[must_use]
    pub fn verified(&self) -> bool {
        let exact = (self.executed_input_skip_fraction - self.predicted_input_skip_fraction).abs()
            <= SparsityComparison::SKIP_FRACTION_TOLERANCE;
        let detect_per_round = self.detect_cycles == self.mul_rounds;
        let expectation = match self.expectation {
            ActivationExpectation::NetSpeedup => {
                self.mac_speedup() > 1.0 && self.mac_speedup_both() >= self.mac_speedup() - 1e-12
            }
            ActivationExpectation::Overhead => {
                self.timing_mac_cycles_input > self.timing_mac_cycles_dense
            }
        };
        self.bit_identical && exact && detect_per_round && expectation
    }
}

fn activation_workloads() -> Vec<(String, ActivationExpectation, Model, QTensor)> {
    // ReLU-sparse single conv: 70% exact zeros, low-magnitude survivors —
    // the regime the tag-latch detect exists for.
    let conv = relu_sparse_conv_model(2018);
    let sparse_in = relu_sparse_input(conv.input_shape, 0.7, 2, 7);
    // The same conv fed fully dense activations: the break-even's far side
    // (VALID padding, so no padding zeros rescue it).
    let dense_in = relu_sparse_input(conv.input_shape, 0.0, 8, 7);
    // Multi-layer: mini-Inception consuming a ReLU-sparse input; interior
    // activations re-densify, so this measures the whole-network blend.
    let mini = relu_sparse_mini(2018);
    let mini_in = relu_sparse_input(mini.input_shape, 0.6, 3, 8);
    vec![
        (
            "relu_sparse_conv".to_owned(),
            ActivationExpectation::NetSpeedup,
            conv.clone(),
            sparse_in,
        ),
        (
            "dense_acts_break_even".to_owned(),
            ActivationExpectation::Overhead,
            conv,
            dense_in,
        ),
        (
            "relu_sparse_mini".to_owned(),
            ActivationExpectation::NetSpeedup,
            mini,
            mini_in,
        ),
    ]
}

/// Timing-model MAC cycles of `model` under `mode`, priced for the
/// measured activation `profile` of one input.
fn timing_mac_cycles_profiled(
    model: &Model,
    mode: SparsityMode,
    profile: &neural_cache::ActivationProfile,
) -> u64 {
    let config = SystemConfig::with_sparsity(mode);
    let report = time_inference_with_profile(&config, model, profile);
    report.layers.iter().map(|l| l.mac_cycles).sum()
}

/// Runs the dynamic-sparsity workloads densely and under both input-skip
/// modes (best of `reps` wall times), verifying bit identity, the
/// per-round detect charge, and the `activation_profile` prediction
/// against the executed counters.
#[must_use]
pub fn compare_activation_sparsity(reps: usize) -> Vec<ActivationComparison> {
    activation_workloads()
        .into_iter()
        .map(|(name, expectation, model, input)| {
            let (dense, dense_ms) = time_sparsity_runs(&model, &input, SparsityMode::Dense, reps);
            let (inputs, input_ms) =
                time_sparsity_runs(&model, &input, SparsityMode::SkipZeroInputs, reps);
            let (both, _) = time_sparsity_runs(&model, &input, SparsityMode::SkipBoth, reps);
            let profile = activation_profile(&model, &input);
            let (dense_mac, _) = timing_mac_cycles(&model, SparsityMode::Dense);
            ActivationComparison {
                name,
                expectation,
                dense_ms,
                input_ms,
                dense_compute_cycles: dense.cycles.compute_cycles,
                input_compute_cycles: inputs.cycles.compute_cycles,
                both_compute_cycles: both.cycles.compute_cycles,
                detect_cycles: inputs.cycles.detect_cycles,
                mul_rounds: inputs.cycles.mul_rounds,
                input_rounds_skipped: inputs.cycles.input_rounds_skipped,
                executed_input_skip_fraction: inputs.cycles.input_skip_fraction(),
                predicted_input_skip_fraction: profile.input_skip(),
                timing_mac_cycles_dense: dense_mac,
                timing_mac_cycles_input: timing_mac_cycles_profiled(
                    &model,
                    SparsityMode::SkipZeroInputs,
                    &profile,
                ),
                timing_mac_cycles_both: timing_mac_cycles_profiled(
                    &model,
                    SparsityMode::SkipBoth,
                    &profile,
                ),
                bit_identical: dense.output.data() == inputs.output.data()
                    && dense.sublayers == inputs.sublayers
                    && dense.output.data() == both.output.data()
                    && dense.sublayers == both.sublayers,
            }
        })
        .collect()
}

/// Bit-budget advisor comparison of one weighted workload: the value-range
/// certificate's trimmed operand widths, the bit-exactness gate (the
/// reference executor re-run with every budget masked to the advised
/// widths must reproduce the untrimmed run exactly), and the MAC/reduce
/// cycle savings the trims buy under the derived cost model.
#[derive(Debug, Clone)]
pub struct AdvisorComparison {
    /// Workload name.
    pub name: String,
    /// Convolution sub-layers certified.
    pub convs: usize,
    /// Sub-layers whose advised budget trims at least one bit.
    pub trimmed_convs: usize,
    /// Total operand bits trimmed across all sub-layers.
    pub trimmed_bits: u64,
    /// Budget-governed cycles of the default allocation: the lane
    /// accumulate, multiply, and in-array reduction cycles the operand
    /// widths control (the pool the savings come out of).
    pub governed_cycles: u64,
    /// Cycles the advised trims save out of `governed_cycles`.
    pub saved_cycles: u64,
    /// Whether every advised budget passed the static soundness checks
    /// (no V021/V026/V027 against the advised widths).
    pub certified_sound: bool,
    /// Whether the trimmed run reproduced the untrimmed outputs, records
    /// and requant decisions byte-for-byte.
    pub bit_identical: bool,
}

impl AdvisorComparison {
    /// Fraction of the budget-governed MAC/reduce cycles the trims save.
    #[must_use]
    pub fn cycle_reduction(&self) -> f64 {
        if self.governed_cycles == 0 {
            0.0
        } else {
            self.saved_cycles as f64 / self.governed_cycles as f64
        }
    }

    /// The acceptance gate: a clean static certificate and an exactly
    /// bit-identical trimmed run (`saved_cycles` is unsigned, so the cycle
    /// delta is non-negative by construction).
    #[must_use]
    pub fn verified(&self) -> bool {
        self.certified_sound && self.bit_identical
    }
}

fn advisor_workloads() -> Vec<(String, Model, QTensor)> {
    let tiny = tiny_cnn(2018);
    let tiny_input = random_input(tiny.input_shape, tiny.input_quant, 9);
    let pruned = pruned_inception(2018);
    let pruned_input = random_input(pruned.input_shape, pruned.input_quant, 7);
    let mini = relu_sparse_mini(2018);
    let mini_input = random_input(mini.input_shape, mini.input_quant, 8);
    vec![
        ("tiny_cnn".to_owned(), tiny, tiny_input),
        ("pruned_inception".to_owned(), pruned, pruned_input),
        ("relu_sparse_mini".to_owned(), mini, mini_input),
    ]
}

/// Runs the value-range pass, derives the advised budgets, replays the
/// reference executor with every operand masked to the advised widths, and
/// verifies bit-exactness plus the static soundness certificate.
#[must_use]
pub fn compare_advisor() -> Vec<AdvisorComparison> {
    use nc_dnn::reference::{run_model, run_model_trimmed, AccTrim};
    use nc_verify::range;
    use neural_cache::mapping::{plan_model, BitBudget};
    use neural_cache::timing::advised_trim_savings;
    use neural_cache::UnitPlan;
    use std::collections::HashMap;

    let geometry = SystemConfig::xeon_e5_2697_v3().geometry;
    advisor_workloads()
        .into_iter()
        .map(|(name, model, input)| {
            let ranges = range::model_ranges(&model);
            let plans = plan_model(&model, &geometry);
            let mappings: HashMap<&str, &neural_cache::mapping::ConvMapping> = plans
                .iter()
                .flat_map(|p| &p.units)
                .filter_map(|u| match u {
                    UnitPlan::Conv(c) => Some((c.name.as_str(), c)),
                    UnitPlan::Pool(_) => None,
                })
                .collect();

            let mut certified_sound = true;
            let mut trims: HashMap<String, AccTrim> = HashMap::new();
            let mut trimmed_bits = 0u64;
            let mut trimmed_convs = 0usize;
            let mut governed_cycles = 0u64;
            let mut saved_cycles = 0u64;
            let zero_budget = |n: &str| BitBudget {
                name: n.to_owned(),
                mult_bits: 0,
                partial_bits: 0,
                reduce_bits: 0,
            };
            for r in &ranges.convs {
                let advised = r.advise();
                certified_sound &= range::check_widths(&r.name, r, &advised).is_empty();
                trimmed_bits += advised.trimmed_bits();
                trimmed_convs += usize::from(!advised.is_default());
                let mapping = mappings
                    .get(r.name.as_str())
                    .unwrap_or_else(|| panic!("{}: no conv plan", r.name));
                governed_cycles += advised_trim_savings(mapping, &zero_budget(&r.name));
                saved_cycles += advised_trim_savings(mapping, &advised);
                trims.insert(
                    r.name.clone(),
                    AccTrim {
                        chunk: r.lane_taps,
                        partial_bits: advised.partial_bits,
                        reduce_bits: advised.reduce_bits,
                        mult_bits: advised.mult_bits,
                    },
                );
            }

            let baseline = run_model(&model, &input);
            let trimmed = run_model_trimmed(&model, &input, &|n| trims.get(n).copied());
            AdvisorComparison {
                name,
                convs: ranges.convs.len(),
                trimmed_convs,
                trimmed_bits,
                governed_cycles,
                saved_cycles,
                certified_sound,
                bit_identical: baseline == trimmed,
            }
        })
        .collect()
}

/// Renders the comparisons as the `BENCH_functional.json` document CI
/// uploads as a workflow artifact.
#[must_use]
pub fn render_json(comparisons: &[EngineComparison], threads: usize) -> String {
    render_json_full(comparisons, &[], threads)
}

/// [`render_json`] with the dense-vs-pruned sparsity section included.
#[must_use]
pub fn render_json_full(
    comparisons: &[EngineComparison],
    sparsity: &[SparsityComparison],
    threads: usize,
) -> String {
    render_json_all(comparisons, sparsity, &[], &[], None, None, threads)
}

/// The full `BENCH_functional.json` document: engine comparisons, the
/// weight-sparsity section, the activation-sparsity section, the
/// bit-budget advisor section, and (when given) the `nc-serve` serving
/// section and the telemetry reconciliation/utilization section.
#[must_use]
pub fn render_json_all(
    comparisons: &[EngineComparison],
    sparsity: &[SparsityComparison],
    activation: &[ActivationComparison],
    advisor: &[AdvisorComparison],
    serving: Option<&crate::serving::ServingBench>,
    telemetry: Option<&crate::telemetry::TelemetryReport>,
    threads: usize,
) -> String {
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"BENCH_functional\",");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"host_parallelism\": {host},");
    out.push_str("  \"workloads\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", c.name);
        let _ = writeln!(out, "      \"sequential_ms\": {:.3},", c.sequential_ms);
        let _ = writeln!(out, "      \"threaded_ms\": {:.3},", c.threaded_ms);
        let _ = writeln!(out, "      \"speedup\": {:.3},", c.speedup);
        let _ = writeln!(out, "      \"bit_identical\": {},", c.bit_identical);
        let _ = writeln!(out, "      \"cycles_identical\": {},", c.cycles_identical);
        let _ = writeln!(out, "      \"compute_cycles\": {}", c.compute_cycles);
        let comma = if i + 1 < comparisons.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    if sparsity.is_empty()
        && activation.is_empty()
        && advisor.is_empty()
        && serving.is_none()
        && telemetry.is_none()
    {
        out.push_str("  ]\n}\n");
        return out;
    }
    out.push_str("  ],\n  \"sparsity\": [\n");
    for (i, s) in sparsity.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
        let _ = writeln!(out, "      \"dense_ms\": {:.3},", s.dense_ms);
        let _ = writeln!(out, "      \"sparse_ms\": {:.3},", s.sparse_ms);
        let _ = writeln!(
            out,
            "      \"dense_compute_cycles\": {},",
            s.dense_compute_cycles
        );
        let _ = writeln!(
            out,
            "      \"sparse_compute_cycles\": {},",
            s.sparse_compute_cycles
        );
        let _ = writeln!(out, "      \"cycle_speedup\": {:.3},", s.cycle_speedup());
        let _ = writeln!(
            out,
            "      \"timing_mac_cycles_dense\": {},",
            s.timing_mac_cycles_dense
        );
        let _ = writeln!(
            out,
            "      \"timing_mac_cycles_sparse\": {},",
            s.timing_mac_cycles_sparse
        );
        let _ = writeln!(
            out,
            "      \"timing_mac_cycles_lockstep\": {},",
            s.timing_mac_cycles_lockstep
        );
        let _ = writeln!(out, "      \"mac_speedup\": {:.3},", s.mac_speedup());
        let _ = writeln!(
            out,
            "      \"lockstep_spread\": {:.4},",
            s.lockstep_spread()
        );
        let _ = writeln!(out, "      \"mul_rounds\": {},", s.mul_rounds);
        let _ = writeln!(out, "      \"skipped_rounds\": {},", s.skipped_rounds);
        let _ = writeln!(
            out,
            "      \"executed_skip_fraction\": {:.6},",
            s.executed_skip_fraction
        );
        let _ = writeln!(
            out,
            "      \"predicted_skip_fraction\": {:.6},",
            s.predicted_skip_fraction
        );
        let _ = writeln!(out, "      \"bit_identical\": {}", s.bit_identical);
        let comma = if i + 1 < sparsity.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]");
    if !activation.is_empty() {
        out.push_str(",\n  \"activation_sparsity\": [\n");
        for (i, a) in activation.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", a.name);
            let _ = writeln!(
                out,
                "      \"expectation\": \"{}\",",
                match a.expectation {
                    ActivationExpectation::NetSpeedup => "net-speedup",
                    ActivationExpectation::Overhead => "overhead",
                }
            );
            let _ = writeln!(out, "      \"dense_ms\": {:.3},", a.dense_ms);
            let _ = writeln!(out, "      \"input_ms\": {:.3},", a.input_ms);
            let _ = writeln!(
                out,
                "      \"dense_compute_cycles\": {},",
                a.dense_compute_cycles
            );
            let _ = writeln!(
                out,
                "      \"input_compute_cycles\": {},",
                a.input_compute_cycles
            );
            let _ = writeln!(
                out,
                "      \"both_compute_cycles\": {},",
                a.both_compute_cycles
            );
            let _ = writeln!(out, "      \"cycle_speedup\": {:.3},", a.cycle_speedup());
            let _ = writeln!(out, "      \"detect_cycles\": {},", a.detect_cycles);
            let _ = writeln!(out, "      \"mul_rounds\": {},", a.mul_rounds);
            let _ = writeln!(
                out,
                "      \"input_rounds_skipped\": {},",
                a.input_rounds_skipped
            );
            let _ = writeln!(
                out,
                "      \"executed_input_skip_fraction\": {:.6},",
                a.executed_input_skip_fraction
            );
            let _ = writeln!(
                out,
                "      \"predicted_input_skip_fraction\": {:.6},",
                a.predicted_input_skip_fraction
            );
            let _ = writeln!(
                out,
                "      \"timing_mac_cycles_dense\": {},",
                a.timing_mac_cycles_dense
            );
            let _ = writeln!(
                out,
                "      \"timing_mac_cycles_input\": {},",
                a.timing_mac_cycles_input
            );
            let _ = writeln!(
                out,
                "      \"timing_mac_cycles_both\": {},",
                a.timing_mac_cycles_both
            );
            let _ = writeln!(out, "      \"net_mac_speedup\": {:.3},", a.mac_speedup());
            let _ = writeln!(
                out,
                "      \"net_mac_speedup_both\": {:.3},",
                a.mac_speedup_both()
            );
            let _ = writeln!(out, "      \"bit_identical\": {}", a.bit_identical);
            let comma = if i + 1 < activation.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  ]");
    }
    if !advisor.is_empty() {
        out.push_str(",\n  \"advisor\": [\n");
        for (i, a) in advisor.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", a.name);
            let _ = writeln!(out, "      \"convs\": {},", a.convs);
            let _ = writeln!(out, "      \"trimmed_convs\": {},", a.trimmed_convs);
            let _ = writeln!(out, "      \"trimmed_bits\": {},", a.trimmed_bits);
            let _ = writeln!(out, "      \"governed_cycles\": {},", a.governed_cycles);
            let _ = writeln!(out, "      \"saved_cycles\": {},", a.saved_cycles);
            let _ = writeln!(
                out,
                "      \"cycle_reduction\": {:.4},",
                a.cycle_reduction()
            );
            let _ = writeln!(out, "      \"certified_sound\": {},", a.certified_sound);
            let _ = writeln!(out, "      \"bit_identical\": {}", a.bit_identical);
            let comma = if i + 1 < advisor.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  ]");
    }
    if let Some(bench) = serving {
        out.push_str(",\n");
        out.push_str(&crate::serving::render_json_section(bench));
    }
    if let Some(report) = telemetry {
        out.push_str(",\n");
        out.push_str(&crate::telemetry::render_json_section(report));
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_verify_and_render() {
        let comps = compare_engines(2, 1);
        assert_eq!(comps.len(), 3);
        for c in &comps {
            assert!(c.verified(), "{} failed verification", c.name);
            assert!(c.sequential_ms > 0.0 && c.threaded_ms > 0.0);
            assert!(c.compute_cycles > 10_000, "{} did too little work", c.name);
        }
        let json = render_json(&comps, 2);
        assert!(json.contains("\"benchmark\": \"BENCH_functional\""));
        assert!(json.contains("\"inception_v3_proxy_mini\""));
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.ends_with("}\n"));
        // Exactly one trailing element without a comma.
        assert_eq!(json.matches("},").count(), 2);
    }

    #[test]
    fn sparsity_comparisons_verify_and_render() {
        let comps = compare_sparsity(1);
        assert_eq!(comps.len(), 2);
        for s in &comps {
            assert!(s.verified(), "{} failed verification", s.name);
            assert!(s.bit_identical, "{} diverged from dense", s.name);
            assert!(s.skipped_rounds > 0, "{} elided nothing", s.name);
            assert!(
                s.cycle_speedup() > 1.2,
                "{}: compute-cycle speedup {:.2}",
                s.name,
                s.cycle_speedup()
            );
            assert!(
                s.mac_speedup() >= 1.3,
                "{}: simulated MAC speedup {:.2} below the pruned target",
                s.name,
                s.mac_speedup()
            );
        }
        for s in &comps {
            assert!(
                (s.executed_skip_fraction - s.predicted_skip_fraction).abs() < 1e-12,
                "{}: predicted-vs-executed must agree exactly (round-weighted analysis)",
                s.name
            );
        }

        let engines = compare_engines(2, 1);
        let json = render_json_full(&engines, &comps, 2);
        assert!(json.contains("\"sparsity\": ["));
        assert!(json.contains("\"pruned_inception\""));
        assert!(json.contains("\"executed_skip_fraction\""));
        assert!(json.contains("\"timing_mac_cycles_dense\""));
        assert!(json.ends_with("}\n"));
        // The sparsity-free rendering stays backward compatible.
        assert!(!render_json(&engines, 2).contains("\"sparsity\""));
    }

    #[test]
    fn activation_comparisons_verify_and_render() {
        let comps = compare_activation_sparsity(1);
        assert_eq!(comps.len(), 3);
        for a in &comps {
            assert!(a.verified(), "{} failed verification", a.name);
            assert!(a.bit_identical, "{} diverged from dense", a.name);
            assert_eq!(a.detect_cycles, a.mul_rounds, "{}", a.name);
        }
        let sparse = comps
            .iter()
            .find(|a| a.name == "relu_sparse_conv")
            .expect("relu workload present");
        assert!(
            sparse.mac_speedup() > 1.3,
            "ReLU-sparse net MAC speedup {:.2} after detect overhead",
            sparse.mac_speedup()
        );
        assert!(sparse.input_rounds_skipped > 0);
        assert!(sparse.cycle_speedup() > 1.0);
        let dense = comps
            .iter()
            .find(|a| a.name == "dense_acts_break_even")
            .expect("break-even workload present");
        assert!(
            dense.mac_speedup() < 1.0,
            "dense activations must show the detect overhead: {:.3}",
            dense.mac_speedup()
        );
        assert!(
            dense.executed_input_skip_fraction < 0.05,
            "dense activations barely skip"
        );

        let engines = compare_engines(2, 1);
        let json = render_json_all(&engines, &[], &comps, &[], None, None, 2);
        assert!(json.contains("\"activation_sparsity\": ["));
        assert!(json.contains("\"relu_sparse_conv\""));
        assert!(json.contains("\"dense_acts_break_even\""));
        assert!(json.contains("\"net_mac_speedup\""));
        assert!(json.contains("\"expectation\": \"overhead\""));
        assert!(json.ends_with("}\n"));
        // Backward-compatible renderings omit the section.
        assert!(!render_json_full(&engines, &[], 2).contains("activation_sparsity"));
    }

    #[test]
    fn advisor_comparisons_verify_and_render() {
        let comps = compare_advisor();
        assert_eq!(comps.len(), 3);
        for a in &comps {
            assert!(
                a.certified_sound,
                "{}: advised budget not certified",
                a.name
            );
            assert!(a.bit_identical, "{}: trimmed run diverged", a.name);
            assert!(a.verified(), "{} failed verification", a.name);
            assert!(a.convs > 0);
        }
        // The proven bounds must trim at least one shipped workload, and
        // every trim must translate into a cycle saving.
        assert!(
            comps.iter().any(|a| a.saved_cycles > 0),
            "no workload saved any cycles"
        );
        for a in &comps {
            assert_eq!(
                a.saved_cycles > 0,
                a.trimmed_bits > 0,
                "{}: trims and savings must agree",
                a.name
            );
            assert!(a.saved_cycles <= a.governed_cycles, "{}", a.name);
        }

        let engines = compare_engines(2, 1);
        let json = render_json_all(&engines, &[], &[], &comps, None, None, 2);
        assert!(json.contains("\"advisor\": ["));
        assert!(json.contains("\"trimmed_bits\""));
        assert!(json.contains("\"cycle_reduction\""));
        assert!(json.contains("\"certified_sound\": true"));
        assert!(json.ends_with("}\n"));
        // Advisor-free renderings omit the section.
        assert!(!render_json_full(&engines, &[], 2).contains("\"advisor\""));
    }
}
