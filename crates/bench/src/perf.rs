//! Host wall-time measurement of the functional executor under the
//! Sequential vs Threaded execution engines, emitted as machine-readable
//! JSON (`BENCH_functional.json`) so CI can track the perf trajectory of
//! the simulator per PR.
//!
//! The workloads are the functional-executor proxies for the paper's
//! Inception v3 evaluation: `mini_inception` (one block of every Inception
//! family — the full 299x299 network is out of reach for a bit-serial
//! simulation in CI), the Inception stem-slice convolution, and `tiny_cnn`.
//! Every comparison also *verifies* the tentpole invariant: the threaded
//! run must be bit-identical to the sequential one with identical cycle
//! counts.

use std::fmt::Write as _;
use std::time::Instant;

use nc_dnn::workload::{mini_inception, random_conv, random_input, single_conv_model, tiny_cnn};
use nc_dnn::{Model, Padding, QTensor, Shape};
use neural_cache::functional::{self, FunctionalResult};
use neural_cache::ExecutionEngine;

/// Sequential-vs-threaded wall-time comparison of one workload.
#[derive(Debug, Clone)]
pub struct EngineComparison {
    /// Workload name.
    pub name: String,
    /// Best-of-`reps` sequential wall time, milliseconds.
    pub sequential_ms: f64,
    /// Best-of-`reps` threaded wall time, milliseconds.
    pub threaded_ms: f64,
    /// `sequential_ms / threaded_ms`.
    pub speedup: f64,
    /// Whether the threaded output tensor matched the sequential one
    /// byte-for-byte.
    pub bit_identical: bool,
    /// Whether the threaded cycle counters matched the sequential ones.
    pub cycles_identical: bool,
    /// Simulated compute cycles of the workload (engine-independent).
    pub compute_cycles: u64,
}

impl EngineComparison {
    /// Whether the threaded backend reproduced the sequential results
    /// exactly (the acceptance gate for the comparison).
    #[must_use]
    pub fn verified(&self) -> bool {
        self.bit_identical && self.cycles_identical
    }
}

fn proxy_workloads() -> Vec<(String, Model, QTensor)> {
    let mut workloads = Vec::new();
    let mini = mini_inception(2018);
    let mini_input = random_input(mini.input_shape, mini.input_quant, 7);
    workloads.push(("inception_v3_proxy_mini".to_owned(), mini, mini_input));

    // Conv2d_1a_3x3's channel geometry (3 -> 32, 3x3 stride-2 VALID) at
    // reduced spatial size.
    let stem = single_conv_model(
        random_conv("stem", (3, 3), 3, 32, 2, Padding::Valid, true, 2018),
        Shape::new(11, 11, 3),
    );
    let stem_input = random_input(stem.input_shape, stem.input_quant, 8);
    workloads.push(("inception_stem_slice".to_owned(), stem, stem_input));

    let tiny = tiny_cnn(2018);
    let tiny_input = random_input(tiny.input_shape, tiny.input_quant, 9);
    workloads.push(("tiny_cnn".to_owned(), tiny, tiny_input));
    workloads
}

fn time_runs(
    model: &Model,
    input: &QTensor,
    engine: ExecutionEngine,
    reps: usize,
) -> (FunctionalResult, f64) {
    let mut result = None;
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = functional::run_model_with(model, input, engine).expect("functional run");
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        result = Some(r);
    }
    (result.expect("at least one rep"), best_ms)
}

/// Runs every proxy workload under both engines (best of `reps` wall
/// times) and verifies the threaded results against the sequential ones.
#[must_use]
pub fn compare_engines(threads: usize, reps: usize) -> Vec<EngineComparison> {
    let threaded = ExecutionEngine::from_threads(threads);
    proxy_workloads()
        .into_iter()
        .map(|(name, model, input)| {
            let (seq, sequential_ms) = time_runs(&model, &input, ExecutionEngine::Sequential, reps);
            let (thr, threaded_ms) = time_runs(&model, &input, threaded, reps);
            EngineComparison {
                name,
                sequential_ms,
                threaded_ms,
                speedup: sequential_ms / threaded_ms,
                bit_identical: seq.output.data() == thr.output.data()
                    && seq.sublayers == thr.sublayers,
                cycles_identical: seq.cycles == thr.cycles,
                compute_cycles: seq.cycles.compute_cycles,
            }
        })
        .collect()
}

/// Renders the comparisons as the `BENCH_functional.json` document CI
/// uploads as a workflow artifact.
#[must_use]
pub fn render_json(comparisons: &[EngineComparison], threads: usize) -> String {
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"BENCH_functional\",");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"host_parallelism\": {host},");
    out.push_str("  \"workloads\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", c.name);
        let _ = writeln!(out, "      \"sequential_ms\": {:.3},", c.sequential_ms);
        let _ = writeln!(out, "      \"threaded_ms\": {:.3},", c.threaded_ms);
        let _ = writeln!(out, "      \"speedup\": {:.3},", c.speedup);
        let _ = writeln!(out, "      \"bit_identical\": {},", c.bit_identical);
        let _ = writeln!(out, "      \"cycles_identical\": {},", c.cycles_identical);
        let _ = writeln!(out, "      \"compute_cycles\": {}", c.compute_cycles);
        let comma = if i + 1 < comparisons.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_verify_and_render() {
        let comps = compare_engines(2, 1);
        assert_eq!(comps.len(), 3);
        for c in &comps {
            assert!(c.verified(), "{} failed verification", c.name);
            assert!(c.sequential_ms > 0.0 && c.threaded_ms > 0.0);
            assert!(c.compute_cycles > 10_000, "{} did too little work", c.name);
        }
        let json = render_json(&comps, 2);
        assert!(json.contains("\"benchmark\": \"BENCH_functional\""));
        assert!(json.contains("\"inception_v3_proxy_mini\""));
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.ends_with("}\n"));
        // Exactly one trailing element without a comma.
        assert_eq!(json.matches("},").count(), 2);
    }
}
