//! Ablation of the DESIGN.md §6 design choice: paper-published cycle
//! constants vs constants derived from the `nc-sram` micro-op sequences.
//! The benchmark reports evaluation throughput for both models, and the
//! setup prints the latency each model predicts so the ablation numbers
//! land in the bench log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_dnn::inception::inception_v3;
use neural_cache::{time_inference, CostModelKind, SystemConfig};

fn bench_ablation(c: &mut Criterion) {
    let model = inception_v3();
    let mut g = c.benchmark_group("cost_model_ablation");
    for kind in [CostModelKind::Paper, CostModelKind::Derived] {
        let mut config = SystemConfig::xeon_e5_2697_v3();
        config.cost = kind;
        let total = time_inference(&config, &model).total();
        println!(
            "[ablation] {} cost model -> Inception v3 latency {total}",
            config.cost.model().name()
        );
        g.bench_with_input(
            BenchmarkId::new("model", config.cost.model().name()),
            &config,
            |b, cfg| {
                b.iter(|| time_inference(cfg, &model));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
