//! Benchmarks of the deterministic simulators that regenerate Figures
//! 13-16 and Tables III-IV: full-network timing evaluation, the mapping
//! planner, the batching sweep and the energy model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nc_dnn::inception::inception_v3;
use neural_cache::{energy_of, plan_model, time_batch, time_inference, SystemConfig};

fn bench_timing(c: &mut Criterion) {
    let model = inception_v3();
    let mut g = c.benchmark_group("timing/inception_v3");
    for mb in [35usize, 45, 60] {
        let config = SystemConfig::with_capacity_mb(mb);
        g.bench_with_input(BenchmarkId::new("capacity_mb", mb), &config, |b, cfg| {
            b.iter(|| time_inference(cfg, &model));
        });
    }
    g.finish();
}

fn bench_planner(c: &mut Criterion) {
    let model = inception_v3();
    let config = SystemConfig::xeon_e5_2697_v3();
    c.bench_function("mapping/plan_inception_v3", |b| {
        b.iter(|| plan_model(&model, &config.geometry));
    });
}

fn bench_batching(c: &mut Criterion) {
    let model = inception_v3();
    let config = SystemConfig::xeon_e5_2697_v3();
    let mut g = c.benchmark_group("batching");
    for batch in [1usize, 16, 256] {
        g.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &n| {
            b.iter(|| time_batch(&config, &model, n));
        });
    }
    g.finish();
}

fn bench_energy(c: &mut Criterion) {
    let model = inception_v3();
    let config = SystemConfig::xeon_e5_2697_v3();
    let report = time_inference(&config, &model);
    c.bench_function("energy/inception_v3", |b| {
        b.iter(|| energy_of(&config, &report));
    });
}

criterion_group!(
    benches,
    bench_timing,
    bench_planner,
    bench_batching,
    bench_energy
);
criterion_main!(benches);
