//! Micro-benchmarks of the bit-serial SRAM operations (Section III): the
//! simulator's throughput for the add/multiply/divide/reduce primitives and
//! the TMU transpose path. These back the paper's bit-serial-throughput
//! argument: one array operation serves 256 lanes at once.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nc_sram::{ComputeArray, Operand, TransposeUnit, COLS};

fn prepared_array() -> ComputeArray {
    let mut arr = ComputeArray::with_zero_row(255).expect("zero row");
    let a = Operand::new(0, 8).expect("operand");
    let b = Operand::new(8, 8).expect("operand");
    for lane in 0..COLS {
        arr.poke_lane(lane, a, (lane as u64 * 37) & 0xFF);
        arr.poke_lane(lane, b, (lane as u64 * 11 + 3) & 0xFF);
    }
    arr
}

fn bench_add(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitserial/add8");
    g.throughput(Throughput::Elements(COLS as u64));
    let a = Operand::new(0, 8).unwrap();
    let b = Operand::new(8, 8).unwrap();
    let sum = Operand::new(16, 9).unwrap();
    g.bench_function("256-lane", |bench| {
        let mut arr = prepared_array();
        bench.iter(|| arr.add(a, b, sum).unwrap());
    });
    g.finish();
}

fn bench_mul(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitserial/mul8");
    g.throughput(Throughput::Elements(COLS as u64));
    let a = Operand::new(0, 8).unwrap();
    let b = Operand::new(8, 8).unwrap();
    let prod = Operand::new(16, 16).unwrap();
    g.bench_function("256-lane", |bench| {
        let mut arr = prepared_array();
        bench.iter(|| arr.mul(a, b, prod).unwrap());
    });
    g.finish();
}

fn bench_div(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitserial/div16by9");
    g.throughput(Throughput::Elements(COLS as u64));
    g.bench_function("256-lane", |bench| {
        let num = Operand::new(0, 16).unwrap();
        let quot = Operand::new(16, 16).unwrap();
        let rem = Operand::new(32, 5).unwrap();
        let trial = Operand::new(37, 5).unwrap();
        let mut arr = ComputeArray::with_zero_row(255).unwrap();
        for lane in 0..COLS {
            arr.poke_lane(lane, num, (lane as u64 * 199) & 0xFFFF);
        }
        bench.iter(|| arr.div_scalar(num, 9, quot, rem, trial).unwrap());
    });
    g.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitserial/reduce256x32");
    g.throughput(Throughput::Elements(COLS as u64));
    g.bench_function("tree", |bench| {
        let v = Operand::new(0, 32).unwrap();
        let s = Operand::new(32, 32).unwrap();
        let mut arr = ComputeArray::with_zero_row(255).unwrap();
        for lane in 0..COLS {
            arr.poke_lane(lane, v, lane as u64);
        }
        bench.iter(|| arr.reduce_sum(v, s, COLS).unwrap());
    });
    g.finish();
}

fn bench_max(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitserial/max8");
    g.throughput(Throughput::Elements(COLS as u64));
    let a = Operand::new(0, 8).unwrap();
    let b = Operand::new(8, 8).unwrap();
    let s = Operand::new(16, 8).unwrap();
    g.bench_function("256-lane", |bench| {
        let mut arr = prepared_array();
        bench.iter(|| arr.max_assign(a, b, s, 250).unwrap());
    });
    g.finish();
}

fn bench_tmu(c: &mut Criterion) {
    let mut g = c.benchmark_group("tmu/transpose256bytes");
    g.throughput(Throughput::Bytes(256));
    g.bench_function("bytes-to-bitslices", |bench| {
        let mut tmu = TransposeUnit::new(8);
        let bytes: Vec<u8> = (0..=255).collect();
        bench.iter(|| tmu.transpose_bytes(&bytes).unwrap());
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_add,
    bench_mul,
    bench_div,
    bench_reduce,
    bench_max,
    bench_tmu
);
criterion_main!(benches);
