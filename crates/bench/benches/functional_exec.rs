//! Benchmarks of the bit-accurate functional executor: how fast the
//! simulator pushes real bit-serial MAC/reduce/requantize sequences (one
//! convolution window = hundreds of two-row activations).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nc_dnn::workload::{random_conv, random_input, single_conv_model, tiny_cnn};
use nc_dnn::{Padding, Shape};
use neural_cache::functional;
use neural_cache::ExecutionEngine;

fn bench_functional_conv(c: &mut Criterion) {
    let conv = random_conv("bench", (3, 3), 8, 4, 1, Padding::Same, true, 3);
    let model = single_conv_model(conv, Shape::new(6, 6, 8));
    let input = random_input(model.input_shape, model.input_quant, 9);
    let mut g = c.benchmark_group("functional/conv3x3_c8_m4_6x6");
    g.throughput(Throughput::Elements((6 * 6 * 4) as u64));
    g.bench_function("bit-accurate", |b| {
        b.iter(|| functional::run_model(&model, &input).unwrap());
    });
    g.finish();
}

fn bench_functional_tiny_cnn(c: &mut Criterion) {
    let model = tiny_cnn(1);
    let input = random_input(model.input_shape, model.input_quant, 2);
    c.bench_function("functional/tiny_cnn_end_to_end", |b| {
        b.iter(|| functional::run_model(&model, &input).unwrap());
    });
}

fn bench_functional_tiny_cnn_threaded(c: &mut Criterion) {
    // Same workload on the 4-worker sharded engine: the gap to the
    // sequential number above is the simulator's parallel speedup (1x on
    // single-core CI runners).
    let model = tiny_cnn(1);
    let input = random_input(model.input_shape, model.input_quant, 2);
    let engine = ExecutionEngine::from_threads(4);
    c.bench_function("functional/tiny_cnn_end_to_end_threaded4", |b| {
        b.iter(|| functional::run_model_with(&model, &input, engine).unwrap());
    });
}

criterion_group!(
    benches,
    bench_functional_conv,
    bench_functional_tiny_cnn,
    bench_functional_tiny_cnn_threaded
);
criterion_main!(benches);
