//! Workspace telemetry: a span-based tracer keyed on **simulated time**, a
//! metrics registry, and Perfetto-exportable timelines for the Neural Cache
//! (ISCA 2018) reproduction.
//!
//! The paper's headline results are *attribution* claims — Figure 13's
//! per-layer latency, Figure 14's compute/load/dump breakdown, Figure 16's
//! throughput under batching — and this crate turns the counters the rest
//! of the workspace already proves correct (`CycleStats`, `LayerTiming`,
//! `PoolStats`, `ServingTrace`) into an inspectable timeline. The design
//! contract that makes it more than logging: every rollup derivable from a
//! trace must reconcile **exactly** (integer-exact for cycle counters,
//! bit-exact for simulated-time folds) against the counters the simulators
//! report, so the trace is a faithful second witness, enforced by proptests
//! in `neural-cache`/`nc-serve` and a CI gate in `nc-bench`.
//!
//! Three pieces:
//!
//! - [`Telemetry`]: a cloneable handle that is either a recording sink or a
//!   **no-op sink** ([`Telemetry::disabled`]). The disabled handle holds no
//!   allocation and every record call is a single branch on an `Option`, so
//!   instrumented hot paths cost nothing when telemetry is off (the default
//!   everywhere). A [`Level`] filter (parsed from the `NC_TELEMETRY`
//!   environment variable, or forced by `--trace-out`/`--no-telemetry` in
//!   the bench binaries) gates how much detail an enabled sink records.
//! - A metrics registry on the same handle: named monotonic counters,
//!   gauges, log2-bucketed [`Histogram`]s, and the time-weighted
//!   [`TimeWeightedHistogram`] the serving queue-depth report feeds.
//! - Exporters: [`Telemetry::to_chrome_trace`] renders the Chrome
//!   trace-event JSON that Perfetto (<https://ui.perfetto.dev>) loads
//!   directly, and [`Telemetry::to_rollup_json`] renders the
//!   `TELEMETRY.json` rollup artifact CI uploads.
//!
//! Spans carry their duration **verbatim** (never recomputed as
//! `end - start`), and the rollup queries ([`Telemetry::sum_dur`],
//! [`Telemetry::sum_u64_arg`], ...) fold records in insertion order, so a
//! caller that stores the simulator's own per-layer values reproduces the
//! simulator's own totals bit-for-bit. No external dependencies, per the
//! workspace's vendored-offline policy.

#![warn(missing_docs)]

use std::sync::{Arc, Mutex};

mod export;
mod registry;

pub use registry::{bucket_floor, log2_bucket, Histogram, TimeWeightedHistogram, ZERO_BUCKET};

/// How much an enabled sink records, in increasing detail.
///
/// Ordered so `level >= Level::Spans` style comparisons read naturally;
/// [`Level::Off`] exists only as the parse result that maps to a disabled
/// handle (an enabled sink always has a level above `Off`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Level {
    /// Record nothing (disabled handle).
    #[default]
    Off,
    /// Metrics registry only: counters, gauges, histograms.
    Summary,
    /// Metrics plus per-layer / per-event spans (the default for
    /// `--trace-out`).
    Spans,
    /// Everything: per-op and per-shard spans too.
    Detail,
}

impl Level {
    /// Parses an `NC_TELEMETRY`-style level string. Accepts names
    /// (`off`/`summary`/`spans`/`detail`, case-insensitive) and the numeric
    /// shorthands `0`–`3`; anything unrecognized is `Off` so a typo can
    /// never make a hot path start recording.
    #[must_use]
    pub fn parse(s: &str) -> Self {
        match s.trim().to_ascii_lowercase().as_str() {
            "summary" | "1" => Level::Summary,
            "spans" | "2" => Level::Spans,
            "detail" | "3" => Level::Detail,
            _ => Level::Off,
        }
    }

    /// The environment variable [`Telemetry::from_env`] reads.
    pub const ENV_VAR: &'static str = "NC_TELEMETRY";

    /// Stable lowercase name (inverse of [`Level::parse`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Summary => "summary",
            Level::Spans => "spans",
            Level::Detail => "detail",
        }
    }
}

/// A span/instant argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (cycle counters, counts, ids). Summed exactly by
    /// [`Telemetry::sum_u64_arg`].
    U64(u64),
    /// Floating-point (times, fractions).
    F64(f64),
    /// Free-form label.
    Str(String),
}

/// Identifies an interned (process, thread) timeline row in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(usize);

#[derive(Debug, Clone)]
pub(crate) struct TrackMeta {
    pub process: String,
    pub thread: String,
}

#[derive(Debug, Clone)]
pub(crate) struct SpanRecord {
    pub track: usize,
    pub cat: &'static str,
    pub name: String,
    pub start_s: f64,
    pub dur_s: f64,
    pub args: Vec<(&'static str, Value)>,
}

#[derive(Debug, Clone)]
pub(crate) struct InstantRecord {
    pub track: usize,
    pub cat: &'static str,
    pub name: String,
    pub t_s: f64,
    pub args: Vec<(&'static str, Value)>,
}

#[derive(Debug, Default)]
pub(crate) struct State {
    pub tracks: Vec<TrackMeta>,
    pub spans: Vec<SpanRecord>,
    pub instants: Vec<InstantRecord>,
    pub counters: std::collections::BTreeMap<String, u64>,
    pub gauges: std::collections::BTreeMap<String, f64>,
    pub histograms: std::collections::BTreeMap<String, Histogram>,
}

#[derive(Debug)]
struct Inner {
    level: Level,
    state: Mutex<State>,
}

/// The telemetry handle: either a recording sink or a free no-op.
///
/// Cloning is cheap (an `Arc` bump, or nothing when disabled); clones share
/// one record store, so a handle can be threaded through the functional
/// executor, the timing model, and the serving simulator and the resulting
/// trace lands in one timeline.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The no-op sink: records nothing, allocates nothing, every call is
    /// one branch. This is the default everywhere.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A recording sink at `level` ([`Level::Off`] gives the no-op sink).
    #[must_use]
    pub fn enabled(level: Level) -> Self {
        if level == Level::Off {
            return Telemetry::disabled();
        }
        Telemetry {
            inner: Some(Arc::new(Inner {
                level,
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// A sink at the level named by the `NC_TELEMETRY` environment variable
    /// (disabled when unset or unrecognized).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(Level::ENV_VAR) {
            Ok(v) => Telemetry::enabled(Level::parse(&v)),
            Err(_) => Telemetry::disabled(),
        }
    }

    /// Whether this handle records anything at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The recording level ([`Level::Off`] for the no-op sink).
    #[must_use]
    pub fn level(&self) -> Level {
        self.inner.as_ref().map_or(Level::Off, |i| i.level)
    }

    /// Whether records at `level` detail should be produced. Callers use
    /// this to skip building span arguments entirely when they would be
    /// dropped.
    #[must_use]
    pub fn at(&self, level: Level) -> bool {
        self.level() >= level
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut State) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|i| f(&mut i.state.lock().expect("telemetry state poisoned")))
    }

    /// Interns a `(process, thread)` timeline row and returns its id.
    /// Repeated calls with the same pair return the same id.
    #[must_use]
    pub fn track(&self, process: &str, thread: &str) -> TrackId {
        self.with_state(|s| {
            if let Some(i) = s
                .tracks
                .iter()
                .position(|t| t.process == process && t.thread == thread)
            {
                return TrackId(i);
            }
            s.tracks.push(TrackMeta {
                process: process.to_owned(),
                thread: thread.to_owned(),
            });
            TrackId(s.tracks.len() - 1)
        })
        .unwrap_or(TrackId(0))
    }

    /// Records a complete span. `start_s`/`dur_s` are seconds on the
    /// caller's time axis (simulated or wall — use separate tracks for
    /// separate axes); `dur_s` is stored verbatim so rollups can reproduce
    /// the caller's own folds bit-exactly.
    pub fn span(
        &self,
        track: TrackId,
        cat: &'static str,
        name: &str,
        start_s: f64,
        dur_s: f64,
        args: Vec<(&'static str, Value)>,
    ) {
        self.with_state(|s| {
            s.spans.push(SpanRecord {
                track: track.0,
                cat,
                name: name.to_owned(),
                start_s,
                dur_s,
                args,
            });
        });
    }

    /// Records an instantaneous event.
    pub fn instant(
        &self,
        track: TrackId,
        cat: &'static str,
        name: &str,
        t_s: f64,
        args: Vec<(&'static str, Value)>,
    ) {
        self.with_state(|s| {
            s.instants.push(InstantRecord {
                track: track.0,
                cat,
                name: name.to_owned(),
                t_s,
                args,
            });
        });
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.with_state(|s| {
            *s.counters.entry(name.to_owned()).or_insert(0) += delta;
        });
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.with_state(|s| {
            s.gauges.insert(name.to_owned(), value);
        });
    }

    /// Records one sample into the named log2-bucketed histogram.
    pub fn histogram_record(&self, name: &str, value: f64) {
        self.with_state(|s| {
            s.histograms
                .entry(name.to_owned())
                .or_default()
                .record(value);
        });
    }

    // --- rollup queries -------------------------------------------------

    /// Number of spans in category `cat`.
    #[must_use]
    pub fn span_count(&self, cat: &str) -> usize {
        self.with_state(|s| s.spans.iter().filter(|sp| sp.cat == cat).count())
            .unwrap_or(0)
    }

    /// Number of records (spans **and** instants) in category `cat`.
    #[must_use]
    pub fn record_count(&self, cat: &str) -> usize {
        self.with_state(|s| {
            s.spans.iter().filter(|sp| sp.cat == cat).count()
                + s.instants.iter().filter(|i| i.cat == cat).count()
        })
        .unwrap_or(0)
    }

    /// Exact sum of the `U64` argument `arg` over every span in `cat`
    /// (spans without the argument contribute 0).
    #[must_use]
    pub fn sum_u64_arg(&self, cat: &str, arg: &str) -> u64 {
        self.with_state(|s| {
            s.spans
                .iter()
                .filter(|sp| sp.cat == cat)
                .flat_map(|sp| &sp.args)
                .filter(|(n, _)| *n == arg)
                .map(|(_, v)| if let Value::U64(u) = v { *u } else { 0 })
                .sum()
        })
        .unwrap_or(0)
    }

    /// Sum of span durations in `cat`, folded in insertion order (so a
    /// trace that stores a simulator's per-item values verbatim reproduces
    /// the simulator's own `f64` total bit-for-bit).
    #[must_use]
    pub fn sum_dur(&self, cat: &str) -> f64 {
        self.with_state(|s| {
            s.spans
                .iter()
                .filter(|sp| sp.cat == cat)
                .fold(0.0, |acc, sp| acc + sp.dur_s)
        })
        .unwrap_or(0.0)
    }

    /// Sum of span durations in `cat` whose name is `name`, folded in
    /// insertion order.
    #[must_use]
    pub fn sum_dur_named(&self, cat: &str, name: &str) -> f64 {
        self.with_state(|s| {
            s.spans
                .iter()
                .filter(|sp| sp.cat == cat && sp.name == name)
                .fold(0.0, |acc, sp| acc + sp.dur_s)
        })
        .unwrap_or(0.0)
    }

    /// Distinct span names in `cat`, in first-appearance order.
    #[must_use]
    pub fn span_names(&self, cat: &str) -> Vec<String> {
        self.with_state(|s| {
            let mut names: Vec<String> = Vec::new();
            for sp in s.spans.iter().filter(|sp| sp.cat == cat) {
                if !names.contains(&sp.name) {
                    names.push(sp.name.clone());
                }
            }
            names
        })
        .unwrap_or_default()
    }

    /// Current value of the named counter (0 when absent or disabled).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.with_state(|s| s.counters.get(name).copied().unwrap_or(0))
            .unwrap_or(0)
    }

    /// Current value of the named gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.with_state(|s| s.gauges.get(name).copied()).flatten()
    }

    /// All counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.with_state(|s| s.counters.iter().map(|(k, &v)| (k.clone(), v)).collect())
            .unwrap_or_default()
    }

    /// All gauges, sorted by name.
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.with_state(|s| s.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect())
            .unwrap_or_default()
    }

    /// A snapshot of the named histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.with_state(|s| s.histograms.get(name).cloned())
            .flatten()
    }

    /// Names of all histograms, sorted.
    #[must_use]
    pub fn histogram_names(&self) -> Vec<String> {
        self.with_state(|s| s.histograms.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Total number of spans across all categories.
    #[must_use]
    pub fn total_spans(&self) -> usize {
        self.with_state(|s| s.spans.len()).unwrap_or(0)
    }

    /// Total number of instants across all categories.
    #[must_use]
    pub fn total_instants(&self) -> usize {
        self.with_state(|s| s.instants.len()).unwrap_or(0)
    }

    /// Renders the trace as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` form), loadable directly by Perfetto.
    /// Returns an empty-trace document for the no-op sink.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        self.with_state(|s| export::chrome_trace(s))
            .unwrap_or_else(|| String::from("{\n  \"traceEvents\": []\n}\n"))
    }

    /// Renders the `TELEMETRY.json` rollup artifact: level, per-category
    /// span rollups, counters, gauges, histogram snapshots.
    #[must_use]
    pub fn to_rollup_json(&self) -> String {
        let level = self.level();
        self.with_state(|s| export::rollup_json(s, level))
            .unwrap_or_else(|| export::rollup_json(&State::default(), Level::Off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_round_trips_and_defaults_off() {
        assert_eq!(Level::parse("off"), Level::Off);
        assert_eq!(Level::parse("SUMMARY"), Level::Summary);
        assert_eq!(Level::parse("spans"), Level::Spans);
        assert_eq!(Level::parse(" detail "), Level::Detail);
        assert_eq!(Level::parse("2"), Level::Spans);
        assert_eq!(Level::parse("bogus"), Level::Off);
        for l in [Level::Off, Level::Summary, Level::Spans, Level::Detail] {
            assert_eq!(Level::parse(l.name()), l);
        }
        assert!(Level::Detail > Level::Spans);
    }

    #[test]
    fn disabled_sink_records_and_returns_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert!(!tel.at(Level::Summary));
        let track = tel.track("p", "t");
        tel.span(track, "cat", "s", 0.0, 1.0, vec![]);
        tel.instant(track, "cat", "i", 0.5, vec![]);
        tel.counter_add("c", 3);
        tel.gauge_set("g", 1.0);
        tel.histogram_record("h", 2.0);
        assert_eq!(tel.span_count("cat"), 0);
        assert_eq!(tel.record_count("cat"), 0);
        assert_eq!(tel.counter("c"), 0);
        assert_eq!(tel.gauge("g"), None);
        assert!(tel.histogram("h").is_none());
        assert_eq!(tel.sum_dur("cat"), 0.0);
        assert!(tel.to_chrome_trace().contains("traceEvents"));
        assert!(!Telemetry::enabled(Level::Off).is_enabled());
    }

    #[test]
    fn spans_and_rollups_fold_in_insertion_order() {
        let tel = Telemetry::enabled(Level::Detail);
        assert!(tel.at(Level::Spans) && tel.at(Level::Detail));
        let track = tel.track("sim", "layers");
        let durs = [0.1, 0.2, 0.300_000_000_000_000_04, 1e-9];
        let mut expect = 0.0;
        for (i, d) in durs.iter().enumerate() {
            tel.span(
                track,
                "layer",
                &format!("l{i}"),
                expect,
                *d,
                vec![("cycles", Value::U64(i as u64 + 1))],
            );
            expect += d;
        }
        assert_eq!(tel.span_count("layer"), 4);
        assert_eq!(tel.sum_dur("layer"), expect);
        assert_eq!(tel.sum_u64_arg("layer", "cycles"), 1 + 2 + 3 + 4);
        assert_eq!(tel.sum_u64_arg("layer", "absent"), 0);
        assert_eq!(tel.sum_dur_named("layer", "l1"), 0.2);
        assert_eq!(tel.span_names("layer"), vec!["l0", "l1", "l2", "l3"]);
        // Same (process, thread) pair interns to the same track.
        assert_eq!(tel.track("sim", "layers"), track);
        assert_ne!(tel.track("sim", "other"), track);
    }

    #[test]
    fn registry_and_clones_share_state() {
        let tel = Telemetry::enabled(Level::Summary);
        let clone = tel.clone();
        clone.counter_add("mac.rounds", 7);
        tel.counter_add("mac.rounds", 5);
        clone.gauge_set("busy", 0.25);
        tel.gauge_set("busy", 0.75);
        tel.histogram_record("shard_s", 0.5);
        clone.histogram_record("shard_s", 2.0);
        assert_eq!(tel.counter("mac.rounds"), 12);
        assert_eq!(tel.gauge("busy"), Some(0.75));
        let h = tel.histogram("shard_s").expect("histogram exists");
        assert_eq!(h.count(), 2);
        assert_eq!(tel.counters(), vec![("mac.rounds".to_owned(), 12)]);
        assert_eq!(tel.histogram_names(), vec!["shard_s".to_owned()]);
    }
}
