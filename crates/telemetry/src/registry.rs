//! Metric aggregation types: log2-bucketed value histograms and the
//! time-weighted variant the serving queue-depth report feeds.
//!
//! Both histograms bucket by `floor(log2(value))` so they cover the nine
//! decimal orders of magnitude between a one-nanosecond shard and a
//! multi-second inference with a handful of integer keys, and both keep
//! exact first-moment accumulators next to the buckets so the summary
//! statistics they report reconcile bit-for-bit against the plain folds the
//! simulators already compute (see `weighted_sum`).

use std::collections::BTreeMap;

/// Bucket key for a non-negative `f64` value: `floor(log2(value))`, with
/// all non-positive values collapsed into [`ZERO_BUCKET`].
#[must_use]
pub fn log2_bucket(value: f64) -> i32 {
    if value > 0.0 {
        let b = value.log2().floor();
        // f64 exponents live in [-1074, 1024]; the cast cannot truncate.
        b as i32
    } else {
        ZERO_BUCKET
    }
}

/// The bucket holding zero (and any non-positive or non-finite sample).
pub const ZERO_BUCKET: i32 = i32::MIN;

/// Lower edge of a bucket produced by [`log2_bucket`] (0 for the zero
/// bucket).
#[must_use]
pub fn bucket_floor(bucket: i32) -> f64 {
    if bucket == ZERO_BUCKET {
        0.0
    } else {
        f64::from(bucket).exp2()
    }
}

/// A log2-bucketed histogram of `f64` samples (counts per bucket plus exact
/// count/sum/min/max accumulators).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    buckets: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        *self.buckets.entry(log2_bucket(value)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples (folded in record order).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// `(bucket, count)` pairs in ascending bucket order.
    #[must_use]
    pub fn buckets(&self) -> Vec<(i32, u64)> {
        self.buckets.iter().map(|(&b, &c)| (b, c)).collect()
    }
}

/// A log2-bucketed histogram of **time-weighted** samples: each observation
/// is a value held for a duration, and every statistic weights the value by
/// that duration.
///
/// The serving simulator's queue-depth report is the motivating client: a
/// queue depth is not a point sample but a level held for the span between
/// two events, so a point-sampled histogram would over-represent busy
/// bursts. [`TimeWeightedHistogram::weighted_sum`] accumulates
/// `value * weight` **in observation order with the identical expression**
/// the simulator's own `depth_integral` fold uses, so the two reconcile
/// bit-for-bit (there is a regression test on the serving side).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeWeightedHistogram {
    buckets: BTreeMap<i32, f64>,
    weighted_sum: f64,
    total_weight: f64,
    max_value: f64,
    observations: u64,
}

impl TimeWeightedHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `value` held for `weight` (e.g. a queue depth held for a
    /// span of simulated seconds). Zero-weight observations still update
    /// the max and the observation count.
    pub fn observe(&mut self, value: f64, weight: f64) {
        *self.buckets.entry(log2_bucket(value)).or_insert(0.0) += weight;
        self.weighted_sum += value * weight;
        self.total_weight += weight;
        self.max_value = self.max_value.max(value);
        self.observations += 1;
    }

    /// Exact `sum(value * weight)` in observation order.
    #[must_use]
    pub fn weighted_sum(&self) -> f64 {
        self.weighted_sum
    }

    /// Total observed weight.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of observations (including zero-weight ones).
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Largest observed value.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.max_value
    }

    /// Time-weighted mean over `total` (callers pass the full wall span,
    /// which may exceed [`TimeWeightedHistogram::total_weight`] when
    /// observation gaps exist); 0 when `total` is not positive.
    #[must_use]
    pub fn weighted_mean(&self, total: f64) -> f64 {
        if total > 0.0 {
            self.weighted_sum / total
        } else {
            0.0
        }
    }

    /// `(bucket, weight)` pairs in ascending bucket order.
    #[must_use]
    pub fn buckets(&self) -> Vec<(i32, f64)> {
        self.buckets.iter().map(|(&b, &w)| (b, w)).collect()
    }

    /// Smallest value `v` such that at least `q` of the total weight lies
    /// in buckets at or below `v`'s bucket, reported as the bucket's upper
    /// edge (a conservative quantile; exact to bucket granularity).
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.total_weight;
        let mut acc = 0.0;
        for (&bucket, &w) in &self.buckets {
            acc += w;
            if acc >= target {
                return if bucket == ZERO_BUCKET {
                    0.0
                } else {
                    bucket_floor(bucket + 1)
                };
            }
        }
        self.max_value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_cover_edges() {
        assert_eq!(log2_bucket(0.0), ZERO_BUCKET);
        assert_eq!(log2_bucket(-3.0), ZERO_BUCKET);
        assert_eq!(log2_bucket(1.0), 0);
        assert_eq!(log2_bucket(1.5), 0);
        assert_eq!(log2_bucket(2.0), 1);
        assert_eq!(log2_bucket(0.5), -1);
        assert_eq!(log2_bucket(1e-9), -30);
        assert_eq!(bucket_floor(ZERO_BUCKET), 0.0);
        assert_eq!(bucket_floor(3), 8.0);
        assert_eq!(bucket_floor(-1), 0.5);
    }

    #[test]
    fn histogram_tracks_moments_and_buckets() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        for v in [1.0, 1.5, 4.0, 0.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 6.5);
        assert_eq!(h.mean(), 1.625);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 4.0);
        assert_eq!(h.buckets(), vec![(ZERO_BUCKET, 1), (0, 2), (2, 1)]);
    }

    #[test]
    fn time_weighted_sum_matches_plain_fold() {
        // The serving simulator folds depth_integral += depth * span; the
        // histogram must reproduce that fold bit-for-bit.
        let samples = [(4.0, 0.01), (0.0, 0.02), (4.0, 0.01), (2.0, 0.01)];
        let mut h = TimeWeightedHistogram::new();
        let mut integral = 0.0;
        for (v, w) in samples {
            h.observe(v, w);
            integral += v * w;
        }
        assert_eq!(h.weighted_sum(), integral);
        assert_eq!(h.observations(), 4);
        assert_eq!(h.max_value(), 4.0);
        assert!((h.total_weight() - 0.05).abs() < 1e-15);
        // Mean over the full makespan (0.05s busy within 0.083s wall).
        let mean = h.weighted_mean(0.1);
        assert!((mean - integral / 0.1).abs() < 1e-15);
    }

    #[test]
    fn time_weighted_quantile_is_bucket_conservative() {
        let mut h = TimeWeightedHistogram::new();
        h.observe(0.0, 0.9);
        h.observe(8.0, 0.1);
        assert_eq!(h.quantile_upper_bound(0.5), 0.0);
        assert_eq!(h.quantile_upper_bound(0.99), 16.0);
        assert_eq!(TimeWeightedHistogram::new().quantile_upper_bound(0.5), 0.0);
    }
}
